// Adversarial training (§II-C.1, Table V): inject adversarial examples
// (labelled malware) into the training set, re-balance with extra clean
// samples, deduplicate, and retrain the model from scratch.
#pragma once

#include <memory>

#include "math/matrix.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace mev::defense {

struct AdvTrainingSetStats {
  std::size_t clean = 0;
  std::size_t malware = 0;
  std::size_t adversarial = 0;
  std::size_t duplicates_removed = 0;
  std::size_t total() const noexcept { return clean + malware + adversarial; }
};

struct AdvTrainingSet {
  nn::LabeledData data;        // augmented training set
  AdvTrainingSetStats stats;   // Table V-style composition
};

/// Builds the augmented training set: the original training rows plus
/// `adversarial_examples` rows labelled malware. Exact duplicate rows are
/// removed — the paper's "sanity check on the data to reduce the
/// duplicated samples". If `extra_clean` is non-null, rows from it are
/// appended (labelled clean) until the clean count matches
/// malware + adversarial or the pool is exhausted — the paper's "in order
/// to make the training set balance, we added a subset of clean samples".
AdvTrainingSet build_adversarial_training_set(
    const math::Matrix& train_features, const std::vector<int>& train_labels,
    const math::Matrix& adversarial_examples,
    const math::Matrix* extra_clean = nullptr);

struct AdversarialTrainingConfig {
  nn::MlpConfig architecture;       // fresh model to train
  nn::TrainConfig training;
};

/// Trains a fresh model on the augmented set.
std::shared_ptr<nn::Network> adversarial_training(
    const AdvTrainingSet& training_set, const AdversarialTrainingConfig& config,
    const nn::LabeledData* validation = nullptr);

}  // namespace mev::defense
