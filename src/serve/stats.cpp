#include "serve/stats.hpp"

#include <sstream>

#include "serve/overload.hpp"

namespace mev::serve {

std::string ServiceStats::to_string() const {
  std::ostringstream os;
  os << "requests: accepted=" << accepted_requests << " (" << accepted_rows
     << " rows), completed=" << completed_requests << " (" << completed_rows
     << " rows), rejected=" << rejected_total()
     << " [queue_full=" << rejected_queue_full
     << " shutting_down=" << rejected_shutting_down
     << " deadline=" << rejected_deadline
     << " overloaded=" << rejected_overloaded
     << " internal=" << rejected_internal << "]\n";
  if (rejected_deadline > 0)
    os << "deadline expiry by stage: admission=" << expired_at_admission
       << " queue=" << expired_in_queue
       << " post_dequeue=" << expired_post_dequeue << "\n";
  os << "batches: " << batches << ", model_swaps: " << model_swaps
     << ", stolen=" << stolen_requests << ", spilled=" << spilled_submissions
     << "\n";
  if (batch_failures > 0 || callback_errors > 0 || worker_stalls > 0)
    os << "failures: batch_failures=" << batch_failures
       << " callback_errors=" << callback_errors
       << " worker_stalls=" << worker_stalls
       << " worker_recoveries=" << worker_recoveries
       << " stalled_now=" << stalled_workers << "\n";
  if (overload_state != 0 || shed_fraction > 0.0 || rejected_overloaded > 0)
    os << "overload: state="
       << mev::serve::to_string(static_cast<OverloadState>(overload_state))
       << " shed_fraction=" << shed_fraction << "\n";
  os << "slo: fast_burn=" << slo_fast_burn << " slow_burn=" << slo_slow_burn
     << " budget_remaining=" << slo_budget_remaining << "\n";
  os << "drift: psi=" << score_psi
     << " reference=" << (drift_reference_frozen ? "frozen" : "capturing")
     << "\n";
  const auto line = [&os](const char* name, const Log2Histogram& h,
                          const char* unit) {
    const LatencySummary s = summarize(h);
    os << name << ": n=" << s.count << " mean=" << s.mean << unit
       << " p50=" << s.p50 << unit << " p95=" << s.p95 << unit
       << " p99=" << s.p99 << unit << " max=" << s.max << unit << "\n";
  };
  line("batch_rows", batch_rows, "");
  line("queue_delay", queue_delay_us, "us");
  line("e2e_latency", e2e_latency_us, "us");
  return os.str();
}

}  // namespace mev::serve
