file(REMOVE_RECURSE
  "CMakeFiles/mev_defense.dir/adversarial_training.cpp.o"
  "CMakeFiles/mev_defense.dir/adversarial_training.cpp.o.d"
  "CMakeFiles/mev_defense.dir/classifier.cpp.o"
  "CMakeFiles/mev_defense.dir/classifier.cpp.o.d"
  "CMakeFiles/mev_defense.dir/dim_reduction.cpp.o"
  "CMakeFiles/mev_defense.dir/dim_reduction.cpp.o.d"
  "CMakeFiles/mev_defense.dir/distillation.cpp.o"
  "CMakeFiles/mev_defense.dir/distillation.cpp.o.d"
  "CMakeFiles/mev_defense.dir/ensemble.cpp.o"
  "CMakeFiles/mev_defense.dir/ensemble.cpp.o.d"
  "CMakeFiles/mev_defense.dir/feature_squeezing.cpp.o"
  "CMakeFiles/mev_defense.dir/feature_squeezing.cpp.o.d"
  "libmev_defense.a"
  "libmev_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
