#include "core/detector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/experiment_config.hpp"
#include "data/synthetic.hpp"
#include "features/transform.hpp"

namespace mev::core {
namespace {

struct Fixture {
  const data::ApiVocab& vocab = data::ApiVocab::instance();
  data::GenerativeModel generator{vocab, data::GenerativeConfig{}};
  data::DatasetBundle bundle;
  DetectorTrainingResult trained;

  Fixture() {
    const auto config = ExperimentConfig::tiny();
    math::Rng rng(config.seed);
    bundle = generator.generate_bundle(config.dataset_spec(), rng);
    trained = train_detector(bundle, config.target_architecture(),
                             config.target_training(), vocab);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Detector, TrainingProducesWorkingDetector) {
  auto& f = fixture();
  ASSERT_NE(f.trained.detector, nullptr);
  EXPECT_FALSE(f.trained.history.epochs.empty());
  EXPECT_GT(f.trained.history.best_val_accuracy, 0.6);
}

TEST(Detector, FeatureMatricesMatchSplits) {
  auto& f = fixture();
  EXPECT_EQ(f.trained.train_features.rows(), f.bundle.train.size());
  EXPECT_EQ(f.trained.val_features.rows(), f.bundle.validation.size());
  EXPECT_EQ(f.trained.test_features.rows(), f.bundle.test.size());
  EXPECT_EQ(f.trained.train_features.cols(), data::kNumApiFeatures);
}

TEST(Detector, ScanLogMatchesScanCounts) {
  auto& f = fixture();
  math::Rng rng(99);
  const data::ApiLog log =
      f.generator.generate_log(data::kMalwareLabel, "x.exe", rng);
  const Verdict via_log = f.trained.detector->scan(log);
  math::Matrix counts(1, f.vocab.size());
  counts.set_row(0, f.trained.detector->pipeline().extractor().extract(log));
  const Verdict via_counts = f.trained.detector->scan_counts(counts).front();
  EXPECT_EQ(via_log.predicted_class, via_counts.predicted_class);
  EXPECT_NEAR(via_log.malware_confidence, via_counts.malware_confidence, 1e-6);
}

TEST(Detector, VerdictConsistentWithConfidence) {
  auto& f = fixture();
  const auto verdicts =
      f.trained.detector->scan_features(f.trained.test_features);
  for (const auto& v : verdicts) {
    if (v.malware_confidence > 0.5) {
      EXPECT_TRUE(v.is_malware());
    } else if (v.malware_confidence < 0.5) {
      EXPECT_FALSE(v.is_malware());
    }
  }
}

TEST(Detector, DetectsMostMalwareAndPassesMostClean) {
  auto& f = fixture();
  const auto verdicts =
      f.trained.detector->scan_features(f.trained.test_features);
  std::size_t tp = 0, tn = 0, pos = 0, neg = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    if (f.bundle.test.labels[i] == data::kMalwareLabel) {
      ++pos;
      tp += verdicts[i].is_malware() ? 1 : 0;
    } else {
      ++neg;
      tn += verdicts[i].is_malware() ? 0 : 1;
    }
  }
  // Tiny scale (570 training rows) under distribution drift: thresholds
  // are intentionally loose; the fast-scale benches verify paper-level
  // rates.
  EXPECT_GT(static_cast<double>(tp) / pos, 0.7);
  EXPECT_GT(static_cast<double>(tn) / neg, 0.4);
}

TEST(Detector, SessionOverloadMatchesLegacyScan) {
  auto& f = fixture();
  auto& detector = *f.trained.detector;  // legacy overloads are non-const
  nn::InferenceSession session = detector.make_session();
  const auto legacy = detector.scan_counts(f.trained.test_features);
  const auto via_session =
      detector.scan_counts(session, f.trained.test_features);
  ASSERT_EQ(legacy.size(), via_session.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].predicted_class, via_session[i].predicted_class);
    EXPECT_EQ(legacy[i].malware_confidence, via_session[i].malware_confidence);
  }
}

TEST(Detector, ConcurrentScanCountsOnSharedNetwork) {
  // One shared detector/network, one session per thread: every thread must
  // reproduce the serial verdicts exactly.
  auto& f = fixture();
  MalwareDetector& detector = *f.trained.detector;
  const math::Matrix& counts = f.trained.test_features;
  const auto want = detector.scan_features(counts);

  constexpr std::size_t kThreads = 4;
  std::vector<std::vector<Verdict>> got(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      nn::InferenceSession session = detector.make_session(counts.rows());
      for (int repeat = 0; repeat < 10; ++repeat)
        got[t] = detector.scan_features(session, counts);
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(got[t].size(), want.size()) << "thread " << t;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[t][i].predicted_class, want[i].predicted_class);
      EXPECT_EQ(got[t][i].malware_confidence, want[i].malware_confidence);
    }
  }
}

TEST(Detector, ConstructorRejectsMismatchedPipeline) {
  auto& f = fixture();
  nn::MlpConfig cfg;
  cfg.dims = {10, 4, 2};  // wrong input width
  auto tiny_net = std::make_shared<nn::Network>(nn::make_mlp(cfg));
  EXPECT_THROW(
      MalwareDetector(f.trained.detector->pipeline(), tiny_net),
      std::invalid_argument);
  EXPECT_THROW(MalwareDetector(f.trained.detector->pipeline(), nullptr),
               std::invalid_argument);
}

TEST(ExperimentConfig, FromNameRoundTrip) {
  EXPECT_EQ(ExperimentConfig::from_name("tiny").scale, ExperimentScale::kTiny);
  EXPECT_EQ(ExperimentConfig::from_name("fast").scale, ExperimentScale::kFast);
  EXPECT_EQ(ExperimentConfig::from_name("full").scale, ExperimentScale::kFull);
  EXPECT_THROW(ExperimentConfig::from_name("huge"), std::invalid_argument);
}

TEST(ExperimentConfig, FullScaleMatchesPaper) {
  const auto config = ExperimentConfig::full();
  EXPECT_EQ(config.dataset_spec().train_total(), 57170u);
  const auto sub = config.substitute_architecture();
  // Table IV: 491-1200-1500-1300-2.
  ASSERT_EQ(sub.dims.size(), 5u);
  EXPECT_EQ(sub.dims[0], 491u);
  EXPECT_EQ(sub.dims[1], 1200u);
  EXPECT_EQ(sub.dims[2], 1500u);
  EXPECT_EQ(sub.dims[3], 1300u);
  EXPECT_EQ(sub.dims[4], 2u);
  const auto tc = config.substitute_training();
  EXPECT_EQ(tc.epochs, 1000u);
  EXPECT_EQ(tc.batch_size, 256u);
  EXPECT_FLOAT_EQ(tc.learning_rate, 0.001f);
}

TEST(ExperimentConfig, SubstituteIsFiveLayerAtEveryScale) {
  for (const char* name : {"tiny", "fast", "full"}) {
    const auto config = ExperimentConfig::from_name(name);
    EXPECT_EQ(config.substitute_architecture().dims.size(), 5u) << name;
    EXPECT_EQ(config.target_architecture().dims.size(), 4u) << name;
  }
}

}  // namespace
}  // namespace mev::core
