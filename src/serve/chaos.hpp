// Serve-side chaos harness: deterministic fault injection in the worker
// scoring path, mirroring runtime::FaultInjectingOracle (PR 2) on the
// server side. A ModelFaultInjector sits between batch assembly and the
// pinned detector and, driven by a seeded RNG, makes some batches slow,
// stall, throw, or come back with the wrong number of verdicts — the four
// ways a real model backend misbehaves.
//
// Injection is split into two phases because the service's failure model
// is staged:
//
//   pre_scan()   latency faults (slow batch, startup stall) — runs
//                BEFORE the service's post-dequeue deadline gate, so an
//                injected delay deterministically expires deadlined work
//                at the execution stage (under FakeClock, sleep_ms
//                advances time instantly — no real waiting in tests).
//   post_scan()  outcome faults (throw, garbled verdict count) — wraps
//                the verdicts of a completed scan, inside the worker's
//                containment try-block, so a fault fails that batch with
//                kInternalError and nothing else.
//
// The injector is installed with ScoringService::set_model_fault() and
// pinned per batch like the model snapshot, so clearing the fault is a
// hot swap: batches formed after clear_model_fault() returns score clean.
// The chaos suite (tests/serve/test_chaos.cpp) iterates
// builtin_profiles() and asserts the core invariant under each: every
// submitted request completes exactly once with a verdict or a typed
// rejection, and the service accepts new work after the fault clears.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"

namespace mev::serve {

struct ModelFaultProfile {
  std::string name = "none";

  /// Probability a scanned batch throws (after inference, before any
  /// request resolves) — a crashing model backend.
  double throw_rate = 0.0;
  /// Probability a batch's verdict vector loses its last entry — a
  /// garbled response the service must refuse to mis-attribute.
  double garble_rate = 0.0;
  /// Probability a batch is slowed by slow_ms before scoring.
  double slow_rate = 0.0;
  std::uint64_t slow_ms = 20;
  /// The first N batches each stall for stall_ms (a cold backend that
  /// wedges its worker) — exercises the watchdog.
  std::size_t stall_batches = 0;
  std::uint64_t stall_ms = 0;

  std::uint64_t seed = 0x5EEDULL;

  static ModelFaultProfile none();
  /// 30% of batches throw.
  static ModelFaultProfile throwing();
  /// 25% of batches come back one verdict short.
  static ModelFaultProfile garbled();
  /// 40% of batches are slowed by slow_ms.
  static ModelFaultProfile slow();
  /// The first 2 batches stall for stall_ms each.
  static ModelFaultProfile stalling();
  /// Everything at once: throw + garble + slow + a stall burst.
  static ModelFaultProfile chaos();

  /// All non-trivial built-in profiles (everything above except none()) —
  /// the chaos suite iterates over these.
  static std::vector<ModelFaultProfile> builtin_profiles();
};

class ModelFaultInjector {
 public:
  /// `clock` defaults to the shared SystemClock (injected latency then
  /// really costs wall time); tests pass a FakeClock.
  explicit ModelFaultInjector(ModelFaultProfile profile,
                              runtime::Clock* clock = nullptr);

  /// Phase 1: latency faults. May sleep on the injector's clock; never
  /// throws.
  void pre_scan();

  /// Phase 2: outcome faults. May throw std::runtime_error or shorten
  /// `verdicts` — the caller's containment/validation handles both.
  void post_scan(std::vector<core::Verdict>& verdicts);

  struct InjectedCounts {
    std::size_t batches = 0;  // pre_scan applications
    std::size_t throws = 0;
    std::size_t garbled = 0;
    std::size_t slowed = 0;
    std::size_t stalled = 0;
    std::size_t faults() const noexcept {
      return throws + garbled + slowed + stalled;
    }
  };
  /// Thread-safe snapshot (workers share one injector).
  InjectedCounts injected() const;
  const ModelFaultProfile& profile() const noexcept { return profile_; }

 private:
  ModelFaultProfile profile_;
  runtime::Clock* clock_;
  /// Workers share the injector; the RNG and counters are serialized.
  /// Sleeps happen outside the lock so a slow batch on one worker does
  /// not serialize its siblings' draws.
  mutable std::mutex mutex_;
  math::Rng rng_;
  InjectedCounts injected_;
  std::size_t stalls_remaining_ = 0;
};

}  // namespace mev::serve
