// Log2Histogram: the fixed-footprint, O(1)-record histogram shared by the
// serving layer's latency stats and the obs/ metrics registry. Promoted
// from src/serve/ (serve re-exports it for compatibility).
//
// Accuracy contract (pinned by tests/obs/test_histogram.cpp): values land
// in power-of-two buckets — bucket 0 holds {0}, bucket i holds
// [2^(i-1), 2^i) — and percentile() linearly interpolates by rank inside
// the winning bucket, clamped to the observed min/max. The reported
// percentile therefore always lies in the same octave as the true
// percentile: it is at most one power of two away (relative error < 2x,
// typically far less), and is exact for min, max, and single-bucket
// distributions. count/sum/mean/min/max are exact.
//
// This histogram is NOT thread-safe; owners guard it (the service's stats
// mutex, the registry's per-histogram mutex).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mev::obs {

/// Fixed-size log2-bucketed histogram of non-negative 64-bit values
/// (microseconds, row counts, ...).
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t value) noexcept;
  void merge(const Log2Histogram& other) noexcept;
  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  /// Exact running sum of the recorded values.
  double sum() const noexcept { return sum_; }
  /// Arithmetic mean of the recorded values (exact, from the running sum).
  double mean() const noexcept;

  /// Approximate p-th percentile, p in [0, 100]; linearly interpolated
  /// within the bucket and clamped to the observed min/max (see the
  /// one-octave error bound in the header comment). 0 when empty.
  double percentile(double p) const noexcept;

  /// Raw bucket occupancy, for exporters (Prometheus cumulative buckets).
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return i < kBuckets ? buckets_[i] : 0;
  }
  /// Inclusive integer upper bound of bucket i: 0 for bucket 0, 2^i - 1
  /// otherwise (the last bucket absorbs everything above it).
  static std::uint64_t bucket_upper_bound(std::size_t i) noexcept;
  /// Bucket a value lands in: 0 holds {0}, bucket i holds [2^(i-1), 2^i).
  /// Exposed so lock-free aggregators (obs/window.hpp) bucket identically.
  static std::size_t bucket_index(std::uint64_t value) noexcept;

  /// Bulk merge from externally-accumulated per-bucket counts plus their
  /// exact aggregates — how obs::SlidingHistogram reassembles a mergeable
  /// histogram from its atomic time-bucket slots. `count` must equal the
  /// sum of `bucket_counts`; min/max/sum describe the same observations.
  void merge_counts(const std::array<std::uint64_t, kBuckets>& bucket_counts,
                    std::uint64_t count, double sum, std::uint64_t min_value,
                    std::uint64_t max_value) noexcept;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

/// The p50/p95/p99 digest reported per histogram. Percentiles inherit
/// Log2Histogram's one-octave error bound; count/mean/max are exact.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::uint64_t max = 0;
};

LatencySummary summarize(const Log2Histogram& h);

}  // namespace mev::obs
