#include "nn/network.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "math/linalg.hpp"
#include "nn/loss.hpp"

namespace mev::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4d45564eu;  // "MEVN"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kDenseTag = 1;
constexpr std::uint8_t kDropoutTag = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_network: truncated stream");
  return v;
}

void write_matrix(std::ostream& os, const math::Matrix& m) {
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

math::Matrix read_matrix(std::istream& is) {
  const auto rows = read_pod<std::uint64_t>(is);
  const auto cols = read_pod<std::uint64_t>(is);
  if (rows > (1u << 24) || cols > (1u << 24))
    throw std::runtime_error("load_network: implausible matrix shape");
  math::Matrix m(static_cast<std::size_t>(rows),
                 static_cast<std::size_t>(cols));
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is) throw std::runtime_error("load_network: truncated matrix data");
  return m;
}

}  // namespace

Network::Network(const Network& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  return *this;
}

void Network::add(std::unique_ptr<Layer> layer) {
  if (layer == nullptr) throw std::invalid_argument("Network::add: null layer");
  if (!layers_.empty() && layers_.back()->output_dim() != layer->input_dim())
    throw std::invalid_argument("Network::add: layer dimension mismatch");
  layers_.push_back(std::move(layer));
}

std::size_t Network::input_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.front()->input_dim();
}

std::size_t Network::output_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.back()->output_dim();
}

std::size_t Network::num_parameters() const {
  std::size_t n = 0;
  for (const auto& layer : layers_)
    for (const auto& p : const_cast<Layer&>(*layer).params())
      n += p.value->size();
  return n;
}

math::Matrix Network::forward(const math::Matrix& x, bool training) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty");
  math::Matrix activations = x;
  for (auto& layer : layers_)
    activations = layer->forward(activations, training);
  return activations;
}

math::Matrix Network::predict_proba(const math::Matrix& x, float temperature) {
  return softmax_rows(forward(x, /*training=*/false), temperature);
}

std::vector<int> Network::predict(const math::Matrix& x) {
  const math::Matrix logits = forward(x, /*training=*/false);
  std::vector<int> labels(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i)
    labels[i] = static_cast<int>(math::argmax(logits.row(i)));
  return labels;
}

math::Matrix Network::backward(const math::Matrix& grad_logits) {
  if (layers_.empty()) throw std::logic_error("Network::backward: empty");
  math::Matrix grad = grad_logits;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    grad = (*it)->backward(grad);
  return grad;
}

math::Matrix Network::input_gradient(const math::Matrix& x, int target_class) {
  const std::size_t classes = output_dim();
  if (target_class < 0 || static_cast<std::size_t>(target_class) >= classes)
    throw std::invalid_argument("input_gradient: class out of range");
  const math::Matrix logits = forward(x, /*training=*/false);
  const math::Matrix probs = softmax_rows(logits);

  // dF_c/dlogit_j = p_c (delta_cj - p_j): the softmax Jacobian row.
  math::Matrix grad_logits(logits.rows(), classes);
  const auto c = static_cast<std::size_t>(target_class);
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float pc = probs(i, c);
    for (std::size_t j = 0; j < classes; ++j)
      grad_logits(i, j) = pc * ((j == c ? 1.0f : 0.0f) - probs(i, j));
  }
  math::Matrix grad_input = backward(grad_logits);
  zero_grad();  // discard parameter gradients from this bookkeeping pass
  return grad_input;
}

std::vector<math::Matrix> Network::input_gradients_all(const math::Matrix& x) {
  const std::size_t classes = output_dim();
  const math::Matrix logits = forward(x, /*training=*/false);
  const math::Matrix probs = softmax_rows(logits);
  std::vector<math::Matrix> grads;
  grads.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    math::Matrix grad_logits(logits.rows(), classes);
    for (std::size_t i = 0; i < logits.rows(); ++i) {
      const float pc = probs(i, c);
      for (std::size_t j = 0; j < classes; ++j)
        grad_logits(i, j) = pc * ((j == c ? 1.0f : 0.0f) - probs(i, j));
    }
    grads.push_back(backward(grad_logits));
  }
  zero_grad();
  return grads;
}

std::vector<ParamRef> Network::params() {
  std::vector<ParamRef> all;
  for (auto& layer : layers_)
    for (auto& p : layer->params()) all.push_back(p);
  return all;
}

void Network::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::string Network::architecture_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& layer : layers_) {
    if (layer->name() != "dense") continue;
    if (first) {
      os << layer->input_dim();
      first = false;
    }
    os << "-" << layer->output_dim();
  }
  return os.str();
}

Network make_mlp(const MlpConfig& config) {
  if (config.dims.size() < 2)
    throw std::invalid_argument("make_mlp: need at least input and output dims");
  math::Rng rng(config.seed);
  Network net;
  for (std::size_t i = 0; i + 1 < config.dims.size(); ++i) {
    const bool last = (i + 2 == config.dims.size());
    const Activation act =
        last ? Activation::kIdentity : config.hidden_activation;
    net.add(std::make_unique<DenseLayer>(config.dims[i], config.dims[i + 1],
                                         act, rng));
    if (!last && config.dropout > 0.0f)
      net.add(std::make_unique<DropoutLayer>(config.dims[i + 1],
                                             config.dropout, rng.next()));
  }
  return net;
}

void save_network(const Network& net, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(net.num_layers()));
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    if (const auto* dense = dynamic_cast<const DenseLayer*>(&layer)) {
      write_pod(os, kDenseTag);
      write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(dense->activation()));
      write_matrix(os, dense->weights());
      write_matrix(os, dense->bias());
    } else if (const auto* drop = dynamic_cast<const DropoutLayer*>(&layer)) {
      write_pod(os, kDropoutTag);
      write_pod<std::uint64_t>(os, drop->input_dim());
      write_pod<float>(os, drop->rate());
    } else {
      throw std::runtime_error("save_network: unknown layer type " +
                               layer.name());
    }
  }
  if (!os) throw std::runtime_error("save_network: write failure");
}

void save_network(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_network: cannot open " + path);
  save_network(net, os);
}

Network load_network(std::istream& is) {
  if (read_pod<std::uint32_t>(is) != kMagic)
    throw std::runtime_error("load_network: bad magic");
  if (read_pod<std::uint32_t>(is) != kVersion)
    throw std::runtime_error("load_network: unsupported version");
  const auto count = read_pod<std::uint32_t>(is);
  Network net;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto tag = read_pod<std::uint8_t>(is);
    if (tag == kDenseTag) {
      const auto act = static_cast<Activation>(read_pod<std::uint8_t>(is));
      math::Matrix weights = read_matrix(is);
      math::Matrix bias = read_matrix(is);
      net.add(std::make_unique<DenseLayer>(std::move(weights), std::move(bias),
                                           act));
    } else if (tag == kDropoutTag) {
      const auto dim = read_pod<std::uint64_t>(is);
      const auto rate = read_pod<float>(is);
      net.add(std::make_unique<DropoutLayer>(static_cast<std::size_t>(dim),
                                             rate, /*seed=*/0));
    } else {
      throw std::runtime_error("load_network: unknown layer tag");
    }
  }
  return net;
}

Network load_network(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_network: cannot open " + path);
  return load_network(is);
}

}  // namespace mev::nn
