#include "nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace mev::nn {

namespace {

// Templated elementwise kernels: the functor is a concrete lambda, so the
// compiler inlines and vectorizes the loop body. (Matrix::apply with a
// std::function stays available for cold call sites; the forward/backward
// hot path must not pay a type-erased call per element.)
template <typename F>
inline void elementwise(math::Matrix& m, F&& f) {
  float* p = m.data();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = f(p[i]);
}

/// grad[i] = f(grad[i], ref[i]) — derivative kernels keyed on the cached
/// forward values (pre-activation z or activation output a).
template <typename F>
inline void elementwise_grad(math::Matrix& grad, const math::Matrix& ref,
                             F&& f) {
  float* g = grad.data();
  const float* r = ref.data();
  const std::size_t n = grad.size();
  for (std::size_t i = 0; i < n; ++i) g[i] = f(g[i], r[i]);
}

}  // namespace

void apply_activation(Activation act, math::Matrix& z) {
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      elementwise(z, [](float x) { return x > 0.0f ? x : 0.0f; });
      return;
    case Activation::kSigmoid:
      elementwise(z, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
      return;
    case Activation::kTanh:
      elementwise(z, [](float x) { return std::tanh(x); });
      return;
    case Activation::kLeakyRelu:
      elementwise(z, [](float x) { return x > 0.0f ? x : 0.01f * x; });
      return;
  }
  throw std::invalid_argument("apply_activation: unknown activation");
}

void apply_activation_grad(Activation act, const math::Matrix& z,
                           const math::Matrix& a, math::Matrix& grad) {
  if (!grad.same_shape(z) || !grad.same_shape(a))
    throw std::invalid_argument("apply_activation_grad: shape mismatch");
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      elementwise_grad(grad, z,
                       [](float g, float zi) { return zi <= 0.0f ? 0.0f : g; });
      return;
    case Activation::kSigmoid:
      elementwise_grad(grad, a,
                       [](float g, float ai) { return g * ai * (1.0f - ai); });
      return;
    case Activation::kTanh:
      elementwise_grad(grad, a,
                       [](float g, float ai) { return g * (1.0f - ai * ai); });
      return;
    case Activation::kLeakyRelu:
      elementwise_grad(grad, z, [](float g, float zi) {
        return zi <= 0.0f ? 0.01f * g : g;
      });
      return;
  }
  throw std::invalid_argument("apply_activation_grad: unknown activation");
}

std::string to_string(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kTanh: return "tanh";
    case Activation::kLeakyRelu: return "leaky_relu";
  }
  return "unknown";
}

Activation activation_from_string(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "tanh") return Activation::kTanh;
  if (name == "leaky_relu") return Activation::kLeakyRelu;
  throw std::invalid_argument("activation_from_string: " + name);
}

}  // namespace mev::nn
