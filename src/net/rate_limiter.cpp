#include "net/rate_limiter.hpp"

#include <algorithm>
#include <cmath>

namespace mev::net {

ApiKeyLimiter::ApiKeyLimiter(std::vector<ApiKey> keys, runtime::Clock* clock)
    : clock_(clock != nullptr ? clock : &runtime::SystemClock::instance()) {
  for (ApiKey& key : keys) {
    Bucket bucket;
    bucket.config = std::move(key);
    // Defensive floors: a zero/negative burst would deadlock every
    // request; rate 0 means "burst only, never refills" which is valid.
    if (bucket.config.burst_rows < 1.0) bucket.config.burst_rows = 1.0;
    if (bucket.config.rows_per_s < 0.0) bucket.config.rows_per_s = 0.0;
    buckets_.emplace(bucket.config.key, std::move(bucket));
  }
}

ApiKeyLimiter::Decision ApiKeyLimiter::check(std::string_view key,
                                             double cost_rows) {
  if (open()) return Decision{Outcome::kAllowed, 0, "open"};
  std::lock_guard<std::mutex> lock(mutex_);
  // C++20 heterogeneous lookup needs a transparent hash; at this
  // cardinality a temporary string is simpler and just as fast.
  const auto it = buckets_.find(std::string(key));
  if (it == buckets_.end()) return Decision{Outcome::kUnknownKey, 0, ""};
  Bucket& bucket = it->second;

  // Same refill shape as the logger's LogSite bucket: elapsed time adds
  // tokens at the configured rate, capped at the burst size.
  const std::uint64_t now_us = clock_->now_us();
  if (!bucket.initialized) {
    bucket.tokens = bucket.config.burst_rows;
    bucket.last_refill_us = now_us;
    bucket.initialized = true;
  } else if (now_us > bucket.last_refill_us) {
    const double elapsed_s =
        static_cast<double>(now_us - bucket.last_refill_us) * 1e-6;
    bucket.tokens = std::min(bucket.config.burst_rows,
                             bucket.tokens +
                                 elapsed_s * bucket.config.rows_per_s);
    bucket.last_refill_us = now_us;
  }

  if (bucket.tokens >= cost_rows) {
    bucket.tokens -= cost_rows;
    return Decision{Outcome::kAllowed, 0, bucket.config.client};
  }
  // Whole seconds until the deficit refills; a request larger than the
  // burst can never pass, so answer with the time to a full bucket (the
  // honest "try a smaller request" signal is the 429 body).
  const double deficit =
      std::min(cost_rows, bucket.config.burst_rows) - bucket.tokens;
  double wait_s = 1.0;
  if (bucket.config.rows_per_s > 0.0 && deficit > 0.0)
    wait_s = deficit / bucket.config.rows_per_s;
  const double rounded = std::ceil(std::max(wait_s, 1.0));
  return Decision{Outcome::kOverRate,
                  static_cast<std::uint64_t>(rounded),
                  bucket.config.client};
}

}  // namespace mev::net
