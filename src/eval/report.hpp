// ASCII reporting helpers so every bench binary prints paper-style tables
// and curve series in a consistent format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/metrics.hpp"

namespace mev::eval {

/// Column-aligned ASCII table with a title row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);
  Table& separator();

  /// Renders with box-drawing dashes, padding each column to its widest
  /// cell.
  std::string render() const;
  void print(std::ostream& os) const;

  static std::string fmt(double value, int precision = 3);
  /// "nan" for NaN values, matching the paper's Table VI.
  static std::string fmt_or_nan(double value, int precision = 3);

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> is_separator_;
  bool has_header_ = false;
};

/// Prints a security-evaluation curve as an aligned series plus a coarse
/// ASCII plot (detection rate vs strength), the textual analogue of the
/// paper's Fig. 3 and Fig. 4.
std::string render_curve(const SecurityCurve& curve);

/// Renders several curves over the same x-grid side by side.
std::string render_curves(const std::vector<SecurityCurve>& curves);

}  // namespace mev::eval
