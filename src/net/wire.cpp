#include "net/wire.hpp"

#include <charconv>
#include <cmath>
#include <cstring>
#include <vector>

namespace mev::net {

namespace {

// Little-endian framing matches the x86-64 targets this builds on; the
// codec memcpy's scalars whole rather than byte-swapping.
void append_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

std::uint32_t read_u32(const char* p) noexcept {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

void skip_ws(std::string_view body, std::size_t& pos) noexcept {
  while (pos < body.size() &&
         (body[pos] == ' ' || body[pos] == '\t' || body[pos] == '\n' ||
          body[pos] == '\r'))
    ++pos;
}

BodyParseResult fail(std::string error) {
  BodyParseResult result;
  result.error = std::move(error);
  return result;
}

void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

BodyParseResult parse_json_rows(std::string_view body,
                                std::size_t expected_cols,
                                std::size_t max_rows) {
  std::size_t pos = 0;
  skip_ws(body, pos);
  if (pos >= body.size() || body[pos] != '[')
    return fail("expected top-level JSON array of rows");
  ++pos;
  std::vector<float> values;
  std::size_t rows = 0;
  skip_ws(body, pos);
  if (pos < body.size() && body[pos] == ']')
    return fail("no rows: body must contain at least one row");
  for (;;) {
    skip_ws(body, pos);
    if (pos >= body.size() || body[pos] != '[')
      return fail("expected '[' opening row " + std::to_string(rows));
    ++pos;
    std::size_t cols = 0;
    for (;;) {
      skip_ws(body, pos);
      if (pos >= body.size()) return fail("unterminated row");
      double value = 0.0;
      const auto res = std::from_chars(body.data() + pos,
                                       body.data() + body.size(), value);
      if (res.ec != std::errc() || res.ptr == body.data() + pos)
        return fail("expected a number in row " + std::to_string(rows));
      if (!std::isfinite(value))
        return fail("non-finite value in row " + std::to_string(rows));
      values.push_back(static_cast<float>(value));
      ++cols;
      pos = static_cast<std::size_t>(res.ptr - body.data());
      skip_ws(body, pos);
      if (pos >= body.size()) return fail("unterminated row");
      if (body[pos] == ',') {
        ++pos;
        continue;
      }
      if (body[pos] == ']') {
        ++pos;
        break;
      }
      return fail("expected ',' or ']' in row " + std::to_string(rows));
    }
    if (cols != expected_cols)
      return fail("row " + std::to_string(rows) + " has " +
                  std::to_string(cols) + " columns, expected " +
                  std::to_string(expected_cols));
    ++rows;
    if (max_rows != 0 && rows > max_rows)
      return fail("too many rows: limit is " + std::to_string(max_rows));
    skip_ws(body, pos);
    if (pos >= body.size()) return fail("unterminated rows array");
    if (body[pos] == ',') {
      ++pos;
      continue;
    }
    if (body[pos] == ']') {
      ++pos;
      break;
    }
    return fail("expected ',' or ']' after row " + std::to_string(rows - 1));
  }
  skip_ws(body, pos);
  if (pos != body.size()) return fail("trailing bytes after rows array");

  BodyParseResult result;
  result.ok = true;
  result.rows = math::Matrix(rows, expected_cols);
  std::memcpy(result.rows.data(), values.data(),
              values.size() * sizeof(float));
  return result;
}

BodyParseResult parse_binary_rows(std::string_view body,
                                  std::size_t expected_cols,
                                  std::size_t max_rows) {
  if (body.size() < 12) return fail("binary body shorter than its header");
  if (read_u32(body.data()) != kBinaryMagic)
    return fail("bad magic: not an x-mev-rows body");
  const std::uint32_t rows = read_u32(body.data() + 4);
  const std::uint32_t cols = read_u32(body.data() + 8);
  if (rows == 0) return fail("no rows: row count is zero");
  if (cols != expected_cols)
    return fail("binary header declares " + std::to_string(cols) +
                " columns, expected " + std::to_string(expected_cols));
  if (max_rows != 0 && rows > max_rows)
    return fail("too many rows: limit is " + std::to_string(max_rows));
  const std::size_t payload =
      static_cast<std::size_t>(rows) * cols * sizeof(float);
  if (body.size() != 12 + payload)
    return fail("binary body is " + std::to_string(body.size()) +
                " bytes, expected " + std::to_string(12 + payload));

  BodyParseResult result;
  result.ok = true;
  result.rows = math::Matrix(rows, cols);
  std::memcpy(result.rows.data(), body.data() + 12, payload);
  return result;
}

std::string encode_binary_rows(const math::Matrix& rows) {
  const std::size_t payload = rows.rows() * rows.cols() * sizeof(float);
  std::string out;
  out.reserve(12 + payload);
  append_u32(out, kBinaryMagic);
  append_u32(out, static_cast<std::uint32_t>(rows.rows()));
  append_u32(out, static_cast<std::uint32_t>(rows.cols()));
  out.append(reinterpret_cast<const char*>(rows.data()), payload);
  return out;
}

std::string format_verdicts_json(const serve::ScoreResult& result) {
  std::string out = "{\"model_version\":";
  out += std::to_string(result.model_version);
  out += ",\"verdicts\":[";
  bool first = true;
  for (const core::Verdict& verdict : result.verdicts) {
    if (!first) out += ',';
    first = false;
    out += "{\"malware\":";
    out += verdict.is_malware() ? "true" : "false";
    out += ",\"confidence\":";
    append_double(out, verdict.malware_confidence);
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string format_error_json(std::string_view error,
                              std::string_view detail) {
  std::string out = "{\"error\":\"";
  out += error;
  out += "\",\"detail\":\"";
  // Reason tokens are fixed strings; details are our own messages — both
  // JSON-safe by construction, but escape quotes/backslashes defensively.
  for (const char c : detail) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  out += "\"}\n";
  return out;
}

HttpStatus status_for(serve::RejectReason reason) noexcept {
  switch (reason) {
    case serve::RejectReason::kNone: return {200, "ok"};
    case serve::RejectReason::kQueueFull: return {503, "queue_full"};
    case serve::RejectReason::kShuttingDown: return {503, "shutting_down"};
    case serve::RejectReason::kDeadline: return {504, "deadline"};
    case serve::RejectReason::kOverloaded: return {503, "overloaded"};
    case serve::RejectReason::kInternalError: return {500, "internal_error"};
  }
  return {500, "internal_error"};
}

}  // namespace mev::net
