#include "core/persistence.hpp"

#include <fstream>
#include <memory>
#include <stdexcept>

#include "features/transform.hpp"

namespace mev::core {

void save_detector(const MalwareDetector& detector,
                   const std::string& path_prefix) {
  // Network (binary).
  nn::save_network(
      const_cast<MalwareDetector&>(detector).network(),  // read-only use
      path_prefix + ".net");

  // Transform (text, tagged by type).
  std::ofstream ts(path_prefix + ".transform");
  if (!ts)
    throw std::runtime_error("save_detector: cannot open " + path_prefix +
                             ".transform");
  const features::FeatureTransform& transform =
      detector.pipeline().transform();
  if (const auto* count =
          dynamic_cast<const features::CountTransform*>(&transform)) {
    ts << "count\n";
    count->save(ts);
  } else if (transform.name() == "binary") {
    ts << "binary\n" << transform.dim() << "\n";
  } else {
    throw std::runtime_error("save_detector: unsupported transform " +
                             transform.name());
  }
  if (!ts) throw std::runtime_error("save_detector: write failure");
}

std::unique_ptr<MalwareDetector> load_detector(const std::string& path_prefix,
                                               const data::ApiVocab& vocab) {
  auto network = std::make_shared<nn::Network>(
      nn::load_network(path_prefix + ".net"));

  std::ifstream ts(path_prefix + ".transform");
  if (!ts)
    throw std::runtime_error("load_detector: cannot open " + path_prefix +
                             ".transform");
  std::string kind;
  if (!(ts >> kind)) throw std::runtime_error("load_detector: empty transform");
  std::unique_ptr<features::FeatureTransform> transform;
  if (kind == "count") {
    transform = std::make_unique<features::CountTransform>(
        features::CountTransform::load(ts));
  } else if (kind == "binary") {
    std::size_t dim = 0;
    if (!(ts >> dim))
      throw std::runtime_error("load_detector: bad binary transform");
    transform = std::make_unique<features::BinaryTransform>(dim);
  } else {
    throw std::runtime_error("load_detector: unknown transform " + kind);
  }
  return std::make_unique<MalwareDetector>(
      features::FeaturePipeline(vocab, std::move(transform)),
      std::move(network));
}

}  // namespace mev::core
