#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>

#include "math/rng.hpp"
#include "nn/loss.hpp"
#include "nn/session.hpp"
#include "obs/obs.hpp"

namespace mev::nn {

namespace {

std::unique_ptr<Optimizer> make_optimizer(const TrainConfig& config) {
  switch (config.optimizer) {
    case OptimizerKind::kSgd: {
      SgdConfig sc;
      sc.learning_rate = config.learning_rate;
      sc.momentum = config.momentum;
      sc.weight_decay = config.weight_decay;
      return std::make_unique<Sgd>(sc);
    }
    case OptimizerKind::kAdam: {
      AdamConfig ac;
      ac.learning_rate = config.learning_rate;
      ac.weight_decay = config.weight_decay;
      return std::make_unique<Adam>(ac);
    }
  }
  throw std::invalid_argument("make_optimizer: unknown kind");
}

/// Shared epoch loop; `loss_fn` maps (logits, batch indices) to LossResult.
template <typename LossFn>
TrainHistory run_training(Network& net, const math::Matrix& x, std::size_t n,
                          const TrainConfig& config,
                          const LabeledData* validation, LossFn&& loss_fn) {
  if (n == 0) throw std::invalid_argument("train: empty training set");
  if (config.batch_size == 0)
    throw std::invalid_argument("train: batch_size must be positive");

  auto optimizer = make_optimizer(config);
  // The session owns all activation and gradient buffers, reused across
  // batches; the network itself is only touched by the optimizer step.
  InferenceSession session(net, std::min(n, config.batch_size));
  auto params = session.bind_params(net);
  math::Rng rng(config.shuffle_seed);

  obs::Tracer* tracer = obs::resolve(config.tracer);
  obs::MetricsRegistry* registry = obs::resolve(config.metrics);
  obs::Logger& logger = obs::default_logger();
  obs::Counter epochs_counter =
      registry->counter("mev.nn.train.epochs", "completed training epochs");
  obs::Counter batches_counter =
      registry->counter("mev.nn.train.batches", "completed mini-batches");
  obs::Gauge loss_gauge = registry->gauge(
      "mev.nn.train.loss", "mean training loss of the last completed epoch");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  TrainHistory history;
  math::Matrix batch_x;
  std::size_t epochs_since_best = 0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // The span covers shuffling, every batch, and validation — its
    // duration is the epoch wall time in the exported trace.
    obs::Span epoch_span = obs::span(tracer, "mev.nn.train.epoch");
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(start + config.batch_size, n);
      const std::span<const std::size_t> batch_idx(order.data() + start,
                                                   end - start);
      math::gather_rows_into(x, batch_idx, batch_x);
      session.zero_param_grads();
      const math::Matrix& logits = session.forward(batch_x, /*training=*/true);
      LossResult loss = loss_fn(logits, batch_idx);
      epoch_loss += loss.loss;
      ++batches;
      session.backward(loss.grad_logits, /*accumulate_param_grads=*/true);
      optimizer->step(params);
    }

    EpochStats stats;
    stats.train_loss = epoch_loss / static_cast<double>(batches);
    if (!std::isfinite(stats.train_loss)) {
      MEV_LOG(logger, obs::LogLevel::kError, "nn.train",
              "non-finite loss, training diverged",
              {obs::LogField::u64_value("epoch", epoch),
               obs::LogField::f64_value("lr", config.learning_rate)});
      throw std::runtime_error(
          "train: non-finite loss at epoch " + std::to_string(epoch) +
          " — training diverged (check learning rate and input scaling)");
    }
    // Per-epoch progress is debug-level (silent at the kWarn default) and
    // rate-limited so tight loops over small sets cannot flood the sink.
    MEV_LOG_EVERY(logger, obs::LogLevel::kDebug, /*rate_per_s=*/5.0,
                  /*burst=*/10.0, "nn.train", "epoch complete",
                  {obs::LogField::u64_value("epoch", epoch),
                   obs::LogField::f64_value("loss", stats.train_loss)});
    if (validation != nullptr)
      stats.val_accuracy = accuracy(net, validation->x, validation->labels);
    history.epochs.push_back(stats);
    epoch_span.arg("epoch", static_cast<double>(epoch));
    epoch_span.arg("loss", stats.train_loss);
    epoch_span.arg("lr", config.learning_rate);
    epochs_counter.inc();
    batches_counter.inc(batches);
    loss_gauge.set(stats.train_loss);
    if (config.on_epoch)
      config.on_epoch(epoch, stats.train_loss, stats.val_accuracy);

    if (validation != nullptr) {
      if (stats.val_accuracy > history.best_val_accuracy) {
        history.best_val_accuracy = stats.val_accuracy;
        history.best_epoch = epoch;
        epochs_since_best = 0;
      } else if (config.early_stopping_patience > 0 &&
                 ++epochs_since_best >= config.early_stopping_patience) {
        history.early_stopped = true;
        MEV_LOG(logger, obs::LogLevel::kInfo, "nn.train", "early stopping",
                {obs::LogField::u64_value("epoch", epoch),
                 obs::LogField::u64_value("best_epoch", history.best_epoch),
                 obs::LogField::f64_value("best_val_accuracy",
                                          history.best_val_accuracy)});
        break;
      }
    }
  }
  return history;
}

}  // namespace

TrainHistory train(Network& net, const LabeledData& train_data,
                   const TrainConfig& config, const LabeledData* validation) {
  if (train_data.labels.size() != train_data.x.rows())
    throw std::invalid_argument(
        "train: " + std::to_string(train_data.labels.size()) +
        " labels for " + std::to_string(train_data.x.rows()) + " rows");
  const int num_classes = static_cast<int>(net.output_dim());
  for (std::size_t i = 0; i < train_data.labels.size(); ++i)
    if (train_data.labels[i] < 0 || train_data.labels[i] >= num_classes)
      throw std::invalid_argument(
          "train: label " + std::to_string(train_data.labels[i]) +
          " at row " + std::to_string(i) + " is outside [0, " +
          std::to_string(num_classes) + ")");
  return run_training(
      net, train_data.x, train_data.x.rows(), config, validation,
      [&](const math::Matrix& logits, std::span<const std::size_t> idx) {
        std::vector<int> batch_labels(idx.size());
        for (std::size_t i = 0; i < idx.size(); ++i)
          batch_labels[i] = train_data.labels[idx[i]];
        return softmax_cross_entropy(logits, batch_labels, config.temperature);
      });
}

TrainHistory train_soft(Network& net, const math::Matrix& x,
                        const math::Matrix& soft_targets,
                        const TrainConfig& config,
                        const LabeledData* validation) {
  if (soft_targets.rows() != x.rows())
    throw std::invalid_argument("train_soft: target count mismatch");
  return run_training(
      net, x, x.rows(), config, validation,
      [&](const math::Matrix& logits, std::span<const std::size_t> idx) {
        math::Matrix batch_targets(idx.size(), soft_targets.cols());
        for (std::size_t i = 0; i < idx.size(); ++i)
          batch_targets.set_row(i, soft_targets.row(idx[i]));
        return soft_label_cross_entropy(logits, batch_targets,
                                        config.temperature);
      });
}

double accuracy(const Network& net, const math::Matrix& x,
                const std::vector<int>& labels) {
  if (labels.size() != x.rows())
    throw std::invalid_argument("accuracy: label count mismatch");
  if (labels.empty()) return 0.0;
  InferenceSession session(net, x.rows());
  const auto predictions = session.predict(x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (predictions[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace mev::nn
