#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace mev::obs::http {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";

/// Writes `size` bytes, tolerating partial sends; MSG_NOSIGNAL so a
/// client that hangs up mid-response does not SIGPIPE the process.
/// Returns false when the connection is unwritable.
bool send_all(int fd, const char* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;  // timeout, reset, or shutdown
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

/// HTTP/1.1 defaults to keep-alive; HTTP/1.0 defaults to close. An
/// explicit Connection header wins either way.
bool client_wants_keep_alive(const Request& request) noexcept {
  const std::string* connection = request.header("Connection");
  if (connection != nullptr) {
    if (iequals(*connection, "close")) return false;
    if (iequals(*connection, "keep-alive")) return true;
  }
  return request.version != "HTTP/1.0";
}

}  // namespace

/// One connection's shared signaling state: the worker waits on `cv` for
/// the head-of-line response; completion callbacks (any thread) flip a
/// slot ready and notify. Held by shared_ptr from every outstanding slot
/// so a late respond() after the connection died stays safe.
struct ConnState {
  std::mutex mutex;
  std::condition_variable cv;
};

struct ResponseTicket::Slot {
  std::shared_ptr<ConnState> conn;
  std::string response;
  bool ready = false;
  bool close_after = false;
};

ResponseTicket::~ResponseTicket() {
  if (slot_ != nullptr)
    respond(format_response(500, kTextPlain, "internal server error\n",
                            /*keep_alive=*/false, {}));
}

void ResponseTicket::respond(std::string raw_response) noexcept {
  if (slot_ == nullptr) return;  // already responded (or default ticket)
  const std::shared_ptr<Slot> slot = std::move(slot_);
  {
    std::lock_guard<std::mutex> lock(slot->conn->mutex);
    slot->response = std::move(raw_response);
    slot->ready = true;
  }
  slot->conn->cv.notify_all();
}

SocketServer::SocketServer(SocketServerConfig config, Dispatch dispatch)
    : config_(std::move(config)),
      dispatch_(std::move(dispatch)),
      logger_(config_.logger != nullptr ? config_.logger
                                        : &default_logger()) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_queued_connections == 0) config_.max_queued_connections = 1;
  if (config_.max_pipeline == 0) config_.max_pipeline = 1;
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    MEV_LOG(*logger_, LogLevel::kError, config_.log_component,
            "socket() failed", {LogField::i64_value("errno", errno)});
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    MEV_LOG(*logger_, LogLevel::kError, config_.log_component,
            "bad bind address",
            {LogField::string("address", config_.bind_address.c_str())});
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    MEV_LOG(*logger_, LogLevel::kError, config_.log_component,
            "bind/listen failed",
            {LogField::string("address", config_.bind_address.c_str()),
             LogField::u64_value("port", config_.port),
             LogField::i64_value("errno", errno)});
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0)
    bound_port_ = ntohs(bound.sin_port);

  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });

  MEV_LOG(*logger_, LogLevel::kInfo, config_.log_component, "server started",
          {LogField::string("address", config_.bind_address.c_str()),
           LogField::u64_value("port", bound_port_),
           LogField::u64_value("workers", config_.worker_threads),
           LogField::u64_value("keep_alive", config_.keep_alive ? 1 : 0)});
  return true;
}

void SocketServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake a blocked accept(); the fd itself is closed only after the
  // accept thread is joined, so it can never race onto a recycled fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Shed anything still queued; every accepted fd is closed exactly once.
  std::lock_guard<std::mutex> lock(queue_mutex_);
  for (int fd : pending_fds_) ::close(fd);
  pending_fds_.clear();
  MEV_LOG(*logger_, LogLevel::kInfo, config_.log_component, "server stopped",
          {LogField::u64_value("port", bound_port_)});
}

SocketServer::Stats SocketServer::stats() const noexcept {
  Stats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_shed = shed_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.responses = responses_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return stats;
}

void SocketServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Responses are small (one JSON verdict batch); never let Nagle hold
    // them hostage to the client's ACK cadence.
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (pending_fds_.size() >= config_.max_queued_connections)
        shed = true;
      else
        pending_fds_.push_back(conn);
    }
    if (shed) {
      // Bounded model: close unserved rather than queue without limit.
      ::close(conn);
      shed_.fetch_add(1, std::memory_order_relaxed);
      config_.shed_counter.inc();
      MEV_LOG_EVERY(*logger_, LogLevel::kWarn, /*rate_per_s=*/1.0,
                    /*burst=*/3.0, config_.log_component,
                    "connection shed: queue full",
                    {LogField::u64_value("max_queued",
                                         config_.max_queued_connections)});
    } else {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
    }
  }
}

void SocketServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() ||
               !running_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) return;  // stopping and drained
      fd = pending_fds_.front();
      pending_fds_.pop_front();
    }
    serve_connection(fd);
  }
}

void SocketServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(config_.io_timeout_ms / 1000);
  timeout.tv_usec =
      static_cast<suseconds_t>((config_.io_timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  const auto conn = std::make_shared<ConnState>();
  // Outstanding requests in arrival order; only the worker mutates the
  // deque (under conn->mutex because respond() reads slots concurrently).
  std::deque<std::shared_ptr<ResponseTicket::Slot>> pending;
  RequestParser parser(config_.limits);
  char buffer[8192];
  bool stop_reading = false;  // EOF, close-after response, error, shutdown
  bool write_failed = false;
  std::uint64_t drain_wait_ms = 0;  // time spent stalled during shutdown

  const auto pending_size = [&] {
    std::lock_guard<std::mutex> lock(conn->mutex);
    return pending.size();
  };

  // Writes every ready head-of-line response, preserving arrival order
  // even when the service completed them out of order.
  const auto flush_ready = [&] {
    for (;;) {
      std::shared_ptr<ResponseTicket::Slot> slot;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (pending.empty() || !pending.front()->ready) return;
        slot = pending.front();
        pending.pop_front();
      }
      if (!write_failed)
        write_failed = !send_all(fd, slot->response.data(),
                                 slot->response.size());
      responses_.fetch_add(1, std::memory_order_relaxed);
      if (slot->close_after) stop_reading = true;
    }
  };

  // Parses everything in [data, data+n): complete requests are dispatched
  // with a ticket; a parse error answers inline and poisons the
  // connection (framing is unrecoverable after a bad request).
  const auto handle_bytes = [&](const char* data, std::size_t n) {
    std::size_t offset = 0;
    while (offset < n && !stop_reading) {
      offset += parser.feed(data + offset, n - offset);
      if (parser.status() == ParseStatus::kComplete) {
        requests_.fetch_add(1, std::memory_order_relaxed);
        Request request = parser.take_request();
        parser.reset();
        const bool keep =
            config_.keep_alive && client_wants_keep_alive(request) &&
            running_.load(std::memory_order_acquire);
        auto slot = std::make_shared<ResponseTicket::Slot>();
        slot->conn = conn;
        slot->close_after = !keep;
        if (!keep) stop_reading = true;
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          pending.push_back(slot);
        }
        dispatch_(std::move(request), ResponseTicket(std::move(slot), keep));
      } else if (parser.status() == ParseStatus::kError) {
        parse_errors_.fetch_add(1, std::memory_order_relaxed);
        config_.parse_error_counter.inc();
        const int status = parser.error_status();
        auto slot = std::make_shared<ResponseTicket::Slot>();
        slot->conn = conn;
        slot->close_after = true;
        slot->ready = true;
        slot->response = format_response(
            status, kTextPlain, std::string(status_text(status)) + "\n",
            /*keep_alive=*/false, {});
        {
          std::lock_guard<std::mutex> lock(conn->mutex);
          pending.push_back(slot);
        }
        stop_reading = true;
      }
    }
  };

  for (;;) {
    flush_ready();
    if (write_failed) break;
    const std::size_t outstanding = pending_size();
    if (stop_reading && outstanding == 0) break;
    if (!running_.load(std::memory_order_acquire)) stop_reading = true;

    if (!stop_reading && outstanding < config_.max_pipeline) {
      // Read side. With responses outstanding, poll without blocking so
      // their completion is never delayed by a quiet socket; when idle,
      // chunk the wait so stop() is honored promptly.
      int ready = 0;
      if (outstanding > 0) {
        pollfd pfd{fd, POLLIN, 0};
        ready = ::poll(&pfd, 1, 0);
      } else {
        std::uint64_t waited_ms = 0;
        while (waited_ms < config_.io_timeout_ms &&
               running_.load(std::memory_order_acquire)) {
          pollfd pfd{fd, POLLIN, 0};
          const std::uint64_t chunk_ms =
              std::min<std::uint64_t>(100, config_.io_timeout_ms - waited_ms);
          ready = ::poll(&pfd, 1, static_cast<int>(chunk_ms));
          if (ready != 0) break;
          waited_ms += chunk_ms;
        }
        if (ready == 0) break;  // idle keep-alive timeout (or shutdown)
      }
      if (ready < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (ready > 0) {
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) {
          // EOF or error: drain what's pending, then close. A client may
          // legitimately half-close after pipelining its requests.
          stop_reading = true;
        } else {
          handle_bytes(buffer, static_cast<std::size_t>(n));
        }
        continue;
      }
    }
    if (outstanding > 0) {
      // Wait for the head-of-line response; bounded so read-side progress
      // (pipelined bytes already in the socket) is re-checked regularly.
      std::unique_lock<std::mutex> lock(conn->mutex);
      const bool head_ready =
          conn->cv.wait_for(lock, std::chrono::milliseconds(50), [&] {
            return !pending.empty() && pending.front()->ready;
          });
      if (!running_.load(std::memory_order_acquire)) {
        // Shutdown drain is bounded: a dispatcher that never resolves its
        // ticket must not wedge stop(). Abandoning the connection is safe
        // — a late respond() lands in a detached slot and is dropped.
        if (head_ready)
          drain_wait_ms = 0;
        else if ((drain_wait_ms += 50) >= config_.io_timeout_ms)
          break;
      }
    }
  }
  ::close(fd);
}

}  // namespace mev::obs::http
