// Random-addition baseline: perturbs the same feature budget as JSMA but
// picks the features uniformly at random. The paper uses this control to
// show "randomly adding features does not decrease the detection rates"
// (§III-A) — i.e. JSMA's gradient guidance, not the perturbation mass,
// causes the evasion.
#pragma once

#include <cstdint>

#include "attack/attack.hpp"

namespace mev::attack {

struct RandomAdditionConfig {
  float theta = 0.1f;
  float gamma = 0.025f;
  int target_class = 0;
  std::uint64_t seed = 99;
};

class RandomAddition final : public EvasionAttack {
 public:
  explicit RandomAddition(RandomAdditionConfig config);

  AttackResult craft(const nn::Network& model,
                     const math::Matrix& x) const override;
  std::string name() const override { return "random-addition"; }

  const RandomAdditionConfig& config() const noexcept { return config_; }

 private:
  RandomAdditionConfig config_;
};

}  // namespace mev::attack
