// Umbrella header for the observability layer: tracing (trace.hpp),
// metrics (metrics.hpp), histograms (histogram.hpp), and the ambient-sink
// wiring (scope.hpp). Span/metric names follow `mev.<layer>.<op>` —
// DESIGN.md §9 lists the taxonomy.
#pragma once

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
