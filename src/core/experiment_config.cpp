#include "core/experiment_config.hpp"

#include <stdexcept>

#include "data/api_vocab.hpp"

namespace mev::core {

std::string to_string(ExperimentScale scale) {
  switch (scale) {
    case ExperimentScale::kTiny: return "tiny";
    case ExperimentScale::kFast: return "fast";
    case ExperimentScale::kFull: return "full";
  }
  return "fast";
}

ExperimentConfig ExperimentConfig::tiny(std::uint64_t seed) {
  ExperimentConfig c;
  c.scale = ExperimentScale::kTiny;
  c.seed = seed;
  return c;
}

ExperimentConfig ExperimentConfig::fast(std::uint64_t seed) {
  ExperimentConfig c;
  c.scale = ExperimentScale::kFast;
  c.seed = seed;
  return c;
}

ExperimentConfig ExperimentConfig::full(std::uint64_t seed) {
  ExperimentConfig c;
  c.scale = ExperimentScale::kFull;
  c.seed = seed;
  return c;
}

ExperimentConfig ExperimentConfig::from_name(const std::string& name,
                                             std::uint64_t seed) {
  if (name == "tiny") return tiny(seed);
  if (name == "fast") return fast(seed);
  if (name == "full") return full(seed);
  throw std::invalid_argument("ExperimentConfig::from_name: " + name +
                              " (expected tiny|fast|full)");
}

data::DatasetSpec ExperimentConfig::dataset_spec() const {
  switch (scale) {
    case ExperimentScale::kTiny: return data::DatasetSpec::scaled(0.010);
    case ExperimentScale::kFast: return data::DatasetSpec::scaled(0.035);
    case ExperimentScale::kFull: return data::DatasetSpec::paper();
  }
  return data::DatasetSpec::scaled(0.035);
}

nn::MlpConfig ExperimentConfig::target_architecture() const {
  nn::MlpConfig cfg;
  cfg.seed = seed ^ 0x7461726765740000ULL;  // "target"
  switch (scale) {
    case ExperimentScale::kTiny:
      cfg.dims = {data::kNumApiFeatures, 32, 16, 2};
      break;
    case ExperimentScale::kFast:
      cfg.dims = {data::kNumApiFeatures, 128, 64, 2};
      break;
    case ExperimentScale::kFull:
      // The paper's target is proprietary ("4-layer fully connected DNN");
      // these widths are a plausible stand-in of that depth.
      cfg.dims = {data::kNumApiFeatures, 1024, 512, 2};
      break;
  }
  return cfg;
}

nn::MlpConfig ExperimentConfig::substitute_architecture(
    std::size_t input_dim) const {
  nn::MlpConfig cfg;
  cfg.seed = seed ^ 0x7375627374000000ULL;  // "subst"
  switch (scale) {
    case ExperimentScale::kTiny:
      cfg.dims = {input_dim, 48, 64, 48, 2};
      break;
    case ExperimentScale::kFast:
      // Table IV widths divided by ~6, depth preserved.
      cfg.dims = {input_dim, 192, 240, 208, 2};
      break;
    case ExperimentScale::kFull:
      // Table IV exactly.
      cfg.dims = {input_dim, 1200, 1500, 1300, 2};
      break;
  }
  return cfg;
}

nn::TrainConfig ExperimentConfig::target_training() const {
  nn::TrainConfig cfg;
  cfg.batch_size = 256;
  cfg.learning_rate = 0.001f;
  cfg.optimizer = nn::OptimizerKind::kAdam;
  cfg.shuffle_seed = seed + 1;
  switch (scale) {
    case ExperimentScale::kTiny: cfg.epochs = 10; break;
    case ExperimentScale::kFast: cfg.epochs = 25; break;
    case ExperimentScale::kFull: cfg.epochs = 60; break;
  }
  return cfg;
}

nn::TrainConfig ExperimentConfig::substitute_training() const {
  // Paper: 1000 epochs, batch 256, lr 0.001, Adam. Epochs are scaled; the
  // optimizer, batch size and learning rate match the paper exactly.
  nn::TrainConfig cfg;
  cfg.batch_size = 256;
  cfg.learning_rate = 0.001f;
  cfg.optimizer = nn::OptimizerKind::kAdam;
  cfg.shuffle_seed = seed + 2;
  switch (scale) {
    case ExperimentScale::kTiny: cfg.epochs = 25; break;
    case ExperimentScale::kFast: cfg.epochs = 35; break;
    case ExperimentScale::kFull: cfg.epochs = 1000; break;
  }
  return cfg;
}

std::size_t ExperimentConfig::attack_sample_cap() const {
  switch (scale) {
    case ExperimentScale::kTiny: return 60;
    case ExperimentScale::kFast: return 400;
    case ExperimentScale::kFull: return 28874;  // all test malware
  }
  return 400;
}

}  // namespace mev::core
