// The provenance block every BENCH_*.json carries under the "meta" key:
// git SHA, build flags, and the box's hardware_concurrency. Without it a
// bench trajectory across commits/boxes is unattributable — a regression
// report cannot say whether the code or the machine changed.
// check_regression.py ignores the key entirely.
//
// The SHA/flags themselves live in obs/build_info.hpp (header-only
// accessors over top-level configure-time definitions), shared with the
// admin plane's /statusz so a bench JSON and a serving process report the
// same provenance.
#pragma once

#include <algorithm>
#include <ostream>
#include <string>
#include <thread>

#include "obs/build_info.hpp"

namespace mev::bench {

inline std::string meta_json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    if (static_cast<unsigned char>(*s) >= 0x20) out += *s;
  }
  return out;
}

/// Writes `"meta": {...}` (no trailing comma or newline) at `indent`.
inline void write_meta_json(std::ostream& os, const char* indent = "  ") {
  os << indent << "\"meta\": {\"git_sha\": \""
     << meta_json_escape(mev::obs::build_git_sha()) << "\", \"build_flags\": \""
     << meta_json_escape(mev::obs::build_flags())
     << "\", \"hardware_concurrency\": "
     << std::max(1u, std::thread::hardware_concurrency()) << "}";
}

}  // namespace mev::bench
