#include "eval/roc.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace mev::eval {

namespace {

void validate(const std::vector<int>& labels,
              const std::vector<double>& scores) {
  if (labels.size() != scores.size())
    throw std::invalid_argument("roc: size mismatch");
  bool has_pos = false, has_neg = false;
  for (int l : labels) {
    if (l == 1) has_pos = true;
    else if (l == 0) has_neg = true;
    else throw std::invalid_argument("roc: labels must be 0/1");
  }
  if (!has_pos || !has_neg)
    throw std::invalid_argument("roc: need both classes");
}

}  // namespace

std::vector<RocPoint> roc_curve(const std::vector<int>& labels,
                                const std::vector<double>& scores) {
  validate(labels, scores);
  std::vector<std::size_t> order(labels.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  std::size_t positives = 0, negatives = 0;
  for (int l : labels) (l == 1 ? positives : negatives) += 1;

  std::vector<RocPoint> points;
  points.push_back({scores[order.front()] + 1.0, 0.0, 0.0});
  std::size_t tp = 0, fp = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (labels[order[i]] == 1 ? tp : fp) += 1;
    // Emit a point only when the next score differs (proper step curve).
    if (i + 1 < order.size() &&
        scores[order[i + 1]] == scores[order[i]])
      continue;
    points.push_back({scores[order[i]],
                      static_cast<double>(tp) / static_cast<double>(positives),
                      static_cast<double>(fp) / static_cast<double>(negatives)});
  }
  return points;
}

double auc(const std::vector<int>& labels, const std::vector<double>& scores) {
  const auto points = roc_curve(labels, scores);
  double area = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i)
    area += (points[i].fpr - points[i - 1].fpr) *
            (points[i].tpr + points[i - 1].tpr) / 2.0;
  return area;
}

double best_youden_threshold(const std::vector<int>& labels,
                             const std::vector<double>& scores) {
  const auto points = roc_curve(labels, scores);
  double best_j = -2.0, best_threshold = 0.5;
  for (const auto& p : points) {
    const double j = p.tpr - p.fpr;
    if (j > best_j) {
      best_j = j;
      best_threshold = p.threshold;
    }
  }
  return best_threshold;
}

}  // namespace mev::eval
