// InferenceSession: a per-thread workspace/tape for evaluating one Network.
//
// The session owns every buffer a forward/backward sweep needs — layer
// activations, pre-activations, dropout masks, the backward gradient
// chain, and parameter-gradient accumulators — sized once per
// (network, max_batch) and reused across calls. After warm-up the steady
// state performs ZERO heap allocations: all buffers are resized
// capacity-preservingly per batch.
//
// Threading model: share the Network (read-only), own a session per
// thread. Concurrent inference-mode forward/predict/input_gradient calls
// through distinct sessions are safe; training-mode forward on a network
// with dropout layers is the one operation that must stay single-threaded
// (the dropout rng stream lives in the layer for determinism).
//
// Returned references/spans point into session-owned buffers and stay
// valid until the next call on the same session.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "math/matrix.hpp"
#include "nn/layer.hpp"

namespace mev::nn {

class Network;

class InferenceSession {
 public:
  /// Binds to `net` (which must outlive the session and not be
  /// structurally modified — add(), move, assignment — while bound).
  /// `max_batch` > 0 pre-allocates all buffers for that batch size so even
  /// the first call is allocation-free.
  explicit InferenceSession(const Network& net, std::size_t max_batch = 0);

  const Network& network() const noexcept { return *net_; }

  /// Forward pass over a batch; returns the logits buffer
  /// (batch x classes). Allocation-free once warm.
  const math::Matrix& forward(const math::Matrix& x, bool training = false);

  /// The logits from the most recent forward.
  const math::Matrix& logits() const;

  /// Softmax probabilities at the given temperature.
  const math::Matrix& predict_proba(const math::Matrix& x,
                                    float temperature = 1.0f);

  /// Argmax class per row; the span is valid until the next call.
  std::span<const int> predict(const math::Matrix& x);

  /// Backward pass from dLoss/dLogits; returns dLoss/dInput. Must follow
  /// a forward() on the same batch; may be called multiple times per
  /// forward. With `accumulate_param_grads` the per-parameter gradients
  /// are accumulated into the session's accumulators (bind_params); the
  /// attack paths pass false and skip all parameter work.
  const math::Matrix& backward(const math::Matrix& grad_logits,
                               bool accumulate_param_grads = true);

  /// Gradient of the softmax probability of `target_class` with respect
  /// to the input, per sample (batch x input_dim). Runs its own forward
  /// pass in inference mode; never touches parameter gradients.
  const math::Matrix& input_gradient(const math::Matrix& x, int target_class);

  /// Gradients of ALL class probabilities: result[c] is batch x
  /// input_dim. Cheaper than calling input_gradient per class (single
  /// forward pass).
  std::span<const math::Matrix> input_gradients_all(const math::Matrix& x);

  /// Pairs `net`'s parameter tensors with this session's gradient
  /// accumulators for an optimizer. `net` must be the bound network.
  std::vector<ParamRef> bind_params(Network& net);

  /// Zeroes all parameter-gradient accumulators.
  void zero_param_grads();

 private:
  /// Softmax-Jacobian row for `target_class` into grad_logits_.
  void softmax_jacobian_row(std::size_t target_class);
  const math::Matrix& run_backward(bool accumulate_param_grads);
  const math::Matrix& layer_input(std::size_t layer_index) const;

  const Network* net_;
  std::vector<LayerWorkspace> ws_;   // one per layer
  math::Matrix input_;               // copy of the forward batch
  math::Matrix probs_;               // softmax buffer
  math::Matrix grad_logits_;         // backward seed (clobbered per pass)
  std::vector<math::Matrix> class_grads_;  // input_gradients_all results
  std::vector<int> labels_;          // predict buffer
};

}  // namespace mev::nn
