#include "obs/admin_server.hpp"

#if MEV_OBS_ENABLED

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "obs/build_info.hpp"
#include "obs/scope.hpp"
#include "obs/trace_context.hpp"

namespace mev::obs {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kPromText = "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJson = "application/json";

void append_json_escaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) {
    out.append(buf, res.ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config)
    : config_(std::move(config)),
      tracer_(resolve(config_.tracer)),
      registry_(resolve(config_.metrics)),
      logger_(resolve(config_.logger)),
      clock_(config_.clock != nullptr ? config_.clock
                                      : &runtime::SystemClock::instance()) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_queued_connections == 0) config_.max_queued_connections = 1;
  requests_counter_ = registry_->counter(
      "mev.obs.admin.requests", "HTTP requests served by the admin plane");
  shed_counter_ = registry_->counter(
      "mev.obs.admin.connections_shed",
      "admin connections closed unserved because the queue was full");
  probe_ = [] { return Readiness{}; };
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::set_readiness_probe(ReadinessProbe probe) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_ = std::move(probe);
}

bool AdminServer::start() {
  if (server_ != nullptr && server_->running()) return true;

  // All socket handling lives in the shared http::SocketServer; the admin
  // plane is its connection-per-request configuration (keep_alive off,
  // default parser limits = bodies rejected) with synchronous routing.
  http::SocketServerConfig socket_cfg;
  socket_cfg.port = config_.port;
  socket_cfg.bind_address = config_.bind_address;
  socket_cfg.worker_threads = config_.worker_threads;
  socket_cfg.max_queued_connections = config_.max_queued_connections;
  socket_cfg.io_timeout_ms = config_.io_timeout_ms;
  socket_cfg.keep_alive = false;
  socket_cfg.log_component = "obs.admin";
  socket_cfg.logger = logger_;
  socket_cfg.shed_counter = shed_counter_;
  server_ = std::make_unique<http::SocketServer>(
      std::move(socket_cfg),
      [this](http::Request&& request, http::ResponseTicket ticket) {
        ticket.respond(handle(request));
      });
  if (!server_->start()) {
    server_.reset();
    return false;
  }
  return true;
}

void AdminServer::stop() {
  if (server_ != nullptr) server_->stop();
}

bool AdminServer::running() const noexcept {
  return server_ != nullptr && server_->running();
}

std::uint16_t AdminServer::port() const noexcept {
  return server_ != nullptr ? server_->port() : 0;
}

void AdminServer::add_endpoint(std::string path, std::string description,
                               EndpointHandler handler) {
  std::lock_guard<std::mutex> lock(endpoints_mutex_);
  for (auto& endpoint : extra_endpoints_) {
    if (endpoint.path == path) {
      endpoint.description = std::move(description);
      endpoint.handler = std::move(handler);
      return;
    }
  }
  extra_endpoints_.push_back(
      {std::move(path), std::move(description), std::move(handler)});
}

void AdminServer::remove_endpoint(std::string_view path) {
  std::lock_guard<std::mutex> lock(endpoints_mutex_);
  for (auto it = extra_endpoints_.begin(); it != extra_endpoints_.end(); ++it) {
    if (it->path == path) {
      extra_endpoints_.erase(it);
      return;
    }
  }
}

std::string AdminServer::metrics_body() const {
  // Derived gauges (SLO burn rates) are push-on-scrape: refresh them so
  // the exposition and /sloz agree on one evaluation time.
  if (SloTracker* slo = slo_.load(std::memory_order_acquire))
    slo->refresh_gauges(clock_->now_us());
  std::string body = registry_->prometheus();
  // The telemetry plane's own loss signals, appended so they exist even
  // when nothing else registered them: dropped spans mean a truncated
  // trace, runaway cardinality means an expensive scrape.
  body +=
      "# HELP trace_spans_dropped_total trace events dropped on ring "
      "overflow\n"
      "# TYPE trace_spans_dropped_total counter\n"
      "trace_spans_dropped_total ";
  body += std::to_string(tracer_->dropped());
  body +=
      "\n# HELP metrics_series registered series in the metrics registry\n"
      "# TYPE metrics_series gauge\n"
      "metrics_series ";
  body += std::to_string(registry_->size());
  body += '\n';
  return body;
}

std::string AdminServer::tracez_body(const http::Request& request) const {
  // Filters narrow WITHIN the retained window (the per-thread rings keep
  // the newest tracez_spans-ish events): ?name_prefix= and ?min_dur_us=
  // drop non-matching spans, ?limit= keeps the newest N survivors.
  const auto params = http::parse_query(request.target);
  std::string_view name_prefix;
  if (const std::string* v = http::query_param(params, "name_prefix"))
    name_prefix = *v;
  std::uint64_t min_dur_us = 0;
  if (const std::string* v = http::query_param(params, "min_dur_us"))
    min_dur_us = std::strtoull(v->c_str(), nullptr, 10);
  std::size_t limit = config_.tracez_spans;
  if (const std::string* v = http::query_param(params, "limit")) {
    limit = std::strtoull(v->c_str(), nullptr, 10);
    if (limit == 0 || limit > config_.tracez_spans)
      limit = config_.tracez_spans;
  }

  std::vector<TraceEvent> events = tracer_->recent(config_.tracez_spans);
  std::erase_if(events, [&](const TraceEvent& e) {
    if (e.dur_us < min_dur_us) return true;
    return !name_prefix.empty() &&
           std::string_view(e.name).substr(0, name_prefix.size()) !=
               name_prefix;
  });
  if (events.size() > limit)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(limit));

  std::string body = "{\"spans\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":\"";
    append_json_escaped(body, e.name);
    body += "\",\"ph\":\"";
    body += e.phase;
    body += "\",\"tid\":";
    body += std::to_string(e.tid);
    body += ",\"ts_us\":";
    body += std::to_string(e.ts_us);
    body += ",\"dur_us\":";
    body += std::to_string(e.dur_us);
    if (e.trace_id != 0) {
      body += ",\"trace_id\":\"";
      body += format_hex64(e.trace_id);
      body += "\",\"span_id\":\"";
      body += format_hex64(e.span_id);
      body += '"';
      if (e.parent_span_id != 0) {
        body += ",\"parent_span_id\":\"";
        body += format_hex64(e.parent_span_id);
        body += '"';
      }
    }
    if (e.num_args > 0) {
      body += ",\"args\":{";
      for (std::uint8_t a = 0; a < e.num_args; ++a) {
        if (a > 0) body += ',';
        body += '"';
        append_json_escaped(body, e.args[a].key);
        body += "\":";
        append_double(body, e.args[a].value);
      }
      body += '}';
    }
    body += '}';
  }
  body += "],\"dropped\":";
  body += std::to_string(tracer_->dropped());
  body += ",\"buffered\":";
  body += std::to_string(tracer_->event_count());
  body += "}\n";
  return body;
}

namespace {

void append_flight_spans(std::string& body, const FlightRecord& r) {
  body += "\"spans\":[";
  for (std::uint8_t s = 0; s < r.num_spans; ++s) {
    const FlightSpan& span = r.spans[s];
    if (s > 0) body += ',';
    body += "{\"name\":\"";
    append_json_escaped(body, span.name);
    body += "\",\"span_id\":\"";
    body += format_hex64(span.span_id);
    body += '"';
    if (span.parent_span_id != 0) {
      body += ",\"parent_span_id\":\"";
      body += format_hex64(span.parent_span_id);
      body += '"';
    }
    body += ",\"start_us\":";
    body += std::to_string(span.start_us);
    body += ",\"dur_us\":";
    body += std::to_string(span.dur_us);
    body += '}';
  }
  body += ']';
}

std::string flight_record_json(const FlightRecord& r) {
  std::string body = "{\"trace_id\":\"";
  TraceContext ctx;
  ctx.trace_id = r.trace_id;
  ctx.trace_hi = r.trace_hi;
  body += format_trace_id(ctx);
  body += "\",\"root_span_id\":\"";
  body += format_hex64(r.root_span_id);
  body += "\",\"status\":";
  body += std::to_string(r.http_status);
  body += ",\"error\":";
  body += r.error ? "true" : "false";
  body += ",\"reject_reason\":";
  body += std::to_string(r.reject_reason);
  body += ",\"rows\":";
  body += std::to_string(r.rows);
  body += ",\"start_us\":";
  body += std::to_string(r.start_us);
  body += ",\"duration_us\":";
  body += std::to_string(r.duration_us);
  body += ",\"stages\":{";
  for (std::size_t i = 0; i < kFlightStages; ++i) {
    if (i > 0) body += ',';
    body += '"';
    body += kFlightStageNames[i];
    body += "\":";
    body += std::to_string(r.stage_us[i]);
  }
  body += "},";
  append_flight_spans(body, r);
  body += '}';
  return body;
}

/// One request as a self-contained Chrome trace (chrome://tracing,
/// ui.perfetto.dev): each retained span becomes a complete 'X' event.
std::string flight_record_chrome(const FlightRecord& r) {
  std::string body = "{\"traceEvents\":[";
  for (std::uint8_t s = 0; s < r.num_spans; ++s) {
    const FlightSpan& span = r.spans[s];
    if (s > 0) body += ',';
    body += "{\"name\":\"";
    append_json_escaped(body, span.name);
    body += "\",\"cat\":\"mev\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":";
    body += std::to_string(span.start_us);
    body += ",\"dur\":";
    body += std::to_string(span.dur_us);
    body += ",\"trace_id\":\"";
    body += format_hex64(r.trace_id);
    body += "\",\"span_id\":\"";
    body += format_hex64(span.span_id);
    body += '"';
    if (span.parent_span_id != 0) {
      body += ",\"parent_span_id\":\"";
      body += format_hex64(span.parent_span_id);
      body += '"';
    }
    body += '}';
  }
  body += "],\"displayTimeUnit\":\"ms\"}\n";
  return body;
}

}  // namespace

std::string AdminServer::requestz_body(const http::Request& request) const {
  const FlightRecorder* recorder = flight_.load(std::memory_order_acquire);
  if (recorder == nullptr)
    return "{\"records\":[],\"recorded\":0,\"dropped\":0,"
           "\"detail\":\"no flight recorder attached\"}\n";

  std::vector<FlightRecord> records = recorder->snapshot();
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.duration_us > b.duration_us;
            });

  const auto params = http::parse_query(request.target);
  if (const std::string* wanted = http::query_param(params, "trace_id")) {
    // Single-record lookup, optionally as a Chrome trace. Accepts the
    // 16-hex internal id or the full 32-hex W3C form (low half counts).
    std::uint64_t id = 0;
    std::string_view hex = *wanted;
    if (hex.size() == 32) hex = hex.substr(16);
    if (!parse_hex64(hex, &id))
      return "{\"error\":\"trace_id must be 16 or 32 hex chars\"}\n";
    for (const FlightRecord& r : records) {
      if (r.trace_id != id) continue;
      const std::string* format = http::query_param(params, "format");
      if (format != nullptr && *format == "chrome")
        return flight_record_chrome(r);
      std::string body = flight_record_json(r);
      body += '\n';
      return body;
    }
    return "{\"error\":\"trace_id not retained\"}\n";
  }

  std::string body = "{\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i > 0) body += ',';
    body += flight_record_json(records[i]);
  }
  body += "],\"recorded\":";
  body += std::to_string(recorder->recorded());
  body += ",\"dropped\":";
  body += std::to_string(recorder->dropped());
  body += "}\n";
  return body;
}

std::string AdminServer::varz_body() const {
  // The registry snapshot, made self-describing: a "process" block (pid,
  // uptime, start time) is spliced in front of the registry's sections so
  // a scrape identifies its source process without a second request.
  std::string registry_json = registry_->json();
  std::string body = "{\"process\":{\"pid\":";
  body += std::to_string(process_pid());
  body += ",\"uptime_seconds\":";
  body += std::to_string(process_uptime_s());
  body += ",\"start_time_unix\":";
  body += std::to_string(process_start_unix_s());
  body += "},";
  // registry_json is always "{...}\n"; keep everything after its '{'.
  body.append(registry_json, 1, std::string::npos);
  return body;
}

std::string AdminServer::sloz_body() const {
  SloTracker* slo = slo_.load(std::memory_order_acquire);
  if (slo == nullptr)
    return "{\"detail\":\"no slo tracker attached\"}\n";
  const std::uint64_t now_us = clock_->now_us();
  slo->refresh_gauges(now_us);
  return slo->to_json(now_us);
}

namespace {

constexpr struct {
  const char* path;
  const char* description;
} kBuiltinEndpoints[] = {
    {"/healthz", "liveness: 200 while the process serves"},
    {"/readyz", "readiness verdict from the installed probe, 200/503"},
    {"/metrics", "Prometheus text exposition of the wired registry"},
    {"/varz", "JSON snapshot of the registry + process identity"},
    {"/sloz", "SLO burn rates and error budget, JSON"},
    {"/statusz", "build + process provenance (git SHA, flags, uptime)"},
    {"/tracez", "recent completed spans, JSON"},
    {"/requestz", "flight-recorder dump of slowest + error requests"},
};

}  // namespace

std::string AdminServer::index_body() const {
  std::string body = "mev admin endpoints\n\n";
  for (const auto& endpoint : kBuiltinEndpoints) {
    body += endpoint.path;
    body += "\t";
    body += endpoint.description;
    body += '\n';
  }
  std::lock_guard<std::mutex> lock(endpoints_mutex_);
  for (const auto& endpoint : extra_endpoints_) {
    body += endpoint.path;
    body += "\t";
    body += endpoint.description;
    body += '\n';
  }
  return body;
}

std::string AdminServer::handle(const http::Request& request) {
  requests_counter_.inc();
  if (request.method != "GET")
    return http::format_response(405, kTextPlain, "method not allowed\n");

  const std::string_view path = request.path();
  if (path == "/" || path == "/index")
    return http::format_response(200, kTextPlain, index_body());
  if (path == "/healthz")
    return http::format_response(200, kTextPlain, "ok\n");
  if (path == "/readyz") {
    ReadinessProbe probe;
    {
      std::lock_guard<std::mutex> lock(probe_mutex_);
      probe = probe_;
    }
    const Readiness readiness = probe ? probe() : Readiness{};
    return http::format_response(readiness.ready ? 200 : 503, kTextPlain,
                                 readiness.reason + "\n");
  }
  if (path == "/metrics")
    return http::format_response(200, kPromText, metrics_body());
  if (path == "/varz")
    return http::format_response(200, kJson, varz_body());
  if (path == "/sloz")
    return http::format_response(200, kJson, sloz_body());
  if (path == "/statusz")
    return http::format_response(200, kJson, build_info_json());
  if (path == "/tracez")
    return http::format_response(200, kJson, tracez_body(request));
  if (path == "/requestz")
    return http::format_response(200, kJson, requestz_body(request));
  {
    EndpointHandler handler;
    {
      std::lock_guard<std::mutex> lock(endpoints_mutex_);
      for (const auto& endpoint : extra_endpoints_)
        if (endpoint.path == path) {
          handler = endpoint.handler;
          break;
        }
    }
    if (handler) return handler(request);
  }
  return http::format_response(404, kTextPlain, "not found\n");
}

}  // namespace mev::obs

#endif  // MEV_OBS_ENABLED
