#include "runtime/fault_injection.hpp"

#include <string>

namespace mev::runtime {

FaultProfile FaultProfile::none() { return FaultProfile{}; }

FaultProfile FaultProfile::flaky() {
  FaultProfile p;
  p.name = "flaky";
  p.transient_rate = 0.3;
  return p;
}

FaultProfile FaultProfile::slow() {
  FaultProfile p;
  p.name = "slow";
  p.timeout_rate = 0.25;
  return p;
}

FaultProfile FaultProfile::garbled() {
  FaultProfile p;
  p.name = "garbled";
  p.garble_rate = 0.25;
  return p;
}

FaultProfile FaultProfile::outage() {
  FaultProfile p;
  p.name = "outage";
  p.fail_first_calls = 4;
  p.transient_rate = 0.1;
  return p;
}

FaultProfile FaultProfile::tiny_batches() {
  FaultProfile p;
  p.name = "tiny_batches";
  p.max_batch_rows = 3;
  return p;
}

FaultProfile FaultProfile::chaos() {
  FaultProfile p;
  p.name = "chaos";
  p.transient_rate = 0.15;
  p.timeout_rate = 0.1;
  p.garble_rate = 0.1;
  p.max_batch_rows = 64;
  return p;
}

std::vector<FaultProfile> FaultProfile::builtin_profiles() {
  return {flaky(), slow(), garbled(), outage(), tiny_batches(), chaos()};
}

FaultInjectingOracle::FaultInjectingOracle(CountOracle& inner,
                                           FaultProfile profile, Clock* clock)
    : inner_(&inner),
      profile_(std::move(profile)),
      clock_(clock != nullptr ? clock : &SystemClock::instance()),
      rng_(profile_.seed) {}

std::vector<int> FaultInjectingOracle::label_counts(
    const math::Matrix& counts) {
  const std::size_t call = ++injected_.calls;
  // A fixed number of draws per call keeps the fault sequence aligned with
  // the call sequence regardless of which branch fires.
  const double u_timeout = rng_.uniform();
  const double u_transient = rng_.uniform();
  const double u_garble = rng_.uniform();

  if (call <= profile_.fail_first_calls) {
    ++injected_.outage;
    throw TransientOracleError("fault injection [" + profile_.name +
                               "]: outage (call " + std::to_string(call) +
                               " of first " +
                               std::to_string(profile_.fail_first_calls) +
                               ")");
  }
  if (profile_.max_batch_rows > 0 && counts.rows() > profile_.max_batch_rows) {
    ++injected_.oversized;
    throw TransientOracleError(
        "fault injection [" + profile_.name + "]: batch of " +
        std::to_string(counts.rows()) + " rows exceeds oracle cap of " +
        std::to_string(profile_.max_batch_rows));
  }
  if (u_timeout < profile_.timeout_rate) {
    ++injected_.timeouts;
    clock_->sleep_ms(profile_.timeout_cost_ms);
    throw OracleTimeoutError("fault injection [" + profile_.name +
                             "]: timeout after " +
                             std::to_string(profile_.timeout_cost_ms) + " ms");
  }
  if (u_transient < profile_.transient_rate) {
    ++injected_.transient;
    throw TransientOracleError("fault injection [" + profile_.name +
                               "]: transient failure");
  }

  std::vector<int> labels = inner_->label_counts(counts);
  record_queries(counts.rows());
  if (u_garble < profile_.garble_rate && !labels.empty()) {
    ++injected_.garbled;
    labels.pop_back();  // truncated response: length no longer matches
  }
  return labels;
}

}  // namespace mev::runtime
