#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linalg.hpp"

namespace mev::nn {

namespace {
constexpr double kLogFloor = 1e-12;
}

math::Matrix softmax_rows(const math::Matrix& logits, float temperature) {
  math::Matrix probs = logits;
  for (std::size_t r = 0; r < probs.rows(); ++r)
    math::softmax_inplace(probs.row(r), temperature);
  return probs;
}

LossResult softmax_cross_entropy(const math::Matrix& logits,
                                 const std::vector<int>& labels,
                                 float temperature) {
  if (labels.size() != logits.rows())
    throw std::invalid_argument("softmax_cross_entropy: label count mismatch");
  const std::size_t n = logits.rows(), classes = logits.cols();
  math::Matrix probs = softmax_rows(logits, temperature);

  LossResult result;
  result.grad_logits = probs;
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float inv_t = 1.0f / temperature;
  for (std::size_t i = 0; i < n; ++i) {
    const int y = labels[i];
    if (y < 0 || static_cast<std::size_t>(y) >= classes)
      throw std::invalid_argument("softmax_cross_entropy: label out of range");
    total -= std::log(std::max<double>(probs(i, y), kLogFloor));
    result.grad_logits(i, y) -= 1.0f;
    // d/dlogits of CE(softmax(logits/T)) carries a 1/T factor.
    for (std::size_t c = 0; c < classes; ++c)
      result.grad_logits(i, c) *= inv_n * inv_t;
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

LossResult soft_label_cross_entropy(const math::Matrix& logits,
                                    const math::Matrix& targets,
                                    float temperature) {
  if (!targets.same_shape(logits))
    throw std::invalid_argument("soft_label_cross_entropy: shape mismatch");
  const std::size_t n = logits.rows(), classes = logits.cols();
  math::Matrix probs = softmax_rows(logits, temperature);

  LossResult result;
  result.grad_logits = math::Matrix(n, classes);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  const float inv_t = 1.0f / temperature;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < classes; ++c) {
      const double t = targets(i, c);
      if (t > 0.0)
        total -= t * std::log(std::max<double>(probs(i, c), kLogFloor));
      result.grad_logits(i, c) =
          (probs(i, c) - static_cast<float>(t)) * inv_n * inv_t;
    }
  }
  result.loss = total / static_cast<double>(n);
  return result;
}

LossResult mean_squared_error(const math::Matrix& predictions,
                              const math::Matrix& targets) {
  if (!targets.same_shape(predictions))
    throw std::invalid_argument("mean_squared_error: shape mismatch");
  const std::size_t n = predictions.size();
  if (n == 0) throw std::invalid_argument("mean_squared_error: empty input");
  LossResult result;
  result.grad_logits = predictions;
  result.grad_logits -= targets;
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = result.grad_logits.data()[i];
    total += d * d;
  }
  result.loss = total / static_cast<double>(n);
  result.grad_logits *= 2.0f / static_cast<float>(n);
  return result;
}

}  // namespace mev::nn
