
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_greybox.cpp" "bench/CMakeFiles/bench_fig4_greybox.dir/bench_fig4_greybox.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_greybox.dir/bench_fig4_greybox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mev_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mev_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mev_features.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/mev_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mev_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mev_data.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mev_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
