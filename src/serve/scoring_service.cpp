#include "serve/scoring_service.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/scope.hpp"

namespace mev::serve {

ScoringService::ScoringService(features::FeaturePipeline pipeline,
                               std::shared_ptr<nn::Network> network,
                               ServiceConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &runtime::SystemClock::instance()),
      tracer_(obs::resolve(config.tracer)),
      logger_(obs::resolve(config.logger)),
      batcher_(BatcherConfig{config.max_batch_rows,
                             config.max_queue_delay_ms}) {
  obs::MetricsRegistry* registry = obs::resolve(config.metrics);
  obs_.accepted_requests = registry->counter(
      "mev.serve.accepted_requests", "submissions admitted to the queue");
  obs_.accepted_rows =
      registry->counter("mev.serve.accepted_rows", "rows admitted");
  obs_.rejected_queue_full = registry->counter(
      "mev.serve.rejected_queue_full", "submissions rejected: queue full");
  obs_.rejected_shutting_down =
      registry->counter("mev.serve.rejected_shutting_down",
                        "submissions rejected: shutting down");
  obs_.rejected_deadline = registry->counter(
      "mev.serve.rejected_deadline", "requests expired before scoring");
  obs_.completed_requests = registry->counter(
      "mev.serve.completed_requests", "requests scored to completion");
  obs_.completed_rows =
      registry->counter("mev.serve.completed_rows", "rows scored");
  obs_.batches =
      registry->counter("mev.serve.batches", "micro-batches scored");
  obs_.model_swaps =
      registry->counter("mev.serve.model_swaps", "hot model swaps published");
  obs_.batch_rows =
      registry->histogram("mev.serve.batch_rows", "rows per scored batch");
  obs_.queue_delay_us = registry->histogram(
      "mev.serve.queue_delay_us", "submit-to-batch-formation delay (us)");
  obs_.e2e_latency_us = registry->histogram(
      "mev.serve.e2e_latency_us", "submit-to-verdict latency (us)");

  auto snapshot = std::make_shared<ModelSnapshot>(std::move(pipeline),
                                                  std::move(network),
                                                  next_version_++);
  snapshot_ = std::move(snapshot);

  worker_states_.resize(std::max<std::size_t>(config_.workers, 1));
  if (config_.workers > 0) {
    threads_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
      threads_.emplace_back(
          [this, i] { worker_loop(worker_states_[i]); });
  }

  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service", "service started",
          {obs::LogField::u64_value("workers", config_.workers),
           obs::LogField::u64_value("max_queue_rows", config_.max_queue_rows),
           obs::LogField::u64_value("max_batch_rows",
                                    config_.max_batch_rows)});

  if (config_.admin.enabled) {
    obs::AdminServerConfig admin = config_.admin;
    // The admin plane serves this service's sinks unless the caller wired
    // its own.
    if (admin.tracer == nullptr) admin.tracer = tracer_;
    if (admin.metrics == nullptr) admin.metrics = registry;
    if (admin.logger == nullptr) admin.logger = logger_;
    admin_ = std::make_unique<obs::AdminServer>(std::move(admin));
    admin_->set_readiness_probe([this] { return readiness(); });
    if (!admin_->start()) admin_.reset();
  }
}

ScoringService::~ScoringService() { shutdown(/*drain=*/true); }

std::shared_ptr<const ScoringService::ModelSnapshot>
ScoringService::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::future<ScoreResult> ScoringService::submit(math::Matrix counts,
                                                SubmitOptions options) {
  std::promise<ScoreResult> promise;
  std::future<ScoreResult> future = promise.get_future();
  const std::size_t rows = counts.rows();
  const auto snapshot = current_snapshot();
  if (rows > 0 && counts.cols() != snapshot->count_cols)
    throw std::invalid_argument(
        "ScoringService::submit: count rows have " +
        std::to_string(counts.cols()) + " columns, expected " +
        std::to_string(snapshot->count_cols));

  if (rows == 0) {
    ScoreResult result;
    result.model_version = snapshot->version;
    promise.set_value(std::move(result));
    obs_.accepted_requests.inc();
    obs_.completed_requests.inc();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted_requests;
    ++stats_.completed_requests;
    return future;
  }

  Request request;
  request.counts = std::move(counts);
  request.enqueue_us = clock_->now_us();
  request.enqueue_ms = clock_->now_ms();
  if (options.deadline_ms != 0)
    request.deadline_ms = request.enqueue_ms + options.deadline_ms;
  request.promise = std::move(promise);

  RejectReason reject = RejectReason::kNone;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != State::kRunning)
      reject = RejectReason::kShuttingDown;
    else if (batcher_.pending_rows() + rows > config_.max_queue_rows)
      reject = RejectReason::kQueueFull;
    else
      batcher_.add(std::move(request));
  }

  if (reject != RejectReason::kNone) {
    ScoreResult result;
    result.rejected = reject;
    request.promise.set_value(std::move(result));
    if (reject == RejectReason::kQueueFull)
      obs_.rejected_queue_full.inc();
    else
      obs_.rejected_shutting_down.inc();
    // Per-request path: rate-limited so overload cannot flood the sink.
    MEV_LOG_EVERY(*logger_, obs::LogLevel::kWarn, /*rate_per_s=*/1.0,
                  /*burst=*/5.0, "serve.service", "submission rejected",
                  {obs::LogField::string(
                       "reason", reject == RejectReason::kQueueFull
                                     ? "queue_full"
                                     : "shutting_down"),
                   obs::LogField::u64_value("rows", rows)});
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (reject == RejectReason::kQueueFull) ++stats_.rejected_queue_full;
    else ++stats_.rejected_shutting_down;
    return future;
  }

  cv_.notify_one();
  obs_.accepted_requests.inc();
  obs_.accepted_rows.inc(rows);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted_requests;
    stats_.accepted_rows += rows;
  }
  return future;
}

ScoreResult ScoringService::score(math::Matrix counts,
                                  SubmitOptions options) {
  std::future<ScoreResult> future = submit(std::move(counts), options);
  if (config_.workers == 0) {
    // Manual-pump mode: drive the batch through ourselves.
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready)
      pump(/*force=*/true);
  }
  return future.get();
}

std::uint64_t ScoringService::swap_model(features::FeaturePipeline pipeline,
                                         std::shared_ptr<nn::Network> network) {
  // Validation (dimension checks) happens in the detector's constructor,
  // outside any lock — a bad swap never disturbs the running snapshot.
  const std::size_t expected = current_snapshot()->count_cols;
  std::uint64_t version = 0;
  std::shared_ptr<ModelSnapshot> fresh;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    fresh = std::make_shared<ModelSnapshot>(std::move(pipeline),
                                            std::move(network),
                                            next_version_++);
    if (fresh->count_cols != expected)
      throw std::invalid_argument(
          "ScoringService::swap_model: new pipeline expects " +
          std::to_string(fresh->count_cols) + " count columns, service was " +
          "built for " + std::to_string(expected));
    version = fresh->version;
    snapshot_ = std::move(fresh);
  }
  obs_.model_swaps.inc();
  obs::instant(tracer_, "mev.serve.model_swap");
  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service",
          "model swapped", {obs::LogField::u64_value("version", version)});
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.model_swaps;
  }
  return version;
}

std::uint64_t ScoringService::model_version() const {
  return current_snapshot()->version;
}

void ScoringService::shutdown(bool drain) {
  std::vector<Request> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (state_ == State::kStopped && threads_.empty()) return;
    MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service",
            "shutdown requested",
            {obs::LogField::string("mode", drain ? "drain" : "immediate"),
             obs::LogField::u64_value("pending_rows",
                                      batcher_.pending_rows())});
    if (drain && !batcher_.empty()) {
      state_ = State::kDraining;
    } else {
      state_ = State::kStopped;
      // Without drain, pending requests are resolved (rejected) here —
      // exactly-once still holds, nothing is silently dropped.
      while (auto batch = batcher_.poll(clock_->now_ms(), /*force=*/true))
        for (auto& request : batch->requests)
          orphans.push_back(std::move(request));
    }
  }
  cv_.notify_all();
  reject_all(std::move(orphans), RejectReason::kShuttingDown);

  if (config_.workers == 0) {
    // Manual mode: drain synchronously on the caller's thread.
    while (pump(/*force=*/true) > 0) {
    }
  }
  join_workers();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_ = State::kStopped;
  }
  // The admin server stays up (serving 503 on /readyz) until destruction:
  // an operator can still scrape /metrics from a stopped service.
  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service", "service stopped");
}

obs::Readiness ScoringService::readiness() const {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kDraining:
      return {false, "draining"};
    case State::kStopped:
      return {false, "stopped"};
    case State::kRunning:
      break;
  }
  // Saturation gate: flag before admission control starts rejecting, so
  // load balancers steer away while the service still answers.
  const std::size_t high_water =
      config_.max_queue_rows - config_.max_queue_rows / 10;
  if (batcher_.pending_rows() >= high_water)
    return {false, "queue high-water"};
  return {true, "ok"};
}

void ScoringService::join_workers() {
  for (auto& thread : threads_)
    if (thread.joinable()) thread.join();
  threads_.clear();
}

std::size_t ScoringService::pump(bool force) {
  if (config_.workers != 0)
    throw std::logic_error(
        "ScoringService::pump: only valid in manual mode (workers == 0)");
  std::vector<Request> expired;
  std::optional<Batch> batch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t now = clock_->now_ms();
    batcher_.take_expired(now, expired);
    batch = batcher_.poll(now, force || state_ != State::kRunning);
  }
  reject_all(std::move(expired), RejectReason::kDeadline);
  if (!batch.has_value()) return 0;
  const std::size_t rows = batch->rows;
  score_batch(worker_states_.front(), std::move(*batch));
  return rows;
}

void ScoringService::worker_loop(WorkerState& worker) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const std::uint64_t now = clock_->now_ms();
    std::vector<Request> expired;
    batcher_.take_expired(now, expired);
    std::optional<Batch> batch =
        batcher_.poll(now, /*force=*/state_ == State::kDraining);
    if (!expired.empty() || batch.has_value()) {
      lock.unlock();
      reject_all(std::move(expired), RejectReason::kDeadline);
      if (batch.has_value()) score_batch(worker, std::move(*batch));
      lock.lock();
      continue;
    }
    if (state_ != State::kRunning) return;  // drained (or emptied by stop)
    const auto wait_ms = batcher_.ms_until_flush(now);
    if (wait_ms.has_value())
      cv_.wait_for(lock, std::chrono::milliseconds(
                             std::max<std::uint64_t>(*wait_ms, 1)));
    else
      cv_.wait(lock);
  }
}

void ScoringService::score_batch(WorkerState& worker, Batch batch) {
  obs::Span batch_span = obs::span(tracer_, "mev.serve.batch");
  const std::uint64_t formed_us = clock_->now_us();
  const auto snapshot = current_snapshot();
  if (worker.pinned.get() != snapshot.get()) {
    // Model changed under us (hot swap) or first batch: bind a fresh
    // pre-warmed session. This is the only allocating path; between swaps
    // the steady state reuses every buffer.
    const std::size_t warm = config_.session_max_batch != 0
                                 ? config_.session_max_batch
                                 : config_.max_batch_rows;
    worker.session = std::make_unique<nn::InferenceSession>(
        snapshot->detector.make_session(warm));
    worker.pinned = snapshot;
  }

  worker.batch_counts.resize(batch.rows, snapshot->count_cols);
  std::size_t row = 0;
  for (const auto& request : batch.requests)
    for (std::size_t i = 0; i < request.counts.rows(); ++i)
      worker.batch_counts.set_row(row++, request.counts.row(i));

  std::vector<core::Verdict> verdicts;
  try {
    verdicts =
        snapshot->detector.scan_counts(*worker.session, worker.batch_counts);
  } catch (...) {
    for (auto& request : batch.requests)
      request.promise.set_exception(std::current_exception());
    return;
  }
  const std::uint64_t done_us = clock_->now_us();
  batch_span.arg("rows", static_cast<double>(batch.rows));
  batch_span.arg("requests", static_cast<double>(batch.requests.size()));
  batch_span.arg("model_version", static_cast<double>(snapshot->version));

  std::size_t offset = 0;
  for (auto& request : batch.requests) {
    ScoreResult result;
    result.model_version = snapshot->version;
    const std::size_t n = request.counts.rows();
    result.verdicts.assign(verdicts.begin() + offset,
                           verdicts.begin() + offset + n);
    offset += n;
    request.promise.set_value(std::move(result));
  }

  obs_.batches.inc();
  obs_.batch_rows.record(batch.rows);
  obs_.completed_requests.inc(batch.requests.size());
  obs_.completed_rows.inc(batch.rows);
  for (const auto& request : batch.requests) {
    obs_.queue_delay_us.record(formed_us - request.enqueue_us);
    obs_.e2e_latency_us.record(done_us - request.enqueue_us);
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.batches;
  stats_.batch_rows.record(batch.rows);
  stats_.completed_requests += batch.requests.size();
  stats_.completed_rows += batch.rows;
  for (const auto& request : batch.requests) {
    stats_.queue_delay_us.record(formed_us - request.enqueue_us);
    stats_.e2e_latency_us.record(done_us - request.enqueue_us);
  }
}

void ScoringService::reject_all(std::vector<Request> requests,
                                RejectReason reason) {
  if (requests.empty()) return;
  for (auto& request : requests) {
    ScoreResult result;
    result.rejected = reason;
    request.promise.set_value(std::move(result));
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  switch (reason) {
    case RejectReason::kQueueFull:
      stats_.rejected_queue_full += requests.size();
      obs_.rejected_queue_full.inc(requests.size());
      break;
    case RejectReason::kShuttingDown:
      stats_.rejected_shutting_down += requests.size();
      obs_.rejected_shutting_down.inc(requests.size());
      break;
    case RejectReason::kDeadline:
      stats_.rejected_deadline += requests.size();
      obs_.rejected_deadline.inc(requests.size());
      break;
    case RejectReason::kNone:
      break;
  }
}

ServiceStats ScoringService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

}  // namespace mev::serve
