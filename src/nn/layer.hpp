// Layer abstraction: dense (affine + activation) and dropout layers.
//
// Layers are READ-ONLY during forward/backward: every cache the backward
// pass needs (pre-activations, outputs, dropout masks) and every gradient
// accumulator lives in a LayerWorkspace owned by an InferenceSession, not
// in the layer. One Network can therefore be shared across threads, each
// thread owning its own session (see nn/session.hpp). The single
// exception is DropoutLayer's training-mode rng draw, documented below.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "nn/activation.hpp"

namespace mev::nn {

/// A mutable view of one parameter tensor and its gradient accumulator,
/// handed to optimizers. The value points into a Network's layer, the
/// gradient into a session workspace (see InferenceSession::bind_params).
struct ParamRef {
  math::Matrix* value = nullptr;
  math::Matrix* grad = nullptr;
};

/// Per-layer scratch buffers, owned by an InferenceSession (one per layer
/// per session). All matrices are resized capacity-preservingly per batch,
/// so the steady state allocates nothing.
struct LayerWorkspace {
  math::Matrix pre_activation;  // dense: z = x*W + b (batch x out)
  math::Matrix output;          // layer output (batch x out)
  math::Matrix mask;            // dropout keep mask (training only)
  math::Matrix grad_input;      // backward result dLoss/dInput (batch x in)
  /// Parameter-gradient accumulators, one per parameter tensor in the
  /// order of Layer::param_values(). Sized by Layer::init_workspace.
  std::vector<math::Matrix> param_grads;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch (rows are samples) into ws.output. Reads
  /// layer parameters only; mutable state lives in `ws`. `training`
  /// enables stochastic behaviour (dropout).
  virtual void forward(const math::Matrix& x, LayerWorkspace& ws,
                       bool training) const = 0;

  /// Backward pass: receives dLoss/dOutput (clobbered as scratch space),
  /// writes dLoss/dInput into ws.grad_input. Must follow a forward call
  /// with the matching batch in the same workspace; may be called many
  /// times per forward (e.g. one per output class). When
  /// `accumulate_param_grads` is set, parameter gradients are accumulated
  /// into ws.param_grads and `input` must be the matrix handed to the
  /// matching forward call; otherwise all parameter work is skipped
  /// (the attack-gradient fast path).
  virtual void backward(math::Matrix& grad_output, const math::Matrix& input,
                        LayerWorkspace& ws,
                        bool accumulate_param_grads) const = 0;

  /// Sizes (and zeroes) ws.param_grads to match this layer's parameters.
  virtual void init_workspace(LayerWorkspace& ws) const {
    ws.param_grads.clear();
  }

  /// Parameter tensors in the order matching LayerWorkspace::param_grads
  /// (empty for parameterless layers).
  virtual std::vector<math::Matrix*> param_values() { return {}; }
  virtual std::vector<const math::Matrix*> param_values() const { return {}; }

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t output_dim() const = 0;

  virtual std::unique_ptr<Layer> clone() const = 0;
  virtual std::string name() const = 0;
};

/// Fully connected layer: y = act(x * W + b), W is in x out, b is 1 x out.
class DenseLayer final : public Layer {
 public:
  /// Initializes weights with He (relu-family) or Glorot (otherwise)
  /// scaling from `rng`; biases start at zero.
  DenseLayer(std::size_t in, std::size_t out, Activation act, math::Rng& rng);

  /// Constructs with explicit parameters (for deserialization/tests).
  /// `bias` must be 1 x weights.cols().
  DenseLayer(math::Matrix weights, math::Matrix bias, Activation act);

  void forward(const math::Matrix& x, LayerWorkspace& ws,
               bool training) const override;
  void backward(math::Matrix& grad_output, const math::Matrix& input,
                LayerWorkspace& ws,
                bool accumulate_param_grads) const override;
  void init_workspace(LayerWorkspace& ws) const override;
  std::vector<math::Matrix*> param_values() override;
  std::vector<const math::Matrix*> param_values() const override;

  std::size_t input_dim() const override { return weights_.rows(); }
  std::size_t output_dim() const override { return weights_.cols(); }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "dense"; }

  Activation activation() const noexcept { return activation_; }
  const math::Matrix& weights() const noexcept { return weights_; }
  math::Matrix& mutable_weights() noexcept { return weights_; }
  const math::Matrix& bias() const noexcept { return bias_; }
  math::Matrix& mutable_bias() noexcept { return bias_; }

 private:
  math::Matrix weights_;  // in x out
  math::Matrix bias_;     // 1 x out
  Activation activation_;
};

/// Inverted dropout: active only in training mode; scales kept units by
/// 1/(1-rate) so inference needs no rescaling.
///
/// Thread-safety: inference-mode forward touches no mutable state. The
/// TRAINING-mode forward draws from the layer-owned rng (kept in the layer
/// so the dropout stream is deterministic per network, matching the
/// pre-session behaviour) and is therefore the one operation that must not
/// run concurrently on a shared network.
class DropoutLayer final : public Layer {
 public:
  /// `dim` is the (equal) input/output width; rate in [0, 1).
  DropoutLayer(std::size_t dim, float rate, std::uint64_t seed);

  void forward(const math::Matrix& x, LayerWorkspace& ws,
               bool training) const override;
  void backward(math::Matrix& grad_output, const math::Matrix& input,
                LayerWorkspace& ws,
                bool accumulate_param_grads) const override;

  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "dropout"; }

  float rate() const noexcept { return rate_; }

 private:
  std::size_t dim_;
  float rate_;
  std::uint64_t seed_;
  mutable math::Rng rng_;  // training-mode draws only; see class comment
};

}  // namespace mev::nn
