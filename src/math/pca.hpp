// Principal component analysis — the substrate for the dimensionality-
// reduction defense (Bhagoji et al. 2017, as used in §II-C.4 of the paper).
//
// Two eigensolvers are provided:
//  * jacobi_eigen_symmetric: full spectrum via cyclic Jacobi rotations;
//    exact, O(n^3) per sweep — used for small matrices and in tests.
//  * top_k_eigen: leading k eigenpairs via subspace (orthogonal) iteration;
//    the practical path for the 491x491 API-feature covariance.
#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"

namespace mev::math {

struct EigenResult {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix by cyclic Jacobi.
/// Throws std::invalid_argument for non-square input.
EigenResult jacobi_eigen_symmetric(const Matrix& a, int max_sweeps = 64,
                                   double tol = 1e-10);

/// Leading k eigenpairs of a symmetric PSD matrix by subspace iteration.
/// Requires 1 <= k <= a.rows().
EigenResult top_k_eigen(const Matrix& a, std::size_t k, int iterations = 256,
                        double tol = 1e-9, std::uint64_t seed = 42);

/// PCA model: fit on data rows, project to k components and back.
class Pca {
 public:
  /// Fits on the rows of X, keeping `k` components. `exact` selects the
  /// Jacobi solver (full spectrum) instead of subspace iteration.
  void fit(const Matrix& x, std::size_t k, bool exact = false);

  bool fitted() const noexcept { return components_.cols() > 0; }
  std::size_t k() const noexcept { return components_.cols(); }
  std::size_t input_dim() const noexcept { return components_.rows(); }

  /// Projects rows of X (original space) into the k-dim component space.
  Matrix transform(const Matrix& x) const;

  /// Maps component-space rows back to the original feature space.
  Matrix inverse_transform(const Matrix& z) const;

  /// Round trip: project and reconstruct (the "squeeze" used by defenses).
  Matrix reconstruct(const Matrix& x) const;

  /// Eigenvalues of the kept components (descending).
  const std::vector<double>& explained_variance() const noexcept {
    return eigenvalues_;
  }

  /// Fraction of total variance captured by the kept components.
  /// Only meaningful when fitted with `exact` (needs the full spectrum
  /// trace); otherwise computed against the trace of the covariance.
  double explained_variance_ratio() const noexcept {
    return total_variance_ > 0.0 ? kept_variance_ / total_variance_ : 0.0;
  }

  const std::vector<float>& mean() const noexcept { return mean_; }
  /// input_dim x k matrix whose columns are principal directions.
  const Matrix& components() const noexcept { return components_; }

 private:
  std::vector<float> mean_;
  Matrix components_;  // d x k
  std::vector<double> eigenvalues_;
  double kept_variance_ = 0.0;
  double total_variance_ = 0.0;
};

}  // namespace mev::math
