file(REMOVE_RECURSE
  "CMakeFiles/defense_pipeline.dir/defense_pipeline.cpp.o"
  "CMakeFiles/defense_pipeline.dir/defense_pipeline.cpp.o.d"
  "defense_pipeline"
  "defense_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
