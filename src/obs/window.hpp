// Sliding-window aggregation: the lock-free time-bucketed primitive under
// the SLO tracker, the windowed /metrics percentiles, and the score-drift
// layer. Always compiled (like TraceContext) — SLO math and drift
// detection must work with MEV_ENABLE_OBS=OFF.
//
// Model: a ring of N time buckets, each `bucket_us` wide. A timestamp's
// epoch is now_us / bucket_us; it lands in slot epoch % N. Writers rotate
// slots lazily on record: the first writer to reach a slot whose stored
// epoch is older CASes the new epoch in (FlightRecorder's bank-swap
// idiom) and clears the payload; losers retry against the updated tag. A
// writer holding a timestamp OLDER than the slot's epoch (a reader-visible
// clock jump, a pathologically delayed thread) drops its sample instead
// of corrupting a newer bucket.
//
// Consistency contract (telemetry-grade, pinned by tests/obs/
// test_window.cpp): a record racing the rotation of its own bucket may be
// lost or attributed to the adjacent bucket — the smear is bounded by one
// bucket boundary crossing and never produces phantom counts. Reads are
// wait-free and similarly approximate at the rotating edge. All totals
// are exact whenever record and read do not straddle a live rotation,
// which is what a FakeClock gives tests: fully deterministic windows.
//
// Timestamps come from the caller (the injectable runtime::Clock), never
// from a global clock, so every window is deterministic under FakeClock.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "obs/histogram.hpp"

namespace mev::obs {

/// Geometry of one sliding window: `buckets` slots of `bucket_us` each,
/// covering a span of buckets * bucket_us. Defaults: 60 x 5 s = 5 min.
struct WindowConfig {
  std::uint64_t bucket_us = 5'000'000;
  std::size_t buckets = 60;

  std::uint64_t span_us() const noexcept {
    return bucket_us * static_cast<std::uint64_t>(buckets);
  }
};

namespace detail {

/// Rotation tag stored per slot: epoch + 1, so 0 means "never written"
/// (epoch 0 is a real epoch when clocks start at 0, as FakeClock does).
///
/// Returns true when the caller may record into the slot for `epoch`;
/// false when the caller's timestamp is older than the slot's current
/// occupant (stale writer — drop the sample). The winner of a rotation
/// CAS clears the payload via `clear` before returning.
template <typename Clear>
bool claim_slot(std::atomic<std::uint64_t>& tag_cell, std::uint64_t epoch,
                Clear&& clear) noexcept {
  const std::uint64_t tag = epoch + 1;
  std::uint64_t seen = tag_cell.load(std::memory_order_acquire);
  for (;;) {
    if (seen == tag) return true;
    if (seen > tag) return false;  // our timestamp is behind this slot
    if (tag_cell.compare_exchange_weak(seen, tag, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      clear();
      return true;
    }
  }
}

}  // namespace detail

/// Lock-free windowed counter: add() charges the current time bucket,
/// total() sums the buckets still inside the queried window. One atomic
/// add on the hot path after the (usually no-op) rotation check.
class SlidingCounter {
 public:
  explicit SlidingCounter(WindowConfig config = {});

  void add(std::uint64_t now_us, std::uint64_t n = 1) noexcept;

  /// Sum over the trailing `window_us` (0 or anything >= the span = the
  /// full span). Buckets whose epoch fell off the window are skipped —
  /// a clock jump past N buckets therefore reads as 0, not as stale data.
  std::uint64_t total(std::uint64_t now_us,
                      std::uint64_t window_us = 0) const noexcept;

  /// total() divided by the seconds actually observed: the elapsed time
  /// is clamped to the window span AND to the time since the first add,
  /// so a partially-filled first window reports its true rate instead of
  /// amortizing over buckets that never existed.
  double rate_per_s(std::uint64_t now_us,
                    std::uint64_t window_us = 0) const noexcept;

  const WindowConfig& config() const noexcept { return config_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};  // epoch + 1; 0 = empty
    std::atomic<std::uint64_t> value{0};
  };

  WindowConfig config_;
  std::unique_ptr<Slot[]> slots_;
  /// us timestamp of the first add + 1 (0 = none yet); CAS-set once.
  std::atomic<std::uint64_t> first_add_{0};
};

/// Lock-free windowed Log2Histogram: per-slot atomic bucket counts plus
/// count/sum/min/max, reassembled into an ordinary Log2Histogram on read
/// so exporters reuse the existing percentile math.
class SlidingHistogram {
 public:
  explicit SlidingHistogram(WindowConfig config = {});

  void record(std::uint64_t now_us, std::uint64_t value) noexcept;

  /// Merged histogram of the trailing `window_us` (0 = full span).
  Log2Histogram merged(std::uint64_t now_us,
                       std::uint64_t window_us = 0) const noexcept;

  const WindowConfig& config() const noexcept { return config_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::array<std::atomic<std::uint64_t>, Log2Histogram::kBuckets> counts{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  WindowConfig config_;
  std::unique_ptr<Slot[]> slots_;
};

/// Linear score bins over [0, 1] for distribution-drift detection: the
/// verdict-confidence population in kScoreBins equal-width bins.
inline constexpr std::size_t kScoreBins = 10;
using ScoreBins = std::array<std::uint64_t, kScoreBins>;

/// Bin index for a confidence score; values outside [0, 1] clamp to the
/// edge bins, 1.0 lands in the last bin.
std::size_t score_bin(double score) noexcept;

/// Windowed population of score bins (the "current" side of a PSI).
class SlidingScoreHistogram {
 public:
  explicit SlidingScoreHistogram(WindowConfig config = {});

  void record(std::uint64_t now_us, double score) noexcept;

  /// Per-bin totals over the trailing `window_us` (0 = full span).
  ScoreBins bins(std::uint64_t now_us,
                 std::uint64_t window_us = 0) const noexcept;

  const WindowConfig& config() const noexcept { return config_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> tag{0};
    std::array<std::atomic<std::uint64_t>, kScoreBins> counts{};
  };

  WindowConfig config_;
  std::unique_ptr<Slot[]> slots_;
};

/// Population stability index between a reference and a current bin
/// population: sum over bins of (q_i - p_i) * ln(q_i / p_i). Each side is
/// normalized to proportions and smoothed against a common pseudo-sample
/// (+0.5 per bin on 1000), so empty bins never divide by zero AND
/// identical distributions score 0 regardless of population size — the
/// reference is frozen while the current window keeps growing, and a
/// count-sensitive floor would read that imbalance as drift. 0 when
/// either population is empty (no evidence = no drift). Conventional
/// reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 major shift.
double psi(const ScoreBins& reference, const ScoreBins& current) noexcept;

}  // namespace mev::obs
