#include "runtime/resilient_oracle.hpp"

#include <algorithm>
#include <string>

#include "runtime/log_hook.hpp"

namespace mev::runtime {

ResilientOracle::ResilientOracle(CountOracle& inner, RetryPolicy retry,
                                 CircuitBreakerConfig breaker, Clock* clock)
    : inner_(&inner),
      retry_(retry),
      clock_(clock != nullptr ? clock : &SystemClock::instance()),
      breaker_(breaker, *(clock != nullptr ? clock
                                           : &SystemClock::instance())),
      jitter_rng_(retry.jitter_seed) {
  if (retry_.max_attempts == 0) retry_.max_attempts = 1;
}

std::vector<int> ResilientOracle::label_counts(const math::Matrix& counts) {
  if (counts.rows() == 0) return {};
  if (!run_started_) {
    run_started_ = true;
    run_started_ms_ = clock_->now_ms();
  }
  ++stats_.calls;
  const std::uint64_t call_deadline =
      retry_.call_deadline_ms > 0 ? clock_->now_ms() + retry_.call_deadline_ms
                                  : 0;
  std::vector<int> labels = label_batch(counts, call_deadline);
  record_queries(counts.rows());
  return labels;
}

ResilienceStats ResilientOracle::stats() const {
  ResilienceStats s = stats_;
  s.breaker_trips = breaker_.trips();
  return s;
}

std::vector<int> ResilientOracle::label_batch(
    const math::Matrix& counts, std::uint64_t call_deadline_ms) {
  for (std::size_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    wait_for_breaker(call_deadline_ms);
    ++stats_.attempts;
    if (attempt > 0) ++stats_.retries;
    try {
      std::vector<int> labels = inner_->label_counts(counts);
      if (labels.size() == counts.rows()) {
        breaker_.record_success();
        return labels;
      }
      ++stats_.garbled_batches;  // wrong-length response: retryable
    } catch (const OracleError& e) {
      if (!e.transient()) {
        stats_.failed_queries += counts.rows();
        throw;
      }
      if (e.kind() == FaultKind::kTimeout) ++stats_.timeouts;
      if (e.kind() == FaultKind::kGarbled) ++stats_.garbled_batches;
    }
    breaker_.record_failure();
    if (attempt + 1 < retry_.max_attempts) {
      const std::uint64_t delay_ms =
          backoff_delay_ms(retry_, attempt, jitter_rng_);
      log(LogLevel::kWarn, "runtime.oracle", "oracle call failed, retrying",
          {LogField::u64_value("attempt", attempt + 1),
           LogField::u64_value("rows", counts.rows()),
           LogField::u64_value("backoff_ms", delay_ms)});
      wait(delay_ms, call_deadline_ms);
    }
  }

  // Attempts exhausted. A multi-row batch may be suffering partial failure
  // (one poisoned row, a batch-size cap): bisect and retry each half with
  // a fresh attempt budget.
  if (counts.rows() > 1) {
    ++stats_.bisections;
    log(LogLevel::kWarn, "runtime.oracle", "batch exhausted retries, bisecting",
        {LogField::u64_value("rows", counts.rows())});
    const std::size_t mid = counts.rows() / 2;
    std::vector<int> labels =
        label_batch(counts.slice_rows(0, mid), call_deadline_ms);
    const std::vector<int> right =
        label_batch(counts.slice_rows(mid, counts.rows()), call_deadline_ms);
    labels.insert(labels.end(), right.begin(), right.end());
    return labels;
  }

  stats_.failed_queries += 1;
  throw PermanentOracleError(
      "ResilientOracle: row failed after " +
      std::to_string(retry_.max_attempts) + " attempts");
}

void ResilientOracle::wait(std::uint64_t ms, std::uint64_t call_deadline_ms) {
  const std::uint64_t target = clock_->now_ms() + ms;
  if (call_deadline_ms > 0 && target > call_deadline_ms)
    throw DeadlineExceededError(
        "ResilientOracle: per-call deadline of " +
        std::to_string(retry_.call_deadline_ms) + " ms exceeded");
  if (retry_.run_deadline_ms > 0 &&
      target > run_started_ms_ + retry_.run_deadline_ms)
    throw DeadlineExceededError("ResilientOracle: per-run deadline of " +
                                std::to_string(retry_.run_deadline_ms) +
                                " ms exceeded");
  if (ms == 0) return;
  clock_->sleep_ms(ms);
  stats_.backoff_ms += ms;
}

void ResilientOracle::wait_for_breaker(std::uint64_t call_deadline_ms) {
  while (!breaker_.allow())
    wait(std::max<std::uint64_t>(breaker_.cooldown_remaining_ms(), 1),
         call_deadline_ms);
}

}  // namespace mev::runtime
