#include "obs/build_info.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <ctime>
#include <thread>

namespace mev::obs {

namespace {

struct ProcessStart {
  ProcessStart()
      : steady(std::chrono::steady_clock::now()),
        unix_s(static_cast<std::uint64_t>(std::time(nullptr))) {}
  std::chrono::steady_clock::time_point steady;
  std::uint64_t unix_s;
};

/// Static-init capture: runs before main(), so "uptime" measures the
/// process, not the first scrape.
const ProcessStart g_start;

std::string json_escape(const char* s) {
  std::string out;
  for (; s != nullptr && *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out += '\\';
    if (static_cast<unsigned char>(*s) >= 0x20) out += *s;
  }
  return out;
}

}  // namespace

int process_pid() noexcept { return static_cast<int>(::getpid()); }

std::uint64_t process_start_unix_s() noexcept { return g_start.unix_s; }

std::uint64_t process_uptime_s() noexcept {
  const auto elapsed = std::chrono::steady_clock::now() - g_start.steady;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(elapsed).count());
}

std::string build_info_json() {
  std::string out = "{\"git_sha\":\"";
  out += json_escape(build_git_sha());
  out += "\",\"build_flags\":\"";
  out += json_escape(build_flags());
  out += "\",\"hardware_concurrency\":";
  out += std::to_string(std::max(1u, std::thread::hardware_concurrency()));
  out += ",\"pid\":";
  out += std::to_string(process_pid());
  out += ",\"start_time_unix\":";
  out += std::to_string(process_start_unix_s());
  out += ",\"uptime_seconds\":";
  out += std::to_string(process_uptime_s());
  out += "}\n";
  return out;
}

}  // namespace mev::obs
