#include "nn/network.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "math/linalg.hpp"
#include "nn/loss.hpp"
#include "nn/session.hpp"

namespace mev::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4d45564eu;  // "MEVN"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kDenseTag = 1;
constexpr std::uint8_t kDropoutTag = 2;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_network: truncated stream");
  return v;
}

void write_matrix(std::ostream& os, const math::Matrix& m) {
  write_pod<std::uint64_t>(os, m.rows());
  write_pod<std::uint64_t>(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(m.size() * sizeof(float)));
}

math::Matrix read_matrix(std::istream& is) {
  const auto rows = read_pod<std::uint64_t>(is);
  const auto cols = read_pod<std::uint64_t>(is);
  if (rows > (1u << 24) || cols > (1u << 24))
    throw std::runtime_error("load_network: implausible matrix shape");
  math::Matrix m(static_cast<std::size_t>(rows),
                 static_cast<std::size_t>(cols));
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(float)));
  if (!is) throw std::runtime_error("load_network: truncated matrix data");
  return m;
}

}  // namespace

Network::Network() = default;
Network::~Network() = default;

Network::Network(const Network& other) {
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  layers_.clear();
  scratch_.reset();
  layers_.reserve(other.layers_.size());
  for (const auto& layer : other.layers_) layers_.push_back(layer->clone());
  return *this;
}

Network::Network(Network&& other) noexcept
    : layers_(std::move(other.layers_)) {
  other.scratch_.reset();
}

Network& Network::operator=(Network&& other) noexcept {
  if (this == &other) return *this;
  layers_ = std::move(other.layers_);
  scratch_.reset();
  other.scratch_.reset();
  return *this;
}

void Network::add(std::unique_ptr<Layer> layer) {
  if (layer == nullptr) throw std::invalid_argument("Network::add: null layer");
  if (!layers_.empty() && layers_.back()->output_dim() != layer->input_dim())
    throw std::invalid_argument("Network::add: layer dimension mismatch");
  layers_.push_back(std::move(layer));
  scratch_.reset();  // workspace shapes are stale
}

InferenceSession& Network::scratch() {
  if (scratch_ == nullptr)
    scratch_ = std::make_unique<InferenceSession>(*this);
  return *scratch_;
}

std::size_t Network::input_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.front()->input_dim();
}

std::size_t Network::output_dim() const {
  if (layers_.empty()) throw std::logic_error("Network: empty");
  return layers_.back()->output_dim();
}

std::size_t Network::num_parameters() const {
  std::size_t n = 0;
  for (const auto& layer : layers_)
    for (const auto* p : layer->param_values()) n += p->size();
  return n;
}

math::Matrix Network::forward(const math::Matrix& x, bool training) {
  if (layers_.empty()) throw std::logic_error("Network::forward: empty");
  return scratch().forward(x, training);
}

math::Matrix Network::predict_proba(const math::Matrix& x, float temperature) {
  if (layers_.empty()) throw std::logic_error("Network::predict_proba: empty");
  return scratch().predict_proba(x, temperature);
}

std::vector<int> Network::predict(const math::Matrix& x) {
  if (layers_.empty()) throw std::logic_error("Network::predict: empty");
  const auto labels = scratch().predict(x);
  return {labels.begin(), labels.end()};
}

math::Matrix Network::backward(const math::Matrix& grad_logits) {
  if (layers_.empty()) throw std::logic_error("Network::backward: empty");
  return scratch().backward(grad_logits, /*accumulate_param_grads=*/true);
}

math::Matrix Network::input_gradient(const math::Matrix& x, int target_class) {
  if (layers_.empty()) throw std::logic_error("Network::input_gradient: empty");
  return scratch().input_gradient(x, target_class);
}

std::vector<math::Matrix> Network::input_gradients_all(const math::Matrix& x) {
  if (layers_.empty())
    throw std::logic_error("Network::input_gradients_all: empty");
  const auto grads = scratch().input_gradients_all(x);
  return {grads.begin(), grads.end()};
}

std::vector<ParamRef> Network::params() {
  return scratch().bind_params(*this);
}

void Network::zero_grad() {
  if (layers_.empty()) return;
  scratch().zero_param_grads();
}

std::string Network::architecture_string() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& layer : layers_) {
    if (layer->name() != "dense") continue;
    if (first) {
      os << layer->input_dim();
      first = false;
    }
    os << "-" << layer->output_dim();
  }
  return os.str();
}

Network make_mlp(const MlpConfig& config) {
  if (config.dims.size() < 2)
    throw std::invalid_argument("make_mlp: need at least input and output dims");
  math::Rng rng(config.seed);
  Network net;
  for (std::size_t i = 0; i + 1 < config.dims.size(); ++i) {
    const bool last = (i + 2 == config.dims.size());
    const Activation act =
        last ? Activation::kIdentity : config.hidden_activation;
    net.add(std::make_unique<DenseLayer>(config.dims[i], config.dims[i + 1],
                                         act, rng));
    if (!last && config.dropout > 0.0f)
      net.add(std::make_unique<DropoutLayer>(config.dims[i + 1],
                                             config.dropout, rng.next()));
  }
  return net;
}

void save_network(const Network& net, std::ostream& os) {
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(net.num_layers()));
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    const Layer& layer = net.layer(i);
    if (const auto* dense = dynamic_cast<const DenseLayer*>(&layer)) {
      write_pod(os, kDenseTag);
      write_pod<std::uint8_t>(os, static_cast<std::uint8_t>(dense->activation()));
      write_matrix(os, dense->weights());
      write_matrix(os, dense->bias());
    } else if (const auto* drop = dynamic_cast<const DropoutLayer*>(&layer)) {
      write_pod(os, kDropoutTag);
      write_pod<std::uint64_t>(os, drop->input_dim());
      write_pod<float>(os, drop->rate());
    } else {
      throw std::runtime_error("save_network: unknown layer type " +
                               layer.name());
    }
  }
  if (!os) throw std::runtime_error("save_network: write failure");
}

void save_network(const Network& net, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_network: cannot open " + path);
  save_network(net, os);
}

Network load_network(std::istream& is) {
  if (read_pod<std::uint32_t>(is) != kMagic)
    throw std::runtime_error("load_network: bad magic");
  if (read_pod<std::uint32_t>(is) != kVersion)
    throw std::runtime_error("load_network: unsupported version");
  const auto count = read_pod<std::uint32_t>(is);
  Network net;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto tag = read_pod<std::uint8_t>(is);
    if (tag == kDenseTag) {
      const auto act = static_cast<Activation>(read_pod<std::uint8_t>(is));
      math::Matrix weights = read_matrix(is);
      math::Matrix bias = read_matrix(is);
      net.add(std::make_unique<DenseLayer>(std::move(weights), std::move(bias),
                                           act));
    } else if (tag == kDropoutTag) {
      const auto dim = read_pod<std::uint64_t>(is);
      const auto rate = read_pod<float>(is);
      net.add(std::make_unique<DropoutLayer>(static_cast<std::size_t>(dim),
                                             rate, /*seed=*/0));
    } else {
      throw std::runtime_error("load_network: unknown layer tag");
    }
  }
  return net;
}

Network load_network(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_network: cannot open " + path);
  return load_network(is);
}

}  // namespace mev::nn
