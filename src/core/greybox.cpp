#include "core/greybox.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mev::core {

math::Matrix additions_from_count_perturbation(
    const features::CountTransform& attacker_transform,
    const math::Matrix& original_features, const math::Matrix& adversarial) {
  if (!original_features.same_shape(adversarial))
    throw std::invalid_argument(
        "additions_from_count_perturbation: shape mismatch");
  math::Matrix additions(original_features.rows(), original_features.cols());
  for (std::size_t r = 0; r < original_features.rows(); ++r) {
    for (std::size_t c = 0; c < original_features.cols(); ++c) {
      const float delta = adversarial(r, c) - original_features(r, c);
      if (delta <= 0.0f) continue;  // add-only
      const auto before =
          attacker_transform.counts_for_feature_value(c, original_features(r, c));
      const auto after =
          attacker_transform.counts_for_feature_value(c, adversarial(r, c));
      additions(r, c) =
          static_cast<float>(after > before ? after - before : 1);
    }
  }
  return additions;
}

math::Matrix additions_from_binary_perturbation(
    const math::Matrix& original_features, const math::Matrix& adversarial) {
  if (!original_features.same_shape(adversarial))
    throw std::invalid_argument(
        "additions_from_binary_perturbation: shape mismatch");
  math::Matrix additions(original_features.rows(), original_features.cols());
  for (std::size_t r = 0; r < original_features.rows(); ++r)
    for (std::size_t c = 0; c < original_features.cols(); ++c)
      // Any increase on an absent API means "call it once".
      if (adversarial(r, c) > original_features(r, c) &&
          original_features(r, c) < 0.5f)
        additions(r, c) = 1.0f;
  return additions;
}

namespace {

/// Shared deploy step: counts + additions -> target features.
math::Matrix deploy_counts(const features::FeaturePipeline& target_pipeline,
                           const math::Matrix& counts,
                           const math::Matrix& additions) {
  math::Matrix final_counts = counts;
  final_counts += additions;
  return target_pipeline.features_from_counts(final_counts);
}

}  // namespace

FeatureSpaceMap make_greybox_count_map(
    features::CountTransform attacker_transform,
    features::FeaturePipeline target_pipeline, math::Matrix malware_counts) {
  auto transform = std::make_shared<features::CountTransform>(
      std::move(attacker_transform));
  auto pipeline =
      std::make_shared<features::FeaturePipeline>(std::move(target_pipeline));
  auto counts = std::make_shared<math::Matrix>(std::move(malware_counts));
  auto craft_features =
      std::make_shared<math::Matrix>(transform->apply(*counts));

  FeatureSpaceMap map;
  // The sweep hands us target-space features; the attacker crafts from its
  // own view of the same raw samples, so ignore the input and return the
  // captured attacker-space features.
  map.to_craft_space = [craft_features](const math::Matrix&) {
    return *craft_features;
  };
  map.to_target_space = [transform, pipeline, counts,
                         craft_features](const math::Matrix& adversarial) {
    const math::Matrix additions = additions_from_count_perturbation(
        *transform, *craft_features, adversarial);
    return deploy_counts(*pipeline, *counts, additions);
  };
  return map;
}

FeatureSpaceMap make_greybox_binary_map(features::FeaturePipeline target_pipeline,
                                        math::Matrix malware_counts) {
  auto pipeline =
      std::make_shared<features::FeaturePipeline>(std::move(target_pipeline));
  auto counts = std::make_shared<math::Matrix>(std::move(malware_counts));
  const features::BinaryTransform binary(counts->cols());
  auto craft_features =
      std::make_shared<math::Matrix>(binary.apply(*counts));

  FeatureSpaceMap map;
  map.to_craft_space = [craft_features](const math::Matrix&) {
    return *craft_features;
  };
  map.to_target_space = [pipeline, counts,
                         craft_features](const math::Matrix& adversarial) {
    const math::Matrix additions =
        additions_from_binary_perturbation(*craft_features, adversarial);
    return deploy_counts(*pipeline, *counts, additions);
  };
  return map;
}

}  // namespace mev::core
