#include "nn/layer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mev::nn {
namespace {

/// One-shot forward through a fresh workspace (the session owns workspaces
/// in production; tests drive layers directly).
math::Matrix forward_of(const Layer& layer, const math::Matrix& x,
                        bool training = false) {
  LayerWorkspace ws;
  layer.init_workspace(ws);
  layer.forward(x, ws, training);
  return ws.output;
}

TEST(DenseLayer, ForwardKnownValues) {
  // y = x * W + b with identity activation.
  math::Matrix w{{1, 0}, {0, 2}};
  math::Matrix b{{10, 20}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kIdentity);
  const math::Matrix y = forward_of(layer, math::Matrix{{3, 4}});
  EXPECT_EQ(y(0, 0), 13.0f);
  EXPECT_EQ(y(0, 1), 28.0f);
}

TEST(DenseLayer, ForwardAppliesActivation) {
  math::Matrix w{{1}, {1}};
  math::Matrix b{{-10}};
  DenseLayer layer(std::move(w), std::move(b), Activation::kRelu);
  EXPECT_EQ(forward_of(layer, math::Matrix{{1, 2}})(0, 0), 0.0f);
}

TEST(DenseLayer, ForwardIsConstOnLayer) {
  // The layer is read-only during forward: two workspaces on one layer
  // produce identical results in either order.
  math::Rng rng(7);
  const DenseLayer layer(3, 2, Activation::kTanh, rng);
  const math::Matrix x{{0.5f, -1.0f, 2.0f}};
  LayerWorkspace a, b;
  layer.init_workspace(a);
  layer.init_workspace(b);
  layer.forward(x, a, false);
  layer.forward(x, b, false);
  EXPECT_EQ(a.output, b.output);
}

TEST(DenseLayer, DimensionMismatchThrows) {
  math::Rng rng(1);
  DenseLayer layer(3, 2, Activation::kRelu, rng);
  LayerWorkspace ws;
  layer.init_workspace(ws);
  EXPECT_THROW(layer.forward(math::Matrix(1, 4), ws, false),
               std::invalid_argument);
}

TEST(DenseLayer, BiasShapeMismatchThrows) {
  EXPECT_THROW(DenseLayer(math::Matrix(2, 3), math::Matrix(1, 2),
                          Activation::kIdentity),
               std::invalid_argument);
}

TEST(DenseLayer, ZeroDimensionThrows) {
  math::Rng rng(1);
  EXPECT_THROW(DenseLayer(0, 2, Activation::kRelu, rng),
               std::invalid_argument);
}

TEST(DenseLayer, ParameterGradientsMatchFiniteDifference) {
  math::Rng rng(3);
  DenseLayer layer(4, 3, Activation::kTanh, rng);
  math::Matrix x(2, 4);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.normal());

  // Loss = sum of outputs; upstream gradient of ones.
  LayerWorkspace ws;
  layer.init_workspace(ws);
  layer.forward(x, ws, false);
  math::Matrix upstream(2, 3, 1.0f);
  layer.backward(upstream, x, ws, /*accumulate_param_grads=*/true);

  auto values = layer.param_values();
  ASSERT_EQ(values.size(), 2u);
  ASSERT_EQ(ws.param_grads.size(), 2u);

  const float eps = 1e-2f;
  for (std::size_t k = 0; k < values.size(); ++k) {
    math::Matrix* value = values[k];
    for (std::size_t i = 0; i < std::min<std::size_t>(value->size(), 6);
         ++i) {
      const float original = value->data()[i];
      value->data()[i] = original + eps;
      const double up = forward_of(layer, x).sum();
      value->data()[i] = original - eps;
      const double down = forward_of(layer, x).sum();
      value->data()[i] = original;
      const double fd = (up - down) / (2 * eps);
      EXPECT_NEAR(ws.param_grads[k].data()[i], fd, 2e-2);
    }
  }
}

TEST(DenseLayer, InputGradientMatchesFiniteDifference) {
  math::Rng rng(4);
  DenseLayer layer(3, 2, Activation::kSigmoid, rng);
  math::Matrix x(1, 3);
  for (std::size_t i = 0; i < 3; ++i)
    x.data()[i] = static_cast<float>(rng.normal());

  LayerWorkspace ws;
  layer.init_workspace(ws);
  layer.forward(x, ws, false);
  math::Matrix upstream(1, 2, 1.0f);
  layer.backward(upstream, x, ws, /*accumulate_param_grads=*/false);

  const float eps = 1e-2f;
  for (std::size_t j = 0; j < 3; ++j) {
    math::Matrix xp = x, xm = x;
    xp(0, j) += eps;
    xm(0, j) -= eps;
    const double fd =
        (forward_of(layer, xp).sum() - forward_of(layer, xm).sum()) /
        (2 * eps);
    EXPECT_NEAR(ws.grad_input(0, j), fd, 2e-2);
  }
}

TEST(DenseLayer, GradientsAccumulateAcrossBackwards) {
  math::Rng rng(5);
  DenseLayer layer(2, 2, Activation::kIdentity, rng);
  const math::Matrix x{{1, 1}};
  LayerWorkspace ws;
  layer.init_workspace(ws);
  layer.forward(x, ws, false);
  math::Matrix upstream(1, 2, 1.0f);
  layer.backward(upstream, x, ws, true);
  const float once = ws.param_grads[0].data()[0];
  upstream = math::Matrix(1, 2, 1.0f);  // backward clobbers its input
  layer.backward(upstream, x, ws, true);
  EXPECT_NEAR(ws.param_grads[0].data()[0], 2 * once, 1e-5);
  ws.param_grads[0].fill(0.0f);
  EXPECT_EQ(ws.param_grads[0].data()[0], 0.0f);
}

TEST(DenseLayer, SkippingParamGradsLeavesAccumulatorsZero) {
  // The attack-gradient fast path must not touch the accumulators.
  math::Rng rng(8);
  DenseLayer layer(3, 2, Activation::kRelu, rng);
  const math::Matrix x{{1, 2, 3}};
  LayerWorkspace ws;
  layer.init_workspace(ws);
  layer.forward(x, ws, false);
  math::Matrix upstream(1, 2, 1.0f);
  layer.backward(upstream, x, ws, /*accumulate_param_grads=*/false);
  for (const auto& g : ws.param_grads)
    for (std::size_t i = 0; i < g.size(); ++i)
      EXPECT_EQ(g.data()[i], 0.0f);
  // The input gradient is still produced.
  EXPECT_EQ(ws.grad_input.rows(), 1u);
  EXPECT_EQ(ws.grad_input.cols(), 3u);
}

TEST(DenseLayer, CloneIsDeepCopy) {
  math::Rng rng(6);
  DenseLayer layer(2, 2, Activation::kRelu, rng);
  auto clone = layer.clone();
  auto* dense = dynamic_cast<DenseLayer*>(clone.get());
  ASSERT_NE(dense, nullptr);
  EXPECT_EQ(dense->weights(), layer.weights());
  dense->mutable_weights()(0, 0) += 1.0f;
  EXPECT_NE(dense->weights(), layer.weights());
}

TEST(DropoutLayer, InferenceModePassesThrough) {
  DropoutLayer drop(3, 0.5f, 1);
  const math::Matrix x{{1, 2, 3}};
  EXPECT_EQ(forward_of(drop, x, false), x);
}

TEST(DropoutLayer, TrainingZeroesRoughlyRateFraction) {
  DropoutLayer drop(1000, 0.4f, 2);
  const math::Matrix x(1, 1000, 1.0f);
  const math::Matrix y = forward_of(drop, x, true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    if (y.data()[i] == 0.0f) ++zeros;
  EXPECT_NEAR(static_cast<double>(zeros) / 1000.0, 0.4, 0.06);
  // Kept units are scaled by 1/(1-rate).
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y.data()[i] != 0.0f) {
      EXPECT_NEAR(y.data()[i], 1.0f / 0.6f, 1e-5);
    }
  }
}

TEST(DropoutLayer, BackwardUsesSameMask) {
  DropoutLayer drop(100, 0.5f, 3);
  const math::Matrix x(1, 100, 1.0f);
  LayerWorkspace ws;
  drop.init_workspace(ws);
  drop.forward(x, ws, true);
  const math::Matrix y = ws.output;
  math::Matrix upstream(1, 100, 1.0f);
  drop.backward(upstream, x, ws, false);
  for (std::size_t i = 0; i < 100; ++i) {
    if (y.data()[i] == 0.0f) {
      EXPECT_EQ(ws.grad_input.data()[i], 0.0f);
    } else {
      EXPECT_GT(ws.grad_input.data()[i], 0.0f);
    }
  }
}

TEST(DropoutLayer, InferenceBackwardIsIdentity) {
  DropoutLayer drop(4, 0.5f, 5);
  const math::Matrix x{{1, 2, 3, 4}};
  LayerWorkspace ws;
  drop.init_workspace(ws);
  drop.forward(x, ws, false);  // inference: no mask recorded
  math::Matrix upstream{{5, 6, 7, 8}};
  drop.backward(upstream, x, ws, false);
  EXPECT_EQ(ws.grad_input, (math::Matrix{{5, 6, 7, 8}}));
}

TEST(DropoutLayer, InvalidRateThrows) {
  EXPECT_THROW(DropoutLayer(3, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(DropoutLayer(3, -0.1f, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mev::nn
