file(REMOVE_RECURSE
  "libmev_nn.a"
)
