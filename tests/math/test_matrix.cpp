#include "math/matrix.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "math/rng.hpp"

namespace mev::math {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
}

TEST(Matrix, FillValueConstructor) {
  Matrix m(2, 2, 3.5f);
  EXPECT_EQ(m(0, 0), 3.5f);
  EXPECT_EQ(m(1, 1), 3.5f);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 2), 3.0f);
  EXPECT_EQ(m(1, 0), 4.0f);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, RowAndColVector) {
  const std::vector<float> v{1, 2, 3};
  const Matrix row = Matrix::row_vector(v);
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
  const Matrix col = Matrix::col_vector(v);
  EXPECT_EQ(col.rows(), 3u);
  EXPECT_EQ(col.cols(), 1u);
  EXPECT_EQ(col(2, 0), 3.0f);
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowSpanMutates) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[2] = 9.0f;
  EXPECT_EQ(m(1, 2), 9.0f);
}

TEST(Matrix, SetRowAndAppendRow) {
  Matrix m(1, 3);
  const std::vector<float> v{7, 8, 9};
  m.set_row(0, v);
  EXPECT_EQ(m(0, 1), 8.0f);
  m.append_row(v);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 2), 9.0f);
}

TEST(Matrix, AppendRowToEmptyDefinesCols) {
  Matrix m;
  const std::vector<float> v{1, 2};
  m.append_row(v);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.rows(), 1u);
}

TEST(Matrix, SetRowLengthMismatchThrows) {
  Matrix m(1, 3);
  const std::vector<float> bad{1, 2};
  EXPECT_THROW(m.set_row(0, bad), std::invalid_argument);
}

TEST(Matrix, ElementwiseArithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{10, 20}, {30, 40}};
  a += b;
  EXPECT_EQ(a(1, 1), 44.0f);
  a -= b;
  EXPECT_EQ(a(0, 0), 1.0f);
  a *= 2.0f;
  EXPECT_EQ(a(0, 1), 4.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.hadamard(b), std::invalid_argument);
}

TEST(Matrix, Hadamard) {
  Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{2, 2}, {2, 2}};
  a.hadamard(b);
  EXPECT_EQ(a(1, 0), 6.0f);
}

TEST(Matrix, ApplyAndClamp) {
  Matrix m{{-1, 0.5f}, {2, 3}};
  m.apply([](float x) { return x * x; });
  EXPECT_EQ(m(0, 0), 1.0f);
  m.clamp(0.0f, 4.0f);
  EXPECT_EQ(m(1, 1), 4.0f);
}

TEST(Matrix, Transposed) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0f);
}

TEST(Matrix, SliceRows) {
  const Matrix m{{1, 2}, {3, 4}, {5, 6}};
  const Matrix s = m.slice_rows(1, 3);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 3.0f);
  EXPECT_THROW(m.slice_rows(2, 4), std::out_of_range);
}

TEST(Matrix, GatherRows) {
  const Matrix m{{1, 1}, {2, 2}, {3, 3}};
  const std::vector<std::size_t> idx{2, 0};
  const Matrix g = m.gather_rows(idx);
  EXPECT_EQ(g(0, 0), 3.0f);
  EXPECT_EQ(g(1, 0), 1.0f);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(m.gather_rows(bad), std::out_of_range);
}

TEST(Matrix, GatherCols) {
  const Matrix m{{1, 2, 3}, {4, 5, 6}};
  const std::vector<std::size_t> idx{2, 1};
  const Matrix g = m.gather_cols(idx);
  EXPECT_EQ(g(0, 0), 3.0f);
  EXPECT_EQ(g(1, 1), 5.0f);
}

TEST(Matrix, SumNormMaxAbs) {
  const Matrix m{{3, -4}};
  EXPECT_DOUBLE_EQ(m.sum(), -1.0);
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_EQ(m.max_abs(), 4.0f);
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 19.0f);
  EXPECT_EQ(c(0, 1), 22.0f);
  EXPECT_EQ(c(1, 0), 43.0f);
  EXPECT_EQ(c(1, 1), 50.0f);
}

TEST(Matrix, MatmulDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 3)), std::invalid_argument);
}

TEST(Matrix, MatmulMatchesNaiveOnRandom) {
  Rng rng(77);
  Matrix a(17, 23), b(23, 11);
  for (std::size_t i = 0; i < a.size(); ++i)
    a.data()[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = static_cast<float>(rng.normal());
  const Matrix c = matmul(a, b);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        s += static_cast<double>(a(i, k)) * b(k, j);
      EXPECT_NEAR(c(i, j), s, 1e-3);
    }
}

TEST(Matrix, MatmulAtBMatchesExplicitTranspose) {
  Rng rng(78);
  Matrix a(9, 6), b(9, 4);
  for (std::size_t i = 0; i < a.size(); ++i)
    a.data()[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = static_cast<float>(rng.normal());
  const Matrix expected = matmul(a.transposed(), b);
  const Matrix got = matmul_at_b(a, b);
  ASSERT_TRUE(got.same_shape(expected));
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-4);
}

TEST(Matrix, MatmulABtMatchesExplicitTranspose) {
  Rng rng(79);
  Matrix a(5, 8), b(7, 8);
  for (std::size_t i = 0; i < a.size(); ++i)
    a.data()[i] = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < b.size(); ++i)
    b.data()[i] = static_cast<float>(rng.normal());
  const Matrix expected = matmul(a, b.transposed());
  const Matrix got = matmul_a_bt(a, b);
  ASSERT_TRUE(got.same_shape(expected));
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_NEAR(got.data()[i], expected.data()[i], 1e-4);
}

TEST(Matrix, Matvec) {
  const Matrix a{{1, 2}, {3, 4}};
  const std::vector<float> x{1, 1};
  const auto y = matvec(a, x);
  EXPECT_EQ(y[0], 3.0f);
  EXPECT_EQ(y[1], 7.0f);
  const std::vector<float> bad{1};
  EXPECT_THROW(matvec(a, bad), std::invalid_argument);
}

TEST(Matrix, AddRowBroadcast) {
  Matrix m(2, 3, 1.0f);
  const std::vector<float> bias{1, 2, 3};
  add_row_broadcast(m, bias);
  EXPECT_EQ(m(0, 0), 2.0f);
  EXPECT_EQ(m(1, 2), 4.0f);
}

TEST(Matrix, ColumnSumsAndMeans) {
  const Matrix m{{1, 2}, {3, 4}};
  const auto sums = column_sums(m);
  EXPECT_EQ(sums[0], 4.0f);
  EXPECT_EQ(sums[1], 6.0f);
  const auto means = column_means(m);
  EXPECT_EQ(means[0], 2.0f);
  EXPECT_THROW(column_means(Matrix(0, 2)), std::invalid_argument);
}

TEST(Matrix, EqualityAndToString) {
  const Matrix a{{1, 2}};
  const Matrix b{{1, 2}};
  EXPECT_EQ(a, b);
  const Matrix c{{1, 3}};
  EXPECT_NE(a, c);
  EXPECT_NE(a.to_string().find("1x2"), std::string::npos);
}

}  // namespace
}  // namespace mev::math
