// Microbenchmarks for the resilience layer's clean-path overhead: what the
// retry/breaker decorator and the query cache cost when the oracle is
// healthy (the common case — fault handling should be pay-as-you-go) —
// plus the serving-ingress concurrency primitives (MpscQueue, EventCount)
// measured in isolation from the service.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "runtime/event_count.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/mpsc_queue.hpp"
#include "runtime/query_cache.hpp"
#include "runtime/resilient_oracle.hpp"

using namespace mev;

namespace {

/// Minimal oracle: a threshold on feature 0, no model evaluation — so the
/// measurements isolate decorator overhead, not oracle cost.
class ThresholdOracle final : public runtime::CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
};

math::Matrix random_counts(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(5.0));
  return m;
}

void BM_RawOracle(benchmark::State& state) {
  ThresholdOracle oracle;
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawOracle)->Arg(64)->Arg(512);

void BM_ResilientOracleCleanPath(benchmark::State& state) {
  ThresholdOracle inner;
  runtime::FakeClock clock;
  runtime::ResilientOracle oracle(inner, {}, {}, &clock);
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResilientOracleCleanPath)->Arg(64)->Arg(512);

void BM_ResilientOracleUnderFaults(benchmark::State& state) {
  ThresholdOracle inner;
  runtime::FakeClock clock;
  runtime::FaultInjectingOracle flaky(inner, runtime::FaultProfile::flaky(),
                                      &clock);
  runtime::ResilientOracle oracle(flaky, {}, {}, &clock);
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 1);
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ResilientOracleUnderFaults)->Arg(64)->Arg(512);

void BM_QueryCacheMissPath(benchmark::State& state) {
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 2);
  for (auto _ : state) {
    state.PauseTiming();
    ThresholdOracle inner;
    runtime::CachingOracle oracle(inner);
    state.ResumeTiming();
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryCacheMissPath)->Arg(64)->Arg(512);

void BM_QueryCacheHitPath(benchmark::State& state) {
  ThresholdOracle inner;
  runtime::CachingOracle oracle(inner);
  const math::Matrix counts =
      random_counts(static_cast<std::size_t>(state.range(0)), 64, 2);
  (void)oracle.label_counts(counts);  // warm the cache
  for (auto _ : state)
    benchmark::DoNotOptimize(oracle.label_counts(counts));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QueryCacheHitPath)->Arg(64)->Arg(512);

// --- Serving-ingress primitives (DESIGN.md §8) -------------------------

void BM_MpscQueuePushPop(benchmark::State& state) {
  // Single-threaded round trip: the floor for one submission's queue cost
  // (two CASes + two sequence stores, no allocation).
  runtime::MpscQueue<std::uint64_t> queue(1024);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(queue.try_push(i++));
    benchmark::DoNotOptimize(queue.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpscQueuePushPop);

void BM_MpscQueueContended(benchmark::State& state) {
  // N threads each doing a push + pop round trip on one shared ring: the
  // CAS contention shape of a hot shard under concurrent submitters.
  // Balanced per-thread so no thread can strand another on a full or
  // empty ring when iteration counts differ.
  static runtime::MpscQueue<std::uint64_t>* queue = nullptr;
  if (state.thread_index() == 0)
    queue = new runtime::MpscQueue<std::uint64_t>(4096);
  for (auto _ : state) {
    std::uint64_t v = 1;
    while (!queue->try_push(std::move(v))) std::this_thread::yield();
    while (!queue->try_pop().has_value()) std::this_thread::yield();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    while (queue->try_pop().has_value()) {
    }
    delete queue;
    queue = nullptr;
  }
}
BENCHMARK(BM_MpscQueueContended)->Threads(2)->Threads(4)->UseRealTime();

void BM_EventCountNotifyNoWaiters(benchmark::State& state) {
  // The submit-side fast path under load: workers busy, nobody parked —
  // notify_one() must be a single atomic load, not a mutex.
  runtime::EventCount ec;
  for (auto _ : state) ec.notify_one();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCountNotifyNoWaiters);

void BM_EventCountPrepareCancel(benchmark::State& state) {
  // The consumer-side miss path: announce a wait, find work, abandon it.
  runtime::EventCount ec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec.prepare_wait());
    ec.cancel_wait();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventCountPrepareCancel);

}  // namespace

BENCHMARK_MAIN();
