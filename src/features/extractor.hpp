// Log -> raw API-count extraction ("The raw counts of the APIs", §II-A).
#pragma once

#include <vector>

#include "data/api_log.hpp"
#include "data/api_vocab.hpp"
#include "math/matrix.hpp"

namespace mev::features {

/// Counts occurrences of each vocabulary API in the log. APIs not in the
/// vocabulary are ignored (the sandbox hooks a fixed API set).
class CountExtractor {
 public:
  explicit CountExtractor(const data::ApiVocab& vocab) : vocab_(&vocab) {}

  /// Raw count vector, length == vocab.size().
  std::vector<float> extract(const data::ApiLog& log) const;

  /// Batch extraction: one row per log.
  math::Matrix extract_batch(std::span<const data::ApiLog> logs) const;

  const data::ApiVocab& vocab() const noexcept { return *vocab_; }

 private:
  const data::ApiVocab* vocab_;
};

}  // namespace mev::features
