// ScoringFrontend: the network edge of the scoring service — an HTTP/1.1
// endpoint in front of serve::ScoringService, built on the shared
// obs::http::SocketServer (keep-alive + pipelining enabled).
//
//   POST /v1/score   body = rows to score (JSON array-of-rows or the
//                    compact binary format, negotiated via Content-Type —
//                    see net/wire.hpp). Optional X-Api-Key (when keys are
//                    configured) and X-Deadline-Ms (per-request budget,
//                    forwarded to the service's deadline enforcement).
//   GET  /healthz    liveness (no auth: probes must stay cheap)
//   GET  /readyz     the service's readiness verdict, 200/503
//
// Request flow: a socket worker parses the request and calls dispatch();
// rows are decoded and handed to ScoringService::submit_with_callback()
// with the ResponseTicket captured in the callback context. The worker
// thread is NOT held for the verdict — it returns to its connection loop
// and keeps reading pipelined requests; the service's completion (worker
// thread, or sweeper at shutdown — exactly-once either way) formats the
// response and resolves the ticket, and the connection loop writes
// responses in arrival order. Backpressure path: shard queue full →
// typed rejection → HTTP 503 within milliseconds, never an unbounded
// buffer in the net layer; socket-level backpressure (max_pipeline)
// reaches clients as TCP flow control.
//
// Status mapping (per-status Prometheus counters under mev.net.*):
//   401 unknown/missing API key        429 over-rate (+ Retry-After)
//   400 malformed body / bad columns   413 body over cap   415 bad type
//   503 queue_full / overloaded / shutting_down (+ Retry-After)
//   504 deadline                        500 internal_error
//
// Compiles and serves identically with MEV_ENABLE_OBS=OFF — it depends on
// the parser/socket layer and stub-safe metric handles, not on telemetry
// being enabled.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/client_stats.hpp"
#include "net/rate_limiter.hpp"
#include "net/wire.hpp"
#include "obs/admin_server.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http_server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "serve/scoring_service.hpp"

namespace mev::net {

struct FrontendConfig {
  /// TCP port; 0 = kernel-assigned (read back from port()).
  std::uint16_t port = 0;
  std::string bind_address = "127.0.0.1";
  /// Socket workers; each owns one connection at a time, so this bounds
  /// concurrently-served connections (not concurrently-scored requests —
  /// those overlap freely via callbacks).
  std::size_t worker_threads = 4;
  std::size_t max_queued_connections = 64;
  /// Per-connection io timeout and idle keep-alive window.
  std::uint64_t io_timeout_ms = 5000;
  /// In-flight requests per connection before reads pause (pipelining
  /// depth); socket backpressure beyond that.
  std::size_t max_pipeline = 64;
  /// Request body cap → 413.
  std::size_t max_body_bytes = 1 << 20;
  /// Rows per request cap → 400 (bounds one request's batch footprint).
  std::size_t max_request_rows = 1024;
  /// API keys; empty = open endpoint (no auth, no rate limiting).
  std::vector<ApiKey> api_keys;
  /// Deadline applied when a request carries no X-Deadline-Ms; 0 = none.
  std::uint64_t default_deadline_ms = 0;
  /// Timing source; nullptr = the service's clock (shared deadlines).
  runtime::Clock* clock = nullptr;
  /// Telemetry sinks; nullptr = ambient. All stub-safe when obs is off.
  obs::Logger* logger = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace-id source and span sink; nullptr = ambient tracer. Correlation
  /// headers (X-Trace-Id, Server-Timing) are stamped on every score-path
  /// response regardless of whether recording is enabled.
  obs::Tracer* tracer = nullptr;
  /// Tail retention for /requestz: the N slowest + all error responses.
  obs::FlightRecorderConfig flight;
  /// Per-client windowed stats + score-drift PSI (net/client_stats.hpp),
  /// keyed by the limiter's client label ("(anon)" when no keys are
  /// configured).
  ClientStatsConfig client_stats;
  /// When set, the frontend registers GET /clientz on this admin server
  /// (and deregisters on destruction). Must outlive the frontend.
  obs::AdminServer* admin = nullptr;
};

/// Plain-counter mirror of the frontend's activity, live in every build
/// mode (the Prometheus families need MEV_ENABLE_OBS=ON).
struct FrontendStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_shed = 0;
  std::uint64_t requests = 0;        // HTTP requests parsed and routed
  std::uint64_t scored_requests = 0;
  std::uint64_t scored_rows = 0;
  std::uint64_t auth_failures = 0;   // 401
  std::uint64_t rate_limited = 0;    // 429
  std::uint64_t bad_requests = 0;    // 400/413/415 from the score path
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_internal = 0;
};

class ScoringFrontend {
 public:
  /// The service must outlive the frontend; stop() the frontend before
  /// destroying the service (its shutdown sweep resolves any in-flight
  /// tickets either way — exactly-once — but the ordering keeps the
  /// socket drain prompt).
  explicit ScoringFrontend(serve::ScoringService& service,
                           FrontendConfig config = {});
  ~ScoringFrontend();

  ScoringFrontend(const ScoringFrontend&) = delete;
  ScoringFrontend& operator=(const ScoringFrontend&) = delete;

  /// Binds and serves. False (with an error log) when the bind fails.
  bool start();
  /// Stops reading, drains in-flight responses, joins. Idempotent.
  void stop();

  bool running() const noexcept;
  std::uint16_t port() const noexcept;

  FrontendStats stats() const noexcept;
  const FrontendConfig& config() const noexcept { return config_; }

  /// Tail-retained span trees of slow and error requests — hand to
  /// obs::AdminServer::set_flight_recorder() to serve them on /requestz.
  const obs::FlightRecorder& flight_recorder() const noexcept {
    return recorder_;
  }

  /// Per-client windowed stats (the /clientz source). Entries appear on a
  /// client's first authenticated request.
  ClientStatsTracker& client_stats() noexcept { return clients_; }

 private:
  struct PendingScore;

  /// Per-score-request correlation + net-side timing, carried from
  /// dispatch through the completion callback.
  struct ScoreContext {
    obs::TraceContext trace;        // this request's root span identity
    std::uint64_t parent_span = 0;  // incoming traceparent's span id (or 0)
    std::uint64_t dispatch_us = 0;  // request handed to dispatch()
    std::uint64_t parse_end_us = 0; // body decoded (0 = never got there)
    std::uint32_t rows = 0;
    /// This request's client entry (tracker-owned, never evicted), set
    /// once the limiter resolves an identity; completion charges verdict
    /// scores or a rejection to it.
    ClientEntry* client = nullptr;
  };

  void dispatch(obs::http::Request&& request,
                obs::http::ResponseTicket ticket);
  void handle_score(obs::http::Request& request,
                    obs::http::ResponseTicket& ticket,
                    std::uint64_t dispatch_us);
  static void on_score(void* ctx, serve::ScoreResult&& result);
  void finish_score(PendingScore& pending, serve::ScoreResult&& result);

  /// The single exit for every score-path response: computes the
  /// telescoping stage breakdown, stamps X-Trace-Id + Server-Timing,
  /// emits the root/parse spans, offers the flight record, records the
  /// per-stage histograms, and writes the response.
  void respond_traced(obs::http::ResponseTicket& ticket,
                      const ScoreContext& sc,
                      const serve::StageStamps& stamps, int status,
                      serve::RejectReason reject, std::string_view body,
                      std::uint64_t retry_after_s);

  void respond_error(obs::http::ResponseTicket& ticket, int status,
                     std::string_view reason, std::string_view detail,
                     std::uint64_t retry_after_s = 0);
  void bump_status(int status) noexcept;

  serve::ScoringService& service_;
  FrontendConfig config_;
  runtime::Clock* clock_;
  obs::Logger* logger_;
  obs::Tracer* tracer_;
  ApiKeyLimiter limiter_;
  obs::FlightRecorder recorder_;
  ClientStatsTracker clients_;

  std::atomic<std::uint64_t> scored_requests_{0};
  std::atomic<std::uint64_t> scored_rows_{0};
  std::atomic<std::uint64_t> auth_failures_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> rejected_[6] = {};  // by RejectReason index

  obs::Counter rows_counter_;
  obs::Counter auth_failures_counter_;
  obs::Counter rate_limited_counter_;
  obs::WindowedHistogram latency_us_;
  std::array<obs::Histogram, obs::kFlightStages> stage_hist_;
  std::vector<std::pair<int, obs::Counter>> status_counters_;
  std::vector<std::pair<const char*, obs::Counter>> reject_counters_;

  std::unique_ptr<obs::http::SocketServer> server_;
};

}  // namespace mev::net
