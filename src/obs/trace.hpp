// Tracer: RAII span scopes recording begin/end/instant events into
// per-thread, lock-free ring buffers, exported as Chrome trace-event JSON
// (loadable in chrome://tracing and https://ui.perfetto.dev).
//
//   obs::Tracer tracer;                       // or inject a FakeClock
//   {
//     obs::Span s = tracer.span("mev.core.blackbox.round");
//     s.arg("round", 3);
//   }                                         // emitted on scope exit
//   tracer.write_chrome_trace(file);
//
// Design:
//  * One fixed-capacity ring per emitting thread: the owning thread is the
//    only writer (an atomic size published with release ordering), so span
//    emission never takes a lock and never allocates after the buffer
//    exists. On overflow new events are DROPPED and counted — a trace is
//    a bounded-cost diagnostic, never a backpressure source.
//  * All timestamps come from an injectable runtime::Clock; under
//    runtime::FakeClock two identical runs produce byte-identical traces.
//  * Span/event names must be string literals (or otherwise outlive the
//    tracer): events store the pointer, not a copy.
//  * A disabled tracer (set_enabled(false)) skips the clock reads and the
//    buffer write entirely; the process-wide obs::default_tracer() starts
//    disabled so un-instrumented runs pay one atomic load per span site.
//
// Compile-out: building with MEV_ENABLE_OBS=OFF (-DMEV_OBS_ENABLED=0)
// replaces Tracer/Span with inline no-op stubs of identical shape, so
// instrumented call sites compile unchanged and vanish entirely. Only the
// injectable clock survives in the stub (phase-duration accounting in
// BlackBoxRoundStats keeps working without the tracing machinery).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_context.hpp"
#include "runtime/clock.hpp"

#ifndef MEV_OBS_ENABLED
#define MEV_OBS_ENABLED 1
#endif

namespace mev::obs {

struct TracerConfig {
  /// Max events buffered per emitting thread; overflow drops and counts.
  std::size_t ring_capacity = 1 << 16;
  /// Timing source; nullptr = runtime::SystemClock. Must outlive the
  /// tracer.
  runtime::Clock* clock = nullptr;
  /// Record events from construction (set_enabled toggles later).
  bool enabled = true;
};

#if MEV_OBS_ENABLED

/// One numeric span/instant annotation ("loss" = 0.031, ...).
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

/// One recorded event: a complete span ('X', with duration) or an instant
/// ('i'). Mirrors the Chrome trace-event JSON fields.
struct TraceEvent {
  const char* name = nullptr;
  char phase = 'X';
  std::uint32_t tid = 0;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  // Request correlation: all zero for anonymous spans (span(name) with no
  // context); nonzero ids link the event into a cross-thread span tree.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::array<TraceArg, 4> args{};
  std::uint8_t num_args = 0;
};

class Tracer;

/// RAII scope: records its start time on construction and emits one
/// complete event (with duration and up to 4 numeric args) when destroyed
/// or finish()ed. A Span from a null/disabled tracer is inert.
class Span {
 public:
  Span() = default;
  ~Span() { finish(); }

  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      tracer_ = std::exchange(other.tracer_, nullptr);
      name_ = other.name_;
      start_us_ = other.start_us_;
      ctx_ = other.ctx_;
      parent_span_ = other.parent_span_;
      args_ = other.args_;
      num_args_ = other.num_args_;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a numeric annotation; silently dropped after the 4th.
  void arg(const char* key, double value) noexcept {
    if (tracer_ == nullptr || num_args_ >= args_.size()) return;
    args_[num_args_++] = TraceArg{key, value};
  }

  /// Emits the event now instead of at scope exit. Idempotent.
  void finish() noexcept;

  /// This span's identity within its trace — pass to Tracer::span() or
  /// make_context() to open children of this span. Zero-ids (invalid) for
  /// anonymous or inert spans.
  TraceContext context() const noexcept { return ctx_; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, const char* name, std::uint64_t start_us) noexcept
      : tracer_(tracer), name_(name), start_us_(start_us) {}
  Span(Tracer* tracer, const char* name, std::uint64_t start_us,
       TraceContext ctx, std::uint64_t parent_span) noexcept
      : tracer_(tracer),
        name_(name),
        start_us_(start_us),
        ctx_(ctx),
        parent_span_(parent_span) {}

  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  TraceContext ctx_{};
  std::uint64_t parent_span_ = 0;
  std::array<TraceArg, 4> args_{};
  std::uint8_t num_args_ = 0;
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});
  ~Tracer() = default;

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens an anonymous span (no trace ids — the cheap instrumentation
  /// path); emitted when the returned object dies. `name` must outlive
  /// the tracer (use string literals).
  Span span(const char* name) noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return Span();
    return Span(this, name, clock_->now_us());
  }

  /// Opens a correlated span as a child of `parent` (a fresh trace when
  /// `parent` is invalid). The returned Span's context() identifies it to
  /// further children.
  Span span(const char* name, TraceContext parent) noexcept {
    if (!enabled_.load(std::memory_order_relaxed)) return Span();
    return Span(this, name, clock_->now_us(), make_context(parent),
                parent.span_id);
  }

  /// Records a zero-duration instant event.
  void instant(const char* name) noexcept;

  /// Allocates a new span identity: `parent` valid → same trace, fresh
  /// span id (trace_hi carried through); invalid → a fresh trace rooted
  /// at the new span. Works whether or not the tracer is enabled —
  /// correlation ids must flow even when recording is off — and is
  /// deterministic under a FakeClock-seeded tracer.
  TraceContext make_context(TraceContext parent = {}) noexcept {
    TraceContext ctx;
    if (parent.valid()) {
      ctx.trace_id = parent.trace_id;
      ctx.trace_hi = parent.trace_hi;
    } else {
      ctx.trace_id = ids_.next();
    }
    ctx.span_id = ids_.next();
    return ctx;
  }

  /// Emits one already-timed complete span as a child of `parent` — the
  /// retroactive form used when a stage's boundaries were captured as
  /// plain timestamps on another thread (queue wait, batch scan) rather
  /// than with a live Span object.
  void complete_span(const char* name, TraceContext parent,
                     std::uint64_t start_us, std::uint64_t end_us) noexcept;

  /// Same, but with an explicit identity for the emitted span (the HTTP
  /// root span, whose id was allocated at ingress and already handed to
  /// children and response headers).
  void complete_span(const char* name, TraceContext self,
                     std::uint64_t parent_span_id, std::uint64_t start_us,
                     std::uint64_t end_us) noexcept;

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  runtime::Clock& clock() const noexcept { return *clock_; }

  /// Events currently buffered across all threads.
  std::size_t event_count() const;
  /// Events dropped on ring overflow across all threads.
  std::uint64_t dropped() const;

  /// The most recent `max_events` completed events across all threads,
  /// oldest first (merged from the per-thread buffers by timestamp). Safe
  /// to call while other threads keep emitting — the /tracez endpoint's
  /// snapshot path.
  std::vector<TraceEvent> recent(std::size_t max_events) const;

  /// Forgets all recorded events and drop counts (buffers and thread ids
  /// are kept). Only call while no other thread is emitting.
  void clear();

  /// Writes the Chrome trace-event JSON ({"traceEvents": [...]}). Events
  /// recorded up to this call are included; safe to call while other
  /// threads keep emitting (their in-flight events may be missed, never
  /// torn).
  void write_chrome_trace(std::ostream& os) const;
  std::string chrome_trace() const;

 private:
  friend class Span;

  /// Single-producer ring: only the owning thread writes events/size.
  struct ThreadBuffer {
    ThreadBuffer(std::size_t capacity, std::uint32_t tid_)
        : events(capacity), tid(tid_) {}
    std::vector<TraceEvent> events;
    std::atomic<std::size_t> size{0};
    std::atomic<std::uint64_t> dropped{0};
    std::uint32_t tid;
  };

  ThreadBuffer& local_buffer();
  void emit(TraceEvent event) noexcept;

  std::uint64_t id_;  // process-unique, keys the thread-local buffer cache
  TracerConfig config_;
  runtime::Clock* clock_;
  TraceIdGenerator ids_;  // seeded from the clock at construction
  std::atomic<bool> enabled_;

  mutable std::mutex mutex_;  // guards buffers_ (registration + export)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

#else  // MEV_OBS_ENABLED == 0: inline no-op stubs, same shape.

struct TraceArg {};
struct TraceEvent {};

class Span {
 public:
  Span() = default;
  void arg(const char*, double) noexcept {}
  void finish() noexcept {}
  TraceContext context() const noexcept { return {}; }
};

class Tracer {
 public:
  explicit Tracer(TracerConfig config = {})
      : clock_(config.clock != nullptr ? config.clock
                                       : &runtime::SystemClock::instance()),
        ids_(clock_->now_us()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  Span span(const char*) noexcept { return Span(); }
  Span span(const char*, TraceContext) noexcept { return Span(); }
  void instant(const char*) noexcept {}
  // Id allocation survives the compile-out: the net layer's correlation
  // headers (X-Trace-Id, traceparent echo) still work with tracing off.
  TraceContext make_context(TraceContext parent = {}) noexcept {
    TraceContext ctx;
    if (parent.valid()) {
      ctx.trace_id = parent.trace_id;
      ctx.trace_hi = parent.trace_hi;
    } else {
      ctx.trace_id = ids_.next();
    }
    ctx.span_id = ids_.next();
    return ctx;
  }
  void complete_span(const char*, TraceContext, std::uint64_t,
                     std::uint64_t) noexcept {}
  void complete_span(const char*, TraceContext, std::uint64_t, std::uint64_t,
                     std::uint64_t) noexcept {}
  void set_enabled(bool) noexcept {}
  bool enabled() const noexcept { return false; }
  runtime::Clock& clock() const noexcept { return *clock_; }
  std::size_t event_count() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  std::vector<TraceEvent> recent(std::size_t) const { return {}; }
  void clear() {}
  void write_chrome_trace(std::ostream& os) const;  // empty trace
  std::string chrome_trace() const { return "{\"traceEvents\":[]}\n"; }

 private:
  runtime::Clock* clock_;
  TraceIdGenerator ids_;
};

#endif  // MEV_OBS_ENABLED

/// Null-safe helpers so call sites never branch on the tracer pointer.
inline Span span(Tracer* tracer, const char* name) noexcept {
  return tracer != nullptr ? tracer->span(name) : Span();
}
inline Span span(Tracer* tracer, const char* name,
                 TraceContext parent) noexcept {
  return tracer != nullptr ? tracer->span(name, parent) : Span();
}
inline void instant(Tracer* tracer, const char* name) noexcept {
  if (tracer != nullptr) tracer->instant(name);
}
inline TraceContext make_context(Tracer* tracer,
                                 TraceContext parent = {}) noexcept {
  return tracer != nullptr ? tracer->make_context(parent) : TraceContext{};
}

}  // namespace mev::obs
