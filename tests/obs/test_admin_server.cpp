// AdminServer behavior: pure routing through handle() (every endpoint, no
// sockets), the readiness probe contract, the appended telemetry
// self-metrics, and a socket-level smoke test that speaks real HTTP to
// the listening port from this test binary.
#include <string>

#include <gtest/gtest.h>

#include "obs/admin_server.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "runtime/clock.hpp"

#if MEV_OBS_ENABLED
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#endif

namespace {

using mev::obs::AdminServer;
using mev::obs::AdminServerConfig;
using mev::obs::MetricsRegistry;
using mev::obs::Readiness;
using mev::obs::Tracer;
using mev::obs::TracerConfig;

mev::obs::http::Request make_request(const std::string& method,
                                     const std::string& target) {
  mev::obs::http::Request request;
  request.method = method;
  request.target = target;
  request.version = "HTTP/1.1";
  return request;
}

#if MEV_OBS_ENABLED

struct AdminFixture {
  mev::runtime::FakeClock clock;
  Tracer tracer{TracerConfig{.ring_capacity = 256, .clock = &clock,
                             .enabled = true}};
  MetricsRegistry registry;

  AdminServer make(AdminServerConfig config = {}) {
    config.tracer = &tracer;
    config.metrics = &registry;
    return AdminServer(std::move(config));
  }
};

TEST(AdminServer, HealthzAlwaysAnswersOk) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/healthz"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos);
}

TEST(AdminServer, ReadyzFollowsTheInstalledProbe) {
  AdminFixture f;
  AdminServer server = f.make();
  // Default probe: always ready.
  EXPECT_NE(server.handle(make_request("GET", "/readyz"))
                .find("HTTP/1.1 200 OK"),
            std::string::npos);

  server.set_readiness_probe([] { return Readiness{false, "draining"}; });
  const std::string not_ready = server.handle(make_request("GET", "/readyz"));
  EXPECT_NE(not_ready.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(not_ready.find("draining\n"), std::string::npos);

  server.set_readiness_probe([] { return Readiness{true, "ok"}; });
  EXPECT_NE(server.handle(make_request("GET", "/readyz"))
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(AdminServer, MetricsServesExpositionPlusSelfMetrics) {
  AdminFixture f;
  f.registry.counter("mev.test.queries", "queries").inc(7);
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/metrics"));
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("mev_test_queries 7\n"), std::string::npos);
  // The plane's own loss signals are always present.
  EXPECT_NE(response.find("# TYPE trace_spans_dropped_total counter\n"
                          "trace_spans_dropped_total 0\n"),
            std::string::npos);
  EXPECT_NE(response.find("# TYPE metrics_series gauge\n"),
            std::string::npos);
}

TEST(AdminServer, TracezServesRecentSpansAsJson) {
  AdminFixture f;
  {
    auto span = f.tracer.span("mev.test.op");
    span.arg("rows", 3.0);
    f.clock.advance(2);
  }
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/tracez"));
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"mev.test.op\""), std::string::npos);
  EXPECT_NE(response.find("\"dur_us\":2000"), std::string::npos);
  EXPECT_NE(response.find("\"args\":{\"rows\":3}"), std::string::npos);
  EXPECT_NE(response.find("\"dropped\":0"), std::string::npos);
}

TEST(AdminServer, TracezFiltersByPrefixDurationAndLimit) {
  AdminFixture f;
  // Three fast net spans, two slow serve spans, one slow net span.
  for (int i = 0; i < 3; ++i) {
    auto s = f.tracer.span("mev.net.parse");
    f.clock.advance(1);  // 1000 us
  }
  for (int i = 0; i < 2; ++i) {
    auto s = f.tracer.span("mev.serve.scan");
    f.clock.advance(5);  // 5000 us
  }
  {
    auto s = f.tracer.span("mev.net.request");
    f.clock.advance(9);  // 9000 us
  }
  AdminServer server = f.make();

  // Prefix filter: serve spans only.
  std::string response =
      server.handle(make_request("GET", "/tracez?name_prefix=mev.serve"));
  EXPECT_NE(response.find("mev.serve.scan"), std::string::npos);
  EXPECT_EQ(response.find("mev.net"), std::string::npos);

  // Duration filter: only the two 5 ms spans and the 9 ms span survive.
  response = server.handle(make_request("GET", "/tracez?min_dur_us=5000"));
  EXPECT_EQ(response.find("mev.net.parse"), std::string::npos);
  EXPECT_NE(response.find("mev.serve.scan"), std::string::npos);
  EXPECT_NE(response.find("mev.net.request"), std::string::npos);

  // Combined: slow AND net-prefixed leaves one span.
  response = server.handle(
      make_request("GET", "/tracez?name_prefix=mev.net&min_dur_us=5000"));
  EXPECT_EQ(response.find("mev.serve.scan"), std::string::npos);
  EXPECT_EQ(response.find("mev.net.parse"), std::string::npos);
  EXPECT_NE(response.find("mev.net.request"), std::string::npos);

  // Limit keeps the NEWEST survivors: limit=1 over everything is the
  // final span.
  response = server.handle(make_request("GET", "/tracez?limit=1"));
  EXPECT_EQ(response.find("mev.serve.scan"), std::string::npos);
  EXPECT_NE(response.find("mev.net.request"), std::string::npos);

  // Garbage filter values degrade to "no filter", never an error.
  response =
      server.handle(make_request("GET", "/tracez?limit=banana&min_dur_us=x"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("mev.net.parse"), std::string::npos);
}

TEST(AdminServer, TracezIncludesCorrelationIdsWhenPresent) {
  AdminFixture f;
  const mev::obs::TraceContext ctx = f.tracer.make_context();
  f.tracer.complete_span("mev.net.request", ctx, /*parent_span_id=*/0, 0,
                         250);
  AdminServer server = f.make();
  const std::string response =
      server.handle(make_request("GET", "/tracez"));
  EXPECT_NE(response.find("\"trace_id\":\""), std::string::npos) << response;
  EXPECT_NE(response.find(mev::obs::format_hex64(ctx.trace_id)),
            std::string::npos);
  EXPECT_NE(response.find(mev::obs::format_hex64(ctx.span_id)),
            std::string::npos);
}

TEST(AdminServer, RequestzWithoutARecorderExplainsItself) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response =
      server.handle(make_request("GET", "/requestz"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("no flight recorder attached"), std::string::npos);
}

TEST(AdminServer, RequestzServesRetainedRecordsSlowestFirst) {
  AdminFixture f;
  mev::obs::FlightRecorder recorder;
  mev::obs::FlightRecord fast;
  fast.trace_id = 0x11;
  fast.root_span_id = 0x12;
  fast.start_us = 100;
  fast.duration_us = 500;
  fast.http_status = 200;
  fast.rows = 4;
  fast.stage_us = {10, 20, 30, 40, 50, 350};
  fast.spans[0] = {"mev.net.request", 0x12, 0, 100, 500};
  fast.spans[1] = {"scan", 0x12 ^ 5, 0x12, 250, 50};
  fast.num_spans = 2;
  mev::obs::FlightRecord slow = fast;
  slow.trace_id = 0x21;
  slow.root_span_id = 0x22;
  slow.duration_us = 9000;
  recorder.record(fast);
  recorder.record(slow);

  AdminServer server = f.make();
  server.set_flight_recorder(&recorder);
  const std::string response =
      server.handle(make_request("GET", "/requestz"));
  // Slowest first: trace 21 appears before trace 11.
  const std::size_t slow_at = response.find("0000000000000021");
  const std::size_t fast_at = response.find("0000000000000011");
  ASSERT_NE(slow_at, std::string::npos) << response;
  ASSERT_NE(fast_at, std::string::npos);
  EXPECT_LT(slow_at, fast_at);
  // Stage taxonomy and span tree are embedded per record.
  EXPECT_NE(response.find("\"parse\":10"), std::string::npos);
  EXPECT_NE(response.find("\"serialize\":350"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"mev.net.request\""), std::string::npos);
  EXPECT_NE(response.find("\"recorded\":2"), std::string::npos);

  // Detaching the recorder (the example does this before frontend
  // teardown) restores the explain-yourself response.
  server.set_flight_recorder(nullptr);
  EXPECT_NE(server.handle(make_request("GET", "/requestz"))
                .find("no flight recorder attached"),
            std::string::npos);
}

TEST(AdminServer, RequestzLooksUpOneTraceInBothIdForms) {
  AdminFixture f;
  mev::obs::FlightRecorder recorder;
  mev::obs::FlightRecord record;
  record.trace_id = 0xabc;
  record.trace_hi = 0xdef;
  record.root_span_id = 0x1;
  record.start_us = 0;
  record.duration_us = 100;
  record.http_status = 200;
  record.spans[0] = {"mev.net.request", 0x1, 0, 0, 100};
  record.num_spans = 1;
  recorder.record(record);
  AdminServer server = f.make();
  server.set_flight_recorder(&recorder);

  // 16-hex internal id.
  std::string response = server.handle(
      make_request("GET", "/requestz?trace_id=0000000000000abc"));
  EXPECT_NE(response.find("\"duration_us\":100"), std::string::npos)
      << response;
  // 32-hex W3C form (low half selects).
  response = server.handle(make_request(
      "GET",
      "/requestz?trace_id=0000000000000def0000000000000abc"));
  EXPECT_NE(response.find("\"duration_us\":100"), std::string::npos);
  // Chrome export of a single record.
  response = server.handle(make_request(
      "GET", "/requestz?trace_id=0000000000000abc&format=chrome"));
  EXPECT_NE(response.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(response.find("\"ph\":\"X\""), std::string::npos);
  // Unknown id and malformed id both answer with a JSON error, not 4xx.
  response = server.handle(
      make_request("GET", "/requestz?trace_id=00000000000000ff"));
  EXPECT_NE(response.find("not retained"), std::string::npos);
  response =
      server.handle(make_request("GET", "/requestz?trace_id=zzz"));
  EXPECT_NE(response.find("16 or 32 hex"), std::string::npos);
}

TEST(AdminServer, VarzServesTheJsonSnapshot) {
  AdminFixture f;
  f.registry.counter("mev.test.queries").inc(2);
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/varz"));
  EXPECT_NE(response.find("application/json"), std::string::npos);
  // The snapshot carries the caller's series plus the admin plane's own
  // request counter (incremented by this very scrape).
  EXPECT_NE(response.find("\"mev.test.queries\":2"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"mev.obs.admin.requests\":1"), std::string::npos)
      << response;
}

TEST(AdminServer, UnknownPathsAnswer404AndNonGet405) {
  AdminFixture f;
  AdminServer server = f.make();
  EXPECT_NE(server.handle(make_request("GET", "/nope"))
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);
  EXPECT_NE(server.handle(make_request("POST", "/metrics"))
                .find("HTTP/1.1 405 Method Not Allowed"),
            std::string::npos);
  // Query strings are stripped before routing.
  EXPECT_NE(server.handle(make_request("GET", "/healthz?verbose=1"))
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(AdminServer, RequestsAreCountedInTheRegistry) {
  AdminFixture f;
  AdminServer server = f.make();
  (void)server.handle(make_request("GET", "/healthz"));
  (void)server.handle(make_request("GET", "/nope"));
  EXPECT_EQ(f.registry.counter("mev.obs.admin.requests").value(), 2u);
}

TEST(AdminServer, StartStopIsIdempotentAndResolvesEphemeralPorts) {
  AdminFixture f;
  AdminServerConfig config;
  config.enabled = true;
  config.port = 0;  // kernel-assigned
  AdminServer server = f.make(std::move(config));
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());  // already running: still true
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.stop();  // idempotent
}

// Socket-level smoke: speak real HTTP/1.1 to the bound port, torn into
// two sends, and check the response framing end to end.
std::string fetch(std::uint16_t port, const std::string& request_text) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  // Split the request at an awkward boundary to exercise torn reads.
  const std::size_t half = request_text.size() / 2;
  (void)!::send(fd, request_text.data(), half, 0);
  (void)!::send(fd, request_text.data() + half, request_text.size() - half,
                0);
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0)
    response.append(buffer, static_cast<std::size_t>(n));
  ::close(fd);
  return response;
}

TEST(AdminServer, SocketSmokeHealthzAndMetrics) {
  AdminFixture f;
  f.registry.counter("mev.test.smoke", "smoke").inc(42);
  AdminServerConfig config;
  config.enabled = true;
  AdminServer server = f.make(std::move(config));
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();
  ASSERT_NE(port, 0);

  const std::string health =
      fetch(port, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string metrics =
      fetch(port, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(metrics.find("mev_test_smoke 42\n"), std::string::npos)
      << metrics;

  const std::string missing =
      fetch(port, "GET /bogus HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404 Not Found"), std::string::npos);

  const std::string malformed = fetch(port, "garbage\r\n\r\n");
  EXPECT_NE(malformed.find("HTTP/1.1 400 Bad Request"), std::string::npos);
  server.stop();
}

TEST(AdminServer, SocketReadyzFlipsWithTheProbe) {
  AdminFixture f;
  AdminServerConfig config;
  config.enabled = true;
  AdminServer server = f.make(std::move(config));
  ASSERT_TRUE(server.start());
  const std::uint16_t port = server.port();

  EXPECT_NE(fetch(port, "GET /readyz HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
  server.set_readiness_probe([] { return Readiness{false, "draining"}; });
  const std::string draining = fetch(port, "GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_NE(draining.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(draining.find("draining\n"), std::string::npos);
  server.stop();
}

TEST(AdminServer, IndexListsEveryBuiltinEndpoint) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  for (const char* path : {"/healthz", "/readyz", "/metrics", "/varz",
                           "/sloz", "/statusz", "/tracez", "/requestz"})
    EXPECT_NE(response.find(path), std::string::npos) << path;
  // /index is an alias for environments where "/" is load-balancer-probed.
  EXPECT_EQ(server.handle(make_request("GET", "/index")), response);
}

TEST(AdminServer, StatuszServesBuildProvenance) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/statusz"));
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"git_sha\":\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"build_flags\":\""), std::string::npos);
  EXPECT_NE(response.find("\"hardware_concurrency\":"), std::string::npos);
  EXPECT_NE(response.find("\"pid\":"), std::string::npos);
  EXPECT_NE(response.find("\"start_time_unix\":"), std::string::npos);
  EXPECT_NE(response.find("\"uptime_seconds\":"), std::string::npos);
}

TEST(AdminServer, VarzIncludesTheProcessBlock) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/varz"));
  EXPECT_NE(response.find("\"process\":{\"pid\":"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(response.find("\"start_time_unix\":"), std::string::npos);
  // The registry snapshot still follows the process block.
  EXPECT_NE(response.find("\"counters\":{"), std::string::npos);
}

TEST(AdminServer, SlozWithoutATrackerExplainsItself) {
  AdminFixture f;
  AdminServer server = f.make();
  const std::string response = server.handle(make_request("GET", "/sloz"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("no slo tracker attached"), std::string::npos);
}

TEST(AdminServer, SlozServesPinnedBurnRates) {
  AdminFixture f;
  mev::obs::SloConfig slo_config;
  slo_config.availability_objective = 0.999;
  slo_config.bucket_us = 1'000'000;
  slo_config.buckets = 20;
  slo_config.fast_window_us = 5'000'000;
  slo_config.slow_window_us = 20'000'000;
  mev::obs::SloTracker tracker(slo_config);
  // 1% errors against a 0.1% budget: burn = 10.0 exactly.
  for (int i = 0; i < 99; ++i) tracker.record(100, true, 1'000);
  tracker.record(100, false, 0);

  AdminServerConfig config;
  config.clock = &f.clock;  // FakeClock at 0: the burst is in-window
  AdminServer server = f.make(std::move(config));
  server.set_slo_tracker(&tracker);
  const std::string response = server.handle(make_request("GET", "/sloz"));
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"fast_burn_rate\":10.000000"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"error_budget_remaining\":"), std::string::npos);
  EXPECT_NE(response.find("\"fast_burn_alert\":false"), std::string::npos);
  // Serving /sloz refreshed the mev_slo_* gauge mirror as a side effect.
  tracker.register_gauges(&f.registry);
  (void)server.handle(make_request("GET", "/sloz"));
  EXPECT_NE(f.registry.prometheus().find(
                "mev_slo_fast_burn_rate{objective=\"availability\"} " +
                mev::obs::prometheus_number((1.0 / 100.0) / (1.0 - 0.999))),
            std::string::npos);

  server.set_slo_tracker(nullptr);
  EXPECT_NE(server.handle(make_request("GET", "/sloz"))
                .find("no slo tracker attached"),
            std::string::npos);
}

TEST(AdminServer, ExtraEndpointsRegisterServeAndDeregister) {
  AdminFixture f;
  AdminServer server = f.make();
  server.add_endpoint("/customz", "a caller-registered endpoint",
                      [](const mev::obs::http::Request&) {
                        return mev::obs::http::format_response(
                            200, "text/plain; charset=utf-8", "custom\n");
                      });
  const std::string response = server.handle(make_request("GET", "/customz"));
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("custom\n"), std::string::npos);
  // The index lists the extra endpoint with its description.
  const std::string index = server.handle(make_request("GET", "/"));
  EXPECT_NE(index.find("/customz"), std::string::npos);
  EXPECT_NE(index.find("a caller-registered endpoint"), std::string::npos);

  // Built-ins always win: registering over /healthz cannot hijack probes.
  server.add_endpoint("/healthz", "shadow attempt",
                      [](const mev::obs::http::Request&) {
                        return mev::obs::http::format_response(
                            200, "text/plain; charset=utf-8", "hijacked\n");
                      });
  EXPECT_NE(server.handle(make_request("GET", "/healthz")).find("ok\n"),
            std::string::npos);

  // Re-registering the same path replaces the handler.
  server.add_endpoint("/customz", "replaced",
                      [](const mev::obs::http::Request&) {
                        return mev::obs::http::format_response(
                            200, "text/plain; charset=utf-8", "v2\n");
                      });
  EXPECT_NE(server.handle(make_request("GET", "/customz")).find("v2\n"),
            std::string::npos);

  server.remove_endpoint("/customz");
  EXPECT_NE(server.handle(make_request("GET", "/customz"))
                .find("HTTP/1.1 404 Not Found"),
            std::string::npos);
  server.remove_endpoint("/customz");  // removing twice is a no-op
}

#endif  // MEV_OBS_ENABLED

TEST(AdminServer, ApiIsCallableInEveryBuildConfiguration) {
  // In stub builds start() reports failure and handle() answers 404; call
  // sites compile unchanged either way.
  AdminServerConfig config;
  config.enabled = true;
  AdminServer server(std::move(config));
  server.set_readiness_probe([] { return Readiness{}; });
  if (server.start()) {
    EXPECT_NE(server.port(), 0);
    server.stop();
  } else {
    EXPECT_EQ(server.port(), 0);
    EXPECT_FALSE(server.running());
  }
  (void)server.handle(make_request("GET", "/healthz"));
  SUCCEED();
}

}  // namespace
