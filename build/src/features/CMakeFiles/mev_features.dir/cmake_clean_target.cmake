file(REMOVE_RECURSE
  "libmev_features.a"
)
