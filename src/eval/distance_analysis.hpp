// L2-distance analysis across the decision boundary (paper Fig. 5):
// pairwise mean distances between (malware, adversarial), (malware, clean)
// and (clean, adversarial) populations. The paper's observed ordering —
// d(mal, adv) < d(mal, clean) < d(clean, adv) — is the evidence that
// adversarial examples live in a blind spot far from the clean class
// rather than on the decision boundary.
#pragma once

#include <string>
#include <vector>

#include "math/matrix.hpp"

namespace mev::eval {

struct DistanceTriple {
  double malware_to_adversarial = 0.0;
  double malware_to_clean = 0.0;
  double clean_to_adversarial = 0.0;

  /// Fig. 5's qualitative claim.
  bool paper_ordering_holds() const noexcept {
    return malware_to_adversarial < malware_to_clean &&
           malware_to_clean < clean_to_adversarial;
  }
};

/// Mean of the L2 distances between adversarial rows and their own
/// originals (row i to row i), and mean pairwise (sub-sampled) distances
/// between the malware/clean/adversarial populations.
///
/// `malware` and `adversarial` must have equal row counts (advex i derives
/// from malware i); `clean` may have any row count. `max_pairs` bounds the
/// number of cross-population pairs evaluated (uniform stride), keeping the
/// analysis O(max_pairs * dim).
DistanceTriple l2_distance_analysis(const math::Matrix& malware,
                                    const math::Matrix& adversarial,
                                    const math::Matrix& clean,
                                    std::size_t max_pairs = 20000);

/// One Fig. 5 series point: distances as a function of attack strength.
struct DistanceCurvePoint {
  double attack_strength = 0.0;
  DistanceTriple distances;
};

std::string render_distance_curve(
    const std::string& parameter,
    const std::vector<DistanceCurvePoint>& points);

}  // namespace mev::eval
