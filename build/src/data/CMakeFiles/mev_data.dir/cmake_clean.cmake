file(REMOVE_RECURSE
  "CMakeFiles/mev_data.dir/api_log.cpp.o"
  "CMakeFiles/mev_data.dir/api_log.cpp.o.d"
  "CMakeFiles/mev_data.dir/api_vocab.cpp.o"
  "CMakeFiles/mev_data.dir/api_vocab.cpp.o.d"
  "CMakeFiles/mev_data.dir/csv_io.cpp.o"
  "CMakeFiles/mev_data.dir/csv_io.cpp.o.d"
  "CMakeFiles/mev_data.dir/dataset.cpp.o"
  "CMakeFiles/mev_data.dir/dataset.cpp.o.d"
  "CMakeFiles/mev_data.dir/synthetic.cpp.o"
  "CMakeFiles/mev_data.dir/synthetic.cpp.o.d"
  "libmev_data.a"
  "libmev_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
