#include "obs/admin_server.hpp"

#if MEV_OBS_ENABLED

#include <charconv>
#include <cstdio>
#include <utility>

#include "obs/scope.hpp"

namespace mev::obs {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kPromText = "text/plain; version=0.0.4; charset=utf-8";
constexpr const char* kJson = "application/json";

void append_json_escaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) {
    out.append(buf, res.ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config)
    : config_(std::move(config)),
      tracer_(resolve(config_.tracer)),
      registry_(resolve(config_.metrics)),
      logger_(resolve(config_.logger)) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_queued_connections == 0) config_.max_queued_connections = 1;
  requests_counter_ = registry_->counter(
      "mev.obs.admin.requests", "HTTP requests served by the admin plane");
  shed_counter_ = registry_->counter(
      "mev.obs.admin.connections_shed",
      "admin connections closed unserved because the queue was full");
  probe_ = [] { return Readiness{}; };
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::set_readiness_probe(ReadinessProbe probe) {
  std::lock_guard<std::mutex> lock(probe_mutex_);
  probe_ = std::move(probe);
}

bool AdminServer::start() {
  if (server_ != nullptr && server_->running()) return true;

  // All socket handling lives in the shared http::SocketServer; the admin
  // plane is its connection-per-request configuration (keep_alive off,
  // default parser limits = bodies rejected) with synchronous routing.
  http::SocketServerConfig socket_cfg;
  socket_cfg.port = config_.port;
  socket_cfg.bind_address = config_.bind_address;
  socket_cfg.worker_threads = config_.worker_threads;
  socket_cfg.max_queued_connections = config_.max_queued_connections;
  socket_cfg.io_timeout_ms = config_.io_timeout_ms;
  socket_cfg.keep_alive = false;
  socket_cfg.log_component = "obs.admin";
  socket_cfg.logger = logger_;
  socket_cfg.shed_counter = shed_counter_;
  server_ = std::make_unique<http::SocketServer>(
      std::move(socket_cfg),
      [this](http::Request&& request, http::ResponseTicket ticket) {
        ticket.respond(handle(request));
      });
  if (!server_->start()) {
    server_.reset();
    return false;
  }
  return true;
}

void AdminServer::stop() {
  if (server_ != nullptr) server_->stop();
}

bool AdminServer::running() const noexcept {
  return server_ != nullptr && server_->running();
}

std::uint16_t AdminServer::port() const noexcept {
  return server_ != nullptr ? server_->port() : 0;
}

std::string AdminServer::metrics_body() const {
  std::string body = registry_->prometheus();
  // The telemetry plane's own loss signals, appended so they exist even
  // when nothing else registered them: dropped spans mean a truncated
  // trace, runaway cardinality means an expensive scrape.
  body +=
      "# HELP trace_spans_dropped_total trace events dropped on ring "
      "overflow\n"
      "# TYPE trace_spans_dropped_total counter\n"
      "trace_spans_dropped_total ";
  body += std::to_string(tracer_->dropped());
  body +=
      "\n# HELP metrics_series registered series in the metrics registry\n"
      "# TYPE metrics_series gauge\n"
      "metrics_series ";
  body += std::to_string(registry_->size());
  body += '\n';
  return body;
}

std::string AdminServer::tracez_body() const {
  const std::vector<TraceEvent> events = tracer_->recent(config_.tracez_spans);
  std::string body = "{\"spans\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) body += ',';
    first = false;
    body += "{\"name\":\"";
    append_json_escaped(body, e.name);
    body += "\",\"ph\":\"";
    body += e.phase;
    body += "\",\"tid\":";
    body += std::to_string(e.tid);
    body += ",\"ts_us\":";
    body += std::to_string(e.ts_us);
    body += ",\"dur_us\":";
    body += std::to_string(e.dur_us);
    if (e.num_args > 0) {
      body += ",\"args\":{";
      for (std::uint8_t a = 0; a < e.num_args; ++a) {
        if (a > 0) body += ',';
        body += '"';
        append_json_escaped(body, e.args[a].key);
        body += "\":";
        append_double(body, e.args[a].value);
      }
      body += '}';
    }
    body += '}';
  }
  body += "],\"dropped\":";
  body += std::to_string(tracer_->dropped());
  body += ",\"buffered\":";
  body += std::to_string(tracer_->event_count());
  body += "}\n";
  return body;
}

std::string AdminServer::handle(const http::Request& request) {
  requests_counter_.inc();
  if (request.method != "GET")
    return http::format_response(405, kTextPlain, "method not allowed\n");

  const std::string_view path = request.path();
  if (path == "/healthz")
    return http::format_response(200, kTextPlain, "ok\n");
  if (path == "/readyz") {
    ReadinessProbe probe;
    {
      std::lock_guard<std::mutex> lock(probe_mutex_);
      probe = probe_;
    }
    const Readiness readiness = probe ? probe() : Readiness{};
    return http::format_response(readiness.ready ? 200 : 503, kTextPlain,
                                 readiness.reason + "\n");
  }
  if (path == "/metrics")
    return http::format_response(200, kPromText, metrics_body());
  if (path == "/varz")
    return http::format_response(200, kJson, registry_->json());
  if (path == "/tracez")
    return http::format_response(200, kJson, tracez_body());
  return http::format_response(404, kTextPlain, "not found\n");
}

}  // namespace mev::obs

#endif  // MEV_OBS_ENABLED
