// EventCount contract tests: the no-lost-wakeup window between
// prepare_wait and wait, the fast-path notify on an idle count, timed
// waits, and a producer/consumer stress shaped like the serving shards.
#include "runtime/event_count.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/mpsc_queue.hpp"

namespace mev::runtime {
namespace {

TEST(EventCount, NotifyWithNoWaitersIsANoOp) {
  EventCount ec;
  EXPECT_EQ(ec.waiters(), 0u);
  ec.notify_one();  // must not block, must not crash
  ec.notify_all();
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, CancelWaitRestoresIdleFastPath) {
  EventCount ec;
  const auto key = ec.prepare_wait();
  (void)key;
  EXPECT_EQ(ec.waiters(), 1u);
  ec.cancel_wait();
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, NotifyBetweenPrepareAndWaitIsNotLost) {
  // The race the epoch key exists for: the producer notifies after the
  // consumer announced intent but before it actually parked. The wait
  // must return immediately instead of sleeping forever.
  EventCount ec;
  const auto key = ec.prepare_wait();
  ec.notify_one();  // lands "too early"
  ec.wait(key);     // must not block
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, WaitForMsTimesOutWithoutNotify) {
  EventCount ec;
  const auto key = ec.prepare_wait();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ec.wait_for_ms(key, 10));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 9);
  EXPECT_EQ(ec.waiters(), 0u);
}

TEST(EventCount, WaitForMsWakesOnNotify) {
  EventCount ec;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    const auto key = ec.prepare_wait();
    woke.store(ec.wait_for_ms(key, 10000), std::memory_order_release);
  });
  // Spin until the waiter is parked (or at least announced).
  while (ec.waiters() == 0) std::this_thread::yield();
  ec.notify_one();
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(EventCount, NotifyAllWakesEveryWaiter) {
  EventCount ec;
  constexpr int kWaiters = 4;
  std::atomic<int> awake{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i)
    waiters.emplace_back([&] {
      const auto key = ec.prepare_wait();
      ec.wait(key);
      awake.fetch_add(1, std::memory_order_relaxed);
    });
  while (ec.waiters() != kWaiters) std::this_thread::yield();
  ec.notify_all();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(awake.load(), kWaiters);
}

TEST(EventCount, QueueHandoffNeverDeadlocks) {
  // The exact shard protocol: producers push then notify; the consumer
  // checks the queue between prepare_wait and wait. If a wakeup could be
  // lost this test hangs (caught by the ctest timeout).
  constexpr std::uint64_t kItems = 20000;
  MpscQueue<std::uint64_t> q(64);
  EventCount ec;
  std::atomic<std::uint64_t> consumed{0};

  std::thread consumer([&] {
    while (consumed.load(std::memory_order_relaxed) < kItems) {
      if (auto v = q.try_pop()) {
        consumed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      const auto key = ec.prepare_wait();
      if (!q.approx_empty() ||
          consumed.load(std::memory_order_relaxed) >= kItems) {
        ec.cancel_wait();
        continue;
      }
      ec.wait_for_ms(key, 50);  // bounded: re-check even if racy-missed
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p)
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kItems / 2; ++i) {
        std::uint64_t value = p * (kItems / 2) + i;
        while (!q.try_push(std::move(value))) std::this_thread::yield();
        ec.notify_one();
      }
    });

  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(consumed.load(), kItems);
}

}  // namespace
}  // namespace mev::runtime
