// Request/response vocabulary of the scoring service. A submission either
// completes with one Verdict per input row or is REJECTED with an explicit
// reason — the service never queues unboundedly and never silently drops.
//
// Completion is slot-based (PR 6): a queued request carries either a
// CompletionTicket into the service's CompletionArena (future mode) or a
// raw callback pointer (callback mode) — never a heap-allocated
// std::promise. See serve/completion.hpp for the arena and the ScoreFuture
// handle submit() returns.
#pragma once

#include <cstdint>
#include <vector>

#include "core/detector.hpp"
#include "math/matrix.hpp"
#include "obs/trace_context.hpp"

namespace mev::serve {

/// Why a submission did not produce verdicts.
enum class RejectReason {
  kNone = 0,        // not rejected: verdicts are valid
  kQueueFull,       // admission control: queued rows would exceed the bound
  kShuttingDown,    // service stopped, not yet started, or stopping
  kDeadline,        // the request's deadline expired before scoring
  kOverloaded,      // shed at admission by the overload controller
  kInternalError,   // scoring failed (model threw or garbled its output)
};

inline const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kDeadline: return "deadline";
    case RejectReason::kOverloaded: return "overloaded";
    case RejectReason::kInternalError: return "internal_error";
  }
  return "unknown";
}

/// Where along the pipeline a deadlined request was found expired. Every
/// stage rejects with RejectReason::kDeadline; the stage only feeds the
/// per-stage expiry counters (mev.serve.deadline_expired_total{stage=…}).
enum class DeadlineStage {
  kAdmission,    // already expired when submitted (propagated deadline)
  kQueue,        // expired waiting in a ring / batcher
  kPostDequeue,  // expired between batch formation and inference
};

inline const char* to_string(DeadlineStage stage) noexcept {
  switch (stage) {
    case DeadlineStage::kAdmission: return "admission";
    case DeadlineStage::kQueue: return "queue";
    case DeadlineStage::kPostDequeue: return "post_dequeue";
  }
  return "unknown";
}

/// Service-side timestamps (service clock, now_us) marking where one
/// request crossed each pipeline boundary. Zero = the request never
/// reached that boundary (e.g. a synchronous admission reject). The
/// frontend turns consecutive stamps into the queue/batch/scan entries of
/// the Server-Timing stage breakdown.
struct StageStamps {
  std::uint64_t admitted_us = 0;    // accepted into a submission shard
  std::uint64_t formed_us = 0;      // its batch was sealed by a worker
  std::uint64_t scan_start_us = 0;  // model forward began
  std::uint64_t scan_end_us = 0;    // verdicts materialized
};

/// Outcome of one submission: either verdicts (one per submitted row, in
/// submission order) or a rejection reason.
struct ScoreResult {
  RejectReason rejected = RejectReason::kNone;
  std::vector<core::Verdict> verdicts;
  /// Model snapshot version that scored this request (0 when rejected).
  std::uint64_t model_version = 0;
  /// Pipeline boundary timestamps for latency attribution.
  StageStamps stages;

  bool ok() const noexcept { return rejected == RejectReason::kNone; }
};

/// Per-submission options.
struct SubmitOptions {
  /// Relative deadline in milliseconds measured from submission on the
  /// service clock; 0 means no deadline. A request whose deadline passes
  /// before inference — in the queue, or even after its batch formed —
  /// is rejected with RejectReason::kDeadline instead of being scored
  /// late.
  std::uint64_t deadline_ms = 0;
  /// Absolute deadline on the service clock (runtime::Clock::now_ms
  /// epoch); 0 means none. This is the propagation form: an upstream
  /// caller forwards its own remaining budget instead of restarting the
  /// clock at each hop. When both fields are set the earlier deadline
  /// wins; a submission whose absolute deadline has already passed is
  /// rejected at admission without consuming queue capacity.
  std::uint64_t deadline_at_ms = 0;
  /// Request-scoped trace identity. An invalid (default) context means
  /// uncorrelated: the service emits no per-request spans for it. A valid
  /// one rides in the request slot across shard/batcher/worker threads
  /// and parents the service-side queue/scan spans.
  obs::TraceContext trace;
};

/// Names one slot in a CompletionArena. The generation tag detects a
/// stale handle touching a recycled slot (each release bumps it).
struct CompletionTicket {
  std::uint32_t index = 0;
  std::uint32_t generation = 0;
};

/// Callback-mode completion: invoked exactly once with the request's
/// outcome, on whichever thread resolves it — a worker (scored), the
/// submitting thread (synchronous rejection), or the shutdown thread.
/// A plain function pointer + context, so callback submissions allocate
/// nothing and the black-box loop can run zero-future.
using ScoreCallback = void (*)(void* ctx, ScoreResult&& result);

/// One queued unit of work. Internal to the service and the batcher, but
/// defined here so the batcher is unit-testable without the service.
/// Exactly one completion mode is set by the service: `has_ticket`
/// (future mode) or `callback != nullptr` (callback mode).
struct Request {
  math::Matrix counts;
  CompletionTicket ticket;
  bool has_ticket = false;
  ScoreCallback callback = nullptr;
  void* callback_ctx = nullptr;
  std::uint64_t enqueue_us = 0;   // clock->now_us() at submit (histograms)
  std::uint64_t enqueue_ms = 0;   // clock->now_ms() at submit (batch delay)
  std::uint64_t deadline_ms = 0;  // absolute clock ms; 0 = none
  obs::TraceContext trace;        // copied from SubmitOptions; may be invalid

  bool expired(std::uint64_t now_ms) const noexcept {
    return deadline_ms != 0 && now_ms >= deadline_ms;
  }
};

}  // namespace mev::serve
