#include "serve/service_oracle.hpp"

#include <atomic>
#include <string>
#include <utility>

#include "runtime/oracle_error.hpp"

namespace mev::serve {

std::vector<int> ServiceOracle::label_counts(const math::Matrix& counts) {
  record_queries(counts.rows());
  SubmitOptions options;
  options.deadline_ms = deadline_ms_;

  // Zero-future closed loop: the verdict lands in this stack frame via
  // the callback path — no completion slot, no allocation per query. The
  // attacker loop is the hottest submitter in the repo (every mutation
  // candidate is a query), so it rides the cheapest ingress there is.
  struct SyncCtx {
    ScoreResult result;
    std::atomic<int> done{0};
  } ctx;
  service_->submit_with_callback(
      counts, options,
      [](void* raw, ScoreResult&& result) {
        auto* sync = static_cast<SyncCtx*>(raw);
        sync->result = std::move(result);
        sync->done.store(1, std::memory_order_release);
        sync->done.notify_one();
      },
      &ctx);

  if (service_->config().workers == 0) {
    // Manual-pump service: drive the batch through ourselves.
    while (ctx.done.load(std::memory_order_acquire) == 0)
      service_->pump(/*force=*/true);
  } else {
    int observed = ctx.done.load(std::memory_order_acquire);
    while (observed == 0) {
      ctx.done.wait(observed, std::memory_order_acquire);
      observed = ctx.done.load(std::memory_order_acquire);
    }
  }

  const ScoreResult& result = ctx.result;
  if (!result.ok()) {
    const std::string what =
        std::string("ServiceOracle: submission rejected: ") +
        to_string(result.rejected);
    if (result.rejected == RejectReason::kShuttingDown)
      throw runtime::PermanentOracleError(what);
    throw runtime::TransientOracleError(what);
  }
  std::vector<int> labels(result.verdicts.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = result.verdicts[i].predicted_class;
  return labels;
}

}  // namespace mev::serve
