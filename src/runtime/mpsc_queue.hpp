// Bounded lock-free ring queue for the serving ingress path (DESIGN.md §8).
//
// The primary shape is MPSC — many submitting threads, one owning worker
// per shard — but pop() is also safe from other threads, which is what
// lets idle workers *steal* from a busy worker's shard and lets shutdown
// sweep every shard from one thread. The algorithm is Vyukov's bounded
// queue: each cell carries a sequence number, producers claim a cell with
// one CAS on the head, consumers with one CAS on the tail, and the cell's
// sequence publishes the hand-off — no mutex, no per-operation
// allocation, and a full or empty queue is detected without touching the
// other side's index.
//
// Head and tail live on separate cache lines so producers and consumers
// do not false-share; capacity is rounded up to a power of two so the
// slot index is a mask, not a modulo.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

namespace mev::runtime {

// A fixed 64 rather than std::hardware_destructive_interference_size:
// the standard constant is an ABI hazard (GCC warns on any ODR-relevant
// use) and 64 is the destructive-interference size on every platform
// this repo targets (x86-64, aarch64 with 64B lines).
inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) {
      if (cap > (std::size_t{1} << 62))
        throw std::invalid_argument("MpscQueue: capacity overflow");
      cap <<= 1;
    }
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer enqueue. Returns false when the queue is full (the
  /// value is untouched and stays with the caller).
  bool try_push(T&& value) {
    Cell* cell;
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // cell still holds an unconsumed value: full
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Dequeue. Normally called by the shard's owning worker, but safe from
  /// any thread (work stealing, shutdown sweep). Returns std::nullopt
  /// when empty.
  std::optional<T> try_pop() {
    Cell* cell;
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const std::size_t seq = cell->sequence.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return std::nullopt;  // cell not yet published: empty
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> value(std::move(cell->value));
    cell->value = T{};  // do not keep resources alive inside the ring
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return value;
  }

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Racy size estimate (head and tail are read independently); exact
  /// only when no producer or consumer is active. Intended for gauges
  /// and idle checks, not for admission control.
  std::size_t approx_size() const noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    return head > tail ? head - tail : 0;
  }

  bool approx_empty() const noexcept { return approx_size() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence;
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // producers
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // consumers
};

}  // namespace mev::runtime
