// Shared setup for the figure/table reproduction binaries: scale parsing,
// corpus generation, target-detector training, and the attacked subsets.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"

namespace mev::bench {

struct Environment {
  core::ExperimentConfig config;
  data::GenerativeModel generator;
  data::DatasetBundle bundle;
  core::DetectorTrainingResult trained;

  core::MalwareDetector& detector() { return *trained.detector; }
  nn::Network& target_network() { return trained.detector->network(); }

  /// Raw counts of attacked malware test rows (capped by the scale).
  math::Matrix malware_counts;
  /// Target-space features of the same rows.
  math::Matrix malware_features;
  /// Target-space features of all clean test rows.
  math::Matrix clean_features;
};

inline core::ExperimentConfig parse_scale(int argc, char** argv,
                                          const char* default_scale = "fast") {
  const std::string name = argc > 1 ? argv[1] : default_scale;
  return core::ExperimentConfig::from_name(name);
}

/// Generates the corpus and trains the target detector; prints progress.
inline Environment make_environment(const core::ExperimentConfig& config) {
  const auto& vocab = data::ApiVocab::instance();
  std::cerr << "# scale=" << core::to_string(config.scale)
            << " seed=" << config.seed << "\n";
  std::cerr << "# generating corpus and training the target detector...\n";
  data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);
  data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);

  Environment env{config, std::move(generator), std::move(bundle),
                  std::move(trained), {}, {}, {}};

  const auto malware_rows = env.bundle.test.indices_of(data::kMalwareLabel);
  std::vector<std::size_t> rows(
      malware_rows.begin(),
      malware_rows.begin() +
          std::min(malware_rows.size(), config.attack_sample_cap()));
  env.malware_counts = env.bundle.test.counts.gather_rows(rows);
  env.malware_features = env.trained.test_features.gather_rows(rows);
  const auto clean_rows = env.bundle.test.indices_of(data::kCleanLabel);
  env.clean_features = env.trained.test_features.gather_rows(clean_rows);
  return env;
}

/// Baseline detection metrics, for the "no attack" anchor row.
inline eval::ConfusionMatrix baseline_confusion(Environment& env) {
  const auto preds = env.target_network().predict(env.trained.test_features);
  return eval::confusion(env.bundle.test.labels, preds);
}

/// The attacker's own dataset (same distribution, independent draw) for
/// substitute training — "the attacker's ... training data are different
/// from the target['s]".
inline data::CountDataset attacker_dataset(Environment& env) {
  math::Rng rng(env.config.seed ^ 0x4772657942ULL);  // "GreyB"
  const auto spec = env.config.dataset_spec();
  return env.generator.generate_dataset(spec.train_clean, spec.train_malware,
                                        rng);
}

}  // namespace mev::bench
