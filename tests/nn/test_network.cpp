#include "nn/network.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "math/linalg.hpp"

namespace mev::nn {
namespace {

Network small_net(std::uint64_t seed = 3) {
  MlpConfig cfg;
  cfg.dims = {4, 8, 6, 2};
  cfg.seed = seed;
  return make_mlp(cfg);
}

math::Matrix random_input(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix x(rows, cols);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform());
  return x;
}

TEST(Network, MakeMlpShapes) {
  Network net = small_net();
  EXPECT_EQ(net.input_dim(), 4u);
  EXPECT_EQ(net.output_dim(), 2u);
  EXPECT_EQ(net.num_layers(), 3u);
  EXPECT_EQ(net.architecture_string(), "4-8-6-2");
}

TEST(Network, MakeMlpRequiresTwoDims) {
  MlpConfig cfg;
  cfg.dims = {4};
  EXPECT_THROW(make_mlp(cfg), std::invalid_argument);
}

TEST(Network, MakeMlpWithDropoutAddsLayers) {
  MlpConfig cfg;
  cfg.dims = {4, 8, 2};
  cfg.dropout = 0.3f;
  Network net = make_mlp(cfg);
  EXPECT_EQ(net.num_layers(), 3u);  // dense, dropout, dense
  EXPECT_EQ(net.layer(1).name(), "dropout");
}

TEST(Network, ForwardShapeAndDeterminism) {
  Network net = small_net();
  const math::Matrix x = random_input(5, 4, 9);
  const math::Matrix a = net.forward(x);
  const math::Matrix b = net.forward(x);
  EXPECT_EQ(a.rows(), 5u);
  EXPECT_EQ(a.cols(), 2u);
  EXPECT_EQ(a, b);
}

TEST(Network, PredictProbaRowsSumToOne) {
  Network net = small_net();
  const math::Matrix p = net.predict_proba(random_input(3, 4, 10));
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_NEAR(p(r, 0) + p(r, 1), 1.0, 1e-5);
}

TEST(Network, PredictMatchesArgmaxOfProba) {
  Network net = small_net();
  const math::Matrix x = random_input(6, 4, 11);
  const math::Matrix p = net.predict_proba(x);
  const auto labels = net.predict(x);
  for (std::size_t r = 0; r < 6; ++r)
    EXPECT_EQ(labels[r], static_cast<int>(math::argmax(p.row(r))));
}

TEST(Network, AddLayerDimensionMismatchThrows) {
  Network net;
  math::Rng rng(1);
  net.add(std::make_unique<DenseLayer>(3, 5, Activation::kRelu, rng));
  EXPECT_THROW(
      net.add(std::make_unique<DenseLayer>(4, 2, Activation::kRelu, rng)),
      std::invalid_argument);
  EXPECT_THROW(net.add(nullptr), std::invalid_argument);
}

TEST(Network, EmptyNetworkThrows) {
  Network net;
  EXPECT_THROW(net.input_dim(), std::logic_error);
  EXPECT_THROW(net.forward(math::Matrix(1, 1)), std::logic_error);
}

TEST(Network, InputGradientMatchesFiniteDifference) {
  Network net = small_net(21);
  const math::Matrix x = random_input(2, 4, 22);
  const math::Matrix grad = net.input_gradient(x, 0);
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      math::Matrix xp = x, xm = x;
      xp(i, j) += eps;
      xm(i, j) -= eps;
      const double fd =
          (net.predict_proba(xp)(i, 0) - net.predict_proba(xm)(i, 0)) /
          (2 * eps);
      EXPECT_NEAR(grad(i, j), fd, 5e-3);
    }
  }
}

TEST(Network, InputGradientsAllSumToZeroAcrossClasses) {
  // Softmax probabilities sum to 1, so their input gradients sum to 0.
  Network net = small_net(31);
  const math::Matrix x = random_input(3, 4, 32);
  const auto grads = net.input_gradients_all(x);
  ASSERT_EQ(grads.size(), 2u);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_NEAR(grads[0](i, j) + grads[1](i, j), 0.0f, 1e-5);
}

TEST(Network, InputGradientClassOutOfRangeThrows) {
  Network net = small_net();
  EXPECT_THROW(net.input_gradient(random_input(1, 4, 1), 2),
               std::invalid_argument);
  EXPECT_THROW(net.input_gradient(random_input(1, 4, 1), -1),
               std::invalid_argument);
}

TEST(Network, InputGradientLeavesParamGradsZero) {
  Network net = small_net();
  net.input_gradient(random_input(2, 4, 33), 0);
  for (const auto& p : net.params())
    for (std::size_t i = 0; i < p.grad->size(); ++i)
      EXPECT_EQ(p.grad->data()[i], 0.0f);
}

TEST(Network, NumParameters) {
  Network net = small_net();
  // (4*8 + 8) + (8*6 + 6) + (6*2 + 2) = 40 + 54 + 14
  EXPECT_EQ(net.num_parameters(), 40u + 54u + 14u);
}

TEST(Network, CopyIsDeep) {
  Network net = small_net();
  Network copy = net;
  const math::Matrix x = random_input(1, 4, 41);
  EXPECT_EQ(net.forward(x), copy.forward(x));
  // Mutate the copy's first layer weight.
  auto params = copy.params();
  params[0].value->data()[0] += 1.0f;
  EXPECT_NE(net.forward(x), copy.forward(x));
}

TEST(Network, SaveLoadRoundTrip) {
  MlpConfig cfg;
  cfg.dims = {4, 8, 2};
  cfg.dropout = 0.25f;
  cfg.seed = 55;
  Network net = make_mlp(cfg);
  std::stringstream buffer;
  save_network(net, buffer);
  Network loaded = load_network(buffer);
  EXPECT_EQ(loaded.architecture_string(), net.architecture_string());
  EXPECT_EQ(loaded.num_layers(), net.num_layers());
  const math::Matrix x = random_input(3, 4, 56);
  EXPECT_EQ(net.forward(x), loaded.forward(x));
}

TEST(Network, LoadRejectsGarbage) {
  std::stringstream buffer("not a network");
  EXPECT_THROW(load_network(buffer), std::runtime_error);
}

TEST(Network, LoadRejectsTruncated) {
  Network net = small_net();
  std::stringstream buffer;
  save_network(net, buffer);
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(load_network(truncated), std::runtime_error);
}

}  // namespace
}  // namespace mev::nn
