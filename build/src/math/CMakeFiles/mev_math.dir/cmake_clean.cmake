file(REMOVE_RECURSE
  "CMakeFiles/mev_math.dir/linalg.cpp.o"
  "CMakeFiles/mev_math.dir/linalg.cpp.o.d"
  "CMakeFiles/mev_math.dir/matrix.cpp.o"
  "CMakeFiles/mev_math.dir/matrix.cpp.o.d"
  "CMakeFiles/mev_math.dir/pca.cpp.o"
  "CMakeFiles/mev_math.dir/pca.cpp.o.d"
  "CMakeFiles/mev_math.dir/rng.cpp.o"
  "CMakeFiles/mev_math.dir/rng.cpp.o.d"
  "CMakeFiles/mev_math.dir/stats.cpp.o"
  "CMakeFiles/mev_math.dir/stats.cpp.o.d"
  "libmev_math.a"
  "libmev_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
