#include "serve/stats.hpp"

#include <sstream>

namespace mev::serve {

std::string ServiceStats::to_string() const {
  std::ostringstream os;
  os << "requests: accepted=" << accepted_requests << " (" << accepted_rows
     << " rows), completed=" << completed_requests << " (" << completed_rows
     << " rows), rejected=" << rejected_total()
     << " [queue_full=" << rejected_queue_full
     << " shutting_down=" << rejected_shutting_down
     << " deadline=" << rejected_deadline << "]\n";
  os << "batches: " << batches << ", model_swaps: " << model_swaps
     << ", stolen=" << stolen_requests << ", spilled=" << spilled_submissions
     << "\n";
  const auto line = [&os](const char* name, const Log2Histogram& h,
                          const char* unit) {
    const LatencySummary s = summarize(h);
    os << name << ": n=" << s.count << " mean=" << s.mean << unit
       << " p50=" << s.p50 << unit << " p95=" << s.p95 << unit
       << " p99=" << s.p99 << unit << " max=" << s.max << unit << "\n";
  };
  line("batch_rows", batch_rows, "");
  line("queue_delay", queue_delay_us, "us");
  line("e2e_latency", e2e_latency_us, "us");
  return os.str();
}

}  // namespace mev::serve
