# Empty dependencies file for defense_pipeline.
# This may be replaced when dependencies are built.
