// Black-box attack framework (paper Fig. 2, proposed as future work; built
// here following Papernot et al. 2017's practical black-box attack):
//
//   1. the attacker holds a small SEED set of its own samples (counts);
//   2. the TARGET detector is reachable only as a label oracle;
//   3. the attacker trains a substitute on oracle labels, then grows its
//      dataset by Jacobian-based augmentation: for each sample x, add
//      x' = clamp(x + lambda * sign(dF_y(x)/dx)) — points pushed toward
//      the substitute's decision boundary, where oracle labels are most
//      informative;
//   4. after the final round, JSMA on the substitute yields adversarial
//      examples that transfer to the target.
//
// Every feature-space point is REALIZED back into an integer API-count
// vector before querying the oracle (the attacker can only submit actual
// samples), via the attacker transform's inverse.
//
// The oracle interface lives in src/runtime/ together with the resilience
// decorators for flaky oracles (retry/backoff, circuit breaking, fault
// injection, query caching — see runtime/resilient_oracle.hpp). Pass a
// runtime::ResilientOracle here and the per-round stats pick up its
// retry/breaker counters; set BlackBoxConfig::checkpoint_path and an
// interrupted run resumes bit-identically from the last completed round.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "data/dataset.hpp"
#include "features/pipeline.hpp"
#include "features/transform.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"
#include "obs/admin_server.hpp"
#include "runtime/oracle.hpp"
#include "runtime/resilient_oracle.hpp"

namespace mev::obs {
class Tracer;
class MetricsRegistry;
class Logger;
}  // namespace mev::obs

namespace mev::core {

/// The label-only oracle interface, re-exported from the runtime layer so
/// existing core-level oracles and call sites are unaffected by the move.
using runtime::CountOracle;

/// Wraps a MalwareDetector as the oracle. Each oracle owns its inference
/// session, so several oracles can query one shared detector concurrently.
class DetectorOracle final : public CountOracle {
 public:
  explicit DetectorOracle(const MalwareDetector& detector)
      : detector_(&detector), session_(detector.make_session()) {}
  std::vector<int> label_counts(const math::Matrix& counts) override;

 private:
  const MalwareDetector* detector_;
  nn::InferenceSession session_;
};

struct BlackBoxConfig {
  std::size_t augmentation_rounds = 4;
  float lambda = 0.1f;                 // augmentation step size
  nn::MlpConfig substitute_architecture;  // input dim must match vocab size
  nn::TrainConfig training_per_round;
  /// Stop augmenting when the dataset reaches this many rows. Must be at
  /// least the seed row count.
  std::size_t max_dataset_rows = 8192;

  /// Dedup repeat oracle submissions across rounds through a
  /// runtime::CachingOracle wrapped around the supplied oracle. Labels —
  /// and therefore the trained substitute — are unchanged; only
  /// oracle_queries/cache_hits in the stats differ.
  bool use_query_cache = false;

  /// When non-empty, a crash-safe checkpoint is written here (atomic
  /// rename, checksummed) after every completed round.
  std::string checkpoint_path;
  /// When checkpoint_path exists on disk, continue from it instead of
  /// starting over. The checkpoint stores a fingerprint of the config and
  /// seed set; resuming with a different setup throws std::runtime_error.
  bool resume = true;

  /// Observability sinks (not part of the run fingerprint — traces never
  /// affect the trajectory). Each round emits a mev.core.blackbox.round
  /// span with label/train/augment sub-spans, and the oracle
  /// query/cache/retry/breaker counters are folded into the registry.
  /// nullptr = the ambient obs::current_tracer()/current_registry(); the
  /// resolved pair is also installed as the obs::Scope for the run, so
  /// nested trainer epochs and JSMA crafting land in the same trace.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured log destination for round progress; nullptr =
  /// obs::default_logger(). Not part of the run fingerprint.
  obs::Logger* logger = nullptr;
  /// Embedded admin plane for the duration of the run: a multi-hour
  /// augmentation loop becomes scrapeable (/metrics shows round, queries,
  /// agreement; /tracez the recent spans). Disabled by default; the
  /// server starts before round 0 and stops when the run returns. Not
  /// part of the run fingerprint.
  obs::AdminServerConfig admin;
};

struct BlackBoxRoundStats {
  std::size_t dataset_rows = 0;
  std::size_t oracle_queries = 0;   // cumulative
  double oracle_agreement = 0.0;    // substitute vs oracle on this round's set
  /// Cumulative retry/breaker counters when the supplied oracle is a
  /// runtime::ResilientOracle; all-zero otherwise.
  runtime::ResilienceStats resilience;
  /// Cumulative cache hits when use_query_cache is set; 0 otherwise.
  std::size_t cache_hits = 0;
  /// Wall-clock duration of this round's phases, in microseconds, read
  /// from the tracer's clock (deterministic under an injected FakeClock;
  /// real time otherwise). augment_us is 0 for the final round, which
  /// does not augment. Serialized in checkpoints (envelope version 2).
  std::uint64_t label_us = 0;
  std::uint64_t train_us = 0;
  std::uint64_t augment_us = 0;
};

struct BlackBoxResult {
  std::shared_ptr<nn::Network> substitute;
  features::CountTransform attacker_transform;  // fit on the seed counts
  std::vector<BlackBoxRoundStats> rounds;
  std::size_t total_queries = 0;
  /// Whether this run continued from a checkpoint, and from which round.
  bool resumed = false;
  std::size_t resumed_from_round = 0;
};

/// Inverts the attacker's count transform feature-wise, producing the
/// smallest integer count vector whose features dominate `features`.
/// Throws std::invalid_argument when the transform is unfitted or its
/// dimension does not match `features`.
math::Matrix realize_counts(const features::CountTransform& transform,
                            const math::Matrix& features);

/// Runs the Fig. 2 loop. `seed_counts` are the attacker's own samples
/// (labels unknown to the attacker; the oracle provides them).
BlackBoxResult run_blackbox_framework(CountOracle& oracle,
                                      const math::Matrix& seed_counts,
                                      const BlackBoxConfig& config);

}  // namespace mev::core
