// Logging seam for the layers BELOW obs/. The runtime layer (and anything
// else that sits under obs in the dependency order) cannot include
// obs/log.hpp, so it emits through an installable process-wide hook:
//
//   runtime::log(LogLevel::kWarn, "runtime.breaker", "circuit opened",
//                {LogField::u64("trips", trips)});
//
// With no hook installed the call is a relaxed atomic load and a branch —
// effectively free. obs/log.cpp installs a bridge into the structured
// logger at static-init time (when built with MEV_ENABLE_OBS=ON), so
// breaker trips and retry storms surface in the same JSON-lines stream as
// the rest of the system without runtime/ ever depending on obs/.
//
// LogLevel and LogField are defined here (the lowest layer that logs) and
// re-exported by obs/log.hpp; one vocabulary, no duplication.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>

namespace mev::runtime {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  /// Sentinel for "log nothing"; never attached to a record.
  kOff = 5,
};

const char* to_string(LogLevel level) noexcept;
/// Parses "trace".."error"/"off" (case-sensitive); falls back to
/// `fallback` on anything else, including nullptr.
LogLevel parse_log_level(const char* text, LogLevel fallback) noexcept;

/// One structured key/value annotation. Keys and string values must
/// outlive the log call (use literals or stable storage); the logger
/// formats them synchronously, so call-scope lifetime is enough.
struct LogField {
  enum class Kind { kString, kF64, kI64, kU64 };

  const char* key = "";
  Kind kind = Kind::kU64;
  const char* str = "";
  double f64 = 0.0;
  std::int64_t i64 = 0;
  std::uint64_t u64 = 0;

  static LogField string(const char* key, const char* value) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::kString;
    f.str = value;
    return f;
  }
  static LogField f64_value(const char* key, double value) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::kF64;
    f.f64 = value;
    return f;
  }
  static LogField i64_value(const char* key, std::int64_t value) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::kI64;
    f.i64 = value;
    return f;
  }
  static LogField u64_value(const char* key, std::uint64_t value) noexcept {
    LogField f;
    f.key = key;
    f.kind = Kind::kU64;
    f.u64 = value;
    return f;
  }
};

/// The installed sink: (level, component, message, fields). Must be
/// thread-safe; called from whatever thread logs.
using LogHookFn = void (*)(LogLevel level, const char* component,
                           const char* message, const LogField* fields,
                           std::size_t num_fields);

/// Installs (or, with nullptr, removes) the process-wide hook.
void set_log_hook(LogHookFn hook) noexcept;
LogHookFn log_hook() noexcept;

/// Emits through the installed hook; no-op (one relaxed atomic load) when
/// none is installed.
void log(LogLevel level, const char* component, const char* message,
         const LogField* fields = nullptr, std::size_t num_fields = 0) noexcept;

inline void log(LogLevel level, const char* component, const char* message,
                std::initializer_list<LogField> fields) noexcept {
  log(level, component, message, fields.begin(), fields.size());
}

}  // namespace mev::runtime
