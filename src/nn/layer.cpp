#include "nn/layer.hpp"

#include <cmath>
#include <stdexcept>

namespace mev::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       math::Rng& rng)
    : weights_(in, out),
      bias_(1, out),
      weight_grad_(in, out),
      bias_grad_(1, out),
      activation_(act) {
  if (in == 0 || out == 0)
    throw std::invalid_argument("DenseLayer: zero dimension");
  // He initialization for relu-family activations, Glorot otherwise.
  const bool relu_family =
      act == Activation::kRelu || act == Activation::kLeakyRelu;
  const double scale = relu_family
                           ? std::sqrt(2.0 / static_cast<double>(in))
                           : std::sqrt(2.0 / static_cast<double>(in + out));
  for (std::size_t i = 0; i < weights_.rows(); ++i)
    for (std::size_t j = 0; j < weights_.cols(); ++j)
      weights_(i, j) = static_cast<float>(rng.normal(0.0, scale));
}

DenseLayer::DenseLayer(math::Matrix weights, math::Matrix bias, Activation act)
    : weights_(std::move(weights)),
      bias_(std::move(bias)),
      weight_grad_(weights_.rows(), weights_.cols()),
      bias_grad_(1, weights_.cols()),
      activation_(act) {
  if (bias_.rows() != 1 || bias_.cols() != weights_.cols())
    throw std::invalid_argument("DenseLayer: bias/weight shape mismatch");
}

math::Matrix DenseLayer::forward(const math::Matrix& x, bool /*training*/) {
  if (x.cols() != weights_.rows())
    throw std::invalid_argument("DenseLayer::forward: dimension mismatch");
  input_ = x;
  pre_activation_ = math::matmul(x, weights_);
  math::add_row_broadcast(pre_activation_, bias_.row(0));
  output_ = pre_activation_;
  apply_activation(activation_, output_);
  return output_;
}

math::Matrix DenseLayer::backward(const math::Matrix& grad_output) {
  if (!grad_output.same_shape(output_))
    throw std::invalid_argument("DenseLayer::backward: shape mismatch");
  math::Matrix grad_z = grad_output;
  apply_activation_grad(activation_, pre_activation_, output_, grad_z);

  weight_grad_ += math::matmul_at_b(input_, grad_z);
  const auto col_grad = math::column_sums(grad_z);
  for (std::size_t j = 0; j < col_grad.size(); ++j)
    bias_grad_(0, j) += col_grad[j];

  return math::matmul_a_bt(grad_z, weights_);
}

std::vector<ParamRef> DenseLayer::params() {
  return {{&weights_, &weight_grad_}, {&bias_, &bias_grad_}};
}

void DenseLayer::zero_grad() {
  weight_grad_.fill(0.0f);
  bias_grad_.fill(0.0f);
}

std::unique_ptr<Layer> DenseLayer::clone() const {
  return std::make_unique<DenseLayer>(weights_, bias_, activation_);
}

DropoutLayer::DropoutLayer(std::size_t dim, float rate, std::uint64_t seed)
    : dim_(dim), rate_(rate), seed_(seed), rng_(seed) {
  if (rate < 0.0f || rate >= 1.0f)
    throw std::invalid_argument("DropoutLayer: rate must be in [0, 1)");
}

math::Matrix DropoutLayer::forward(const math::Matrix& x, bool training) {
  if (x.cols() != dim_)
    throw std::invalid_argument("DropoutLayer::forward: dimension mismatch");
  if (!training || rate_ == 0.0f) {
    mask_ = math::Matrix();
    return x;
  }
  const float keep = 1.0f - rate_;
  const float scale = 1.0f / keep;
  mask_ = math::Matrix(x.rows(), x.cols());
  math::Matrix out = x;
  for (std::size_t i = 0; i < mask_.size(); ++i) {
    const float m = rng_.bernoulli(keep) ? scale : 0.0f;
    mask_.data()[i] = m;
    out.data()[i] *= m;
  }
  return out;
}

math::Matrix DropoutLayer::backward(const math::Matrix& grad_output) {
  if (mask_.empty()) return grad_output;  // was an inference pass
  math::Matrix grad = grad_output;
  grad.hadamard(mask_);
  return grad;
}

std::unique_ptr<Layer> DropoutLayer::clone() const {
  return std::make_unique<DropoutLayer>(dim_, rate_, seed_);
}

}  // namespace mev::nn
