// Reproduces Table V (the adversarial-training dataset) and Table VI
// (defense testing results): TPR/TNR of No Defense, Adversarial Training,
// Defensive Distillation (T=50), Feature Squeezing and Dimensionality
// Reduction (k=19) on the clean test set, the malware test set, and
// grey-box adversarial examples (theta=0.1, gamma=0.02).
//
// Expected shape (paper Table VI):
//   NoDefense:    advex TPR collapses (0.304) while malware TPR is 0.883;
//   AdvTraining:  advex TPR recovers (0.931) with TNR intact (0.995);
//   Distillation: advex TPR improves modestly, clean/malware degrade;
//   FeaSqueezing: advex detected ~0.554 but clean/malware rates degrade;
//   DimReduct:    advex & malware recover (0.913/0.914), TNR drops (0.674).
//
//   ./bench_table6_defense [tiny|fast|full]
#include <iostream>
#include <memory>

#include "attack/jsma.hpp"
#include "bench_common.hpp"
#include "core/greybox.hpp"
#include "core/substitute.hpp"
#include "defense/adversarial_training.hpp"
#include "defense/classifier.hpp"
#include "defense/dim_reduction.hpp"
#include "defense/distillation.hpp"
#include "defense/feature_squeezing.hpp"
#include "eval/report.hpp"
#include "features/transform.hpp"

using namespace mev;

namespace {

struct DefenseRow {
  std::string name;
  double clean_tnr = 0.0;
  double malware_tpr = 0.0;
  double advex_tpr = 0.0;
};

DefenseRow evaluate(defense::Classifier& clf, const math::Matrix& clean,
                    const math::Matrix& malware, const math::Matrix& advex) {
  DefenseRow row;
  row.name = clf.name();
  row.clean_tnr = 1.0 - eval::detection_rate(clf.classify(clean));
  row.malware_tpr = eval::detection_rate(clf.classify(malware));
  row.advex_tpr = eval::detection_rate(clf.classify(advex));
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));

  // --- grey-box adversarial examples at the paper's defense operating
  //     point (theta=0.1, gamma=0.02) --------------------------------------
  std::cerr << "# training the substitute and crafting advex "
               "(theta=0.1, gamma=0.02)...\n";
  const data::CountDataset attacker_data = bench::attacker_dataset(env);
  auto sub =
      core::train_substitute_exact_features(attacker_data, env.config,
                                           env.detector().pipeline());
  const auto& attacker_transform = dynamic_cast<const features::CountTransform&>(
      sub.pipeline.transform());
  const auto map = core::make_greybox_count_map(
      attacker_transform, env.detector().pipeline(), env.malware_counts);

  attack::JsmaConfig jsma_cfg;
  jsma_cfg.theta = 0.1f;
  jsma_cfg.gamma = 0.02f;
  jsma_cfg.early_stop = false;  // full-strength advex, as in the sweeps
  const attack::Jsma jsma(jsma_cfg);
  const math::Matrix craft_inputs = map.to_craft_space(env.malware_features);
  const auto crafted = jsma.craft(*sub.network, craft_inputs);
  const math::Matrix advex_all = map.to_target_space(crafted.adversarial);

  // Train/eval split of the advex pool (the paper holds most advex out for
  // testing: Table V trains on a subset, Table VI tests on 16218).
  const std::size_t n_adv_train = advex_all.rows() * 2 / 5;
  const math::Matrix advex_train = advex_all.slice_rows(0, n_adv_train);
  const math::Matrix advex_eval =
      advex_all.slice_rows(n_adv_train, advex_all.rows());

  // --- defended classifiers ----------------------------------------------
  std::vector<std::unique_ptr<defense::Classifier>> defenses;
  defenses.push_back(std::make_unique<defense::NetworkClassifier>(
      env.detector().network_ptr(), "No Defense"));

  std::cerr << "# adversarial training...\n";
  math::Rng clean_rng(env.config.seed + 7002);
  const data::CountDataset clean_pool =
      env.generator.generate_dataset(advex_train.rows(), 0, clean_rng);
  const math::Matrix clean_pool_features =
      env.detector().features_of_counts(clean_pool.counts);
  const auto adv_set = defense::build_adversarial_training_set(
      env.trained.train_features, env.bundle.train.labels, advex_train,
      &clean_pool_features);
  defense::AdversarialTrainingConfig at_cfg{env.config.target_architecture(),
                                            env.config.target_training()};
  auto adv_net = defense::adversarial_training(adv_set, at_cfg);
  defenses.push_back(
      std::make_unique<defense::NetworkClassifier>(adv_net, "AdvTraining"));

  // Table V.
  eval::Table t5("TABLE V: ADVERSARIAL TRAINING DATASET");
  t5.header({"Dataset", "composition"});
  t5.row({"Training Set",
          std::to_string(adv_set.stats.total()) + " (" +
              std::to_string(adv_set.stats.clean) + " clean, " +
              std::to_string(adv_set.stats.malware) + " malware, " +
              std::to_string(adv_set.stats.adversarial) + " advEx; " +
              std::to_string(adv_set.stats.duplicates_removed) +
              " duplicates removed)"});
  t5.row({"Test Set (advEx held out)", std::to_string(advex_eval.rows())});
  std::cout << t5.render() << "\n";

  std::cerr << "# defensive distillation (T=50)...\n";
  defense::DistillationConfig dist_cfg;
  dist_cfg.teacher_architecture = env.config.target_architecture();
  dist_cfg.teacher_architecture.seed ^= 0x1111;
  dist_cfg.student_architecture = env.config.target_architecture();
  dist_cfg.student_architecture.seed ^= 0x2222;
  dist_cfg.temperature = 50.0f;
  dist_cfg.teacher_training = env.config.target_training();
  dist_cfg.student_training = env.config.target_training();
  nn::LabeledData train_data{env.trained.train_features,
                             env.bundle.train.labels};
  auto distilled = defense::defensive_distillation(train_data, dist_cfg);
  defenses.push_back(std::make_unique<defense::NetworkClassifier>(
      distilled.student, "Distillation"));

  std::cerr << "# feature squeezing...\n";
  auto squeezer = std::make_unique<defense::BinarySqueezer>();
  const double threshold = defense::FeatureSqueezing::calibrate_threshold(
      env.target_network(), *squeezer, env.trained.train_features,
      /*percentile=*/90.0);
  defenses.push_back(std::make_unique<defense::FeatureSqueezing>(
      env.detector().network_ptr(), std::move(squeezer), threshold));

  std::cerr << "# dimensionality reduction (k=19)...\n";
  defense::DimReductionConfig dr_cfg;
  dr_cfg.k = 19;
  dr_cfg.training = env.config.target_training();
  auto dim_reduct = defense::train_dim_reduction_defense(train_data, dr_cfg);
  defenses.push_back(std::move(dim_reduct));

  // --- Table VI ------------------------------------------------------------
  const math::Matrix& clean = env.clean_features;
  // All malware test rows (not only the attacked subset).
  const auto malware_rows = env.bundle.test.indices_of(data::kMalwareLabel);
  const math::Matrix malware =
      env.trained.test_features.gather_rows(malware_rows);

  eval::Table t6("TABLE VI: DEFENSE TESTING RESULTS (TPR / TNR)");
  t6.header({"Defense", "Dataset Name", "TPR", "TNR"});
  const struct {
    const char* label;
    double DefenseRow::*value;
    bool is_tpr;
  } rows[] = {
      {"Clean Test", &DefenseRow::clean_tnr, false},
      {"Malware Test", &DefenseRow::malware_tpr, true},
      {"AdvExamples", &DefenseRow::advex_tpr, true},
  };
  for (auto& clf : defenses) {
    const DefenseRow r = evaluate(*clf, clean, malware, advex_eval);
    for (const auto& spec : rows) {
      t6.row({r.name, spec.label,
              spec.is_tpr ? eval::Table::fmt(r.*(spec.value)) : "nan",
              spec.is_tpr ? "nan" : eval::Table::fmt(r.*(spec.value))});
    }
    t6.separator();
  }
  std::cout << t6.render();

  std::cout <<
      "\npaper Table VI for comparison:\n"
      "  NoDefense:    clean TNR 0.964 | malware TPR 0.883 | advex TPR 0.304\n"
      "  AdvTraining:  clean TNR 0.995 | malware TPR 0.888 | advex TPR 0.931\n"
      "  Distillation: clean TNR 0.428 | malware TPR 0.573 | advex TPR 0.577\n"
      "  FeaSqueezing: clean TNR 0.586 | malware     0.438 | advex TPR 0.554\n"
      "  DimReduct:    clean TNR 0.674 | malware TPR 0.914 | advex TPR 0.913\n";
  return 0;
}
