// Layer abstraction: dense (affine + activation) and dropout layers.
//
// Layers cache whatever the backward pass needs during forward; a Layer is
// therefore stateful across a forward/backward pair and not thread-safe.
// Clone a network per thread for concurrent inference.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "nn/activation.hpp"

namespace mev::nn {

/// A mutable view of one parameter tensor and its gradient accumulator,
/// handed to optimizers.
struct ParamRef {
  math::Matrix* value = nullptr;
  math::Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass on a batch (rows are samples). `training` enables
  /// stochastic behaviour (dropout).
  virtual math::Matrix forward(const math::Matrix& x, bool training) = 0;

  /// Backward pass: receives dLoss/dOutput, accumulates parameter
  /// gradients, returns dLoss/dInput. Must follow a forward call with the
  /// matching batch.
  virtual math::Matrix backward(const math::Matrix& grad_output) = 0;

  /// Parameter/gradient pairs (empty for parameterless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Zeroes accumulated gradients.
  virtual void zero_grad() {}

  virtual std::size_t input_dim() const = 0;
  virtual std::size_t output_dim() const = 0;

  virtual std::unique_ptr<Layer> clone() const = 0;
  virtual std::string name() const = 0;
};

/// Fully connected layer: y = act(x * W + b), W is in x out, b is 1 x out.
class DenseLayer final : public Layer {
 public:
  /// Initializes weights with He (relu-family) or Glorot (otherwise)
  /// scaling from `rng`; biases start at zero.
  DenseLayer(std::size_t in, std::size_t out, Activation act, math::Rng& rng);

  /// Constructs with explicit parameters (for deserialization/tests).
  /// `bias` must be 1 x weights.cols().
  DenseLayer(math::Matrix weights, math::Matrix bias, Activation act);

  math::Matrix forward(const math::Matrix& x, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;
  std::vector<ParamRef> params() override;
  void zero_grad() override;

  std::size_t input_dim() const override { return weights_.rows(); }
  std::size_t output_dim() const override { return weights_.cols(); }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "dense"; }

  Activation activation() const noexcept { return activation_; }
  const math::Matrix& weights() const noexcept { return weights_; }
  math::Matrix& mutable_weights() noexcept { return weights_; }
  const math::Matrix& bias() const noexcept { return bias_; }
  math::Matrix& mutable_bias() noexcept { return bias_; }

 private:
  math::Matrix weights_;      // in x out
  math::Matrix bias_;         // 1 x out
  math::Matrix weight_grad_;  // in x out
  math::Matrix bias_grad_;    // 1 x out
  Activation activation_;

  // Forward-pass caches.
  math::Matrix input_;
  math::Matrix pre_activation_;
  math::Matrix output_;
};

/// Inverted dropout: active only in training mode; scales kept units by
/// 1/(1-rate) so inference needs no rescaling.
class DropoutLayer final : public Layer {
 public:
  /// `dim` is the (equal) input/output width; rate in [0, 1).
  DropoutLayer(std::size_t dim, float rate, std::uint64_t seed);

  math::Matrix forward(const math::Matrix& x, bool training) override;
  math::Matrix backward(const math::Matrix& grad_output) override;

  std::size_t input_dim() const override { return dim_; }
  std::size_t output_dim() const override { return dim_; }
  std::unique_ptr<Layer> clone() const override;
  std::string name() const override { return "dropout"; }

  float rate() const noexcept { return rate_; }

 private:
  std::size_t dim_;
  float rate_;
  std::uint64_t seed_;
  math::Rng rng_;
  math::Matrix mask_;
};

}  // namespace mev::nn
