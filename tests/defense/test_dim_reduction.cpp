#include "defense/dim_reduction.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/dataset.hpp"

namespace mev::defense {
namespace {

nn::LabeledData correlated_blobs(std::size_t n, std::size_t d,
                                 std::uint64_t seed) {
  math::Rng rng(seed);
  nn::LabeledData data;
  data.x = math::Matrix(n, d);
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const double shift = label == 1 ? 0.5 : -0.5;
    const double t = rng.normal();
    for (std::size_t j = 0; j < d; ++j)
      data.x(i, j) = static_cast<float>(shift + 0.6 * t + 0.2 * rng.normal());
    data.labels[i] = label;
  }
  return data;
}

TEST(DimReduction, TrainsAndClassifies) {
  const auto data = correlated_blobs(300, 12, 7);
  DimReductionConfig cfg;
  cfg.k = 3;
  cfg.hidden = {16};
  cfg.training.epochs = 50;
  cfg.training.batch_size = 32;
  cfg.training.learning_rate = 0.01f;
  auto clf = train_dim_reduction_defense(data, cfg);
  ASSERT_NE(clf, nullptr);
  EXPECT_EQ(clf->pca().k(), 3u);
  const auto preds = clf->classify(data.x);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    correct += preds[i] == data.labels[i] ? 1 : 0;
  // The toy task's class shift is colinear with its shared noise
  // direction, capping attainable accuracy; we check learning, not Bayes.
  EXPECT_GT(static_cast<double>(correct) / preds.size(), 0.8);
}

TEST(DimReduction, ConfidencesMatchClasses) {
  const auto data = correlated_blobs(200, 10, 8);
  DimReductionConfig cfg;
  cfg.k = 2;
  cfg.training.epochs = 20;
  auto clf = train_dim_reduction_defense(data, cfg);
  const math::Matrix probe = data.x.slice_rows(0, 20);
  const auto classes = clf->classify(probe);
  const auto conf = clf->malware_confidence(probe);
  for (std::size_t i = 0; i < 20; ++i) {
    if (classes[i] == data::kMalwareLabel) {
      EXPECT_GE(conf[i], 0.5);
    } else {
      EXPECT_LE(conf[i], 0.5);
    }
  }
}

TEST(DimReduction, DiscardsOffComponentPerturbation) {
  // A perturbation orthogonal to the kept components must not change the
  // projected representation (the defense's whole premise).
  const auto data = correlated_blobs(300, 10, 9);
  DimReductionConfig cfg;
  cfg.k = 1;  // keep only the dominant direction
  cfg.training.epochs = 10;
  auto clf = train_dim_reduction_defense(data, cfg);

  math::Matrix x = data.x.slice_rows(0, 1);
  const math::Matrix z_before = clf->pca().transform(x);
  // Perturb along a direction orthogonal to component 0.
  const auto& comp = clf->pca().components();
  math::Matrix perturbed = x;
  // Build any vector orthogonal to comp(:,0): swap two loadings, negate one.
  perturbed(0, 0) += 0.2f * comp(1, 0);
  perturbed(0, 1) -= 0.2f * comp(0, 0);
  const math::Matrix z_after = clf->pca().transform(perturbed);
  EXPECT_NEAR(z_before(0, 0), z_after(0, 0), 1e-3);
}

TEST(DimReduction, ConstructorValidation) {
  math::Pca unfitted;
  nn::MlpConfig cfg;
  cfg.dims = {3, 4, 2};
  auto net = std::make_shared<nn::Network>(nn::make_mlp(cfg));
  EXPECT_THROW(DimReductionClassifier(unfitted, net), std::invalid_argument);
  EXPECT_THROW(DimReductionClassifier(unfitted, nullptr),
               std::invalid_argument);

  const auto data = correlated_blobs(50, 6, 10);
  math::Pca pca;
  pca.fit(data.x, 2);  // k = 2 != network input 3
  EXPECT_THROW(DimReductionClassifier(pca, net), std::invalid_argument);
}

TEST(DimReduction, ValidationPathWorks) {
  const auto data = correlated_blobs(200, 8, 11);
  const auto val = correlated_blobs(60, 8, 12);
  DimReductionConfig cfg;
  cfg.k = 2;
  cfg.training.epochs = 10;
  auto clf = train_dim_reduction_defense(data, cfg, &val);
  EXPECT_NE(clf, nullptr);
}

}  // namespace
}  // namespace mev::defense
