#include "defense/classifier.hpp"

#include <stdexcept>

#include "data/dataset.hpp"

namespace mev::defense {

std::vector<double> Classifier::malware_confidence(
    const math::Matrix& features) {
  // Default: hard decisions as 0/1 confidences.
  const auto classes = classify(features);
  std::vector<double> conf(classes.size());
  for (std::size_t i = 0; i < classes.size(); ++i)
    conf[i] = classes[i] == data::kMalwareLabel ? 1.0 : 0.0;
  return conf;
}

NetworkClassifier::NetworkClassifier(std::shared_ptr<nn::Network> net,
                                     std::string name)
    : net_(std::move(net)), name_(std::move(name)) {
  if (net_ == nullptr)
    throw std::invalid_argument("NetworkClassifier: null network");
  session_ = std::make_unique<nn::InferenceSession>(*net_);
}

std::vector<int> NetworkClassifier::classify(const math::Matrix& features) {
  const auto preds = session_->predict(features);
  return {preds.begin(), preds.end()};
}

std::vector<double> NetworkClassifier::malware_confidence(
    const math::Matrix& features) {
  const math::Matrix& probs = session_->predict_proba(features);
  std::vector<double> conf(probs.rows());
  for (std::size_t i = 0; i < probs.rows(); ++i)
    conf[i] = probs(i, data::kMalwareLabel);
  return conf;
}

}  // namespace mev::defense
