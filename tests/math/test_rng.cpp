#include "math/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace mev::math {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(10);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform_index(n), n);
  }
}

TEST(Rng, UniformIndexZeroReturnsZero) {
  Rng rng(11);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(12);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBothEnds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(-2, 2));
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMeanAndVariance) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(15);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(16);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(18);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

class RngPoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonMean, MeanMatchesLambda) {
  const double lambda = GetParam();
  Rng rng(19);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(lambda);
  EXPECT_NEAR(sum / n, lambda, std::max(0.05, lambda * 0.03));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonMean,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0, 50.0,
                                           100.0));

class RngGammaMean
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RngGammaMean, MeanMatchesShapeTimesScale) {
  const auto [shape, scale] = GetParam();
  Rng rng(20);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.gamma(shape, scale);
  const double expected = shape * scale;
  EXPECT_NEAR(sum / n, expected, expected * 0.05 + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RngGammaMean,
    ::testing::Values(std::pair{0.5, 1.0}, std::pair{1.0, 2.0},
                      std::pair{2.0, 0.5}, std::pair{3.0, 3.0},
                      std::pair{10.0, 0.1}));

TEST(Rng, GammaNonPositiveParamsReturnZero) {
  Rng rng(21);
  EXPECT_EQ(rng.gamma(0.0, 1.0), 0.0);
  EXPECT_EQ(rng.gamma(1.0, 0.0), 0.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(22);
  const int n = 50000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalDegenerateWeights) {
  Rng rng(24);
  EXPECT_EQ(rng.categorical({0.0, 0.0}), 0u);
  EXPECT_EQ(rng.categorical({-1.0, -2.0}), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(25);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(42);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace mev::math
