#include "defense/feature_squeezing.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "data/dataset.hpp"
#include "nn/trainer.hpp"

namespace mev::defense {
namespace {

class BitDepth : public ::testing::TestWithParam<int> {};

TEST_P(BitDepth, QuantizesToLevels) {
  const int bits = GetParam();
  const BitDepthSqueezer squeezer(bits);
  math::Rng rng(4);
  math::Matrix x(4, 16);
  for (std::size_t i = 0; i < x.size(); ++i)
    x.data()[i] = static_cast<float>(rng.uniform());
  const math::Matrix y = squeezer.squeeze(x);
  const float levels = static_cast<float>((1 << bits) - 1);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const float scaled = y.data()[i] * levels;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-4);
    EXPECT_GE(y.data()[i], 0.0f);
    EXPECT_LE(y.data()[i], 1.0f);
    // Quantization error bounded by half a level.
    EXPECT_LE(std::abs(y.data()[i] - x.data()[i]), 0.5f / levels + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, BitDepth, ::testing::Values(1, 2, 3, 4, 8));

TEST(BitDepthSqueezer, Idempotent) {
  const BitDepthSqueezer squeezer(3);
  math::Matrix x{{0.13f, 0.77f, 0.5f}};
  const math::Matrix once = squeezer.squeeze(x);
  EXPECT_EQ(squeezer.squeeze(once), once);
}

TEST(BitDepthSqueezer, InvalidBitsThrow) {
  EXPECT_THROW(BitDepthSqueezer(0), std::invalid_argument);
  EXPECT_THROW(BitDepthSqueezer(17), std::invalid_argument);
}

TEST(BitDepthSqueezer, ClampsOutOfRangeInput) {
  const BitDepthSqueezer squeezer(2);
  math::Matrix x{{-0.5f, 1.5f}};
  const math::Matrix y = squeezer.squeeze(x);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 1), 1.0f);
}

TEST(BinarySqueezer, Thresholds) {
  const BinarySqueezer squeezer(0.5f);
  math::Matrix x{{0.2f, 0.5f, 0.9f}};
  const math::Matrix y = squeezer.squeeze(x);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 1), 0.0f);  // strict threshold
  EXPECT_EQ(y(0, 2), 1.0f);
}

struct Fixture {
  std::shared_ptr<nn::Network> net;
  math::Matrix legit;

  Fixture() {
    nn::MlpConfig cfg;
    cfg.dims = {8, 16, 2};
    cfg.seed = 5;
    net = std::make_shared<nn::Network>(nn::make_mlp(cfg));
    math::Rng rng(6);
    nn::LabeledData data;
    data.x = math::Matrix(200, 8);
    data.labels.resize(200);
    for (std::size_t i = 0; i < 200; ++i) {
      const int label = static_cast<int>(i % 2);
      for (std::size_t j = 0; j < 8; ++j)
        data.x(i, j) = static_cast<float>(std::clamp(
            (j < 4) == (label == 1) ? 0.6 + 0.15 * rng.normal()
                                    : 0.1 + 0.05 * rng.normal(),
            0.0, 1.0));
      data.labels[i] = label;
    }
    nn::TrainConfig tc;
    tc.epochs = 20;
    nn::train(*net, data, tc);
    legit = data.x;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(FeatureSqueezing, ConstructorValidation) {
  auto& f = fixture();
  EXPECT_THROW(FeatureSqueezing(nullptr,
                                std::make_unique<BitDepthSqueezer>(2), 0.1),
               std::invalid_argument);
  EXPECT_THROW(FeatureSqueezing(f.net, nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(FeatureSqueezing(f.net, std::make_unique<BitDepthSqueezer>(2),
                                -0.1),
               std::invalid_argument);
}

TEST(FeatureSqueezing, ScoresAreNonNegativeL1) {
  auto& f = fixture();
  FeatureSqueezing fs(f.net, std::make_unique<BitDepthSqueezer>(2), 0.5);
  const auto scores = fs.scores(f.legit.slice_rows(0, 20));
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 2.0);  // L1 between two 2-class distributions is <= 2
  }
}

TEST(FeatureSqueezing, CalibratedThresholdBoundsLegitFlagRate) {
  auto& f = fixture();
  const BitDepthSqueezer squeezer(2);
  const double threshold = FeatureSqueezing::calibrate_threshold(
      *f.net, squeezer, f.legit, 90.0);
  FeatureSqueezing fs(f.net, std::make_unique<BitDepthSqueezer>(2),
                      threshold);
  const auto flagged = fs.is_adversarial(f.legit);
  std::size_t n = 0;
  for (bool b : flagged) n += b ? 1 : 0;
  // About 10% of the calibration data sits above its own 90th percentile.
  EXPECT_NEAR(static_cast<double>(n) / flagged.size(), 0.10, 0.06);
}

TEST(FeatureSqueezing, CalibrateThresholdEmptyThrows) {
  auto& f = fixture();
  const BitDepthSqueezer squeezer(2);
  EXPECT_THROW(FeatureSqueezing::calibrate_threshold(*f.net, squeezer,
                                                     math::Matrix(0, 8)),
               std::invalid_argument);
}

TEST(FeatureSqueezing, FlaggedRowsAreClassifiedMalware) {
  auto& f = fixture();
  // Threshold 0 flags everything with any prediction difference.
  FeatureSqueezing fs(f.net, std::make_unique<BinarySqueezer>(), 0.0);
  const math::Matrix probe = f.legit.slice_rows(0, 10);
  const auto flagged = fs.is_adversarial(probe);
  const auto classes = fs.classify(probe);
  for (std::size_t i = 0; i < 10; ++i) {
    if (flagged[i]) {
      EXPECT_EQ(classes[i], data::kMalwareLabel);
    }
  }
}

TEST(FeatureSqueezing, HugeThresholdNeverFlags) {
  auto& f = fixture();
  FeatureSqueezing fs(f.net, std::make_unique<BitDepthSqueezer>(2), 10.0);
  const math::Matrix probe = f.legit.slice_rows(0, 10);
  const auto classes = fs.classify(probe);
  EXPECT_EQ(classes, f.net->predict(probe));
}

}  // namespace
}  // namespace mev::defense
