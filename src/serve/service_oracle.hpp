// ServiceOracle: the black-box CountOracle backed by a ScoringService
// instead of a privately-owned InferenceSession — so attacker queries ride
// the exact same admission/batching/hot-swap path as external traffic
// (the realistic deployment: the oracle IS the service, Rosenberg et al.
// 2017). Labels are bit-identical to core::DetectorOracle on the same
// model, so BlackBoxResult is unchanged (asserted by the equivalence
// test in tests/serve/).
//
// Service rejections surface as runtime::OracleError subclasses, which
// plugs the service's backpressure into the PR 2 resilience decorators:
// wrap a ServiceOracle in a runtime::ResilientOracle and queue-full
// rejections are retried with backoff like any transient oracle fault.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/oracle.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {

class ServiceOracle final : public runtime::CountOracle {
 public:
  /// `service` must outlive the oracle. `deadline_ms` is forwarded as the
  /// per-submission deadline (0 = none).
  explicit ServiceOracle(ScoringService& service,
                         std::uint64_t deadline_ms = 0)
      : service_(&service), deadline_ms_(deadline_ms) {}

  /// Submits the rows and waits for the verdicts. Throws
  /// runtime::TransientOracleError on queue_full/deadline rejections
  /// (retryable: the service may drain) and runtime::PermanentOracleError
  /// when the service is shutting down.
  std::vector<int> label_counts(const math::Matrix& counts) override;

 private:
  ScoringService* service_;
  std::uint64_t deadline_ms_;
};

}  // namespace mev::serve
