// Serving-side observability: the counter block every ScoringService
// exposes. The power-of-two histogram behind the latency digests was
// promoted to obs/histogram.hpp (PR 4) — the aliases below keep every
// serve call site and test source-compatible.
//
// Percentile accuracy: p50/p95/p99 come from obs::Log2Histogram, which
// buckets values in [2^(i-1), 2^i) and interpolates by rank inside the
// winning bucket, so a reported percentile is at most one octave from the
// true one — plenty for capacity planning, cheap enough to sit on the
// batch completion path (the bound is pinned by
// tests/obs/test_histogram.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace mev::serve {

using Log2Histogram = obs::Log2Histogram;
using LatencySummary = obs::LatencySummary;
using obs::summarize;

/// Point-in-time copy of a service's counters and histograms, returned by
/// ScoringService::stats(). Requests are counted once each; rows follow
/// the request they belong to. When the service is built with a
/// MetricsRegistry, the same quantities are mirrored there under
/// mev.serve.* for Prometheus export.
struct ServiceStats {
  std::uint64_t accepted_requests = 0;
  std::uint64_t accepted_rows = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t completed_requests = 0;
  std::uint64_t completed_rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t model_swaps = 0;
  /// Requests an idle worker pulled from a shard it does not own.
  std::uint64_t stolen_requests = 0;
  /// Submissions whose home shard ring was full and landed on a neighbor.
  std::uint64_t spilled_submissions = 0;

  Log2Histogram batch_rows;        // rows per scored batch
  Log2Histogram queue_delay_us;    // submit -> batch formation, per request
  Log2Histogram e2e_latency_us;    // submit -> verdict ready, per request

  std::uint64_t rejected_total() const noexcept {
    return rejected_queue_full + rejected_shutting_down + rejected_deadline;
  }

  /// Multi-line human-readable dump (the examples print this).
  std::string to_string() const;
};

}  // namespace mev::serve
