#include "math/pca.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace mev::math {
namespace {

Matrix correlated_data(std::size_t n, std::size_t d, std::uint64_t seed) {
  // Data with variance concentrated in a few directions.
  Rng rng(seed);
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = rng.normal();   // dominant direction
    const double u = rng.normal();   // second direction
    for (std::size_t j = 0; j < d; ++j) {
      const double loading1 = std::sin(0.3 * static_cast<double>(j + 1));
      const double loading2 = std::cos(0.7 * static_cast<double>(j + 1));
      x(i, j) = static_cast<float>(5.0 * t * loading1 + 2.0 * u * loading2 +
                                   0.1 * rng.normal());
    }
  }
  return x;
}

TEST(Jacobi, DiagonalMatrix) {
  const Matrix a{{3, 0}, {0, 1}};
  const EigenResult e = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-6);
  EXPECT_NEAR(e.values[1], 1.0, 1e-6);
}

TEST(Jacobi, KnownSymmetricMatrix) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  const Matrix a{{2, 1}, {1, 2}};
  const EigenResult e = jacobi_eigen_symmetric(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-5);
  EXPECT_NEAR(e.values[1], 1.0, 1e-5);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors(0, 0)), std::sqrt(0.5), 1e-4);
}

TEST(Jacobi, NonSquareThrows) {
  EXPECT_THROW(jacobi_eigen_symmetric(Matrix(2, 3)), std::invalid_argument);
}

TEST(Jacobi, ReconstructsMatrix) {
  Rng rng(5);
  Matrix a(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    for (std::size_t j = i; j < 6; ++j) {
      const float v = static_cast<float>(rng.normal());
      a(i, j) = v;
      a(j, i) = v;
    }
  const EigenResult e = jacobi_eigen_symmetric(a);
  // A = V diag(w) V^T
  Matrix lambda(6, 6);
  for (std::size_t i = 0; i < 6; ++i)
    lambda(i, i) = static_cast<float>(e.values[i]);
  const Matrix rebuilt =
      matmul(matmul(e.vectors, lambda), e.vectors.transposed());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(rebuilt.data()[i], a.data()[i], 1e-3);
}

TEST(TopK, MatchesJacobiOnLeadingPairs) {
  const Matrix x = correlated_data(200, 12, 9);
  const Matrix cov = covariance_matrix(x);
  const EigenResult full = jacobi_eigen_symmetric(cov);
  const EigenResult top = top_k_eigen(cov, 3);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(top.values[i], full.values[i],
                1e-3 * (1.0 + std::abs(full.values[i])));
}

TEST(TopK, VectorsAreOrthonormal) {
  const Matrix x = correlated_data(150, 10, 11);
  const EigenResult e = top_k_eigen(covariance_matrix(x), 4);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      double dot = 0;
      for (std::size_t i = 0; i < 10; ++i)
        dot += static_cast<double>(e.vectors(i, a)) * e.vectors(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-3);
    }
  }
}

TEST(TopK, InvalidKThrows) {
  const Matrix a{{1, 0}, {0, 1}};
  EXPECT_THROW(top_k_eigen(a, 0), std::invalid_argument);
  EXPECT_THROW(top_k_eigen(a, 3), std::invalid_argument);
}

TEST(Pca, TransformShapes) {
  const Matrix x = correlated_data(100, 8, 13);
  Pca pca;
  pca.fit(x, 3);
  EXPECT_TRUE(pca.fitted());
  EXPECT_EQ(pca.k(), 3u);
  EXPECT_EQ(pca.input_dim(), 8u);
  const Matrix z = pca.transform(x);
  EXPECT_EQ(z.rows(), 100u);
  EXPECT_EQ(z.cols(), 3u);
  const Matrix back = pca.inverse_transform(z);
  EXPECT_EQ(back.cols(), 8u);
}

TEST(Pca, ReconstructionErrorDecreasesWithK) {
  const Matrix x = correlated_data(200, 10, 17);
  double prev_err = 1e30;
  for (std::size_t k : {1u, 2u, 5u, 9u}) {
    Pca pca;
    pca.fit(x, k);
    const Matrix rec = pca.reconstruct(x);
    double err = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x.data()[i] - rec.data()[i];
      err += d * d;
    }
    EXPECT_LT(err, prev_err + 1e-6);
    prev_err = err;
  }
}

TEST(Pca, TwoComponentsCaptureAlmostAllVariance) {
  const Matrix x = correlated_data(300, 10, 19);
  Pca pca;
  pca.fit(x, 2);
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
}

TEST(Pca, ExactModeMatchesIterative) {
  const Matrix x = correlated_data(120, 7, 23);
  Pca exact, iterative;
  exact.fit(x, 2, /*exact=*/true);
  iterative.fit(x, 2, /*exact=*/false);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(exact.explained_variance()[i],
                iterative.explained_variance()[i],
                1e-2 * (1.0 + exact.explained_variance()[i]));
}

TEST(Pca, Errors) {
  Pca pca;
  EXPECT_THROW(pca.transform(Matrix(1, 3)), std::logic_error);
  EXPECT_THROW(pca.fit(Matrix(0, 3), 1), std::invalid_argument);
  const Matrix x = correlated_data(20, 4, 29);
  EXPECT_THROW(pca.fit(x, 5), std::invalid_argument);
  pca.fit(x, 2);
  EXPECT_THROW(pca.transform(Matrix(1, 5)), std::invalid_argument);
  EXPECT_THROW(pca.inverse_transform(Matrix(1, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace mev::math
