#include "core/blackbox.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/persistence.hpp"
#include "obs/obs.hpp"
#include "runtime/atomic_file.hpp"
#include "runtime/query_cache.hpp"

namespace mev::core {

namespace {

template <typename T>
void append_bytes(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

/// Fingerprint of everything that determines the run's trajectory: the
/// config fields the loop reads plus the seed set itself. A checkpoint
/// written under one fingerprint refuses to resume under another.
std::uint64_t run_fingerprint(const BlackBoxConfig& config,
                              const math::Matrix& seed_counts) {
  std::string bytes;
  append_bytes(bytes, config.augmentation_rounds);
  append_bytes(bytes, config.lambda);
  for (std::size_t dim : config.substitute_architecture.dims)
    append_bytes(bytes, dim);
  append_bytes(bytes, config.substitute_architecture.hidden_activation);
  append_bytes(bytes, config.substitute_architecture.dropout);
  append_bytes(bytes, config.substitute_architecture.seed);
  append_bytes(bytes, config.training_per_round.epochs);
  append_bytes(bytes, config.training_per_round.batch_size);
  append_bytes(bytes, config.training_per_round.learning_rate);
  append_bytes(bytes, config.training_per_round.optimizer);
  append_bytes(bytes, config.training_per_round.temperature);
  append_bytes(bytes, config.training_per_round.shuffle_seed);
  append_bytes(bytes, config.max_dataset_rows);
  append_bytes(bytes, config.use_query_cache);
  append_bytes(bytes, seed_counts.rows());
  append_bytes(bytes, seed_counts.cols());
  bytes.append(reinterpret_cast<const char*>(seed_counts.data()),
               seed_counts.size() * sizeof(float));
  return runtime::fnv1a64(bytes);
}

}  // namespace

std::vector<int> DetectorOracle::label_counts(const math::Matrix& counts) {
  record_queries(counts.rows());
  const auto verdicts = detector_->scan_counts(session_, counts);
  std::vector<int> labels(verdicts.size());
  for (std::size_t i = 0; i < verdicts.size(); ++i)
    labels[i] = verdicts[i].predicted_class;
  return labels;
}

math::Matrix realize_counts(const features::CountTransform& transform,
                            const math::Matrix& features) {
  if (!transform.fitted())
    throw std::invalid_argument("realize_counts: transform is not fitted");
  if (features.cols() != transform.dim())
    throw std::invalid_argument(
        "realize_counts: feature dim " + std::to_string(features.cols()) +
        " does not match transform dim " + std::to_string(transform.dim()));
  math::Matrix counts(features.rows(), features.cols());
  for (std::size_t r = 0; r < features.rows(); ++r)
    for (std::size_t c = 0; c < features.cols(); ++c)
      counts(r, c) = static_cast<float>(
          transform.counts_for_feature_value(c, features(r, c)));
  return counts;
}

BlackBoxResult run_blackbox_framework(CountOracle& oracle,
                                      const math::Matrix& seed_counts,
                                      const BlackBoxConfig& config) {
  if (seed_counts.rows() == 0)
    throw std::invalid_argument("run_blackbox_framework: empty seed set");
  if (config.substitute_architecture.dims.empty() ||
      config.substitute_architecture.dims.front() != seed_counts.cols())
    throw std::invalid_argument(
        "run_blackbox_framework: substitute input dim " +
        std::to_string(config.substitute_architecture.dims.empty()
                           ? 0
                           : config.substitute_architecture.dims.front()) +
        " does not match seed feature dim " +
        std::to_string(seed_counts.cols()));
  if (config.max_dataset_rows < seed_counts.rows())
    throw std::invalid_argument(
        "run_blackbox_framework: max_dataset_rows " +
        std::to_string(config.max_dataset_rows) + " is below the seed size " +
        std::to_string(seed_counts.rows()));

  // Dedup repeat submissions through a caching decorator when asked; all
  // query accounting below goes through `query` so cached runs report the
  // reduced (post-dedup) budget.
  std::optional<runtime::CachingOracle> caching;
  CountOracle* query = &oracle;
  if (config.use_query_cache) {
    caching.emplace(oracle);
    query = &*caching;
  }
  const auto* resilient = dynamic_cast<const runtime::ResilientOracle*>(&oracle);

  // Observability: resolve the sinks once, then install them as the
  // ambient scope so the nested trainer and any attacker-side crafting
  // emit into the same trace. Durations below use the tracer's clock so
  // round stats match the emitted spans (and are deterministic when a
  // FakeClock-backed tracer is injected).
  obs::Tracer* tracer = obs::resolve(config.tracer);
  obs::MetricsRegistry* registry = obs::resolve(config.metrics);
  obs::Logger* logger = obs::resolve(config.logger);
  obs::Scope obs_scope(tracer, registry);
  runtime::Clock& obs_clock = tracer->clock();

  // Optional live admin plane for the run: long augmentation loops become
  // scrapeable while they work. Stops (and joins) when the run returns.
  std::unique_ptr<obs::AdminServer> admin;
  if (config.admin.enabled) {
    obs::AdminServerConfig admin_config = config.admin;
    if (admin_config.tracer == nullptr) admin_config.tracer = tracer;
    if (admin_config.metrics == nullptr) admin_config.metrics = registry;
    if (admin_config.logger == nullptr) admin_config.logger = logger;
    admin = std::make_unique<obs::AdminServer>(std::move(admin_config));
    if (!admin->start()) admin.reset();
  }
  obs::Counter queries_counter = registry->counter(
      "mev.core.blackbox.oracle_queries", "oracle submissions (rows)");
  obs::Counter cache_counter = registry->counter(
      "mev.core.blackbox.cache_hits", "oracle submissions answered by cache");
  obs::Counter retries_counter = registry->counter(
      "mev.core.blackbox.oracle_retries", "oracle retry attempts");
  obs::Counter timeouts_counter = registry->counter(
      "mev.core.blackbox.oracle_timeouts", "oracle call timeouts");
  obs::Counter trips_counter = registry->counter(
      "mev.core.blackbox.breaker_trips", "circuit-breaker open transitions");
  obs::Counter rounds_counter = registry->counter(
      "mev.core.blackbox.rounds", "completed augmentation rounds");
  obs::Gauge agreement_gauge = registry->gauge(
      "mev.core.blackbox.oracle_agreement",
      "substitute/oracle agreement after the last round");
  obs::Gauge rows_gauge = registry->gauge(
      "mev.core.blackbox.dataset_rows", "attacker dataset rows");

  const std::uint64_t fingerprint = run_fingerprint(config, seed_counts);
  const bool checkpointing = !config.checkpoint_path.empty();

  BlackBoxResult result;
  math::Matrix counts;
  std::size_t start_round = 0;
  // Queries completed before this process took over (from a checkpoint),
  // and this oracle's count when the run started — cumulative stats stay
  // comparable across interruptions and pre-used oracles.
  std::size_t query_offset = 0;
  const std::size_t query_base = query->queries();

  if (checkpointing && config.resume &&
      std::filesystem::exists(config.checkpoint_path)) {
    BlackBoxCheckpoint ckpt =
        load_blackbox_checkpoint(config.checkpoint_path);
    if (ckpt.config_fingerprint != fingerprint)
      throw std::runtime_error(
          "run_blackbox_framework: checkpoint " + config.checkpoint_path +
          " was written by a different config or seed set");
    result.substitute = std::make_shared<nn::Network>(std::move(ckpt.substitute));
    result.attacker_transform = std::move(ckpt.attacker_transform);
    result.rounds = std::move(ckpt.rounds);
    result.resumed = true;
    result.resumed_from_round = ckpt.next_round;
    if (ckpt.finished) {
      result.total_queries = ckpt.total_queries;
      return result;
    }
    counts = std::move(ckpt.counts);
    start_round = ckpt.next_round;
    query_offset = ckpt.total_queries;
    if (caching) caching->cache().import_entries(ckpt.cache_rows,
                                                 ckpt.cache_labels);
    MEV_LOG(*logger, obs::LogLevel::kInfo, "core.blackbox",
            "resumed from checkpoint",
            {obs::LogField::u64_value("next_round", start_round),
             obs::LogField::u64_value("dataset_rows", counts.rows()),
             obs::LogField::u64_value("queries", query_offset)});
  } else {
    result.attacker_transform.fit(seed_counts);
    counts = seed_counts;  // the attacker's growing sample set
    result.substitute = std::make_shared<nn::Network>(
        nn::make_mlp(config.substitute_architecture));
  }

  const auto queries_so_far = [&] {
    return query_offset + (query->queries() - query_base);
  };
  const auto write_checkpoint = [&](std::size_t next_round, bool finished) {
    BlackBoxCheckpoint ckpt;
    ckpt.config_fingerprint = fingerprint;
    ckpt.next_round = next_round;
    ckpt.finished = finished;
    ckpt.total_queries = queries_so_far();
    ckpt.counts = counts;
    ckpt.rounds = result.rounds;
    ckpt.substitute = *result.substitute;
    ckpt.attacker_transform = result.attacker_transform;
    if (caching)
      caching->cache().export_entries(ckpt.cache_rows, ckpt.cache_labels);
    save_blackbox_checkpoint(ckpt, config.checkpoint_path);
  };

  // Previous-round cumulative values, so the registry counters advance by
  // per-round deltas (monotonic across resumes of a pre-used oracle).
  std::size_t prev_queries = 0, prev_cache_hits = 0;
  runtime::ResilienceStats prev_resilience;
  if (!result.rounds.empty()) {
    prev_queries = result.rounds.back().oracle_queries;
    prev_cache_hits = result.rounds.back().cache_hits;
    prev_resilience = result.rounds.back().resilience;
  }

  for (std::size_t round = start_round; round <= config.augmentation_rounds;
       ++round) {
    obs::Span round_span = obs::span(tracer, "mev.core.blackbox.round");
    round_span.arg("round", static_cast<double>(round));
    round_span.arg("rows", static_cast<double>(counts.rows()));

    // 1. Oracle labels for the current sample set.
    const std::uint64_t label_start_us = obs_clock.now_us();
    obs::Span label_span = obs::span(tracer, "mev.core.blackbox.label");
    label_span.arg("rows", static_cast<double>(counts.rows()));
    const std::vector<int> labels = query->label_counts(counts);
    label_span.finish();
    const std::uint64_t label_us = obs_clock.now_us() - label_start_us;
    if (labels.size() != counts.rows())
      throw std::runtime_error(
          "run_blackbox_framework: oracle returned " +
          std::to_string(labels.size()) + " labels for " +
          std::to_string(counts.rows()) + " rows");
    const math::Matrix features = result.attacker_transform.apply(counts);

    // 2. (Re)train the substitute from scratch on the labelled set; a fresh
    //    model per round avoids inheriting a bad early fit.
    const std::uint64_t train_start_us = obs_clock.now_us();
    obs::Span train_span = obs::span(tracer, "mev.core.blackbox.train");
    train_span.arg("rows", static_cast<double>(counts.rows()));
    *result.substitute =
        nn::make_mlp(config.substitute_architecture);
    nn::LabeledData train_data{features, labels};
    nn::train(*result.substitute, train_data, config.training_per_round);
    train_span.finish();
    const std::uint64_t train_us = obs_clock.now_us() - train_start_us;

    BlackBoxRoundStats stats;
    stats.dataset_rows = counts.rows();
    stats.oracle_queries = queries_so_far();
    stats.oracle_agreement =
        nn::accuracy(*result.substitute, features, labels);
    if (resilient != nullptr) stats.resilience = resilient->stats();
    if (caching) stats.cache_hits = caching->hits();
    stats.label_us = label_us;
    stats.train_us = train_us;
    result.rounds.push_back(stats);

    MEV_LOG(*logger, obs::LogLevel::kInfo, "core.blackbox", "round complete",
            {obs::LogField::u64_value("round", round),
             obs::LogField::u64_value("dataset_rows", stats.dataset_rows),
             obs::LogField::u64_value("oracle_queries", stats.oracle_queries),
             obs::LogField::f64_value("oracle_agreement",
                                      stats.oracle_agreement),
             obs::LogField::u64_value("label_us", stats.label_us),
             obs::LogField::u64_value("train_us", stats.train_us)});

    rounds_counter.inc();
    queries_counter.inc(stats.oracle_queries - prev_queries);
    cache_counter.inc(stats.cache_hits - prev_cache_hits);
    retries_counter.inc(stats.resilience.retries - prev_resilience.retries);
    timeouts_counter.inc(stats.resilience.timeouts -
                         prev_resilience.timeouts);
    trips_counter.inc(stats.resilience.breaker_trips -
                      prev_resilience.breaker_trips);
    agreement_gauge.set(stats.oracle_agreement);
    rows_gauge.set(static_cast<double>(stats.dataset_rows));
    prev_queries = stats.oracle_queries;
    prev_cache_hits = stats.cache_hits;
    prev_resilience = stats.resilience;

    if (round == config.augmentation_rounds ||
        counts.rows() * 2 > config.max_dataset_rows) {
      if (checkpointing) write_checkpoint(round + 1, /*finished=*/true);
      break;
    }

    // 3. Jacobian-based augmentation: push each point along the sign of
    //    the substitute's gradient for its ORACLE label, realize to
    //    integer counts, and append. The session is created after this
    //    round's retraining (retraining replaces the layer objects).
    const std::uint64_t augment_start_us = obs_clock.now_us();
    obs::Span augment_span = obs::span(tracer, "mev.core.blackbox.augment");
    nn::InferenceSession substitute_session(*result.substitute);
    math::Matrix augmented = counts;
    for (int cls : {data::kCleanLabel, data::kMalwareLabel}) {
      std::vector<std::size_t> rows_of_cls;
      for (std::size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == cls) rows_of_cls.push_back(i);
      if (rows_of_cls.empty()) continue;
      const math::Matrix subset = features.gather_rows(rows_of_cls);
      // Copy out of the session buffer: the next class iteration reuses it.
      const math::Matrix grad =
          substitute_session.input_gradient(subset, cls);
      math::Matrix moved = subset;
      for (std::size_t i = 0; i < moved.rows(); ++i)
        for (std::size_t j = 0; j < moved.cols(); ++j) {
          const float g = grad(i, j);
          const float step =
              g > 0.0f ? config.lambda : (g < 0.0f ? -config.lambda : 0.0f);
          moved(i, j) = std::clamp(moved(i, j) + step, 0.0f, 1.0f);
        }
      const math::Matrix new_counts =
          realize_counts(result.attacker_transform, moved);
      for (std::size_t i = 0; i < new_counts.rows(); ++i)
        augmented.append_row(new_counts.row(i));
    }
    counts = std::move(augmented);
    augment_span.arg("rows_after", static_cast<double>(counts.rows()));
    augment_span.finish();
    result.rounds.back().augment_us = obs_clock.now_us() - augment_start_us;

    // 4. Round complete: persist everything needed to restart from here.
    if (checkpointing) write_checkpoint(round + 1, /*finished=*/false);
  }

  result.total_queries = queries_so_far();
  MEV_LOG(*logger, obs::LogLevel::kInfo, "core.blackbox", "run finished",
          {obs::LogField::u64_value("rounds", result.rounds.size()),
           obs::LogField::u64_value("total_queries", result.total_queries),
           obs::LogField::string("resumed", result.resumed ? "yes" : "no")});
  return result;
}

}  // namespace mev::core
