// Feature transformations: raw API counts -> model inputs in [0, 1]
// ("The raw counts of the APIs were applied to feature transformation and
//  the values were normalized to [0,1]", §II-A).
//
// Two transforms are provided:
//  * CountTransform — log-compression then per-feature max normalization,
//    fit on the training split. This is the target detector's pipeline.
//  * BinaryTransform — presence/absence features, the reduced-knowledge
//    pipeline the grey-box attacker uses in the paper's second experiment
//    (Fig. 4(c)).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"

namespace mev::features {

class FeatureTransform {
 public:
  virtual ~FeatureTransform() = default;

  /// Maps one raw count row to normalized features in [0, 1].
  virtual std::vector<float> apply_row(std::span<const float> counts) const = 0;

  /// Batch version: one row per sample.
  math::Matrix apply(const math::Matrix& counts) const;

  virtual std::size_t dim() const noexcept = 0;
  virtual std::string name() const = 0;
  virtual std::unique_ptr<FeatureTransform> clone() const = 0;
};

enum class CountScaling {
  /// x_i = count_i / max_train_count_i (the paper's "raw counts ...
  /// normalized to [0,1]" reading; min-max normalization).
  kLinear,
  /// x_i = log1p(count_i) / log1p(max_train_count_i) — compresses the
  /// heavy-tailed counts; provided as an ablation (DESIGN.md §5).
  kLog1p,
};

/// Per-feature max normalization of raw counts to [0, 1], fit on the
/// training split, with linear (default) or log1p scaling.
class CountTransform final : public FeatureTransform {
 public:
  explicit CountTransform(CountScaling scaling = CountScaling::kLinear)
      : scaling_(scaling) {}

  /// Fits per-feature denominators on the training counts.
  void fit(const math::Matrix& train_counts);
  bool fitted() const noexcept { return !denominators_.empty(); }

  std::vector<float> apply_row(std::span<const float> counts) const override;
  std::size_t dim() const noexcept override { return denominators_.size(); }
  std::string name() const override { return "count"; }
  std::unique_ptr<FeatureTransform> clone() const override;

  /// Inverse map for one feature: the raw count whose normalized value is
  /// `feature_value` (rounded up). Used by the source-level attack to turn
  /// a feature-space perturbation back into "add the API k times".
  std::size_t counts_for_feature_value(std::size_t feature_index,
                                       float feature_value) const;

  const std::vector<float>& denominators() const noexcept {
    return denominators_;
  }
  CountScaling scaling() const noexcept { return scaling_; }

  void save(std::ostream& os) const;
  static CountTransform load(std::istream& is);

 private:
  CountScaling scaling_ = CountScaling::kLinear;
  std::vector<float> denominators_;  // scaled max count per feature, >= 1
};

/// x_i = 1 if count_i > 0 else 0.
class BinaryTransform final : public FeatureTransform {
 public:
  explicit BinaryTransform(std::size_t dim) : dim_(dim) {}

  std::vector<float> apply_row(std::span<const float> counts) const override;
  std::size_t dim() const noexcept override { return dim_; }
  std::string name() const override { return "binary"; }
  std::unique_ptr<FeatureTransform> clone() const override;

 private:
  std::size_t dim_;
};

}  // namespace mev::features
