// ServiceOracle: the black-box oracle path routed through the scoring
// service must be observationally identical to querying the detector
// directly — same labels, and a bit-identical BlackBoxResult (the PR 2
// equivalence idiom applied to the serving layer).
#include "serve/service_oracle.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/blackbox.hpp"
#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"
#include "runtime/oracle_error.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

struct Fixture {
  features::FeaturePipeline pipeline;
  std::shared_ptr<nn::Network> network;
  core::MalwareDetector detector;

  Fixture()
      : pipeline(data::ApiVocab::instance(),
                 [] {
                   auto t = std::make_unique<features::CountTransform>();
                   t->fit(random_counts(64, 7));
                   return t;
                 }()),
        network([] {
          nn::MlpConfig cfg;
          cfg.dims = {kDim, 16, 2};
          cfg.seed = 11;
          return std::make_shared<nn::Network>(nn::make_mlp(cfg));
        }()),
        detector(pipeline, network) {}
};

std::string network_bytes(const nn::Network& net) {
  std::ostringstream os;
  nn::save_network(net, os);
  return os.str();
}

TEST(ServiceOracle, LabelsMatchDetectorOracle) {
  Fixture f;
  ScoringService service(f.pipeline, f.network, ServiceConfig{});
  ServiceOracle via_service(service);
  core::DetectorOracle direct(f.detector);

  const math::Matrix counts = random_counts(37, 21);
  EXPECT_EQ(via_service.label_counts(counts), direct.label_counts(counts));
  EXPECT_EQ(via_service.queries(), 37u);
}

TEST(ServiceOracle, BlackBoxResultBitIdenticalToDirectOracle) {
  Fixture f;
  core::BlackBoxConfig cfg;
  cfg.substitute_architecture.dims = {kDim, 16, 2};
  cfg.substitute_architecture.seed = 4;
  cfg.training_per_round.epochs = 3;
  cfg.augmentation_rounds = 2;
  const math::Matrix seed = random_counts(16, 31);

  core::DetectorOracle direct(f.detector);
  const auto reference = core::run_blackbox_framework(direct, seed, cfg);

  ScoringService service(f.pipeline, f.network, ServiceConfig{});
  ServiceOracle oracle(service);
  const auto via_service = core::run_blackbox_framework(oracle, seed, cfg);

  ASSERT_EQ(via_service.rounds.size(), reference.rounds.size());
  for (std::size_t i = 0; i < reference.rounds.size(); ++i) {
    EXPECT_EQ(via_service.rounds[i].dataset_rows,
              reference.rounds[i].dataset_rows) << i;
    EXPECT_EQ(via_service.rounds[i].oracle_queries,
              reference.rounds[i].oracle_queries) << i;
    EXPECT_EQ(via_service.rounds[i].oracle_agreement,
              reference.rounds[i].oracle_agreement) << i;
  }
  EXPECT_EQ(via_service.total_queries, reference.total_queries);
  ASSERT_NE(via_service.substitute, nullptr);
  ASSERT_NE(reference.substitute, nullptr);
  EXPECT_EQ(network_bytes(*via_service.substitute),
            network_bytes(*reference.substitute));
}

TEST(ServiceOracle, QueueFullSurfacesAsTransientOracleError) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_rows = 4;
  cfg.clock = &clock;
  ScoringService service(f.pipeline, f.network, cfg);
  ServiceOracle oracle(service);
  // More rows than the admission bound: rejected, mapped to a retryable
  // oracle fault (the resilience decorators can backoff-and-retry it).
  EXPECT_THROW(oracle.label_counts(random_counts(5, 41)),
               runtime::TransientOracleError);
}

TEST(ServiceOracle, ShutdownSurfacesAsPermanentOracleError) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  ScoringService service(f.pipeline, f.network, cfg);
  service.shutdown();
  ServiceOracle oracle(service);
  EXPECT_THROW(oracle.label_counts(random_counts(2, 42)),
               runtime::PermanentOracleError);
}

}  // namespace
}  // namespace mev::serve
