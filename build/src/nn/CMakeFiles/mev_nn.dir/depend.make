# Empty dependencies file for mev_nn.
# This may be replaced when dependencies are built.
