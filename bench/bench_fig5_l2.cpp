// Reproduces Fig. 5: L2 distances across the decision boundary in the
// grey-box (exact features) setting.
//  (a) theta=0.1, sweep gamma   (b) gamma=0.005, sweep theta
//
// Expected shape (paper): d(malware, advex) < d(malware, clean) <
// d(clean, advex); all distances grow with attack strength. Adversarial
// examples sit in a blind spot far from the clean class, NOT on the
// malware/clean boundary.
//
//   ./bench_fig5_l2 [tiny|fast|full]
#include <iostream>

#include "bench_common.hpp"
#include "core/greybox.hpp"
#include "core/security_eval.hpp"
#include "core/substitute.hpp"
#include "eval/distance_analysis.hpp"
#include "features/transform.hpp"

using namespace mev;

namespace {

void run_panel(bench::Environment& env, nn::Network& substitute,
               const core::FeatureSpaceMap& map,
               const core::SweepConfig& sweep, const std::string& title) {
  std::cerr << "# sweeping " << title << "...\n";
  const auto result = core::run_security_sweep(
      substitute, env.target_network(), env.malware_features, sweep, map,
      &env.clean_features);
  std::cout << "\n--- " << title << " ---\n";
  const std::string parameter =
      sweep.parameter == core::SweepParameter::kGamma ? "gamma" : "theta";
  std::cout << eval::render_distance_curve(parameter, result.distances);

  std::size_t holds = 0;
  for (const auto& p : result.distances)
    if (p.attack_strength > 0.0 && p.distances.paper_ordering_holds())
      ++holds;
  std::cout << "paper ordering holds at " << holds << "/"
            << result.distances.size() - 1 << " non-zero strengths\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));

  std::cerr << "# training the substitute (exact features)...\n";
  const data::CountDataset attacker_data = bench::attacker_dataset(env);
  auto sub =
      core::train_substitute_exact_features(attacker_data, env.config,
                                           env.detector().pipeline());
  const auto& attacker_transform = dynamic_cast<const features::CountTransform&>(
      sub.pipeline.transform());
  const auto map = core::make_greybox_count_map(
      attacker_transform, env.detector().pipeline(), env.malware_counts);

  std::cout << "Fig. 5 — L2 distances in the grey-box attack (original "
               "features)\n";
  run_panel(env, *sub.network, map, core::SweepConfig::fig4a(),
            "Fig. 5(a): theta=0.100, sweep gamma");
  run_panel(env, *sub.network, map, core::SweepConfig::fig4b(),
            "Fig. 5(b): gamma=0.005, sweep theta");
  return 0;
}
