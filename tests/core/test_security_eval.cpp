#include "core/security_eval.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/dataset.hpp"
#include "nn/trainer.hpp"

namespace mev::core {
namespace {

TEST(SweepConfig, Fig3aGridMatchesPaper) {
  const SweepConfig c = SweepConfig::fig3a();
  EXPECT_EQ(c.parameter, SweepParameter::kGamma);
  ASSERT_EQ(c.grid.size(), 7u);  // 0 : 0.005 : 0.030
  EXPECT_DOUBLE_EQ(c.grid.front(), 0.0);
  EXPECT_NEAR(c.grid.back(), 0.030, 1e-9);
  EXPECT_DOUBLE_EQ(c.fixed_theta, 0.1);
}

TEST(SweepConfig, Fig3bGridMatchesPaper) {
  const SweepConfig c = SweepConfig::fig3b();
  EXPECT_EQ(c.parameter, SweepParameter::kTheta);
  ASSERT_EQ(c.grid.size(), 13u);  // 0 : 0.0125 : 0.15
  EXPECT_NEAR(c.grid.back(), 0.15, 1e-9);
  EXPECT_DOUBLE_EQ(c.fixed_gamma, 0.025);
}

TEST(SweepConfig, Fig4bUsesTwoFeatureBudget) {
  EXPECT_DOUBLE_EQ(SweepConfig::fig4b().fixed_gamma, 0.005);
}

struct Fixture {
  nn::Network net;
  math::Matrix malware;
  math::Matrix clean;

  Fixture() {
    nn::MlpConfig cfg;
    cfg.dims = {12, 20, 2};
    cfg.seed = 5;
    net = nn::make_mlp(cfg);
    math::Rng rng(6);
    nn::LabeledData train;
    train.x = math::Matrix(300, 12);
    train.labels.resize(300);
    for (std::size_t i = 0; i < 300; ++i) {
      const int label = static_cast<int>(i % 2);
      for (std::size_t j = 0; j < 12; ++j) {
        const bool hot = label == 1 ? j < 6 : j >= 6;
        train.x(i, j) = static_cast<float>(std::clamp(
            hot ? 0.5 + 0.2 * rng.normal() : 0.1 + 0.05 * rng.normal(), 0.0,
            1.0));
      }
      train.labels[i] = label;
    }
    nn::TrainConfig tc;
    tc.epochs = 30;
    nn::train(net, train, tc);
    malware = math::Matrix(0, 12);
    clean = math::Matrix(0, 12);
    for (std::size_t i = 0; i < 300 && (malware.rows() < 30 || clean.rows() < 30); ++i) {
      if (train.labels[i] == 1 && malware.rows() < 30)
        malware.append_row(train.x.row(i));
      if (train.labels[i] == 0 && clean.rows() < 30)
        clean.append_row(train.x.row(i));
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(SecuritySweep, EmptyGridThrows) {
  auto& f = fixture();
  SweepConfig sweep;
  EXPECT_THROW(
      run_security_sweep(f.net, f.net, f.malware, sweep),
      std::invalid_argument);
}

TEST(SecuritySweep, NullMapThrows) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.grid = {0.1};
  FeatureSpaceMap map;  // both functions null
  EXPECT_THROW(run_security_sweep(f.net, f.net, f.malware, sweep, map),
               std::invalid_argument);
}

TEST(SecuritySweep, WhiteBoxCurvesCoincide) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kGamma;
  sweep.grid = {0.0, 0.1, 0.3};
  sweep.fixed_theta = 0.5;
  const SweepResult r = run_security_sweep(f.net, f.net, f.malware, sweep);
  ASSERT_EQ(r.target_curve.points.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(r.target_curve.points[i].detection_rate,
                r.craft_curve.points[i].detection_rate, 1e-9);
}

TEST(SecuritySweep, DetectionDecreasesWithStrength) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kGamma;
  sweep.grid = {0.0, 0.5};
  sweep.fixed_theta = 1.0;
  const SweepResult r = run_security_sweep(f.net, f.net, f.malware, sweep);
  EXPECT_LT(r.target_curve.points.back().detection_rate,
            r.target_curve.points.front().detection_rate);
}

TEST(SecuritySweep, ZeroStrengthMatchesBaseline) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kTheta;
  sweep.grid = {0.0};
  const SweepResult r = run_security_sweep(f.net, f.net, f.malware, sweep);
  const auto preds = f.net.predict(f.malware);
  std::size_t detected = 0;
  for (int p : preds) detected += p == data::kMalwareLabel ? 1 : 0;
  EXPECT_NEAR(r.target_curve.points[0].detection_rate,
              static_cast<double>(detected) / preds.size(), 1e-9);
  EXPECT_DOUBLE_EQ(r.target_curve.points[0].mean_l2, 0.0);
}

TEST(SecuritySweep, DistancesFilledWhenCleanProvided) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kGamma;
  sweep.grid = {0.0, 0.2};
  sweep.fixed_theta = 0.5;
  const SweepResult r =
      run_security_sweep(f.net, f.net, f.malware, sweep,
                         FeatureSpaceMap::identity(), &f.clean);
  ASSERT_EQ(r.distances.size(), 2u);
  EXPECT_GT(r.distances[1].distances.malware_to_adversarial,
            r.distances[0].distances.malware_to_adversarial);
}

TEST(SecuritySweep, CurveMetadataNamed) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kTheta;
  sweep.grid = {0.1};
  const SweepResult r = run_security_sweep(f.net, f.net, f.malware, sweep);
  EXPECT_EQ(r.target_curve.parameter, "theta");
  EXPECT_EQ(r.target_curve.name, "target model");
  EXPECT_EQ(r.craft_curve.name, "craft model");
}

TEST(SecuritySweep, FailedPointsAreIsolated) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kGamma;
  sweep.grid = {-1.0, 0.1};  // negative gamma is rejected by Jsma
  sweep.fixed_theta = 0.5;
  const SweepResult r = run_security_sweep(f.net, f.net, f.malware, sweep);
  ASSERT_EQ(r.failed_points.size(), 1u);
  EXPECT_EQ(r.failed_points[0].index, 0u);
  EXPECT_DOUBLE_EQ(r.failed_points[0].attack_strength, -1.0);
  EXPECT_NE(r.failed_points[0].message.find("gamma"), std::string::npos);
  // The healthy grid point was still evaluated.
  ASSERT_EQ(r.target_curve.points.size(), 2u);
  EXPECT_DOUBLE_EQ(r.target_curve.points[1].attack_strength, 0.1);
  EXPECT_GT(r.target_curve.points[1].detection_rate, 0.0);
}

TEST(SecuritySweep, IsolationOffRethrowsFirstFailure) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kGamma;
  sweep.grid = {-1.0, 0.1};
  sweep.fixed_theta = 0.5;
  sweep.isolate_failures = false;
  EXPECT_THROW(run_security_sweep(f.net, f.net, f.malware, sweep),
               std::invalid_argument);
}

TEST(SecuritySweep, FullyFailedSweepIsFatal) {
  auto& f = fixture();
  SweepConfig sweep;
  sweep.parameter = SweepParameter::kGamma;
  sweep.grid = {-1.0, -2.0};  // every point invalid
  EXPECT_THROW(run_security_sweep(f.net, f.net, f.malware, sweep),
               std::invalid_argument);
}

TEST(FeatureSpaceMapIdentity, PassesThrough) {
  const FeatureSpaceMap map = FeatureSpaceMap::identity();
  const math::Matrix m{{1, 2}};
  EXPECT_EQ(map.to_craft_space(m), m);
  EXPECT_EQ(map.to_target_space(m), m);
}

}  // namespace
}  // namespace mev::core
