#include "attack/source_attack.hpp"

#include <algorithm>

#include <stdexcept>

#include "data/dataset.hpp"
#include "nn/session.hpp"

namespace mev::attack {

std::size_t select_api_to_add(const nn::Network& craft_model,
                              std::span<const float> features,
                              std::span<const float> per_call_delta) {
  if (!per_call_delta.empty() && per_call_delta.size() != features.size())
    throw std::invalid_argument("select_api_to_add: delta length mismatch");
  const math::Matrix x = math::Matrix::row_vector(features);
  nn::InferenceSession session(craft_model, 1);
  const math::Matrix& grad = session.input_gradient(x, data::kCleanLabel);
  // Add-only: the best feature maximizes (gradient into the clean class) x
  // (total feature movement a realistic insertion budget can buy, capped
  // by the feature's headroom) among features that can still grow.
  constexpr float kInsertionBudget = 8.0f;  // the paper's live test budget
  float best = 0.0f;
  std::size_t best_j = features.size();
  for (std::size_t j = 0; j < features.size(); ++j) {
    const float headroom = 1.0f - features[j];
    if (headroom <= 0.0f) continue;
    const float movement =
        per_call_delta.empty()
            ? headroom
            : std::min(headroom, kInsertionBudget * per_call_delta[j]);
    const float score = grad(0, j) * movement;
    if (score > best) {
      best = score;
      best_j = j;
    }
  }
  if (best_j == features.size())
    throw std::runtime_error(
        "select_api_to_add: no admissible feature (saliency exhausted)");
  return best_j;
}

std::vector<float> per_call_feature_delta(
    const features::FeaturePipeline& pipeline,
    std::span<const float> raw_counts) {
  const std::vector<float> base = pipeline.features_from_counts_row(raw_counts);
  std::vector<float> bumped_counts(raw_counts.begin(), raw_counts.end());
  for (auto& c : bumped_counts) c += 1.0f;
  // Valid because both shipped transforms are elementwise: feature j of
  // the all-bumped row equals feature j of "only j bumped".
  const std::vector<float> bumped = pipeline.features_from_counts_row(bumped_counts);
  std::vector<float> delta(base.size());
  for (std::size_t j = 0; j < base.size(); ++j)
    delta[j] = std::max(0.0f, bumped[j] - base[j]);
  return delta;
}

LiveTestResult run_live_test(const nn::Network& target_model,
                             const features::FeaturePipeline& pipeline,
                             const data::ApiLog& malware_log,
                             std::size_t api_feature_index,
                             std::size_t max_insertions) {
  const auto& vocab = pipeline.extractor().vocab();
  if (api_feature_index >= vocab.size())
    throw std::invalid_argument("run_live_test: feature index out of range");

  LiveTestResult result;
  result.feature_index = api_feature_index;
  result.api_name = vocab.name(api_feature_index);
  result.points.reserve(max_insertions + 1);

  nn::InferenceSession session(target_model, 1);
  for (std::size_t k = 0; k <= max_insertions; ++k) {
    data::ApiLog modified = malware_log;
    modified.append_calls(result.api_name, k);
    const auto feats = pipeline.features_from_log(modified);
    const math::Matrix& probs =
        session.predict_proba(math::Matrix::row_vector(feats));
    LiveTestPoint point;
    point.insertions = k;
    point.malware_confidence = probs(0, data::kMalwareLabel);
    point.predicted_class =
        probs(0, data::kMalwareLabel) >= probs(0, data::kCleanLabel)
            ? data::kMalwareLabel
            : data::kCleanLabel;
    result.points.push_back(point);
  }
  return result;
}

LiveTestResult run_live_test(const nn::Network& target_model,
                             const nn::Network& craft_model,
                             const features::FeaturePipeline& pipeline,
                             const data::ApiLog& malware_log,
                             std::size_t max_insertions) {
  const auto counts = pipeline.extractor().extract(malware_log);
  const auto feats = pipeline.features_from_counts_row(counts);
  const auto delta = per_call_feature_delta(pipeline, counts);
  nn::InferenceSession craft_session(craft_model, 1);
  // Copy: the candidate loop below reuses craft_session's buffers.
  const math::Matrix grad = craft_session.input_gradient(
      math::Matrix::row_vector(feats), data::kCleanLabel);

  // Shortlist candidates by saliency, then SIMULATE the insertion against
  // the attacker's own substitute (which the attacker can query freely)
  // and engage the target with the candidate that works best there. The
  // gradient is only a local signal; the simulation checks the whole
  // insertion budget.
  struct Candidate {
    std::size_t feature;
    float score;
  };
  std::vector<Candidate> candidates;
  for (std::size_t j = 0; j < feats.size(); ++j) {
    const float headroom = 1.0f - feats[j];
    if (headroom <= 0.0f || delta[j] <= 0.0f) continue;
    const float movement = std::min(
        headroom, static_cast<float>(max_insertions) * delta[j]);
    const float score = grad(0, j) * movement;
    if (score > 0.0f) candidates.push_back({j, score});
  }
  if (candidates.empty())
    throw std::runtime_error("run_live_test: no admissible API to add");
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });
  if (candidates.size() > 10) candidates.resize(10);

  std::size_t best_feature = candidates.front().feature;
  double best_confidence = 2.0;
  const auto& vocab = pipeline.extractor().vocab();
  for (const Candidate& c : candidates) {
    std::vector<float> bumped(counts.begin(), counts.end());
    bumped[c.feature] += static_cast<float>(max_insertions);
    const auto bumped_feats = pipeline.features_from_counts_row(bumped);
    const math::Matrix& probs = craft_session.predict_proba(
        math::Matrix::row_vector(bumped_feats));
    if (probs(0, data::kMalwareLabel) < best_confidence) {
      best_confidence = probs(0, data::kMalwareLabel);
      best_feature = c.feature;
    }
  }
  (void)vocab;
  return run_live_test(target_model, pipeline, malware_log, best_feature,
                       max_insertions);
}

}  // namespace mev::attack
