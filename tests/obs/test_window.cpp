// SlidingCounter / SlidingHistogram / SlidingScoreHistogram / psi: the
// deterministic FakeClock contract (exact totals when record and read do
// not straddle a live rotation), the rotation edges (partial first
// window, clock jump past every bucket, stale writers), and the
// concurrent record-vs-rotate smear bound (run under TSan in CI).
#include "obs/window.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace mev::obs {
namespace {

constexpr std::uint64_t kUs = 1;
constexpr std::uint64_t kSecond = 1'000'000 * kUs;

TEST(SlidingCounterTest, AccumulatesWithinOneBucket) {
  SlidingCounter counter({/*bucket_us=*/kSecond, /*buckets=*/4});
  counter.add(100, 3);
  counter.add(200, 2);
  EXPECT_EQ(counter.total(500), 5u);
}

TEST(SlidingCounterTest, BucketsExpireAsTheWindowSlides) {
  // 4 x 1 s ring: epochs 0..3 fill, epoch 4 pushes epoch 0 out of the
  // full-span window.
  SlidingCounter counter({kSecond, 4});
  for (std::uint64_t e = 0; e < 4; ++e) counter.add(e * kSecond + 1, 10);
  EXPECT_EQ(counter.total(3 * kSecond + 2), 40u);
  // Advance into epoch 4: epoch 0 falls off even though its slot has not
  // been overwritten yet (window math, not slot reuse, bounds the read).
  EXPECT_EQ(counter.total(4 * kSecond + 1), 30u);
  // A sub-span window narrows further: only the last 2 buckets.
  EXPECT_EQ(counter.total(3 * kSecond + 2, 2 * kSecond), 20u);
}

TEST(SlidingCounterTest, RotationClearsReusedSlots) {
  SlidingCounter counter({kSecond, 2});
  counter.add(0, 7);  // epoch 0, slot 0
  // Epoch 2 maps to slot 0 again: the write must clear the stale 7.
  counter.add(2 * kSecond, 1);
  EXPECT_EQ(counter.total(2 * kSecond + 1), 1u);
}

TEST(SlidingCounterTest, ClockJumpPastEveryBucketReadsZero) {
  SlidingCounter counter({kSecond, 4});
  counter.add(1, 100);
  counter.add(kSecond + 1, 50);
  // Jump 1000 epochs forward without any new records: every slot's epoch
  // is below the window floor, so the total is 0 — never stale data.
  EXPECT_EQ(counter.total(1000 * kSecond), 0u);
}

TEST(SlidingCounterTest, StaleWriterDropsInsteadOfCorrupting) {
  SlidingCounter counter({kSecond, 2});
  counter.add(5 * kSecond, 3);  // epoch 5 in slot 1
  // A writer still holding a timestamp from epoch 1 (same slot) must not
  // charge epoch 5's bucket.
  counter.add(1 * kSecond, 99);
  EXPECT_EQ(counter.total(5 * kSecond + 1), 3u);
}

TEST(SlidingCounterTest, PartialFirstWindowRateUsesObservedTime) {
  // 60 x 5 s ring (5 min span) but only 10 s of traffic: the rate must
  // divide by ~10 s, not 300 s.
  SlidingCounter counter({5 * kSecond, 60});
  counter.add(0, 500);
  counter.add(10 * kSecond, 500);
  const double rate = counter.rate_per_s(10 * kSecond);
  EXPECT_NEAR(rate, 100.0, 1.0);
}

TEST(SlidingCounterTest, SteadyStateRateDividesByTheWindow) {
  SlidingCounter counter({kSecond, 4});
  // 10 adds/s for 20 s; the trailing 4 s window must report ~10/s.
  for (std::uint64_t t = 0; t < 20 * kSecond; t += kSecond / 10)
    counter.add(t, 1);
  const double rate = counter.rate_per_s(20 * kSecond - 1);
  EXPECT_NEAR(rate, 10.0, 1.0);
}

TEST(SlidingCounterTest, ZeroBeforeAnyAdd) {
  SlidingCounter counter;
  EXPECT_EQ(counter.total(123456), 0u);
  EXPECT_EQ(counter.rate_per_s(123456), 0.0);
}

TEST(SlidingHistogramTest, MergedMatchesDirectRecording) {
  SlidingHistogram window({kSecond, 8});
  Log2Histogram direct;
  const std::uint64_t values[] = {1, 2, 3, 100, 5000, 65536, 0, 7};
  std::uint64_t t = 100;
  for (const std::uint64_t v : values) {
    window.record(t, v);
    direct.record(v);
    t += kSecond / 4;
  }
  const Log2Histogram merged = window.merged(t);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_EQ(merged.percentile(0.5), direct.percentile(0.5));
  EXPECT_EQ(merged.percentile(0.99), direct.percentile(0.99));
}

TEST(SlidingHistogramTest, OldBucketsFallOutOfTheMerge) {
  SlidingHistogram window({kSecond, 4});
  window.record(0, 1000000);  // epoch 0: a huge value
  for (std::uint64_t e = 4; e < 8; ++e) window.record(e * kSecond, 10);
  const Log2Histogram merged = window.merged(7 * kSecond + 1);
  EXPECT_EQ(merged.count(), 4u);
  EXPECT_LE(merged.max(), 10u);
}

TEST(SlidingHistogramTest, SubSpanWindowNarrowsTheMerge) {
  SlidingHistogram window({kSecond, 8});
  for (std::uint64_t e = 0; e < 8; ++e) window.record(e * kSecond, e + 1);
  // Full span sees all 8; a 2 s sub-window only the last 2 records.
  EXPECT_EQ(window.merged(7 * kSecond + 1).count(), 8u);
  EXPECT_EQ(window.merged(7 * kSecond + 1, 2 * kSecond).count(), 2u);
}

// Concurrent record vs rotation: writers spin across a bucket boundary
// while a reader polls totals. The assertion is the documented contract —
// no phantom counts (total never exceeds records issued) and no crash /
// TSan report; exact attribution at the rotating edge is not promised.
TEST(SlidingWindowConcurrencyTest, RecordVersusRotateIsBounded) {
  SlidingCounter counter({/*bucket_us=*/200, /*buckets=*/4});
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<std::uint64_t> shared_now{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t now =
            shared_now.fetch_add(1, std::memory_order_relaxed);
        counter.add(now);
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = shared_now.load(std::memory_order_relaxed);
      EXPECT_LE(counter.total(now), kWriters * kPerWriter);
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  // All writers quiesced: the final read is exact over the live window.
  const std::uint64_t now = shared_now.load(std::memory_order_relaxed);
  EXPECT_LE(counter.total(now), kWriters * kPerWriter);
  EXPECT_GT(counter.total(now), 0u);
}

TEST(ScoreBinTest, LinearBinsWithClampedEdges) {
  EXPECT_EQ(score_bin(0.0), 0u);
  EXPECT_EQ(score_bin(0.05), 0u);
  EXPECT_EQ(score_bin(0.15), 1u);
  EXPECT_EQ(score_bin(0.95), 9u);
  EXPECT_EQ(score_bin(1.0), 9u);
  EXPECT_EQ(score_bin(1.5), 9u);    // clamp above
  EXPECT_EQ(score_bin(-0.3), 0u);   // clamp below
  EXPECT_EQ(score_bin(std::nan("")), 0u);
}

TEST(ScoreHistogramTest, BinsFollowTheWindow) {
  SlidingScoreHistogram scores({kSecond, 4});
  scores.record(0, 0.95);
  scores.record(kSecond, 0.05);
  ScoreBins bins = scores.bins(kSecond + 1);
  EXPECT_EQ(bins[9], 1u);
  EXPECT_EQ(bins[0], 1u);
  // Slide 4 epochs: the 0.95 record expires.
  bins = scores.bins(4 * kSecond + 1);
  EXPECT_EQ(bins[9], 0u);
  EXPECT_EQ(bins[0], 1u);
}

TEST(PsiTest, IdenticalDistributionsScoreNearZero) {
  ScoreBins a{};
  a[0] = 500;
  a[9] = 500;
  EXPECT_NEAR(psi(a, a), 0.0, 1e-9);
}

TEST(PsiTest, MajorShiftCrossesTheConventionalThreshold) {
  // Reference mass in the low bins; current mass in the high bins: a
  // textbook major shift (> 0.25).
  ScoreBins reference{};
  reference[0] = 800;
  reference[1] = 200;
  ScoreBins current{};
  current[8] = 300;
  current[9] = 700;
  EXPECT_GT(psi(reference, current), 0.25);
}

TEST(PsiTest, EmptySidesReadAsNoDrift) {
  ScoreBins empty{};
  ScoreBins some{};
  some[4] = 100;
  EXPECT_EQ(psi(empty, some), 0.0);
  EXPECT_EQ(psi(some, empty), 0.0);
  EXPECT_EQ(psi(empty, empty), 0.0);
}

TEST(PsiTest, SmoothingKeepsDisjointSupportsFinite) {
  ScoreBins a{};
  a[0] = 1000;
  ScoreBins b{};
  b[9] = 1000;
  const double value = psi(a, b);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_GT(value, 1.0);  // far past "major shift", but finite
}

}  // namespace
}  // namespace mev::obs
