// SloTracker: burn rates pinned exactly under FakeClock-style explicit
// timestamps — burn(window) = (bad/total)/(1 - objective) — plus budget
// accounting, window expiry, the latency objective's reject exclusion,
// the advisory flag, and the /sloz JSON shape.
#include "obs/slo.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace mev::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000;

SloConfig tight_config() {
  // Small ring so expiry is testable: 20 x 1 s; fast = 5 s, slow = 20 s.
  SloConfig config;
  config.availability_objective = 0.999;
  config.latency_objective = 0.99;
  config.latency_threshold_us = 100'000;
  config.bucket_us = kSecond;
  config.buckets = 20;
  config.fast_window_us = 5 * kSecond;
  config.slow_window_us = 20 * kSecond;
  return config;
}

TEST(SloTrackerTest, BurnRateIsPinnedExactly) {
  SloTracker tracker(tight_config());
  // 100 requests in one bucket, 1 rejected: error rate 1%, availability
  // budget 0.1% -> burn = 10.0 on both windows.
  for (int i = 0; i < 99; ++i) tracker.record(100, true, 1'000);
  tracker.record(100, false, 0);
  const SloTracker::Snapshot s = tracker.snapshot(200);
  EXPECT_EQ(s.availability.fast_total, 100u);
  EXPECT_EQ(s.availability.fast_bad, 1u);
  // Pin against the same expression the tracker computes: (1 - 0.999) is
  // not exactly 1e-3 in binary, so "10.0" would be ~5 ULPs away.
  EXPECT_DOUBLE_EQ(s.availability.fast_burn, (1.0 / 100.0) / (1.0 - 0.999));
  EXPECT_DOUBLE_EQ(s.availability.slow_burn, (1.0 / 100.0) / (1.0 - 0.999));
  EXPECT_NEAR(s.availability.fast_burn, 10.0, 1e-9);
}

TEST(SloTrackerTest, FastWindowForgetsBeforeTheSlowWindow) {
  SloTracker tracker(tight_config());
  // A burst of failures at t=1s, then clean traffic.
  for (int i = 0; i < 10; ++i) tracker.record(kSecond, false, 0);
  for (int i = 0; i < 90; ++i) tracker.record(kSecond, true, 1'000);
  // 10 s later: the burst left the 5 s fast window but not the 20 s slow
  // one. Keep the fast window non-empty with a clean request.
  tracker.record(11 * kSecond, true, 1'000);
  const SloTracker::Snapshot s = tracker.snapshot(11 * kSecond + 1);
  EXPECT_EQ(s.availability.fast_bad, 0u);
  EXPECT_DOUBLE_EQ(s.availability.fast_burn, 0.0);
  EXPECT_EQ(s.availability.slow_bad, 10u);
  EXPECT_GT(s.availability.slow_burn, 0.0);
}

TEST(SloTrackerTest, ErrorBudgetRemainingIsLifetimeBased) {
  SloConfig config = tight_config();
  config.availability_objective = 0.9;  // 10% budget: easy arithmetic
  SloTracker tracker(config);
  // 5% lifetime error rate = half the budget spent.
  for (int i = 0; i < 95; ++i) tracker.record(100, true, 1'000);
  for (int i = 0; i < 5; ++i) tracker.record(100, false, 0);
  const SloTracker::Snapshot s = tracker.snapshot(200);
  EXPECT_EQ(s.availability.lifetime_total, 100u);
  EXPECT_EQ(s.availability.lifetime_bad, 5u);
  EXPECT_DOUBLE_EQ(s.availability.budget_remaining, 0.5);
  // Window expiry never refunds lifetime budget.
  const SloTracker::Snapshot later = tracker.snapshot(100 * kSecond);
  EXPECT_DOUBLE_EQ(later.availability.budget_remaining, 0.5);
}

TEST(SloTrackerTest, BudgetGoesNegativeWhenOverspent) {
  SloConfig config = tight_config();
  config.availability_objective = 0.9;
  SloTracker tracker(config);
  for (int i = 0; i < 80; ++i) tracker.record(100, true, 1'000);
  for (int i = 0; i < 20; ++i) tracker.record(100, false, 0);
  // 20% errors against a 10% budget: burn 2.0 -> remaining -1.0.
  EXPECT_DOUBLE_EQ(tracker.snapshot(200).availability.budget_remaining,
                   -1.0);
}

TEST(SloTrackerTest, RejectionsDoNotSkewTheLatencyObjective) {
  SloTracker tracker(tight_config());
  tracker.record(100, true, 50'000);    // fast enough
  tracker.record(100, true, 200'000);   // over threshold
  tracker.record(100, false, 999'999);  // rejected: availability only
  const SloTracker::Snapshot s = tracker.snapshot(200);
  EXPECT_EQ(s.latency.fast_total, 2u);
  EXPECT_EQ(s.latency.fast_bad, 1u);
  EXPECT_EQ(s.availability.fast_total, 3u);
  EXPECT_EQ(s.availability.fast_bad, 1u);
}

TEST(SloTrackerTest, FastBurnAlertIsAdvisoryThreshold) {
  SloTracker tracker(tight_config());
  // 2 bad / 100 = 2% error rate: burn 20 > 14.4 -> alert.
  for (int i = 0; i < 98; ++i) tracker.record(100, true, 1'000);
  tracker.record(100, false, 0);
  tracker.record(100, false, 0);
  EXPECT_TRUE(tracker.snapshot(200).fast_burn_alert);
  // One bad / 100 = burn 10 < 14.4 -> no alert.
  SloTracker calm(tight_config());
  for (int i = 0; i < 99; ++i) calm.record(100, true, 1'000);
  calm.record(100, false, 0);
  EXPECT_FALSE(calm.snapshot(200).fast_burn_alert);
}

TEST(SloTrackerTest, IdleTrackerReportsCleanDefaults) {
  SloTracker tracker(tight_config());
  const SloTracker::Snapshot s = tracker.snapshot(123 * kSecond);
  EXPECT_DOUBLE_EQ(s.availability.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(s.availability.budget_remaining, 1.0);
  EXPECT_FALSE(s.fast_burn_alert);
}

TEST(SloTrackerTest, JsonCarriesBurnRatesAndBudget) {
  SloTracker tracker(tight_config());
  for (int i = 0; i < 99; ++i) tracker.record(100, true, 1'000);
  tracker.record(100, false, 0);
  const std::string json = tracker.to_json(200);
  EXPECT_NE(json.find("\"availability\":{"), std::string::npos);
  EXPECT_NE(json.find("\"latency\":{"), std::string::npos);
  EXPECT_NE(json.find("\"fast_burn_rate\":10.000000"), std::string::npos);
  EXPECT_NE(json.find("\"error_budget_remaining\":"), std::string::npos);
  EXPECT_NE(json.find("\"fast_burn_alert\":false"), std::string::npos);
  EXPECT_NE(json.find("\"fast_window_s\":5"), std::string::npos);
  EXPECT_NE(json.find("\"slow_window_s\":20"), std::string::npos);
}

#if MEV_OBS_ENABLED
// The gauge mirror needs a real registry; in stub builds register_gauges
// is a no-op and prometheus() serves nothing.
TEST(SloTrackerTest, GaugesMirrorTheSnapshot) {
  MetricsRegistry registry;
  SloTracker tracker(tight_config());
  tracker.register_gauges(&registry);
  for (int i = 0; i < 99; ++i) tracker.record(100, true, 1'000);
  tracker.record(100, false, 0);
  tracker.refresh_gauges(200);
  const std::string prom = registry.prometheus();
  // The burn rate is (1/100)/(1 - 0.999) — close to 10 but not exactly
  // representable, so pin the exact shortest-round-trip rendering.
  const std::string expected =
      "mev_slo_fast_burn_rate{objective=\"availability\"} " +
      prometheus_number((1.0 / 100.0) / (1.0 - 0.999));
  EXPECT_NE(prom.find(expected), std::string::npos) << prom;
  EXPECT_NE(prom.find("mev_slo_error_budget_remaining"), std::string::npos);
}
#endif  // MEV_OBS_ENABLED

}  // namespace
}  // namespace mev::obs
