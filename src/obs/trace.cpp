#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace mev::obs {

#if MEV_OBS_ENABLED

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Shortest round-trip decimal for a double (deterministic across runs).
void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) {
    out.append(buf, res.ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_event(std::string& out, const TraceEvent& e, bool& first) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":";
  append_json_string(out, e.name);
  out += ",\"cat\":\"mev\",\"ph\":\"";
  out += e.phase;
  out += "\",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  out += ",\"ts\":";
  out += std::to_string(e.ts_us);
  if (e.phase == 'X') {
    out += ",\"dur\":";
    out += std::to_string(e.dur_us);
  } else if (e.phase == 'i') {
    out += ",\"s\":\"t\"";
  }
  if (e.trace_id != 0) {
    // Hex strings, not JSON numbers: 64-bit ids do not survive a double.
    // Chrome's viewer ignores unknown keys; /requestz and tests read them.
    out += ",\"trace_id\":\"";
    out += format_hex64(e.trace_id);
    out += "\",\"span_id\":\"";
    out += format_hex64(e.span_id);
    out += '"';
    if (e.parent_span_id != 0) {
      out += ",\"parent_span_id\":\"";
      out += format_hex64(e.parent_span_id);
      out += '"';
    }
  }
  if (e.num_args > 0) {
    out += ",\"args\":{";
    for (std::uint8_t a = 0; a < e.num_args; ++a) {
      if (a > 0) out += ',';
      append_json_string(out, e.args[a].key);
      out += ':';
      append_double(out, e.args[a].value);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

void Span::finish() noexcept {
  Tracer* tracer = std::exchange(tracer_, nullptr);
  if (tracer == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.phase = 'X';
  event.ts_us = start_us_;
  const std::uint64_t now = tracer->clock().now_us();
  event.dur_us = now >= start_us_ ? now - start_us_ : 0;
  event.trace_id = ctx_.trace_id;
  event.span_id = ctx_.span_id;
  event.parent_span_id = parent_span_;
  event.args = args_;
  event.num_args = num_args_;
  tracer->emit(event);
}

Tracer::Tracer(TracerConfig config)
    : id_(next_tracer_id()),
      config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &runtime::SystemClock::instance()),
      ids_(clock_->now_us()),
      enabled_(config.enabled) {
  if (config_.ring_capacity == 0) config_.ring_capacity = 1;
}

void Tracer::complete_span(const char* name, TraceContext parent,
                           std::uint64_t start_us,
                           std::uint64_t end_us) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  complete_span(name, make_context(parent), parent.span_id, start_us, end_us);
}

void Tracer::complete_span(const char* name, TraceContext self,
                           std::uint64_t parent_span_id,
                           std::uint64_t start_us,
                           std::uint64_t end_us) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.ts_us = start_us;
  event.dur_us = end_us >= start_us ? end_us - start_us : 0;
  event.trace_id = self.trace_id;
  event.span_id = self.span_id;
  event.parent_span_id = parent_span_id;
  emit(event);
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Per-thread cache of (tracer id -> buffer). Ids are process-unique and
  // never reused, so an entry for a dead tracer can never be returned for
  // a live one; stale entries cost a pointer-pair per dead tracer.
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuffer*>> cache;
  for (const auto& [id, buffer] : cache)
    if (id == id_) return *buffer;
  std::lock_guard<std::mutex> lock(mutex_);
  buffers_.push_back(
      std::make_unique<ThreadBuffer>(config_.ring_capacity, next_tid_++));
  ThreadBuffer* raw = buffers_.back().get();
  cache.emplace_back(id_, raw);
  return *raw;
}

void Tracer::emit(TraceEvent event) noexcept {
  ThreadBuffer& buffer = local_buffer();
  const std::size_t n = buffer.size.load(std::memory_order_relaxed);
  if (n >= buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  event.tid = buffer.tid;
  buffer.events[n] = event;
  buffer.size.store(n + 1, std::memory_order_release);
}

void Tracer::instant(const char* name) noexcept {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_us = clock_->now_us();
  emit(event);
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_)
    total += buffer->size.load(std::memory_order_acquire);
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_)
    total += buffer->dropped.load(std::memory_order_relaxed);
  return total;
}

std::vector<TraceEvent> Tracer::recent(std::size_t max_events) const {
  std::vector<TraceEvent> events;
  if (max_events == 0) return events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::size_t n = buffer->size.load(std::memory_order_acquire);
      // Only the newest max_events per buffer can survive the global cut.
      const std::size_t from = n > max_events ? n - max_events : 0;
      for (std::size_t i = from; i < n; ++i)
        events.push_back(buffer->events[i]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  if (events.size() > max_events)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(max_events));
  return events;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->size.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
  }
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t total_dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::size_t n = buffer->size.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < n; ++i)
        append_event(out, buffer->events[i], first);
      total_dropped += buffer->dropped.load(std::memory_order_relaxed);
    }
  }
  if (total_dropped > 0) {
    // Surface overflow in the trace itself so a truncated recording is
    // never mistaken for a complete one.
    TraceEvent note;
    note.name = "mev.obs.dropped_events";
    note.phase = 'i';
    note.args[0] = TraceArg{"count", static_cast<double>(total_dropped)};
    note.num_args = 1;
    append_event(out, note, first);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

std::string Tracer::chrome_trace() const {
  std::ostringstream os;
  write_chrome_trace(os);
  return os.str();
}

#else  // MEV_OBS_ENABLED == 0

void Tracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[]}\n";
}

#endif  // MEV_OBS_ENABLED

}  // namespace mev::obs
