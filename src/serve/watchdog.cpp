#include "serve/watchdog.hpp"

#include <chrono>

namespace mev::serve {

Watchdog::Watchdog(std::size_t workers, WatchdogConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &runtime::SystemClock::instance()) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    workers_.push_back(std::make_unique<WorkerSlot>());
}

Watchdog::~Watchdog() { stop(); }

std::size_t Watchdog::poll(std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(poll_mutex_);
  std::size_t stalled_now = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerSlot& slot = *workers_[i];
    const std::uint64_t beats = slot.beats.load(std::memory_order_relaxed);
    const bool idle = slot.idle.load(std::memory_order_relaxed);
    const bool progressed =
        !slot.sampled || beats != slot.last_beats || idle;
    if (progressed) {
      slot.sampled = true;
      slot.last_beats = beats;
      slot.last_change_ms = now_ms;
      if (slot.stalled.load(std::memory_order_relaxed)) {
        slot.stalled.store(false, std::memory_order_relaxed);
        stalled_count_.fetch_sub(1, std::memory_order_relaxed);
        recoveries_.fetch_add(1, std::memory_order_relaxed);
        if (hook_) hook_(i, false);
      }
    } else if (!slot.stalled.load(std::memory_order_relaxed) &&
               now_ms - slot.last_change_ms >= config_.stall_ms) {
      slot.stalled.store(true, std::memory_order_relaxed);
      stalled_count_.fetch_add(1, std::memory_order_relaxed);
      stall_events_.fetch_add(1, std::memory_order_relaxed);
      if (hook_) hook_(i, true);
    }
    if (slot.stalled.load(std::memory_order_relaxed)) ++stalled_now;
  }
  return stalled_now;
}

void Watchdog::start() {
  if (!config_.enabled || workers_.empty()) return;
  std::lock_guard<std::mutex> lock(monitor_mutex_);
  if (monitor_.joinable()) return;
  stop_requested_ = false;
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Watchdog::stop() {
  {
    std::lock_guard<std::mutex> lock(monitor_mutex_);
    stop_requested_ = true;
  }
  monitor_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

void Watchdog::monitor_loop() {
  const auto period =
      std::chrono::milliseconds(std::max<std::uint64_t>(config_.poll_ms, 1));
  std::unique_lock<std::mutex> lock(monitor_mutex_);
  while (!stop_requested_) {
    // Pace with the cv (so stop() interrupts instantly); decide from the
    // injectable clock.
    monitor_cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) return;
    lock.unlock();
    poll(clock_->now_ms());
    lock.lock();
  }
}

}  // namespace mev::serve
