#include "runtime/circuit_breaker.hpp"

#include <gtest/gtest.h>

namespace mev::runtime {
namespace {

CircuitBreakerConfig config() {
  CircuitBreakerConfig c;
  c.failure_threshold = 3;
  c.open_cooldown_ms = 100;
  c.half_open_successes = 2;
  return c;
}

TEST(CircuitBreaker, StartsClosedAndAllows) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailureCount) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, CooldownLeadsToHalfOpen) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.cooldown_remaining_ms(), 100u);
  clock.advance(60);
  EXPECT_FALSE(breaker.allow());
  EXPECT_EQ(breaker.cooldown_remaining_ms(), 40u);
  clock.advance(40);
  EXPECT_TRUE(breaker.allow());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.cooldown_remaining_ms(), 0u);
}

TEST(CircuitBreaker, HalfOpenClosesAfterRequiredSuccesses) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  clock.advance(100);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);  // needs 2 successes
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, HalfOpenFailureReopens) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  clock.advance(100);
  ASSERT_TRUE(breaker.allow());
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // A fresh cooldown starts from the re-trip.
  EXPECT_FALSE(breaker.allow());
  clock.advance(100);
  EXPECT_TRUE(breaker.allow());
}

TEST(CircuitBreaker, CloseAfterRecoveryRequiresThresholdAgain) {
  FakeClock clock;
  CircuitBreaker breaker(config(), clock);
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  clock.advance(100);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  breaker.record_success();
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  // One failure is not enough to re-trip after closing.
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, ZeroThresholdsAreClampedToOne) {
  FakeClock clock;
  CircuitBreakerConfig c;
  c.failure_threshold = 0;
  c.half_open_successes = 0;
  c.open_cooldown_ms = 10;
  CircuitBreaker breaker(c, clock);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  clock.advance(10);
  ASSERT_TRUE(breaker.allow());
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, StateNames) {
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half-open");
}

}  // namespace
}  // namespace mev::runtime
