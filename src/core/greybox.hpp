// Grey-box deployment maps (§III-B): the attacker crafts perturbations in
// ITS OWN feature space (its transform, fit on its own data), then must
// realize them as actual API-call additions before the target sees them.
//
// Realization: compare the attacker-space adversarial row with the
// attacker-space original, convert the increase back to "add API j k
// times" (integers, add-only), apply those additions to the original raw
// counts, and re-extract features with the TARGET pipeline. This is the
// same path the paper's live test walks manually.
#pragma once

#include <memory>

#include "core/security_eval.hpp"
#include "features/pipeline.hpp"
#include "features/transform.hpp"
#include "math/matrix.hpp"

namespace mev::core {

/// Integer API-call additions implied by an attacker-space perturbation.
/// For a count transform: k_j = ceil(counts(adv_j) - counts(orig_j)).
/// For a binary transform: one call per newly-activated feature.
math::Matrix additions_from_count_perturbation(
    const features::CountTransform& attacker_transform,
    const math::Matrix& original_features, const math::Matrix& adversarial);

math::Matrix additions_from_binary_perturbation(
    const math::Matrix& original_features, const math::Matrix& adversarial);

/// Builds the craft/deploy map for the exact-feature grey-box attacker.
/// `malware_counts` are the raw counts of the attacked rows (row-aligned
/// with the sweep's malware_features); copies are captured by value.
FeatureSpaceMap make_greybox_count_map(
    features::CountTransform attacker_transform,
    features::FeaturePipeline target_pipeline, math::Matrix malware_counts);

/// Builds the craft/deploy map for the binary-feature attacker
/// (Fig. 4(c)).
FeatureSpaceMap make_greybox_binary_map(
    features::FeaturePipeline target_pipeline, math::Matrix malware_counts);

}  // namespace mev::core
