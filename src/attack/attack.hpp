// Evasion-attack interface.
//
// An attack perturbs normalized feature vectors (rows in [0,1]) of malware
// samples so a model classifies them as clean. All attacks in this library
// are ADD-ONLY: feature values may only increase, mirroring the paper's
// functionality-preserving constraint ("only API calls are added and not
// deleting any existing features", §II-B.1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "nn/network.hpp"

namespace mev::attack {

/// Crafting output for a batch of samples.
struct AttackResult {
  math::Matrix adversarial;            // same shape as the input batch
  std::vector<bool> evaded;            // per sample: craft model fooled?
  std::vector<std::size_t> features_changed;  // per sample: #perturbed dims
  std::vector<double> l2_perturbation;        // per sample: ||adv - x||_2

  std::size_t size() const noexcept { return evaded.size(); }

  /// Fraction of samples that evade the CRAFT model (attack success rate).
  double success_rate() const noexcept;

  /// Mean number of perturbed features per sample.
  double mean_features_changed() const noexcept;

  /// Mean L2 perturbation per sample.
  double mean_l2() const noexcept;
};

class EvasionAttack {
 public:
  virtual ~EvasionAttack() = default;

  /// Crafts adversarial versions of `x` (rows: malware samples, values in
  /// [0,1]) against `model`. The model is strictly read-only: attacks run
  /// their own InferenceSession(s) against it, so several attacks may share
  /// one network concurrently.
  virtual AttackResult craft(const nn::Network& model,
                             const math::Matrix& x) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace mev::attack
