
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/adversarial_training.cpp" "src/defense/CMakeFiles/mev_defense.dir/adversarial_training.cpp.o" "gcc" "src/defense/CMakeFiles/mev_defense.dir/adversarial_training.cpp.o.d"
  "/root/repo/src/defense/classifier.cpp" "src/defense/CMakeFiles/mev_defense.dir/classifier.cpp.o" "gcc" "src/defense/CMakeFiles/mev_defense.dir/classifier.cpp.o.d"
  "/root/repo/src/defense/dim_reduction.cpp" "src/defense/CMakeFiles/mev_defense.dir/dim_reduction.cpp.o" "gcc" "src/defense/CMakeFiles/mev_defense.dir/dim_reduction.cpp.o.d"
  "/root/repo/src/defense/distillation.cpp" "src/defense/CMakeFiles/mev_defense.dir/distillation.cpp.o" "gcc" "src/defense/CMakeFiles/mev_defense.dir/distillation.cpp.o.d"
  "/root/repo/src/defense/ensemble.cpp" "src/defense/CMakeFiles/mev_defense.dir/ensemble.cpp.o" "gcc" "src/defense/CMakeFiles/mev_defense.dir/ensemble.cpp.o.d"
  "/root/repo/src/defense/feature_squeezing.cpp" "src/defense/CMakeFiles/mev_defense.dir/feature_squeezing.cpp.o" "gcc" "src/defense/CMakeFiles/mev_defense.dir/feature_squeezing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mev_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mev_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
