// Adaptive load shedding for the scoring service: a CoDel-style
// controller on measured queue delay.
//
// The signal is the *minimum* queue delay (submit → batch formation) seen
// in each evaluation interval — the CoDel insight: a transient burst
// leaves at least one low-delay sample per interval, but a standing queue
// keeps even the luckiest request above the target, so gating on the
// interval minimum ignores bursts and fires only on sustained overload.
//
// On a bad interval the controller enters brownout: the service shrinks
// its batching window (flush partial batches immediately — co-rider
// coalescing is a luxury overload cannot afford) and rejects a
// deterministic fraction of admissions with RejectReason::kOverloaded.
// The fraction follows AIMD: additive increase while intervals stay bad
// (ramping with the square root of the consecutive-bad count so a deep
// overload sheds aggressively), halved on every good interval. Recovery
// is hysteretic — the controller only reports healthy again after
// `recover_intervals` consecutive good intervals with shedding fully off,
// so readiness does not flap at the brownout boundary.
//
// Shedding is deterministic, not random: a fixed-point accumulator sheds
// exactly ⌊N·fraction⌋..⌈N·fraction⌉ of any N consecutive admissions, so
// tests assert exact counts and two runs shed identically.
//
// Thread-safety: record_delay() and should_shed() are lock-free
// (admission/worker hot paths); tick() takes a mutex only when an
// interval boundary is crossed. All timing flows through caller-supplied
// clock readings — deterministic under runtime::FakeClock.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>

namespace mev::serve {

/// Controller state, exported as the mev.serve.overload_state gauge
/// (numeric value = enum value) and surfaced through /readyz.
enum class OverloadState : std::uint8_t {
  kHealthy = 0,     // no sustained queueing; shedding off
  kBrownout = 1,    // sustained delay above target; shedding admissions
  kRecovering = 2,  // delay back under target; shed fraction decaying
};

inline const char* to_string(OverloadState state) noexcept {
  switch (state) {
    case OverloadState::kHealthy: return "healthy";
    case OverloadState::kBrownout: return "brownout";
    case OverloadState::kRecovering: return "recovering";
  }
  return "unknown";
}

struct OverloadConfig {
  /// Off by default: shedding rejects work, so a service only sheds when
  /// its operator opted in. Disabled, every method is an inert no-op.
  bool enabled = false;
  /// An interval whose *minimum* queue delay exceeds this is bad.
  std::uint64_t target_delay_ms = 5;
  /// Evaluation interval.
  std::uint64_t interval_ms = 100;
  /// Additive shed increase per bad interval (scaled by sqrt of the
  /// consecutive-bad count).
  double shed_step = 0.05;
  /// Shedding ceiling — some fraction is always admitted, so the
  /// controller keeps receiving delay samples to recover on.
  double max_shed = 0.90;
  /// Consecutive good intervals (with shed already decayed to zero)
  /// required to report kHealthy again.
  std::size_t recover_intervals = 3;
};

class OverloadController {
 public:
  explicit OverloadController(OverloadConfig config) : config_(config) {}

  /// Worker side: one measured submit→batch-formation delay. Lock-free
  /// interval-minimum tracking.
  void record_delay(std::uint64_t delay_ms) noexcept;

  /// Admission side: true when this submission should be rejected with
  /// kOverloaded. Deterministic fixed-point: any N consecutive calls shed
  /// ⌊N·fraction⌋..⌈N·fraction⌉.
  bool should_shed() noexcept;

  /// Advances the interval state machine; cheap no-op (one relaxed load)
  /// until `interval_ms` has elapsed since the last close. Call from the
  /// worker loop / pump / submit path — any thread.
  void tick(std::uint64_t now_ms);

  OverloadState state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }
  double shed_fraction() const noexcept {
    return static_cast<double>(shed_ppm_.load(std::memory_order_relaxed)) /
           1e6;
  }
  /// True while the service should run in brownout posture (shrunk batch
  /// window): any state other than healthy.
  bool brownout() const noexcept {
    return state() != OverloadState::kHealthy;
  }
  bool enabled() const noexcept { return config_.enabled; }
  const OverloadConfig& config() const noexcept { return config_; }

 private:
  void close_interval(std::uint64_t now_ms);

  OverloadConfig config_;

  /// Interval-minimum delay; UINT64_MAX = no sample this interval.
  std::atomic<std::uint64_t> min_delay_ms_{UINT64_MAX};
  /// End of the current interval; 0 until the first tick.
  std::atomic<std::uint64_t> interval_end_ms_{0};
  /// Shed fraction in parts-per-million (fixed-point, so should_shed()
  /// needs no floating point on the admission path).
  std::atomic<std::uint32_t> shed_ppm_{0};
  /// Fixed-point shed accumulator: a call sheds iff adding shed_ppm_
  /// crosses a whole-million boundary.
  std::atomic<std::uint64_t> shed_acc_{0};
  std::atomic<OverloadState> state_{OverloadState::kHealthy};

  std::mutex interval_mutex_;  // serializes close_interval
  std::size_t consecutive_bad_ = 0;
  std::size_t consecutive_good_ = 0;
  double shed_ = 0.0;  // authoritative fraction (mirrored into shed_ppm_)
};

}  // namespace mev::serve
