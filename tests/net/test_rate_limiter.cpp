// ApiKeyLimiter: per-key token buckets charged per row, driven entirely by
// a FakeClock for deterministic refill arithmetic. Runs in every build
// mode (the limiter has no obs dependency at all).
#include <gtest/gtest.h>

#include "net/rate_limiter.hpp"
#include "runtime/clock.hpp"

namespace {

using mev::net::ApiKey;
using mev::net::ApiKeyLimiter;
using Outcome = mev::net::ApiKeyLimiter::Outcome;

TEST(ApiKeyLimiter, NoKeysConfiguredMeansOpen) {
  ApiKeyLimiter limiter({});
  EXPECT_TRUE(limiter.open());
  EXPECT_EQ(limiter.check("anything", 1e9).outcome, Outcome::kAllowed);
}

TEST(ApiKeyLimiter, UnknownKeyIsRejected) {
  mev::runtime::FakeClock clock;
  ApiKeyLimiter limiter({ApiKey{"secret", "client-a", 10.0, 20.0}}, &clock);
  EXPECT_FALSE(limiter.open());
  EXPECT_EQ(limiter.check("wrong", 1.0).outcome, Outcome::kUnknownKey);
  EXPECT_EQ(limiter.check("", 1.0).outcome, Outcome::kUnknownKey);
  EXPECT_EQ(limiter.check("secret", 1.0).outcome, Outcome::kAllowed);
}

TEST(ApiKeyLimiter, BurstThenRefillAtTheConfiguredRate) {
  mev::runtime::FakeClock clock(1000);
  // 10 rows/s, burst 20: the first 20 rows pass immediately, then the
  // bucket is dry until time passes.
  ApiKeyLimiter limiter({ApiKey{"k", "c", 10.0, 20.0}}, &clock);
  EXPECT_EQ(limiter.check("k", 20.0).outcome, Outcome::kAllowed);
  const auto dry = limiter.check("k", 1.0);
  EXPECT_EQ(dry.outcome, Outcome::kOverRate);
  EXPECT_GE(dry.retry_after_s, 1u);
  EXPECT_EQ(dry.client, "c");

  clock.advance(500);  // +5 tokens
  EXPECT_EQ(limiter.check("k", 5.0).outcome, Outcome::kAllowed);
  EXPECT_EQ(limiter.check("k", 1.0).outcome, Outcome::kOverRate);

  clock.advance(10'000);  // refill caps at burst, not 100 tokens
  EXPECT_EQ(limiter.check("k", 20.0).outcome, Outcome::kAllowed);
  EXPECT_EQ(limiter.check("k", 1.0).outcome, Outcome::kOverRate);
}

TEST(ApiKeyLimiter, RetryAfterReflectsTheDeficit) {
  mev::runtime::FakeClock clock(1000);
  ApiKeyLimiter limiter({ApiKey{"k", "c", 2.0, 10.0}}, &clock);
  EXPECT_EQ(limiter.check("k", 10.0).outcome, Outcome::kAllowed);
  // 6 rows wanted, 0 tokens, 2 rows/s → 3 seconds.
  EXPECT_EQ(limiter.check("k", 6.0).retry_after_s, 3u);
}

TEST(ApiKeyLimiter, KeysAreIsolatedFromEachOther) {
  mev::runtime::FakeClock clock(1000);
  ApiKeyLimiter limiter(
      {ApiKey{"starved", "s", 1.0, 2.0}, ApiKey{"rich", "r", 1e6, 1e6}},
      &clock);
  EXPECT_EQ(limiter.check("starved", 2.0).outcome, Outcome::kAllowed);
  EXPECT_EQ(limiter.check("starved", 1.0).outcome, Outcome::kOverRate);
  // The starved bucket being dry must not affect the rich key at all.
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(limiter.check("rich", 100.0).outcome, Outcome::kAllowed);
  EXPECT_EQ(limiter.check("starved", 1.0).outcome, Outcome::kOverRate);
}

TEST(ApiKeyLimiter, RequestsLargerThanBurstNeverPass) {
  mev::runtime::FakeClock clock(1000);
  ApiKeyLimiter limiter({ApiKey{"k", "c", 10.0, 16.0}}, &clock);
  const auto decision = limiter.check("k", 64.0);
  EXPECT_EQ(decision.outcome, Outcome::kOverRate);
  // Advertised wait is the time to a FULL bucket, not to 64 tokens.
  EXPECT_LE(decision.retry_after_s, 2u);
}

TEST(ApiKeyLimiter, ZeroRateIsBurstOnly) {
  mev::runtime::FakeClock clock(1000);
  ApiKeyLimiter limiter({ApiKey{"k", "c", 0.0, 3.0}}, &clock);
  EXPECT_EQ(limiter.check("k", 3.0).outcome, Outcome::kAllowed);
  clock.advance(1'000'000);
  EXPECT_EQ(limiter.check("k", 1.0).outcome, Outcome::kOverRate);
}

}  // namespace
