// EventCount: the futex-style parking primitive behind the serving
// workers' idle waits (DESIGN.md §8). The problem it solves: a producer
// must be able to wake a sleeping consumer without paying for a mutex on
// every operation, and a consumer must be able to check "is there work?"
// and go to sleep without a lost-wakeup window.
//
// Protocol (the classic eventcount):
//
//   consumer:                          producer:
//     key = ec.prepare_wait();           queue.push(item);
//     if (work available) {              ec.notify_one();
//       ec.cancel_wait();
//       ... consume ...
//     } else {
//       ec.wait(key);   // or wait_for_ms
//     }
//
// notify_*() on the fast path is a single atomic load: when no consumer
// is parked (the common case under load — workers are busy scoring) the
// producer never touches the mutex. Only an actual park/unpark pays for
// the mutex + condition variable underneath, which is what a futex wait
// costs anyway. The epoch in the returned key closes the race: a notify
// that lands between prepare_wait() and wait() bumps the epoch, so the
// wait returns immediately instead of sleeping through the wakeup.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace mev::runtime {

class EventCount {
 public:
  using Key = std::uint32_t;

  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Announces intent to wait and returns the current epoch. Must be
  /// paired with exactly one cancel_wait(), wait(), or wait_for_ms().
  Key prepare_wait() noexcept;

  /// Abandons an announced wait (work was found after prepare_wait()).
  void cancel_wait() noexcept;

  /// Blocks until a notification arrives after the epoch in `key` (i.e.
  /// after the matching prepare_wait()). Returns immediately when one
  /// already has.
  void wait(Key key) noexcept;

  /// Timed wait(): returns true when woken by a notification, false on
  /// timeout. A zero timeout degenerates to a cancel_wait() + poll.
  bool wait_for_ms(Key key, std::uint64_t timeout_ms) noexcept;

  /// Wakes one / all parked waiters. One atomic load when nobody waits.
  void notify_one() noexcept;
  void notify_all() noexcept;

  /// Parked-waiter estimate (racy; for stats/gauges only).
  std::uint32_t waiters() const noexcept;

 private:
  void notify(bool all) noexcept;

  static constexpr std::uint64_t kWaiterMask = 0xffffffffull;
  static constexpr std::uint64_t kEpochShift = 32;

  /// Packed (epoch << 32 | waiters). Waiter count moves outside the
  /// mutex (prepare/cancel); the epoch only moves under it, so a waiter
  /// re-checking the epoch while holding the mutex cannot miss a bump.
  std::atomic<std::uint64_t> state_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace mev::runtime
