#include "data/api_vocab.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <stdexcept>

namespace mev::data {

namespace {

// Curated Win32 API base names (kernel32 / user32 / advapi32 / ws2_32 /
// wininet / shell32 and friends). Lower-cased during vocabulary build.
constexpr std::string_view kBaseNames[] = {
    // Process / thread / module
    "CreateProcessA", "CreateProcessW", "CreateProcessInternalW", "OpenProcess",
    "TerminateProcess", "ExitProcess", "GetCurrentProcess",
    "GetCurrentProcessId", "CreateThread", "CreateRemoteThread", "OpenThread",
    "TerminateThread", "SuspendThread", "ResumeThread", "GetCurrentThread",
    "GetCurrentThreadId", "ExitThread", "Sleep", "SleepEx", "SwitchToThread",
    "GetModuleHandleA", "GetModuleHandleW", "GetModuleHandleExW",
    "GetModuleFileNameA", "GetModuleFileNameW", "LoadLibraryA", "LoadLibraryW",
    "LoadLibraryExA", "LoadLibraryExW", "FreeLibrary", "GetProcAddress",
    "DllsLoad", "DisableThreadLibraryCalls", "CreateToolhelp32Snapshot",
    "Process32First", "Process32Next", "Thread32First", "Thread32Next",
    "Module32First", "Module32Next", "QueueUserAPC", "GetExitCodeProcess",
    "GetExitCodeThread", "WaitForSingleObject", "WaitForSingleObjectEx",
    "WaitForMultipleObjects", "OpenProcessToken", "AdjustTokenPrivileges",
    "LookupPrivilegeValueA", "LookupPrivilegeValueW", "ImpersonateLoggedOnUser",
    "SetThreadContext", "GetThreadContext", "NtUnmapViewOfSection",
    "IsWow64Process", "GetProcessHeap", "GetProcessTimes",
    "SetPriorityClass", "GetPriorityClass", "SetThreadPriority",
    // Memory
    "VirtualAlloc", "VirtualAllocEx", "VirtualFree", "VirtualFreeEx",
    "VirtualProtect", "VirtualProtectEx", "VirtualQuery", "VirtualQueryEx",
    "ReadProcessMemory", "WriteProcessMemory", "HeapCreate", "HeapDestroy",
    "HeapAlloc", "HeapFree", "HeapReAlloc", "HeapSize", "GlobalAlloc",
    "GlobalFree", "GlobalLock", "GlobalUnlock", "LocalAlloc", "LocalFree",
    "MapViewOfFile", "MapViewOfFileEx", "UnmapViewOfFile",
    "CreateFileMappingA", "CreateFileMappingW", "OpenFileMappingA",
    "OpenFileMappingW", "FlushViewOfFile", "FlushInstructionCache",
    // File I/O
    "CreateFileA", "CreateFileW", "OpenFile", "ReadFile", "ReadFileEx",
    "WriteFile", "WriteFileEx", "DeleteFileA", "DeleteFileW", "CopyFileA",
    "CopyFileW", "CopyFileExW", "MoveFileA", "MoveFileW", "MoveFileExA",
    "MoveFileExW", "GetFileType", "GetFileSize", "GetFileSizeEx",
    "SetFilePointer", "SetFilePointerEx", "SetEndOfFile", "FlushFileBuffers",
    "GetFileAttributesA", "GetFileAttributesW", "SetFileAttributesA",
    "SetFileAttributesW", "GetFileTime", "SetFileTime", "LockFile",
    "UnlockFile", "FindFirstFileA", "FindFirstFileW", "FindNextFileA",
    "FindNextFileW", "FindClose", "GetTempPathA", "GetTempPathW",
    "GetTempFileNameA", "GetTempFileNameW", "CreateDirectoryA",
    "CreateDirectoryW", "RemoveDirectoryA", "RemoveDirectoryW",
    "GetCurrentDirectoryA", "GetCurrentDirectoryW", "SetCurrentDirectoryA",
    "SetCurrentDirectoryW", "GetFullPathNameA", "GetFullPathNameW",
    "GetLongPathNameW", "GetShortPathNameW", "GetDriveTypeA", "GetDriveTypeW",
    "GetLogicalDrives", "GetDiskFreeSpaceA", "GetDiskFreeSpaceExW",
    "DeviceIoControl", "CreateNamedPipeA", "CreateNamedPipeW", "CreatePipe",
    "ConnectNamedPipe", "DisconnectNamedPipe", "PeekNamedPipe",
    "TransactNamedPipe", "WaitNamedPipeA", "WaitNamedPipeW",
    // Registry
    "RegOpenKeyA", "RegOpenKeyW", "RegOpenKeyExA", "RegOpenKeyExW",
    "RegCreateKeyA", "RegCreateKeyW", "RegCreateKeyExA", "RegCreateKeyExW",
    "RegCloseKey", "RegQueryValueA", "RegQueryValueW", "RegQueryValueExA",
    "RegQueryValueExW", "RegSetValueA", "RegSetValueW", "RegSetValueExA",
    "RegSetValueExW", "RegDeleteKeyA", "RegDeleteKeyW", "RegDeleteValueA",
    "RegDeleteValueW", "RegEnumKeyExA", "RegEnumKeyExW", "RegEnumValueA",
    "RegEnumValueW", "RegQueryInfoKeyA", "RegQueryInfoKeyW", "RegFlushKey",
    "RegSaveKeyA", "RegLoadKeyW", "RegNotifyChangeKeyValue",
    // Environment / system info
    "GetStartupInfoA", "GetStartupInfoW", "GetStdHandle", "SetStdHandle",
    "GetCommandLineA", "GetCommandLineW", "GetEnvironmentStringsA",
    "GetEnvironmentStringsW", "FreeEnvironmentStringsA",
    "FreeEnvironmentStringsW", "GetEnvironmentVariableA",
    "GetEnvironmentVariableW", "SetEnvironmentVariableA",
    "SetEnvironmentVariableW", "ExpandEnvironmentStringsA",
    "ExpandEnvironmentStringsW", "GetSystemDirectoryA", "GetSystemDirectoryW",
    "GetWindowsDirectoryA", "GetWindowsDirectoryW", "GetSystemInfo",
    "GetNativeSystemInfo", "GetVersion", "GetVersionExA", "GetVersionExW",
    "GetComputerNameA", "GetComputerNameW", "GetUserNameA", "GetUserNameW",
    "GetSystemTime", "GetLocalTime", "GetSystemTimeAsFileTime",
    "SystemTimeToFileTime", "FileTimeToSystemTime", "FileTimeToLocalFileTime",
    "GetTickCount", "GetTickCount64", "QueryPerformanceCounter",
    "QueryPerformanceFrequency", "GetCPInfo", "GetACP", "GetOEMCP",
    "GetLocaleInfoA", "GetLocaleInfoW", "GetSystemDefaultLangID",
    "GetUserDefaultLCID", "GetTimeZoneInformation", "GlobalMemoryStatus",
    "GlobalMemoryStatusEx", "GetSystemMetrics", "GetKeyboardLayout",
    "GetKeyboardState", "GetAsyncKeyState", "GetKeyState", "MapVirtualKeyW",
    // Console / profile strings
    "AllocConsole", "FreeConsole", "GetConsoleWindow", "GetConsoleMode",
    "SetConsoleMode", "GetConsoleCP", "GetConsoleOutputCP", "WriteConsoleA",
    "WriteConsoleW", "ReadConsoleA", "ReadConsoleW", "SetConsoleTitleA",
    "SetConsoleTitleW", "SetConsoleCtrlHandler", "GetPrivateProfileStringA",
    "GetPrivateProfileStringW", "GetPrivateProfileIntA",
    "GetPrivateProfileIntW", "WritePrivateProfileStringA",
    "WritePrivateProfileStringW", "GetProfileStringA", "GetProfileStringW",
    "WriteProfileStringA", "WriteProfileStringW", "GetProfileIntA",
    "GetProfileIntW",
    // Error / exception / debug
    "GetLastError", "SetLastError", "RaiseException", "SetErrorMode",
    "SetUnhandledExceptionFilter", "UnhandledExceptionFilter",
    "IsDebuggerPresent", "CheckRemoteDebuggerPresent", "OutputDebugStringA",
    "OutputDebugStringW", "DebugBreak", "DebugActiveProcess",
    // Sync
    "CreateMutexA", "CreateMutexW", "OpenMutexA", "OpenMutexW",
    "ReleaseMutex", "CreateEventA", "CreateEventW", "OpenEventA",
    "OpenEventW", "SetEvent", "ResetEvent", "PulseEvent",
    "CreateSemaphoreA", "CreateSemaphoreW", "ReleaseSemaphore",
    "InitializeCriticalSection", "InitializeCriticalSectionAndSpinCount",
    "EnterCriticalSection", "LeaveCriticalSection", "TryEnterCriticalSection",
    "DeleteCriticalSection", "InterlockedIncrement", "InterlockedDecrement",
    "InterlockedExchange", "InterlockedCompareExchange", "CreateWaitableTimerW",
    "SetWaitableTimer", "CancelWaitableTimer",
    // Strings / misc CRT-ish
    "MultiByteToWideChar", "WideCharToMultiByte", "CompareStringA",
    "CompareStringW", "lstrlenA", "lstrlenW", "lstrcpyA", "lstrcpyW",
    "lstrcatA", "lstrcatW", "lstrcmpA", "lstrcmpW", "lstrcmpiA", "lstrcmpiW",
    "CharUpperA", "CharUpperW", "CharLowerA", "CharLowerW", "IsBadReadPtr",
    "IsBadWritePtr", "FlsAlloc", "FlsFree", "FlsGetValue", "FlsSetValue",
    "TlsAlloc", "TlsFree", "TlsGetValue", "TlsSetValue", "EncodePointer",
    "DecodePointer", "GetStringTypeA", "GetStringTypeW", "FormatMessageA",
    "FormatMessageW", "LCMapStringA", "LCMapStringW",
    // GUI (user32 / gdi32)
    "MessageBoxA", "MessageBoxW", "CreateWindowExA", "CreateWindowExW",
    "DestroyWindow", "ShowWindow", "UpdateWindow", "FindWindowA",
    "FindWindowW", "FindWindowExA", "FindWindowExW", "GetForegroundWindow",
    "SetForegroundWindow", "GetDesktopWindow", "GetWindowTextA",
    "GetWindowTextW", "SetWindowTextA", "SetWindowTextW", "EnumWindows",
    "EnumChildWindows", "GetWindowThreadProcessId", "SendMessageA",
    "SendMessageW", "PostMessageA", "PostMessageW", "PeekMessageA",
    "PeekMessageW", "GetMessageA", "GetMessageW", "DispatchMessageA",
    "DispatchMessageW", "TranslateMessage", "WaitMessage", "PostQuitMessage",
    "DefWindowProcA", "DefWindowProcW", "RegisterClassA", "RegisterClassW",
    "RegisterClassExA", "RegisterClassExW", "SetWindowsHookExA",
    "SetWindowsHookExW", "UnhookWindowsHookEx", "CallNextHookEx",
    "SetTimer", "KillTimer", "GetDC", "ReleaseDC", "WindowFromDC",
    "GetWindowDC", "BitBlt", "StretchBlt", "CreateCompatibleDC",
    "CreateCompatibleBitmap", "SelectObject", "DeleteObject", "DeleteDC",
    "GetDIBits", "SetPixel", "GetPixel", "LoadIconA", "LoadIconW",
    "DestroyIcon", "LoadCursorA", "LoadCursorW", "SetCursorPos",
    "GetCursorPos", "ClipCursor", "OpenClipboard", "CloseClipboard",
    "GetClipboardData", "SetClipboardData", "EmptyClipboard",
    "RegisterHotKey", "UnregisterHotKey", "keybd_event", "mouse_event",
    "SendInput", "AttachThreadInput", "BlockInput",
    // Shell / exec
    "WinExec", "ShellExecuteA", "ShellExecuteW", "ShellExecuteExA",
    "ShellExecuteExW", "SHGetFolderPathA", "SHGetFolderPathW",
    "SHGetSpecialFolderPathW", "SHCreateDirectoryExW", "SHFileOperationA",
    "SHFileOperationW", "ExtractIconA", "ExtractIconW", "FindExecutableA",
    "FindExecutableW", "SHGetKnownFolderPath",
    // Services
    "OpenSCManagerA", "OpenSCManagerW", "CreateServiceA", "CreateServiceW",
    "OpenServiceA", "OpenServiceW", "StartServiceA", "StartServiceW",
    "ControlService", "DeleteService", "QueryServiceStatus",
    "QueryServiceStatusEx", "CloseServiceHandle", "EnumServicesStatusW",
    "ChangeServiceConfigW", "StartServiceCtrlDispatcherW",
    // Network (ws2_32 / wininet / winhttp / urlmon)
    "WSAStartup", "WSACleanup", "WSAGetLastError", "socket", "closesocket",
    "connect", "bind", "listen", "accept", "send", "sendto", "recv",
    "recvfrom", "select", "ioctlsocket", "setsockopt", "getsockopt",
    "gethostbyname", "gethostname", "getaddrinfo", "inet_addr", "inet_ntoa",
    "htons", "ntohs", "shutdown", "WSASocketW", "WSAConnect", "WSASend",
    "WSARecv", "InternetOpenA", "InternetOpenW", "InternetOpenUrlA",
    "InternetOpenUrlW", "InternetConnectA", "InternetConnectW",
    "InternetReadFile", "InternetWriteFile", "InternetCloseHandle",
    "InternetSetOptionA", "InternetQueryOptionA", "InternetGetConnectedState",
    "HttpOpenRequestA", "HttpOpenRequestW", "HttpSendRequestA",
    "HttpSendRequestW", "HttpQueryInfoA", "HttpAddRequestHeadersA",
    "URLDownloadToFileA", "URLDownloadToFileW", "URLDownloadToCacheFileW",
    "WinHttpOpen", "WinHttpConnect", "WinHttpOpenRequest",
    "WinHttpSendRequest", "WinHttpReceiveResponse", "WinHttpReadData",
    "WinHttpCloseHandle", "DnsQuery_A", "DnsQuery_W",
    // Crypto
    "CryptAcquireContextA", "CryptAcquireContextW", "CryptReleaseContext",
    "CryptCreateHash", "CryptHashData", "CryptGetHashParam",
    "CryptDestroyHash", "CryptGenKey", "CryptDeriveKey", "CryptDestroyKey",
    "CryptEncrypt", "CryptDecrypt", "CryptGenRandom", "CryptImportKey",
    "CryptExportKey", "CryptStringToBinaryA", "CryptBinaryToStringA",
    "BCryptOpenAlgorithmProvider", "BCryptGenRandom", "BCryptEncrypt",
    "BCryptDecrypt",
    // Resources / PE
    "FindResourceA", "FindResourceW", "LoadResource", "LockResource",
    "SizeofResource", "FreeResource", "EnumResourceTypesW",
    "EnumResourceNamesW", "UpdateResourceW", "BeginUpdateResourceW",
    "EndUpdateResourceW", "GetFileVersionInfoW", "GetFileVersionInfoSizeW",
    "VerQueryValueW", "ImageNtHeader", "CheckSumMappedFile",
    // COM / OLE
    "CoInitialize", "CoInitializeEx", "CoUninitialize", "CoCreateInstance",
    "CoCreateGuid", "CoTaskMemAlloc", "CoTaskMemFree", "OleInitialize",
    "SysAllocString", "SysFreeString", "VariantInit", "VariantClear",
};

bool is_paper_name(std::string_view name);

std::vector<std::string> build_canonical_names() {
  std::vector<std::string> names;
  names.reserve(600);
  for (std::string_view n : kBaseNames) names.push_back(to_lower_ascii(n));
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());

  if (names.size() > kNumApiFeatures) {
    // Trim evenly-spaced non-paper names so the alphabetical coverage stays
    // uniform and every API name the paper prints survives.
    const std::size_t excess = names.size() - kNumApiFeatures;
    const std::size_t stride = names.size() / excess;
    std::vector<std::string> kept;
    kept.reserve(kNumApiFeatures);
    std::size_t removed = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const bool removable = removed < excess && (i % stride == stride - 1) &&
                             !is_paper_name(names[i]);
      if (removable) {
        ++removed;
        continue;
      }
      kept.push_back(std::move(names[i]));
    }
    // If strided removal fell short (paper names on removal slots), drop
    // further non-paper names from the front.
    for (auto it = kept.begin(); kept.size() > kNumApiFeatures;) {
      if (!is_paper_name(*it))
        it = kept.erase(it);
      else
        ++it;
    }
    names = std::move(kept);
  } else if (names.size() < kNumApiFeatures) {
    // Pad deterministically with plausible verb-object-suffix API names.
    constexpr std::string_view verbs[] = {"open",   "close",  "query", "enum",
                                          "create", "delete", "set",   "get"};
    constexpr std::string_view objects[] = {
        "atomtable", "deskbar",    "fiberls",  "jobobject",
        "powerreq",  "profilekey", "sessionlog", "tracectx"};
    constexpr std::string_view suffixes[] = {"", "a", "w", "ex"};
    for (std::string_view v : verbs)
      for (std::string_view o : objects)
        for (std::string_view s : suffixes) {
          if (names.size() >= kNumApiFeatures) break;
          std::string candidate =
              std::string(v) + std::string(o) + std::string(s);
          if (std::find(names.begin(), names.end(), candidate) == names.end())
            names.push_back(std::move(candidate));
        }
  }
  if (names.size() != kNumApiFeatures)
    throw std::logic_error("ApiVocab: could not reach 491 names");
  std::sort(names.begin(), names.end());
  return names;
}

constexpr std::string_view kPaperNames[] = {
    // Table II (log excerpt)
    "getstartupinfow", "getfiletype", "getmodulehandlew", "getprocaddress",
    "getstdhandle", "freeenvironmentstringsw", "getcpinfo",
    // Table III (feature excerpt, indices 475..484)
    "waitmessage", "windowfromdc", "winexec", "writeconsolea",
    "writeconsolew", "writefile", "writeprivateprofilestringa",
    "writeprivateprofilestringw", "writeprocessmemory", "writeprofilestringa",
    // Fig. 1 (APIs added by the adversarial example)
    "destroyicon", "dllsload",
    // Table II argument ("FlsAlloc")
    "flsalloc",
};

bool is_paper_name(std::string_view name) {
  for (std::string_view p : kPaperNames)
    if (p == name) return true;
  return false;
}

}  // namespace

std::string to_lower_ascii(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::span<const std::string_view> paper_api_names() { return kPaperNames; }

ApiVocab::ApiVocab(std::vector<std::string> names) {
  if (names.empty()) throw std::invalid_argument("ApiVocab: empty name list");
  for (auto& n : names) {
    if (n.empty()) throw std::invalid_argument("ApiVocab: empty name");
    n = to_lower_ascii(n);
  }
  std::sort(names.begin(), names.end());
  if (std::adjacent_find(names.begin(), names.end()) != names.end())
    throw std::invalid_argument("ApiVocab: duplicate name");
  names_ = std::move(names);
  index_.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) index_[names_[i]] = i;
}

const ApiVocab& ApiVocab::instance() {
  static const ApiVocab vocab(build_canonical_names());
  return vocab;
}

std::optional<std::size_t> ApiVocab::index_of(std::string_view api_name) const {
  const auto it = index_.find(to_lower_ascii(api_name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& ApiVocab::name(std::size_t index) const {
  if (index >= names_.size()) throw std::out_of_range("ApiVocab::name");
  return names_[index];
}

}  // namespace mev::data
