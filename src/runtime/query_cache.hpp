// Realized-count query cache. The black-box loop re-submits every
// previously-labeled sample each augmentation round (the dataset only
// ever grows), and Jacobian augmentation frequently realizes distinct
// feature points back to the SAME integer count vector — so an exact
// row-level cache is both a robustness win (fewer chances to fail) and a
// large query-budget win. Valid because the oracle is assumed
// deterministic: a label-only detector maps equal rows to equal labels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "math/matrix.hpp"
#include "runtime/oracle.hpp"

namespace mev::runtime {

class QueryCache {
 public:
  std::optional<int> lookup(std::span<const float> row) const;
  /// Inserts or overwrites the label for `row`.
  void insert(std::span<const float> row, int label);

  std::size_t size() const noexcept { return order_.size(); }

  /// Dumps all entries in insertion order (for checkpointing).
  void export_entries(math::Matrix& rows, std::vector<int>& labels) const;
  /// Bulk-inserts previously exported entries.
  void import_entries(const math::Matrix& rows,
                      const std::vector<int>& labels);

 private:
  struct RowHash {
    std::size_t operator()(const std::vector<float>& v) const noexcept;
  };
  std::unordered_map<std::vector<float>, int, RowHash> entries_;
  // Insertion order; unordered_map node pointers are stable.
  std::vector<const std::pair<const std::vector<float>, int>*> order_;
};

/// CountOracle decorator that answers repeat rows from the cache and
/// forwards only first-occurrence rows to the inner oracle (deduplicated
/// within the batch too, preserving first-occurrence order). queries()
/// counts only rows actually submitted to the inner oracle, so the delta
/// against an uncached run is the budget saved.
class CachingOracle final : public CountOracle {
 public:
  explicit CachingOracle(CountOracle& inner) : inner_(&inner) {}

  std::vector<int> label_counts(const math::Matrix& counts) override;

  std::size_t hits() const noexcept { return hits_; }
  std::size_t misses() const noexcept { return misses_; }
  QueryCache& cache() noexcept { return cache_; }
  const QueryCache& cache() const noexcept { return cache_; }

 private:
  CountOracle* inner_;
  QueryCache cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mev::runtime
