#include "attack/jsma.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "math/linalg.hpp"
#include "nn/session.hpp"
#include "obs/obs.hpp"

namespace mev::attack {

namespace {

/// Destination-passing saliency kernel so the craft loop can reuse one
/// buffer across budget iterations.
void saliency_map_into(std::span<const math::Matrix> grads, int target_class,
                       math::Matrix& saliency) {
  if (grads.empty()) throw std::invalid_argument("saliency_map: no gradients");
  const auto t = static_cast<std::size_t>(target_class);
  if (t >= grads.size())
    throw std::invalid_argument("saliency_map: target class out of range");
  const std::size_t rows = grads[0].rows(), cols = grads[0].cols();
  saliency.resize(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const float target_grad = grads[t](i, j);
      float other = 0.0f;
      for (std::size_t c = 0; c < grads.size(); ++c)
        if (c != t) other += grads[c](i, j);
      // Admissible iff increasing X_j raises the target class and lowers
      // the others.
      saliency(i, j) =
          (target_grad < 0.0f || other > 0.0f) ? 0.0f
                                               : target_grad * std::abs(other);
    }
  }
}

/// Runs the full budget loop for rows [begin, end). All writes land in
/// row-disjoint slices of the shared output buffers, so shards can run
/// concurrently without synchronization (`evaded` is uint8_t, not
/// vector<bool>, precisely so adjacent shards never share a word).
void craft_rows(const JsmaConfig& config, std::size_t budget,
                nn::InferenceSession& session, const math::Matrix& x,
                std::size_t begin, std::size_t end, math::Matrix& adversarial,
                std::uint8_t* evaded, std::size_t* features_changed,
                double* l2) {
  const std::size_t m = x.cols();
  const std::size_t count = end - begin;

  // Per-sample bookkeeping, indexed locally (0..count).
  std::vector<std::vector<bool>> perturbed(count, std::vector<bool>(m, false));
  std::vector<bool> active(count, true);
  std::vector<std::size_t> rows;  // absolute row indices, reused
  math::Matrix batch;             // gathered active rows, reused
  math::Matrix saliency;          // reused across iterations

  if (config.early_stop) {
    rows.resize(count);
    std::iota(rows.begin(), rows.end(), begin);
    math::gather_rows_into(adversarial, rows, batch);
    const auto preds = session.predict(batch);
    for (std::size_t i = 0; i < count; ++i) {
      if (preds[i] == config.target_class) {
        evaded[begin + i] = 1;
        active[i] = false;
      }
    }
  }

  const bool binary = session.network().output_dim() == 2;

  for (std::size_t iter = 0; iter < budget; ++iter) {
    // Gather the still-active rows into one batch for a single
    // forward/backward sweep.
    rows.clear();
    for (std::size_t i = 0; i < count; ++i)
      if (active[i]) rows.push_back(begin + i);
    if (rows.empty()) break;

    math::gather_rows_into(adversarial, rows, batch);
    if (binary) {
      // Binary classifier: the off-target probability gradient is the
      // exact negation of the target's (P0 + P1 = 1), so one backward
      // pass suffices and the saliency reduces to max(g, 0)^2.
      const math::Matrix& g =
          session.input_gradient(batch, config.target_class);
      saliency.resize(g.rows(), g.cols());
      for (std::size_t k = 0; k < g.size(); ++k) {
        const float v = g.data()[k];
        saliency.data()[k] = v > 0.0f ? v * v : 0.0f;
      }
    } else {
      const auto grads = session.input_gradients_all(batch);
      saliency_map_into(grads, config.target_class, saliency);
    }

    // Early-stop: the gradient sweep above ran a forward pass on the
    // current (post-previous-perturbation) values, so its logits double
    // as the evasion check that used to cost a separate predict per
    // iteration. Iteration 0 was already checked before the loop.
    if (config.early_stop && iter > 0) {
      const math::Matrix& logits = session.logits();
      for (std::size_t bi = 0; bi < rows.size(); ++bi) {
        if (static_cast<int>(math::argmax(logits.row(bi))) ==
            config.target_class)
          active[rows[bi] - begin] = false;
      }
    }

    for (std::size_t bi = 0; bi < rows.size(); ++bi) {
      const std::size_t row = rows[bi];
      const std::size_t i = row - begin;
      if (!active[i]) continue;  // evaded on this iteration's forward
      // Pick the admissible feature with the maximum saliency. Add-only:
      // a feature already at 1 cannot be increased further.
      float best = 0.0f;
      std::size_t best_j = m;  // sentinel: none admissible
      for (std::size_t j = 0; j < m; ++j) {
        if (!config.allow_repeat && perturbed[i][j]) continue;
        if (adversarial(row, j) >= 1.0f) continue;
        const float s = saliency(bi, j);
        if (s > best) {
          best = s;
          best_j = j;
        }
      }
      if (best_j == m) {
        active[i] = false;  // saliency map exhausted
        continue;
      }
      float& value = adversarial(row, best_j);
      value = std::min(1.0f, value + config.theta);
      if (!perturbed[i][best_j]) {
        perturbed[i][best_j] = true;
        ++features_changed[row];
      }
    }
  }

  // Final verdicts and perturbation sizes for the whole shard.
  rows.resize(count);
  std::iota(rows.begin(), rows.end(), begin);
  math::gather_rows_into(adversarial, rows, batch);
  const auto preds = session.predict(batch);
  for (std::size_t i = 0; i < count; ++i) {
    evaded[begin + i] = preds[i] == config.target_class ? 1 : 0;
    l2[begin + i] =
        math::l2_distance(x.row(begin + i), adversarial.row(begin + i));
  }
}

}  // namespace

Jsma::Jsma(JsmaConfig config) : config_(config) {
  if (config_.theta < 0.0f)
    throw std::invalid_argument("Jsma: theta must be non-negative");
  if (config_.gamma < 0.0f || config_.gamma > 1.0f)
    throw std::invalid_argument("Jsma: gamma must be in [0, 1]");
}

std::size_t Jsma::feature_budget(std::size_t num_features) const noexcept {
  return static_cast<std::size_t>(
      std::lround(static_cast<double>(config_.gamma) *
                  static_cast<double>(num_features)));
}

math::Matrix Jsma::saliency_map(std::span<const math::Matrix> grads,
                                int target_class) {
  math::Matrix saliency;
  saliency_map_into(grads, target_class, saliency);
  return saliency;
}

AttackResult Jsma::craft(const nn::Network& model,
                         const math::Matrix& x) const {
  const std::size_t n = x.rows(), m = x.cols();
  AttackResult result;
  result.adversarial = x;
  result.evaded.assign(n, false);
  result.features_changed.assign(n, 0);
  result.l2_perturbation.assign(n, 0.0);
  const std::size_t budget = feature_budget(m);
  // Ambient sinks are resolved HERE, on the calling thread: thread-local
  // Scope overrides do not propagate into the OpenMP shards below, so the
  // tracer pointer is captured and handed to each shard explicitly.
  obs::Tracer* tracer = obs::current_tracer();
  obs::MetricsRegistry* registry = obs::current_registry();
  obs::Span craft_span = obs::span(tracer, "mev.attack.jsma.craft");
  craft_span.arg("samples", static_cast<double>(n));
  craft_span.arg("budget", static_cast<double>(budget));
  if (n == 0 || budget == 0 || config_.theta == 0.0f) {
    // Zero-strength attack: evaded iff already misclassified.
    if (n > 0) {
      nn::InferenceSession session(model, n);
      const auto preds = session.predict(x);
      for (std::size_t i = 0; i < n; ++i)
        result.evaded[i] = preds[i] == config_.target_class;
    }
    return result;
  }

  // Contiguous sample shards, one session per shard, one shared read-only
  // network. Results are shard-count-invariant (all math is row-wise).
  std::size_t shards = 1;
#ifdef _OPENMP
  shards = std::min<std::size_t>(
      n, static_cast<std::size_t>(std::max(1, omp_get_max_threads())));
#endif
  std::vector<std::uint8_t> evaded(n, 0);
  std::exception_ptr error;
#ifdef _OPENMP
#pragma omp parallel for schedule(static, 1) if (shards > 1)
#endif
  for (std::size_t s = 0; s < shards; ++s) {
    try {
      const std::size_t begin = s * n / shards;
      const std::size_t end = (s + 1) * n / shards;
      if (begin == end) continue;
      obs::Span shard_span = obs::span(tracer, "mev.attack.jsma.shard");
      shard_span.arg("rows", static_cast<double>(end - begin));
      nn::InferenceSession session(model, end - begin);
      craft_rows(config_, budget, session, x, begin, end, result.adversarial,
                 evaded.data(), result.features_changed.data(),
                 result.l2_perturbation.data());
    } catch (...) {
#ifdef _OPENMP
#pragma omp critical
#endif
      if (error == nullptr) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  result.evaded.assign(evaded.begin(), evaded.end());

  // Per-sample crafting metrics, folded in on the calling thread after the
  // shards finish (no contention on the registry from the parallel loop).
  obs::Counter samples_counter = registry->counter(
      "mev.attack.jsma.samples", "samples submitted to JSMA crafting");
  obs::Counter evaded_counter = registry->counter(
      "mev.attack.jsma.evaded", "samples misclassified after crafting");
  obs::Counter flips_counter = registry->counter(
      "mev.attack.jsma.features_flipped", "total features perturbed");
  obs::Histogram flips_histogram = registry->histogram(
      "mev.attack.jsma.features_changed", "features perturbed per sample");
  std::size_t evaded_total = 0, flips_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    evaded_total += result.evaded[i] ? 1 : 0;
    flips_total += result.features_changed[i];
    flips_histogram.record(result.features_changed[i]);
  }
  samples_counter.inc(n);
  evaded_counter.inc(evaded_total);
  flips_counter.inc(flips_total);
  craft_span.arg("evaded", static_cast<double>(evaded_total));
  return result;
}

}  // namespace mev::attack
