#include "serve/micro_batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace mev::serve {

MicroBatcher::MicroBatcher(BatcherConfig config) : config_(config) {
  if (config_.max_batch_rows == 0)
    throw std::invalid_argument("MicroBatcher: max_batch_rows must be > 0");
}

void MicroBatcher::add(Request request) {
  pending_rows_ += request.counts.rows();
  pending_.push_back(std::move(request));
}

void MicroBatcher::take_expired(std::uint64_t now_ms,
                                std::vector<Request>& expired) {
  // Expiry can hit any position (deadlines are per-request), so scan the
  // whole queue, keeping FIFO order among survivors.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->expired(now_ms)) {
      pending_rows_ -= it->counts.rows();
      expired.push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

std::optional<Batch> MicroBatcher::poll(std::uint64_t now_ms, bool force) {
  if (pending_.empty()) return std::nullopt;
  const std::uint64_t waited = now_ms - pending_.front().enqueue_ms;
  const bool full = pending_rows_ >= config_.max_batch_rows;
  if (!force && !full && waited < config_.max_queue_delay_ms)
    return std::nullopt;

  Batch batch;
  while (!pending_.empty()) {
    const std::size_t next_rows = pending_.front().counts.rows();
    // Whole requests only; always take at least one so an oversized
    // request still makes progress (as its own batch).
    if (!batch.requests.empty() &&
        batch.rows + next_rows > config_.max_batch_rows)
      break;
    batch.rows += next_rows;
    pending_rows_ -= next_rows;
    batch.requests.push_back(std::move(pending_.front()));
    pending_.pop_front();
    if (batch.rows >= config_.max_batch_rows) break;
  }
  return batch;
}

std::optional<std::uint64_t> MicroBatcher::ms_until_flush(
    std::uint64_t now_ms) const {
  if (pending_.empty()) return std::nullopt;
  if (pending_rows_ >= config_.max_batch_rows) return 0;
  std::uint64_t due =
      pending_.front().enqueue_ms + config_.max_queue_delay_ms;
  // A deadline can fall before the flush point; waking for it keeps
  // deadline rejections timely instead of batched with the next flush.
  for (const auto& request : pending_)
    if (request.deadline_ms != 0) due = std::min(due, request.deadline_ms);
  return due <= now_ms ? 0 : due - now_ms;
}

}  // namespace mev::serve
