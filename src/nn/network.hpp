// Feed-forward network (MLP) — the model class for both the target malware
// detector (4-layer DNN) and the substitute model (Table IV: 5-layer,
// 491-1200-1500-1300-2).
//
// A Network is logically CONST during evaluation: all forward caches and
// gradient accumulators live in InferenceSession workspaces
// (nn/session.hpp), so one network can be shared across threads with one
// session per thread. Besides training, the network exposes input
// gradients dF_i(X)/dX_j (Eq. 1 of the paper), which is what the JSMA
// saliency map consumes.
//
// The member evaluation methods below (forward, predict, ...) are a
// convenience API over an internal scratch session; they are NOT
// thread-safe on a shared instance — use explicit sessions for that.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/rng.hpp"
#include "nn/layer.hpp"

namespace mev::nn {

class InferenceSession;

class Network {
 public:
  Network();
  ~Network();
  Network(const Network& other);
  Network& operator=(const Network& other);
  // Moves drop the scratch session (it holds a pointer to the moved-from
  // object); any external sessions bound to either side are invalidated.
  Network(Network&& other) noexcept;
  Network& operator=(Network&& other) noexcept;

  /// Appends a layer; its input_dim must match the current output_dim.
  /// Invalidates any session bound to this network.
  void add(std::unique_ptr<Layer> layer);

  std::size_t num_layers() const noexcept { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }
  Layer& mutable_layer(std::size_t i) { return *layers_.at(i); }

  std::size_t input_dim() const;
  std::size_t output_dim() const;

  /// Total number of trainable scalars.
  std::size_t num_parameters() const;

  /// Forward pass over a batch; returns logits (batch x classes).
  math::Matrix forward(const math::Matrix& x, bool training = false);

  /// Softmax probabilities at the given temperature.
  math::Matrix predict_proba(const math::Matrix& x, float temperature = 1.0f);

  /// Argmax class per row.
  std::vector<int> predict(const math::Matrix& x);

  /// Backward pass from dLoss/dLogits; accumulates parameter gradients
  /// (into the scratch session's accumulators — see params()) and returns
  /// dLoss/dInput. Must follow a forward() on the same batch. May be
  /// called multiple times per forward (e.g. one per output class).
  math::Matrix backward(const math::Matrix& grad_logits);

  /// Gradient of the softmax probability of `target_class` with respect to
  /// the input, per sample (batch x input_dim). Runs its own forward pass
  /// in inference mode; parameter gradients are untouched.
  math::Matrix input_gradient(const math::Matrix& x, int target_class);

  /// Gradients of ALL class probabilities: result[c] is batch x input_dim.
  /// Cheaper than calling input_gradient per class (single forward).
  std::vector<math::Matrix> input_gradients_all(const math::Matrix& x);

  /// Parameter/gradient pairs for an optimizer; gradients live in the
  /// internal scratch session.
  std::vector<ParamRef> params();
  void zero_grad();

  /// Layer widths, e.g. "491-1200-1500-1300-2" (dense layers only).
  std::string architecture_string() const;

 private:
  InferenceSession& scratch();

  std::vector<std::unique_ptr<Layer>> layers_;
  // Lazily created workspace backing the legacy evaluation methods; never
  // copied or moved with the network.
  std::unique_ptr<InferenceSession> scratch_;
};

struct MlpConfig {
  std::vector<std::size_t> dims;  // e.g. {491, 1200, 1500, 1300, 2}
  Activation hidden_activation = Activation::kRelu;
  float dropout = 0.0f;  // applied after each hidden layer when > 0
  std::uint64_t seed = 1;
};

/// Builds an MLP whose final layer is linear (logits); apply softmax via
/// predict_proba or a loss function.
Network make_mlp(const MlpConfig& config);

/// Serializes all layers (architecture + parameters) to a binary stream.
void save_network(const Network& net, std::ostream& os);
/// Writes to a file; throws std::runtime_error on I/O failure.
void save_network(const Network& net, const std::string& path);

/// Reads a network written by save_network.
Network load_network(std::istream& is);
Network load_network(const std::string& path);

}  // namespace mev::nn
