file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_blackbox.dir/bench_fig2_blackbox.cpp.o"
  "CMakeFiles/bench_fig2_blackbox.dir/bench_fig2_blackbox.cpp.o.d"
  "bench_fig2_blackbox"
  "bench_fig2_blackbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_blackbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
