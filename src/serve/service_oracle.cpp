#include "serve/service_oracle.hpp"

#include <string>

#include "runtime/oracle_error.hpp"

namespace mev::serve {

std::vector<int> ServiceOracle::label_counts(const math::Matrix& counts) {
  record_queries(counts.rows());
  SubmitOptions options;
  options.deadline_ms = deadline_ms_;
  const ScoreResult result = service_->score(counts, options);
  if (!result.ok()) {
    const std::string what =
        std::string("ServiceOracle: submission rejected: ") +
        to_string(result.rejected);
    if (result.rejected == RejectReason::kShuttingDown)
      throw runtime::PermanentOracleError(what);
    throw runtime::TransientOracleError(what);
  }
  std::vector<int> labels(result.verdicts.size());
  for (std::size_t i = 0; i < labels.size(); ++i)
    labels[i] = result.verdicts[i].predicted_class;
  return labels;
}

}  // namespace mev::serve
