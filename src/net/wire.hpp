// Wire formats for POST /v1/score, negotiated via Content-Type:
//
//   application/json        [[f, f, ...], [f, f, ...], ...]
//                           one inner array per row, expected_cols floats
//                           each; strict — no objects, no strings, no
//                           non-finite values.
//
//   application/x-mev-rows  compact length-prefixed binary (all integers
//                           and floats little-endian):
//                             u32 magic  'MEVB' (0x4256454D)
//                             u32 rows   (>0)
//                             u32 cols   (must equal expected_cols)
//                             f32 payload[rows*cols], row-major
//                           total size must be exactly 12 + rows*cols*4 —
//                           trailing bytes are an error, not padding.
//
// Responses are JSON either way:
//   200  {"model_version":N,"verdicts":[{"malware":b,"confidence":c},..]}
//   4xx/5xx {"error":"<reason token>","detail":"..."}
//
// Pure string/byte processing — no sockets, no service — so every framing
// edge is unit-testable in isolation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "math/matrix.hpp"
#include "serve/request.hpp"

namespace mev::net {

inline constexpr const char* kJsonContentType = "application/json";
inline constexpr const char* kBinaryContentType = "application/x-mev-rows";
inline constexpr std::uint32_t kBinaryMagic = 0x4256454Du;  // "MEVB" LE

/// Parsed request body: `ok` false carries a human-readable `error` for
/// the 400 response body.
struct BodyParseResult {
  bool ok = false;
  std::string error;
  math::Matrix rows;
};

/// Strict JSON array-of-rows; every row must have exactly expected_cols
/// finite numbers. `max_rows` bounds the accepted row count (0 = no cap).
BodyParseResult parse_json_rows(std::string_view body,
                                std::size_t expected_cols,
                                std::size_t max_rows = 0);

/// Length-prefixed binary rows (see header comment for layout).
BodyParseResult parse_binary_rows(std::string_view body,
                                  std::size_t expected_cols,
                                  std::size_t max_rows = 0);

/// Serializes a matrix into the binary request format (clients, bench,
/// tests).
std::string encode_binary_rows(const math::Matrix& rows);

/// The 200 response body for a scored result.
std::string format_verdicts_json(const serve::ScoreResult& result);

/// An error response body: {"error":"...","detail":"..."}.
std::string format_error_json(std::string_view error,
                              std::string_view detail);

/// Maps a serve-layer rejection to its HTTP status + stable reason token:
/// queue_full/overloaded/shutting_down → 503, deadline → 504,
/// internal_error → 500 (kNone → 200/"ok").
struct HttpStatus {
  int status = 200;
  const char* reason = "ok";
};
HttpStatus status_for(serve::RejectReason reason) noexcept;

}  // namespace mev::net
