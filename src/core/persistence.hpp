// Detector persistence: a trained MalwareDetector (count transform + DNN)
// round-trips through two files so a deployment can load the exact model
// the evaluation measured.
#pragma once

#include <memory>
#include <string>

#include "core/detector.hpp"

namespace mev::core {

/// Writes `<path_prefix>.net` (binary network) and `<path_prefix>.transform`
/// (text transform). Supports CountTransform- and BinaryTransform-based
/// pipelines; throws std::runtime_error on I/O failure or unknown
/// transform types.
void save_detector(const MalwareDetector& detector,
                   const std::string& path_prefix);

/// Loads a detector saved by save_detector, binding it to `vocab` (which
/// must have the same size the detector was trained with).
std::unique_ptr<MalwareDetector> load_detector(const std::string& path_prefix,
                                               const data::ApiVocab& vocab);

}  // namespace mev::core
