#include "serve/drift.hpp"

namespace mev::serve {

ScoreDrift::ScoreDrift(DriftConfig config)
    : config_(config), current_(config.window) {
  if (config_.reference_min_count == 0) config_.reference_min_count = 1;
}

void ScoreDrift::record(std::uint64_t now_us, double score) noexcept {
  current_.record(now_us, score);
  if (frozen_.load(std::memory_order_acquire)) return;
  reference_bins_[obs::score_bin(score)].fetch_add(1,
                                                   std::memory_order_relaxed);
  const std::uint64_t n =
      reference_count_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (n >= config_.reference_min_count)
    frozen_.store(true, std::memory_order_release);
}

void ScoreDrift::reset_reference() noexcept {
  // Freeze first so concurrent records stop feeding the bins we are about
  // to clear; a record that already passed the gate may still smear one
  // count into the fresh baseline — telemetry-grade, bounded by the
  // number of in-flight records.
  frozen_.store(true, std::memory_order_release);
  for (auto& bin : reference_bins_) bin.store(0, std::memory_order_relaxed);
  reference_count_.store(0, std::memory_order_relaxed);
  frozen_.store(false, std::memory_order_release);
}

double ScoreDrift::psi(std::uint64_t now_us) const noexcept {
  if (!reference_frozen()) return 0.0;
  return obs::psi(reference(), current_.bins(now_us, config_.window_us));
}

obs::ScoreBins ScoreDrift::reference() const noexcept {
  obs::ScoreBins bins{};
  for (std::size_t i = 0; i < obs::kScoreBins; ++i)
    bins[i] = reference_bins_[i].load(std::memory_order_relaxed);
  return bins;
}

obs::ScoreBins ScoreDrift::current(std::uint64_t now_us) const noexcept {
  return current_.bins(now_us, config_.window_us);
}

}  // namespace mev::serve
