#include "data/csv_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mev::data {
namespace {

CountDataset sample() {
  CountDataset ds;
  ds.counts = math::Matrix{{1, 0, 2.5f}, {0, 3, 0}};
  ds.labels = {kCleanLabel, kMalwareLabel};
  return ds;
}

TEST(CsvIo, RoundTrip) {
  const CountDataset ds = sample();
  std::stringstream buffer;
  write_csv(ds, buffer);
  const CountDataset loaded = read_csv(buffer);
  EXPECT_EQ(loaded.labels, ds.labels);
  EXPECT_EQ(loaded.counts, ds.counts);
}

TEST(CsvIo, HeaderContainsFeatureColumns) {
  std::stringstream buffer;
  write_csv(sample(), buffer);
  std::string header;
  std::getline(buffer, header);
  EXPECT_EQ(header, "label,f0,f1,f2");
}

TEST(CsvIo, EmptyInputThrows) {
  std::stringstream buffer;
  EXPECT_THROW(read_csv(buffer), std::runtime_error);
}

TEST(CsvIo, HeaderOnlyGivesEmptyDataset) {
  std::stringstream buffer("label,f0,f1\n");
  const CountDataset ds = read_csv(buffer);
  EXPECT_EQ(ds.size(), 0u);
}

class CsvMalformed : public ::testing::TestWithParam<const char*> {};

TEST_P(CsvMalformed, Throws) {
  std::stringstream buffer(std::string("label,f0,f1\n") + GetParam());
  EXPECT_THROW(read_csv(buffer), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(BadRows, CsvMalformed,
                         ::testing::Values("x,1,2\n",      // bad label
                                           "0,1\n",        // ragged short
                                           "0,1,2,3\n",    // ragged long
                                           "0,abc,2\n",    // bad number
                                           "3,1,2\n"));    // label range

TEST(CsvIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mev_csv_test.csv";
  write_csv(sample(), path);
  const CountDataset loaded = read_csv(path);
  EXPECT_EQ(loaded.counts, sample().counts);
}

TEST(CsvIo, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace mev::data
