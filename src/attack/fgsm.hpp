// Add-only FGSM (Goodfellow et al. 2015), provided as an extension/ablation:
// a single gradient-sign step toward the target class, restricted to the
// non-decreasing direction so malware functionality is preserved.
//
//   X' = clamp(X + theta * 1[dF_target/dX > 0], 0, 1)
//
// Unlike JSMA it perturbs every admissible feature at once, so it trades
// perturbation sparsity for speed — the comparison against JSMA is an
// ablation DESIGN.md §5 calls out.
#pragma once

#include "attack/attack.hpp"

namespace mev::attack {

struct FgsmConfig {
  float theta = 0.1f;
  int target_class = 0;
};

class FgsmAddOnly final : public EvasionAttack {
 public:
  explicit FgsmAddOnly(FgsmConfig config);

  AttackResult craft(const nn::Network& model,
                     const math::Matrix& x) const override;
  std::string name() const override { return "fgsm-add-only"; }

  const FgsmConfig& config() const noexcept { return config_; }

 private:
  FgsmConfig config_;
};

}  // namespace mev::attack
