#include "nn/session.hpp"

#include <stdexcept>

#include "math/linalg.hpp"
#include "nn/network.hpp"

namespace mev::nn {

InferenceSession::InferenceSession(const Network& net, std::size_t max_batch)
    : net_(&net) {
  if (net.num_layers() == 0)
    throw std::invalid_argument("InferenceSession: empty network");
  ws_.resize(net.num_layers());
  for (std::size_t i = 0; i < ws_.size(); ++i)
    net.layer(i).init_workspace(ws_[i]);
  class_grads_.resize(net.output_dim());
  if (max_batch > 0) {
    input_.reserve(max_batch, net.input_dim());
    probs_.reserve(max_batch, net.output_dim());
    grad_logits_.reserve(max_batch, net.output_dim());
    labels_.reserve(max_batch);
    for (std::size_t i = 0; i < ws_.size(); ++i) {
      const Layer& layer = net.layer(i);
      ws_[i].pre_activation.reserve(max_batch, layer.output_dim());
      ws_[i].output.reserve(max_batch, layer.output_dim());
      ws_[i].mask.reserve(max_batch, layer.output_dim());
      ws_[i].grad_input.reserve(max_batch, layer.input_dim());
    }
    for (auto& g : class_grads_) g.reserve(max_batch, net.input_dim());
  }
}

const math::Matrix& InferenceSession::layer_input(
    std::size_t layer_index) const {
  return layer_index == 0 ? input_ : ws_[layer_index - 1].output;
}

const math::Matrix& InferenceSession::forward(const math::Matrix& x,
                                              bool training) {
  input_ = x;  // capacity-reusing copy; backward may need it for param grads
  for (std::size_t i = 0; i < ws_.size(); ++i)
    net_->layer(i).forward(layer_input(i), ws_[i], training);
  return ws_.back().output;
}

const math::Matrix& InferenceSession::logits() const {
  return ws_.back().output;
}

const math::Matrix& InferenceSession::predict_proba(const math::Matrix& x,
                                                    float temperature) {
  const math::Matrix& z = forward(x, /*training=*/false);
  probs_ = z;
  for (std::size_t i = 0; i < probs_.rows(); ++i)
    math::softmax_inplace(probs_.row(i), temperature);
  return probs_;
}

std::span<const int> InferenceSession::predict(const math::Matrix& x) {
  const math::Matrix& z = forward(x, /*training=*/false);
  labels_.resize(z.rows());
  for (std::size_t i = 0; i < z.rows(); ++i)
    labels_[i] = static_cast<int>(math::argmax(z.row(i)));
  return labels_;
}

const math::Matrix& InferenceSession::run_backward(
    bool accumulate_param_grads) {
  math::Matrix* grad = &grad_logits_;
  for (std::size_t i = ws_.size(); i-- > 0;) {
    net_->layer(i).backward(*grad, layer_input(i), ws_[i],
                            accumulate_param_grads);
    grad = &ws_[i].grad_input;
  }
  return ws_.front().grad_input;
}

const math::Matrix& InferenceSession::backward(const math::Matrix& grad_logits,
                                               bool accumulate_param_grads) {
  if (!grad_logits.same_shape(ws_.back().output))
    throw std::invalid_argument("InferenceSession::backward: shape mismatch");
  grad_logits_ = grad_logits;
  return run_backward(accumulate_param_grads);
}

void InferenceSession::softmax_jacobian_row(std::size_t target_class) {
  // dF_c/dlogit_j = p_c (delta_cj - p_j): the softmax Jacobian row.
  const std::size_t classes = probs_.cols();
  grad_logits_.resize(probs_.rows(), classes);
  for (std::size_t i = 0; i < probs_.rows(); ++i) {
    const float pc = probs_(i, target_class);
    for (std::size_t j = 0; j < classes; ++j)
      grad_logits_(i, j) =
          pc * ((j == target_class ? 1.0f : 0.0f) - probs_(i, j));
  }
}

const math::Matrix& InferenceSession::input_gradient(const math::Matrix& x,
                                                     int target_class) {
  const std::size_t classes = net_->output_dim();
  if (target_class < 0 || static_cast<std::size_t>(target_class) >= classes)
    throw std::invalid_argument("input_gradient: class out of range");
  predict_proba(x);
  softmax_jacobian_row(static_cast<std::size_t>(target_class));
  return run_backward(/*accumulate_param_grads=*/false);
}

std::span<const math::Matrix> InferenceSession::input_gradients_all(
    const math::Matrix& x) {
  const std::size_t classes = net_->output_dim();
  predict_proba(x);
  for (std::size_t c = 0; c < classes; ++c) {
    softmax_jacobian_row(c);
    class_grads_[c] = run_backward(/*accumulate_param_grads=*/false);
  }
  return class_grads_;
}

std::vector<ParamRef> InferenceSession::bind_params(Network& net) {
  if (&net != net_)
    throw std::invalid_argument(
        "InferenceSession::bind_params: different network");
  std::vector<ParamRef> all;
  for (std::size_t i = 0; i < ws_.size(); ++i) {
    auto values = net.mutable_layer(i).param_values();
    if (values.size() != ws_[i].param_grads.size())
      throw std::logic_error("bind_params: workspace out of sync");
    for (std::size_t j = 0; j < values.size(); ++j)
      all.push_back({values[j], &ws_[i].param_grads[j]});
  }
  return all;
}

void InferenceSession::zero_param_grads() {
  for (auto& ws : ws_)
    for (auto& g : ws.param_grads) g.fill(0.0f);
}

}  // namespace mev::nn
