// Tracer behavior: ring overflow accounting, Chrome trace-event JSON
// schema, FakeClock determinism, concurrent emission (exercised under
// TSan in CI), and the null-safe helpers. The behavioral tests only exist
// in full-obs builds; the stub build still compiles this file and checks
// that the no-op surface stays callable.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "runtime/clock.hpp"

namespace {

using mev::obs::Span;
using mev::obs::Tracer;
using mev::obs::TracerConfig;
using mev::runtime::FakeClock;

#if MEV_OBS_ENABLED

TEST(Tracer, RingOverflowDropsAndCounts) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  for (int i = 0; i < 10; ++i) tracer.instant("mev.test.tick");
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Overflow is surfaced inside the trace itself.
  EXPECT_NE(tracer.chrome_trace().find("mev.obs.dropped_events"),
            std::string::npos);
}

TEST(Tracer, ChromeTraceJsonSchemaIsPinned) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  {
    Span s = tracer.span("mev.test.op");
    s.arg("x", 1.0);
    clock.advance(2);  // 2 ms -> dur 2000 us
  }
  EXPECT_EQ(tracer.chrome_trace(),
            "{\"traceEvents\":["
            "{\"name\":\"mev.test.op\",\"cat\":\"mev\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":2000,\"args\":{\"x\":1}}"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(Tracer, InstantEventsUseThePhaseAndScopeFields) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  tracer.instant("mev.test.marker");
  const std::string json = tracer.chrome_trace();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(Tracer, FakeClockMakesTracesDeterministic) {
  const auto run = [] {
    FakeClock clock(100);
    Tracer tracer(TracerConfig{.ring_capacity = 64, .clock = &clock});
    for (int round = 0; round < 3; ++round) {
      Span s = tracer.span("mev.test.round");
      s.arg("round", static_cast<double>(round));
      clock.advance(5);
      tracer.instant("mev.test.mid");
      clock.advance(7);
    }
    return tracer.chrome_trace();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  FakeClock clock;
  Tracer tracer(
      TracerConfig{.ring_capacity = 16, .clock = &clock, .enabled = false});
  { Span s = tracer.span("mev.test.op"); }
  tracer.instant("mev.test.marker");
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.set_enabled(true);
  { Span s = tracer.span("mev.test.op"); }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, MovedFromSpanDoesNotDoubleEmit) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  {
    Span a = tracer.span("mev.test.op");
    Span b = std::move(a);
    a.finish();  // inert: ownership moved to b
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, ConcurrentSpanEmissionIsLosslessAcrossThreads) {
  // Constant FakeClock: no writer mutates time, so the only shared state
  // under test is the tracer itself (TSan-checked in CI).
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 1 << 12, .clock = &clock});
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s = tracer.span("mev.test.worker");
        s.arg("i", static_cast<double>(i));
      }
    });
  // Concurrent export must be safe (possibly missing in-flight events).
  for (int i = 0; i < 10; ++i) (void)tracer.chrome_trace();
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ClearForgetsEventsAndDrops) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 2, .clock = &clock});
  for (int i = 0; i < 5; ++i) tracer.instant("mev.test.tick");
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Scope, OverridesAmbientSinksAndRestoresOnExit) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  mev::obs::MetricsRegistry registry;
  mev::obs::Tracer* outer = mev::obs::current_tracer();
  {
    mev::obs::Scope scope(&tracer, &registry);
    EXPECT_EQ(mev::obs::current_tracer(), &tracer);
    EXPECT_EQ(mev::obs::current_registry(), &registry);
    {
      // nullptr keeps the outer override.
      mev::obs::Scope inner(nullptr, nullptr);
      EXPECT_EQ(mev::obs::current_tracer(), &tracer);
      EXPECT_EQ(mev::obs::current_registry(), &registry);
    }
    EXPECT_EQ(mev::obs::resolve(static_cast<Tracer*>(nullptr)), &tracer);
  }
  EXPECT_EQ(mev::obs::current_tracer(), outer);
}

TEST(Scope, DefaultTracerStartsDisabled) {
  EXPECT_FALSE(mev::obs::default_tracer().enabled());
}

TEST(Tracer, CorrelatedSpansFormAParentChildTree) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  mev::obs::TraceContext root_ctx;
  {
    Span root = tracer.span("mev.test.root", mev::obs::TraceContext{});
    root_ctx = root.context();
    ASSERT_TRUE(root_ctx.valid());
    {
      Span child = tracer.span("mev.test.child", root_ctx);
      EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
      EXPECT_NE(child.context().span_id, root_ctx.span_id);
    }
  }
  const auto events = tracer.recent(16);
  ASSERT_EQ(events.size(), 2u);  // child finished first
  const auto& child = events[0];
  const auto& root = events[1];
  EXPECT_STREQ(root.name, "mev.test.root");
  EXPECT_EQ(root.trace_id, root_ctx.trace_id);
  EXPECT_EQ(root.span_id, root_ctx.span_id);
  EXPECT_EQ(root.parent_span_id, 0u);  // fresh trace: no parent
  EXPECT_STREQ(child.name, "mev.test.child");
  EXPECT_EQ(child.trace_id, root.trace_id);
  EXPECT_EQ(child.parent_span_id, root.span_id);
  EXPECT_NE(child.span_id, root.span_id);
}

TEST(Tracer, AnonymousSpansCarryNoIds) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  { Span s = tracer.span("mev.test.op"); }
  const auto events = tracer.recent(4);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[0].span_id, 0u);
}

TEST(Tracer, MakeContextInheritsTheTraceAndAllocatesFreshSpanIds) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  const auto root = tracer.make_context();
  EXPECT_TRUE(root.valid());
  EXPECT_NE(root.span_id, 0u);
  mev::obs::TraceContext incoming;
  incoming.trace_id = 0x1234;
  incoming.trace_hi = 0x5678;
  incoming.span_id = 0x9abc;
  const auto child = tracer.make_context(incoming);
  EXPECT_EQ(child.trace_id, incoming.trace_id);
  EXPECT_EQ(child.trace_hi, incoming.trace_hi);
  EXPECT_NE(child.span_id, incoming.span_id);
  EXPECT_NE(child.span_id, 0u);
}

TEST(Tracer, MakeContextStillAllocatesWhenRecordingIsDisabled) {
  // Correlation headers must flow even when nothing is recorded.
  FakeClock clock;
  Tracer tracer(
      TracerConfig{.ring_capacity = 4, .clock = &clock, .enabled = false});
  const auto ctx = tracer.make_context();
  EXPECT_TRUE(ctx.valid());
  EXPECT_NE(ctx.span_id, 0u);
}

TEST(Tracer, CompleteSpanEmitsRetroactivelyTimedChildren) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 8, .clock = &clock});
  const auto root = tracer.make_context();
  // Parent form: allocates a child identity under `root`.
  tracer.complete_span("mev.serve.queue", root, 100, 350);
  // Explicit-identity form: emits `root` itself with an upstream parent.
  tracer.complete_span("mev.net.request", root, /*parent_span_id=*/0xfeed,
                       /*start_us=*/50, /*end_us=*/500);
  const auto events = tracer.recent(8);  // ts-sorted: request(50) first
  ASSERT_EQ(events.size(), 2u);
  const auto& queue = events[1];
  EXPECT_STREQ(queue.name, "mev.serve.queue");
  EXPECT_EQ(queue.trace_id, root.trace_id);
  EXPECT_EQ(queue.parent_span_id, root.span_id);
  EXPECT_NE(queue.span_id, root.span_id);
  EXPECT_EQ(queue.ts_us, 100u);
  EXPECT_EQ(queue.dur_us, 250u);
  const auto& request = events[0];
  EXPECT_STREQ(request.name, "mev.net.request");
  EXPECT_EQ(request.span_id, root.span_id);
  EXPECT_EQ(request.parent_span_id, 0xfeedu);
  EXPECT_EQ(request.dur_us, 450u);
}

TEST(Tracer, ChromeTraceExportsIdsAsHexStrings) {
  // 64-bit ids do not survive JSON number (double) round-trips, so the
  // export writes them as hex strings; Chrome ignores unknown keys.
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  mev::obs::TraceContext ctx;
  ctx.trace_id = 0xabcdef12345678ULL;
  ctx.span_id = 0x11;
  tracer.complete_span("mev.test.op", ctx, /*parent_span_id=*/0x22, 0, 10);
  const std::string json = tracer.chrome_trace();
  EXPECT_NE(json.find("\"trace_id\":\"00abcdef12345678\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"span_id\":\"0000000000000011\""), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"0000000000000022\""),
            std::string::npos);
}

TEST(Tracer, CorrelatedTracesAreByteIdenticalUnderFakeClock) {
  // The tentpole determinism contract: a FakeClock-seeded tracer mints
  // the same ids in the same order, so two identical runs produce
  // byte-identical Chrome traces INCLUDING correlation ids.
  const auto run = [] {
    FakeClock clock(100);
    Tracer tracer(TracerConfig{.ring_capacity = 64, .clock = &clock});
    for (int round = 0; round < 3; ++round) {
      Span root = tracer.span("mev.test.request", mev::obs::TraceContext{});
      clock.advance(2);
      {
        Span child = tracer.span("mev.test.scan", root.context());
        clock.advance(3);
      }
      tracer.complete_span("mev.test.queue", root.context(), 0, 1000);
    }
    return tracer.chrome_trace();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_NE(first.find("trace_id"), std::string::npos);
  EXPECT_EQ(first, second);
}

#endif  // MEV_OBS_ENABLED

TEST(Tracer, ContextPlumbingIsCallableInEveryBuildConfiguration) {
  // The correlation surface (make_context, correlated span, both
  // complete_span forms) must compile and run with obs on or off — the
  // serving path calls it unconditionally.
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  const mev::obs::TraceContext ctx = tracer.make_context();
  EXPECT_TRUE(ctx.valid());
  {
    Span s = tracer.span("mev.test.op", ctx);
    s.finish();
  }
  tracer.complete_span("mev.test.stage", ctx, 0, 5);
  tracer.complete_span("mev.test.root", ctx, 0, 0, 5);
  // Null-safe free helpers: invalid context, inert span.
  EXPECT_FALSE(mev::obs::make_context(nullptr).valid());
  Span inert = mev::obs::span(nullptr, "mev.test.op", ctx);
  inert.finish();
}

TEST(Tracer, NullSafeHelpersAreInert) {
  // Compiles and runs identically with obs on or off.
  Span s = mev::obs::span(nullptr, "mev.test.op");
  s.arg("x", 1.0);
  s.finish();
  mev::obs::instant(nullptr, "mev.test.marker");
  SUCCEED();
}

TEST(Tracer, StubAndFullTracerExposeTheInjectedClock) {
  FakeClock clock(42);
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  EXPECT_EQ(tracer.clock().now_ms(), 42u);
}

}  // namespace
