file(REMOVE_RECURSE
  "CMakeFiles/test_data.dir/data/test_api_log.cpp.o"
  "CMakeFiles/test_data.dir/data/test_api_log.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_api_vocab.cpp.o"
  "CMakeFiles/test_data.dir/data/test_api_vocab.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_csv_io.cpp.o"
  "CMakeFiles/test_data.dir/data/test_csv_io.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o"
  "CMakeFiles/test_data.dir/data/test_dataset.cpp.o.d"
  "CMakeFiles/test_data.dir/data/test_synthetic.cpp.o"
  "CMakeFiles/test_data.dir/data/test_synthetic.cpp.o.d"
  "test_data"
  "test_data.pdb"
  "test_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
