#include "attack/jsma.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "math/linalg.hpp"

namespace mev::attack {

Jsma::Jsma(JsmaConfig config) : config_(config) {
  if (config_.theta < 0.0f)
    throw std::invalid_argument("Jsma: theta must be non-negative");
  if (config_.gamma < 0.0f || config_.gamma > 1.0f)
    throw std::invalid_argument("Jsma: gamma must be in [0, 1]");
}

std::size_t Jsma::feature_budget(std::size_t num_features) const noexcept {
  return static_cast<std::size_t>(
      std::lround(static_cast<double>(config_.gamma) *
                  static_cast<double>(num_features)));
}

math::Matrix Jsma::saliency_map(const std::vector<math::Matrix>& grads,
                                int target_class) {
  if (grads.empty()) throw std::invalid_argument("saliency_map: no gradients");
  const auto t = static_cast<std::size_t>(target_class);
  if (t >= grads.size())
    throw std::invalid_argument("saliency_map: target class out of range");
  const std::size_t rows = grads[0].rows(), cols = grads[0].cols();
  math::Matrix saliency(rows, cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      const float target_grad = grads[t](i, j);
      float other = 0.0f;
      for (std::size_t c = 0; c < grads.size(); ++c)
        if (c != t) other += grads[c](i, j);
      // Admissible iff increasing X_j raises the target class and lowers
      // the others.
      saliency(i, j) =
          (target_grad < 0.0f || other > 0.0f) ? 0.0f
                                               : target_grad * std::abs(other);
    }
  }
  return saliency;
}

AttackResult Jsma::craft(nn::Network& model, const math::Matrix& x) const {
  const std::size_t n = x.rows(), m = x.cols();
  AttackResult result;
  result.adversarial = x;
  result.evaded.assign(n, false);
  result.features_changed.assign(n, 0);
  result.l2_perturbation.assign(n, 0.0);
  const std::size_t budget = feature_budget(m);
  if (n == 0 || budget == 0 || config_.theta == 0.0f) {
    // Zero-strength attack: evaded iff already misclassified.
    if (n > 0) {
      const auto preds = model.predict(x);
      for (std::size_t i = 0; i < n; ++i)
        result.evaded[i] = preds[i] == config_.target_class;
    }
    return result;
  }

  // Per-sample bookkeeping.
  std::vector<std::vector<bool>> perturbed(n, std::vector<bool>(m, false));
  std::vector<bool> active(n, true);
  if (config_.early_stop) {
    const auto preds = model.predict(x);
    for (std::size_t i = 0; i < n; ++i) {
      if (preds[i] == config_.target_class) {
        result.evaded[i] = true;
        active[i] = false;
      }
    }
  }

  for (std::size_t iter = 0; iter < budget; ++iter) {
    // Gather the still-active rows into one batch for a single
    // forward/backward sweep.
    std::vector<std::size_t> active_rows;
    for (std::size_t i = 0; i < n; ++i)
      if (active[i]) active_rows.push_back(i);
    if (active_rows.empty()) break;

    const math::Matrix batch = result.adversarial.gather_rows(active_rows);
    const auto grads = model.input_gradients_all(batch);
    const math::Matrix saliency = saliency_map(grads, config_.target_class);

    for (std::size_t bi = 0; bi < active_rows.size(); ++bi) {
      const std::size_t i = active_rows[bi];
      // Pick the admissible feature with the maximum saliency. Add-only:
      // a feature already at 1 cannot be increased further.
      float best = 0.0f;
      std::size_t best_j = m;  // sentinel: none admissible
      for (std::size_t j = 0; j < m; ++j) {
        if (!config_.allow_repeat && perturbed[i][j]) continue;
        if (result.adversarial(i, j) >= 1.0f) continue;
        const float s = saliency(bi, j);
        if (s > best) {
          best = s;
          best_j = j;
        }
      }
      if (best_j == m) {
        active[i] = false;  // saliency map exhausted
        continue;
      }
      float& value = result.adversarial(i, best_j);
      value = std::min(1.0f, value + config_.theta);
      if (!perturbed[i][best_j]) {
        perturbed[i][best_j] = true;
        ++result.features_changed[i];
      }
    }

    if (config_.early_stop) {
      std::vector<std::size_t> check_rows;
      for (std::size_t i = 0; i < n; ++i)
        if (active[i]) check_rows.push_back(i);
      if (check_rows.empty()) break;
      const auto preds =
          model.predict(result.adversarial.gather_rows(check_rows));
      for (std::size_t bi = 0; bi < check_rows.size(); ++bi) {
        if (preds[bi] == config_.target_class) {
          result.evaded[check_rows[bi]] = true;
          active[check_rows[bi]] = false;
        }
      }
    }
  }

  // Final verdicts and perturbation sizes.
  const auto final_preds = model.predict(result.adversarial);
  for (std::size_t i = 0; i < n; ++i) {
    result.evaded[i] = final_preds[i] == config_.target_class;
    result.l2_perturbation[i] =
        math::l2_distance(x.row(i), result.adversarial.row(i));
  }
  return result;
}

}  // namespace mev::attack
