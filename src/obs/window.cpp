#include "obs/window.hpp"

#include <algorithm>
#include <cmath>

namespace mev::obs {

namespace {

/// Clamp degenerate configs once at construction instead of branching on
/// every record: at least one bucket, at least 1 us wide.
WindowConfig sanitize(WindowConfig config) noexcept {
  if (config.bucket_us == 0) config.bucket_us = 1;
  if (config.buckets == 0) config.buckets = 1;
  return config;
}

/// First epoch still inside the trailing `window_us` ending at `epoch`'s
/// bucket. window_us == 0 means the full ring span.
std::uint64_t window_floor(std::uint64_t epoch, const WindowConfig& config,
                           std::uint64_t window_us) noexcept {
  std::uint64_t window_buckets =
      window_us == 0 ? config.buckets
                     : (window_us + config.bucket_us - 1) / config.bucket_us;
  window_buckets = std::clamp<std::uint64_t>(window_buckets, 1,
                                             config.buckets);
  return epoch + 1 >= window_buckets ? epoch + 1 - window_buckets : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// SlidingCounter

SlidingCounter::SlidingCounter(WindowConfig config)
    : config_(sanitize(config)),
      slots_(std::make_unique<Slot[]>(config_.buckets)) {}

void SlidingCounter::add(std::uint64_t now_us, std::uint64_t n) noexcept {
  std::uint64_t expected = 0;
  first_add_.compare_exchange_strong(expected, now_us + 1,
                                     std::memory_order_relaxed);
  const std::uint64_t epoch = now_us / config_.bucket_us;
  Slot& slot = slots_[epoch % config_.buckets];
  if (!detail::claim_slot(slot.tag, epoch, [&slot] {
        slot.value.store(0, std::memory_order_relaxed);
      }))
    return;  // stale writer: this timestamp's bucket has been reused
  slot.value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t SlidingCounter::total(std::uint64_t now_us,
                                    std::uint64_t window_us) const noexcept {
  const std::uint64_t epoch = now_us / config_.bucket_us;
  const std::uint64_t floor = window_floor(epoch, config_, window_us);
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < config_.buckets; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == 0) continue;  // never written
    const std::uint64_t slot_epoch = tag - 1;
    if (slot_epoch < floor || slot_epoch > epoch) continue;
    sum += slot.value.load(std::memory_order_relaxed);
  }
  return sum;
}

double SlidingCounter::rate_per_s(std::uint64_t now_us,
                                  std::uint64_t window_us) const noexcept {
  const std::uint64_t first = first_add_.load(std::memory_order_relaxed);
  if (first == 0) return 0.0;
  std::uint64_t span = window_us == 0 ? config_.span_us()
                                      : std::min(window_us, config_.span_us());
  // Partial first window: never divide by time that predates the counter.
  const std::uint64_t observed =
      now_us >= first - 1 ? now_us - (first - 1) : 0;
  std::uint64_t elapsed = std::min(span, std::max<std::uint64_t>(observed, 1));
  return static_cast<double>(total(now_us, window_us)) /
         (static_cast<double>(elapsed) / 1e6);
}

// ---------------------------------------------------------------------------
// SlidingHistogram

SlidingHistogram::SlidingHistogram(WindowConfig config)
    : config_(sanitize(config)),
      slots_(std::make_unique<Slot[]>(config_.buckets)) {}

void SlidingHistogram::record(std::uint64_t now_us,
                              std::uint64_t value) noexcept {
  const std::uint64_t epoch = now_us / config_.bucket_us;
  Slot& slot = slots_[epoch % config_.buckets];
  if (!detail::claim_slot(slot.tag, epoch, [&slot] {
        for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
        slot.count.store(0, std::memory_order_relaxed);
        slot.sum.store(0, std::memory_order_relaxed);
        slot.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
        slot.max.store(0, std::memory_order_relaxed);
      }))
    return;
  slot.counts[Log2Histogram::bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = slot.min.load(std::memory_order_relaxed);
  while (value < seen &&
         !slot.min.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
  }
  seen = slot.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.max.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
  }
}

Log2Histogram SlidingHistogram::merged(std::uint64_t now_us,
                                       std::uint64_t window_us) const noexcept {
  const std::uint64_t epoch = now_us / config_.bucket_us;
  const std::uint64_t floor = window_floor(epoch, config_, window_us);
  Log2Histogram out;
  std::array<std::uint64_t, Log2Histogram::kBuckets> counts;
  for (std::size_t i = 0; i < config_.buckets; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == 0) continue;
    const std::uint64_t slot_epoch = tag - 1;
    if (slot_epoch < floor || slot_epoch > epoch) continue;
    const std::uint64_t n = slot.count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b)
      counts[b] = slot.counts[b].load(std::memory_order_relaxed);
    std::uint64_t lo = slot.min.load(std::memory_order_relaxed);
    if (lo == ~std::uint64_t{0}) lo = 0;
    out.merge_counts(
        counts, n,
        static_cast<double>(slot.sum.load(std::memory_order_relaxed)), lo,
        slot.max.load(std::memory_order_relaxed));
  }
  return out;
}

// ---------------------------------------------------------------------------
// SlidingScoreHistogram + PSI

std::size_t score_bin(double score) noexcept {
  if (!(score > 0.0)) return 0;  // also catches NaN
  if (score >= 1.0) return kScoreBins - 1;
  return static_cast<std::size_t>(score * static_cast<double>(kScoreBins));
}

SlidingScoreHistogram::SlidingScoreHistogram(WindowConfig config)
    : config_(sanitize(config)),
      slots_(std::make_unique<Slot[]>(config_.buckets)) {}

void SlidingScoreHistogram::record(std::uint64_t now_us,
                                   double score) noexcept {
  const std::uint64_t epoch = now_us / config_.bucket_us;
  Slot& slot = slots_[epoch % config_.buckets];
  if (!detail::claim_slot(slot.tag, epoch, [&slot] {
        for (auto& c : slot.counts) c.store(0, std::memory_order_relaxed);
      }))
    return;
  slot.counts[score_bin(score)].fetch_add(1, std::memory_order_relaxed);
}

ScoreBins SlidingScoreHistogram::bins(std::uint64_t now_us,
                                      std::uint64_t window_us) const noexcept {
  const std::uint64_t epoch = now_us / config_.bucket_us;
  const std::uint64_t floor = window_floor(epoch, config_, window_us);
  ScoreBins out{};
  for (std::size_t i = 0; i < config_.buckets; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t tag = slot.tag.load(std::memory_order_acquire);
    if (tag == 0) continue;
    const std::uint64_t slot_epoch = tag - 1;
    if (slot_epoch < floor || slot_epoch > epoch) continue;
    for (std::size_t b = 0; b < kScoreBins; ++b)
      out[b] += slot.counts[b].load(std::memory_order_relaxed);
  }
  return out;
}

double psi(const ScoreBins& reference, const ScoreBins& current) noexcept {
  std::uint64_t ref_total = 0;
  std::uint64_t cur_total = 0;
  for (std::size_t i = 0; i < kScoreBins; ++i) {
    ref_total += reference[i];
    cur_total += current[i];
  }
  if (ref_total == 0 || cur_total == 0) return 0.0;
  // Smooth in proportion space against one fixed pseudo-sample: +0.5 per
  // bin on a 1000-count base for BOTH sides. Smoothing raw counts would
  // give the smaller population a higher per-bin floor, so the frozen
  // (small) reference vs the growing current window would read as drift
  // even for identical distributions.
  constexpr double kPseudoCount = 1000.0;
  const double denom = kPseudoCount + 0.5 * kScoreBins;
  double out = 0.0;
  for (std::size_t i = 0; i < kScoreBins; ++i) {
    const double p = (static_cast<double>(reference[i]) /
                          static_cast<double>(ref_total) * kPseudoCount +
                      0.5) /
                     denom;
    const double q = (static_cast<double>(current[i]) /
                          static_cast<double>(cur_total) * kPseudoCount +
                      0.5) /
                     denom;
    out += (q - p) * std::log(q / p);
  }
  return out;
}

}  // namespace mev::obs
