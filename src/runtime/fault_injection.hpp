// Deterministic fault injection for oracle stacks. FaultInjectingOracle
// wraps any CountOracle and, driven by a seeded RNG, turns some calls into
// transient failures, timeouts, oversized-batch rejections, or garbled
// (wrong-length) responses. The fault sequence is a pure function of
// (profile.seed, call sequence), so a test that fails once fails every
// time — and the resilience suite can assert that a retried run converges
// to the fault-free result bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "math/rng.hpp"
#include "runtime/clock.hpp"
#include "runtime/oracle.hpp"
#include "runtime/oracle_error.hpp"

namespace mev::runtime {

struct FaultProfile {
  std::string name = "none";

  /// Probability a call throws TransientOracleError before reaching the
  /// inner oracle.
  double transient_rate = 0.0;
  /// Probability a call times out: the clock advances by timeout_cost_ms,
  /// then OracleTimeoutError is thrown.
  double timeout_rate = 0.0;
  /// Probability a successful response is garbled (last label dropped,
  /// so the batch size no longer matches).
  double garble_rate = 0.0;
  /// The first N calls fail unconditionally (cold-start outage burst).
  std::size_t fail_first_calls = 0;
  /// When > 0, batches with more rows than this are always rejected with
  /// a TransientOracleError — exercises the resilient layer's bisection.
  std::size_t max_batch_rows = 0;

  std::uint64_t timeout_cost_ms = 50;
  std::uint64_t seed = 0xFA17ULL;

  static FaultProfile none();
  /// 30% of calls fail transiently.
  static FaultProfile flaky();
  /// 25% of calls time out (each costing timeout_cost_ms of clock).
  static FaultProfile slow();
  /// 25% of responses come back with a wrong length.
  static FaultProfile garbled();
  /// The first 4 calls fail, then 10% transient failures.
  static FaultProfile outage();
  /// Batches above 3 rows are rejected; forces bisection on every round.
  static FaultProfile tiny_batches();
  /// Everything at once: transient + timeout + garble + small batch cap.
  static FaultProfile chaos();

  /// All non-trivial built-in profiles (everything above except none()) —
  /// the equivalence-matrix tests iterate over these.
  static std::vector<FaultProfile> builtin_profiles();
};

class FaultInjectingOracle final : public CountOracle {
 public:
  /// `clock` defaults to the shared SystemClock (timeouts then really
  /// cost wall time); tests pass a FakeClock.
  FaultInjectingOracle(CountOracle& inner, FaultProfile profile,
                       Clock* clock = nullptr);

  std::vector<int> label_counts(const math::Matrix& counts) override;

  struct InjectedCounts {
    std::size_t calls = 0;
    std::size_t outage = 0;
    std::size_t oversized = 0;
    std::size_t timeouts = 0;
    std::size_t transient = 0;
    std::size_t garbled = 0;
    std::size_t faults() const noexcept {
      return outage + oversized + timeouts + transient + garbled;
    }
  };
  const InjectedCounts& injected() const noexcept { return injected_; }
  const FaultProfile& profile() const noexcept { return profile_; }

 private:
  CountOracle* inner_;
  FaultProfile profile_;
  Clock* clock_;
  math::Rng rng_;
  InjectedCounts injected_;
};

}  // namespace mev::runtime
