// ScoringFrontend end-to-end over real sockets: JSON and binary scoring
// round-trips (bit-identical to the sequential reference), keep-alive
// reuse, API-key auth + per-key rate limiting (the two-key isolation
// criterion), the 4xx surface, serve-layer rejection mapping (503/504),
// and the health/readiness endpoints. Codec edge cases live in
// test_wire.cpp; socket mechanics in test_http_server.cpp.
#include "net/frontend.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "net/wire.hpp"
#include "runtime/clock.hpp"

namespace mev::net {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

struct Fixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);
  core::MalwareDetector reference{pipeline, network};

  serve::ScoringService make_service(serve::ServiceConfig config) {
    return serve::ScoringService(pipeline, network, config);
  }
};

/// Counts are integers, so this JSON round-trips bit-identically through
/// the frontend's float parser.
std::string json_rows(const math::Matrix& m) {
  std::string out = "[";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    if (r > 0) out += ',';
    out += '[';
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out += ',';
      out += std::to_string(static_cast<long long>(row[c]));
    }
    out += ']';
  }
  out += ']';
  return out;
}

using Headers = std::vector<std::pair<std::string, std::string>>;

std::string post_score(const std::string& body, const std::string& type,
                       const Headers& extra = {}) {
  std::string req = "POST /v1/score HTTP/1.1\r\nContent-Type: " + type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\n";
  for (const auto& [name, value] : extra) req += name + ": " + value + "\r\n";
  req += "\r\n";
  req += body;
  return req;
}

/// Same minimal blocking client as test_http_server.cpp.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string read_response() {
    for (;;) {
      const std::size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::string headers = buffer_.substr(0, header_end + 4);
        std::size_t body_len = 0;
        const std::size_t cl = headers.find("Content-Length: ");
        if (cl != std::string::npos)
          body_len = static_cast<std::size_t>(
              std::stoul(headers.substr(cl + 16)));
        if (buffer_.size() >= header_end + 4 + body_len) {
          const std::string response =
              buffer_.substr(0, header_end + 4 + body_len);
          buffer_.erase(0, header_end + 4 + body_len);
          return response;
        }
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int status_of(const std::string& response) {
  if (response.size() < 12 || response.compare(0, 9, "HTTP/1.1 ") != 0)
    return -1;
  return std::stoi(response.substr(9, 3));
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

FrontendConfig base_config() {
  FrontendConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.io_timeout_ms = 3000;
  return config;
}

TEST(ScoringFrontend, JsonAndBinaryScoreMatchTheSequentialReference) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());
  ASSERT_NE(frontend.port(), 0);

  const math::Matrix counts = random_counts(3, 42);
  serve::ScoreResult want;
  want.verdicts = f.reference.scan_counts(counts);
  want.model_version = 1;
  const std::string expected = format_verdicts_json(want);

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(json_rows(counts), kJsonContentType));
  const std::string via_json = client.read_response();
  EXPECT_EQ(status_of(via_json), 200);
  EXPECT_EQ(body_of(via_json), expected);

  client.send_raw(post_score(encode_binary_rows(counts), kBinaryContentType));
  const std::string via_binary = client.read_response();
  EXPECT_EQ(status_of(via_binary), 200);
  EXPECT_EQ(body_of(via_binary), expected);

  // Both requests rode ONE keep-alive connection.
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.scored_requests, 2u);
  EXPECT_EQ(stats.scored_rows, 6u);
}

TEST(ScoringFrontend, KeepAlivePipeliningServesManyScoresPerConnection) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 2;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  // Five pipelined posts in one write; five 200s back, in order.
  std::string burst;
  for (int i = 0; i < 5; ++i)
    burst += post_score(encode_binary_rows(random_counts(2, 100 + i)),
                        kBinaryContentType);
  client.send_raw(burst);
  for (int i = 0; i < 5; ++i) {
    const std::string response = client.read_response();
    EXPECT_EQ(status_of(response), 200) << "request " << i;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  }
  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.scored_requests, 5u);
  EXPECT_EQ(stats.scored_rows, 10u);
}

TEST(ScoringFrontend, MissingAndUnknownApiKeysAre401) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.api_keys = {ApiKey{"secret", "tester", 1e6, 1e6}};
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  const std::string body = encode_binary_rows(random_counts(1, 1));
  Client client(frontend.port());
  ASSERT_TRUE(client.ok());

  client.send_raw(post_score(body, kBinaryContentType));
  const std::string missing = client.read_response();
  EXPECT_EQ(status_of(missing), 401);
  EXPECT_NE(body_of(missing).find("missing X-Api-Key"), std::string::npos);

  client.send_raw(
      post_score(body, kBinaryContentType, {{"X-Api-Key", "wrong"}}));
  const std::string unknown = client.read_response();
  EXPECT_EQ(status_of(unknown), 401);
  EXPECT_NE(body_of(unknown).find("unknown API key"), std::string::npos);

  client.send_raw(
      post_score(body, kBinaryContentType, {{"X-Api-Key", "secret"}}));
  EXPECT_EQ(status_of(client.read_response()), 200);

  EXPECT_EQ(frontend.stats().auth_failures, 2u);
}

TEST(ScoringFrontend, ThrottledKeyGets429WhileTheOtherKeyIsUnaffected) {
  // The acceptance scenario: two clients share the endpoint; one exhausts
  // its per-key budget and starts seeing 429, the other's goodput is
  // untouched. FakeClock pins the buckets — no refill mid-test.
  Fixture f;
  runtime::FakeClock limiter_clock(1000);
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.api_keys = {ApiKey{"throttled", "small", 1.0, 4.0},
                     ApiKey{"premium", "big", 1e9, 1e9}};
  config.clock = &limiter_clock;
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  const std::string two_rows = encode_binary_rows(random_counts(2, 9));

  int throttled_ok = 0, throttled_429 = 0, premium_ok = 0;
  for (int i = 0; i < 6; ++i) {
    // Interleave: the throttled key's exhaustion must not leak into the
    // premium key's bucket.
    client.send_raw(post_score(two_rows, kBinaryContentType,
                               {{"X-Api-Key", "throttled"}}));
    const std::string response = client.read_response();
    if (status_of(response) == 200) {
      ++throttled_ok;
    } else {
      ASSERT_EQ(status_of(response), 429);
      EXPECT_NE(response.find("Retry-After: "), std::string::npos);
      EXPECT_NE(body_of(response).find("rate_limited"), std::string::npos);
      ++throttled_429;
    }
    client.send_raw(post_score(two_rows, kBinaryContentType,
                               {{"X-Api-Key", "premium"}}));
    const std::string premium = client.read_response();
    EXPECT_EQ(status_of(premium), 200) << "premium round " << i;
    if (status_of(premium) == 200) ++premium_ok;
  }
  // burst_rows=4 at 2 rows/request: exactly two pass, then the bucket is
  // dry for the rest of the (frozen-clock) test.
  EXPECT_EQ(throttled_ok, 2);
  EXPECT_EQ(throttled_429, 4);
  EXPECT_EQ(premium_ok, 6);

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.rate_limited, 4u);
  EXPECT_EQ(stats.scored_requests, 8u);
  EXPECT_EQ(stats.auth_failures, 0u);
}

TEST(ScoringFrontend, BadInputsMapToThe4xxSurface) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());
  Client client(frontend.port());
  ASSERT_TRUE(client.ok());

  // 415: unnegotiable content type.
  client.send_raw(post_score("a,b,c", "text/csv"));
  EXPECT_EQ(status_of(client.read_response()), 415);

  // 400: malformed JSON.
  client.send_raw(post_score("not json", kJsonContentType));
  EXPECT_EQ(status_of(client.read_response()), 400);

  // 400: wrong column count (decoded, then rejected against the model).
  client.send_raw(post_score("[[1,2,3]]", kJsonContentType));
  const std::string bad_cols = client.read_response();
  EXPECT_EQ(status_of(bad_cols), 400);
  EXPECT_NE(body_of(bad_cols).find("columns"), std::string::npos);

  // 400: garbage deadline header.
  client.send_raw(post_score(encode_binary_rows(random_counts(1, 2)),
                             kBinaryContentType,
                             {{"X-Deadline-Ms", "soonish"}}));
  const std::string bad_deadline = client.read_response();
  EXPECT_EQ(status_of(bad_deadline), 400);
  EXPECT_NE(body_of(bad_deadline).find("X-Deadline-Ms"), std::string::npos);

  // 405: wrong method on the score path, with Allow.
  client.send_raw("GET /v1/score HTTP/1.1\r\n\r\n");
  const std::string wrong_method = client.read_response();
  EXPECT_EQ(status_of(wrong_method), 405);
  EXPECT_NE(wrong_method.find("Allow: POST"), std::string::npos);

  // 404: unknown path.
  client.send_raw("GET /v2/score HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(client.read_response()), 404);

  EXPECT_EQ(frontend.stats().bad_requests, 4u);
  EXPECT_EQ(frontend.stats().scored_requests, 0u);
}

TEST(ScoringFrontend, OversizedBodiesAnd411ComeFromTheParser) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.max_body_bytes = 64;
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  {
    // Declared length over the cap: 413 at the header boundary, before
    // any body bytes are buffered; the connection is then closed.
    Client client(frontend.port());
    ASSERT_TRUE(client.ok());
    client.send_raw(
        "POST /v1/score HTTP/1.1\r\nContent-Type: application/json\r\n"
        "Content-Length: 1000000\r\n\r\n");
    EXPECT_EQ(status_of(client.read_response()), 413);
  }
  {
    // POST with no Content-Length at all: 411.
    Client client(frontend.port());
    ASSERT_TRUE(client.ok());
    client.send_raw(
        "POST /v1/score HTTP/1.1\r\nContent-Type: application/json\r\n\r\n");
    EXPECT_EQ(status_of(client.read_response()), 411);
  }
}

TEST(ScoringFrontend, ExpiredDeadlineAnswers504) {
  // Manual-pump service on a shared FakeClock: the request's deadline
  // passes while it waits in the batcher, and the sweep resolves the
  // callback with kDeadline → HTTP 504.
  Fixture f;
  runtime::FakeClock clock(1000);
  serve::ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_delay_ms = 100;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.clock = &clock;
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(encode_binary_rows(random_counts(2, 5)),
                             kBinaryContentType, {{"X-Deadline-Ms", "5"}}));
  // The socket worker admits asynchronously; wait for the service to see
  // the rows before advancing time past the deadline.
  for (int i = 0; i < 1000 && service.stats().accepted_requests == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(service.stats().accepted_requests, 1u);

  clock.advance(10);
  service.pump(/*force=*/true);

  const std::string response = client.read_response();
  EXPECT_EQ(status_of(response), 504);
  EXPECT_NE(body_of(response).find("deadline"), std::string::npos);
  EXPECT_EQ(frontend.stats().rejected_deadline, 1u);
}

TEST(ScoringFrontend, BackpressureAndShutdownMapTo503WithRetryAfter) {
  Fixture f;
  runtime::FakeClock clock(1000);
  serve::ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_queue_rows = 4;
  cfg.max_queue_delay_ms = 100;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.clock = &clock;
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  {
    // Fill the queue from one connection, overflow from another
    // (responses on one connection are written in arrival order, so the
    // 503 must be read on its own connection while the first request is
    // still queued). Scoped: both sockets close before the late client
    // below needs a free worker.
    Client filler(frontend.port());
    ASSERT_TRUE(filler.ok());
    filler.send_raw(post_score(encode_binary_rows(random_counts(4, 6)),
                               kBinaryContentType));
    for (int i = 0; i < 1000 && service.stats().accepted_requests == 0; ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(service.stats().accepted_requests, 1u);

    Client overflow(frontend.port());
    ASSERT_TRUE(overflow.ok());
    overflow.send_raw(post_score(encode_binary_rows(random_counts(1, 7)),
                                 kBinaryContentType));
    const std::string rejected = overflow.read_response();
    EXPECT_EQ(status_of(rejected), 503);
    EXPECT_NE(rejected.find("Retry-After: 1"), std::string::npos);
    EXPECT_NE(body_of(rejected).find("queue_full"), std::string::npos);

    // Drain the filler, then stop the service: subsequent posts are
    // 503 shutting_down.
    while (service.pump(/*force=*/true) > 0) {
    }
    EXPECT_EQ(status_of(filler.read_response()), 200);
  }
  service.shutdown();

  Client late(frontend.port());
  ASSERT_TRUE(late.ok());
  late.send_raw(post_score(encode_binary_rows(random_counts(1, 8)),
                           kBinaryContentType));
  const std::string down = late.read_response();
  EXPECT_EQ(status_of(down), 503);
  EXPECT_NE(body_of(down).find("shutting_down"), std::string::npos);

  const FrontendStats stats = frontend.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.rejected_shutting_down, 1u);
  EXPECT_EQ(stats.scored_requests, 1u);
}

TEST(ScoringFrontend, HealthAndReadinessEndpointsTrackTheService) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw("GET /healthz HTTP/1.1\r\n\r\n");
  const std::string health = client.read_response();
  EXPECT_EQ(status_of(health), 200);
  EXPECT_EQ(body_of(health), "ok\n");

  client.send_raw("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(client.read_response()), 200);

  service.shutdown();
  client.send_raw("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(status_of(client.read_response()), 503);
}

TEST(ScoringFrontend, StartStopIsIdempotent) {
  Fixture f;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  ScoringFrontend frontend(service, base_config());
  EXPECT_FALSE(frontend.running());
  EXPECT_EQ(frontend.port(), 0);
  ASSERT_TRUE(frontend.start());
  EXPECT_TRUE(frontend.running());
  ASSERT_TRUE(frontend.start());  // second start is a no-op
  frontend.stop();
  EXPECT_FALSE(frontend.running());
  frontend.stop();
}

#if MEV_OBS_ENABLED
TEST(ScoringFrontend, ExportsLabeledPrometheusCounters) {
  Fixture f;
  obs::MetricsRegistry registry;
  serve::ServiceConfig cfg;
  cfg.workers = 1;
  auto service = f.make_service(cfg);
  FrontendConfig config = base_config();
  config.metrics = &registry;
  config.api_keys = {ApiKey{"k", "c", 1e6, 1e6}};
  ScoringFrontend frontend(service, config);
  ASSERT_TRUE(frontend.start());

  Client client(frontend.port());
  ASSERT_TRUE(client.ok());
  client.send_raw(post_score(encode_binary_rows(random_counts(3, 12)),
                             kBinaryContentType, {{"X-Api-Key", "k"}}));
  EXPECT_EQ(status_of(client.read_response()), 200);
  client.send_raw(post_score(encode_binary_rows(random_counts(1, 13)),
                             kBinaryContentType, {{"X-Api-Key", "nope"}}));
  EXPECT_EQ(status_of(client.read_response()), 401);

  const std::string exposition = registry.prometheus();
  EXPECT_NE(exposition.find("mev_net_rows_total 4"), std::string::npos)
      << exposition;
  EXPECT_NE(exposition.find("mev_net_auth_failures_total 1"),
            std::string::npos);
  EXPECT_NE(
      exposition.find("mev_net_http_responses_total{status=\"200\"} 1"),
      std::string::npos);
  EXPECT_NE(
      exposition.find("mev_net_http_responses_total{status=\"401\"} 1"),
      std::string::npos);
  // Labeled rejection families exist (at zero) without any rejection
  // having happened — dashboards can rate() them from the first scrape.
  EXPECT_NE(
      exposition.find("mev_net_rejected_total{reason=\"queue_full\"} 0"),
      std::string::npos);
  // Both the 200 and the 401 are score-path responses: each records one
  // e2e latency sample (errors have latency too).
  EXPECT_NE(exposition.find("mev_net_request_latency_us_count 2"),
            std::string::npos);
  // Per-stage attribution families exist with the same sample count.
  EXPECT_NE(exposition.find("mev_net_stage_us_count{stage=\"parse\"} 2"),
            std::string::npos)
      << exposition;
}
#endif  // MEV_OBS_ENABLED

}  // namespace
}  // namespace mev::net
