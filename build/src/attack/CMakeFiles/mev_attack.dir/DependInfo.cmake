
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/attack.cpp" "src/attack/CMakeFiles/mev_attack.dir/attack.cpp.o" "gcc" "src/attack/CMakeFiles/mev_attack.dir/attack.cpp.o.d"
  "/root/repo/src/attack/fgsm.cpp" "src/attack/CMakeFiles/mev_attack.dir/fgsm.cpp.o" "gcc" "src/attack/CMakeFiles/mev_attack.dir/fgsm.cpp.o.d"
  "/root/repo/src/attack/jsma.cpp" "src/attack/CMakeFiles/mev_attack.dir/jsma.cpp.o" "gcc" "src/attack/CMakeFiles/mev_attack.dir/jsma.cpp.o.d"
  "/root/repo/src/attack/random_attack.cpp" "src/attack/CMakeFiles/mev_attack.dir/random_attack.cpp.o" "gcc" "src/attack/CMakeFiles/mev_attack.dir/random_attack.cpp.o.d"
  "/root/repo/src/attack/source_attack.cpp" "src/attack/CMakeFiles/mev_attack.dir/source_attack.cpp.o" "gcc" "src/attack/CMakeFiles/mev_attack.dir/source_attack.cpp.o.d"
  "/root/repo/src/attack/transfer.cpp" "src/attack/CMakeFiles/mev_attack.dir/transfer.cpp.o" "gcc" "src/attack/CMakeFiles/mev_attack.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mev_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mev_data.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mev_features.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
