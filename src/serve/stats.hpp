// Serving-side observability: the counter block every ScoringService
// exposes. The power-of-two histogram behind the latency digests was
// promoted to obs/histogram.hpp (PR 4) — the aliases below keep every
// serve call site and test source-compatible.
//
// Percentile accuracy: p50/p95/p99 come from obs::Log2Histogram, which
// buckets values in [2^(i-1), 2^i) and interpolates by rank inside the
// winning bucket, so a reported percentile is at most one octave from the
// true one — plenty for capacity planning, cheap enough to sit on the
// batch completion path (the bound is pinned by
// tests/obs/test_histogram.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "obs/histogram.hpp"

namespace mev::serve {

using Log2Histogram = obs::Log2Histogram;
using LatencySummary = obs::LatencySummary;
using obs::summarize;

/// Point-in-time copy of a service's counters and histograms, returned by
/// ScoringService::stats(). Requests are counted once each; rows follow
/// the request they belong to. When the service is built with a
/// MetricsRegistry, the same quantities are mirrored there under
/// mev.serve.* for Prometheus export.
struct ServiceStats {
  std::uint64_t accepted_requests = 0;
  std::uint64_t accepted_rows = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_shutting_down = 0;
  std::uint64_t rejected_deadline = 0;
  /// Shed at admission by the overload controller (kOverloaded).
  std::uint64_t rejected_overloaded = 0;
  /// Batches failed by a throwing/garbling model (kInternalError), counted
  /// per request.
  std::uint64_t rejected_internal = 0;
  /// Stage breakdown of rejected_deadline (the three always sum to it):
  /// expired on arrival / while queued / after dequeue but before
  /// inference.
  std::uint64_t expired_at_admission = 0;
  std::uint64_t expired_in_queue = 0;
  std::uint64_t expired_post_dequeue = 0;
  std::uint64_t completed_requests = 0;
  std::uint64_t completed_rows = 0;
  std::uint64_t batches = 0;
  std::uint64_t model_swaps = 0;
  /// Requests an idle worker pulled from a shard it does not own.
  std::uint64_t stolen_requests = 0;
  /// Submissions whose home shard ring was full and landed on a neighbor.
  std::uint64_t spilled_submissions = 0;
  /// submit_with_callback() callbacks that threw (contained + counted).
  std::uint64_t callback_errors = 0;
  /// Watchdog verdicts: healthy→stalled transitions, stalled→healthy
  /// transitions, and the current number of stalled workers.
  std::uint64_t worker_stalls = 0;
  std::uint64_t worker_recoveries = 0;
  std::uint64_t stalled_workers = 0;
  /// Batches failed inside the worker's containment try-block (throwing
  /// model, garbled output, session rebuild failure) — the thread
  /// survived each one.
  std::uint64_t batch_failures = 0;
  /// Overload controller posture: OverloadState enum value (0 healthy,
  /// 1 brownout, 2 recovering) and the admission shed fraction [0, 1).
  std::uint64_t overload_state = 0;
  double shed_fraction = 0.0;
  /// Score-distribution drift: PSI of the current confidence window
  /// against the frozen reference (0 until the reference freezes), and
  /// whether it has frozen yet. <0.1 stable, 0.1-0.25 moderate, >0.25
  /// major shift.
  double score_psi = 0.0;
  bool drift_reference_frozen = false;
  /// Availability-objective burn rates (fast ~5 min / slow ~1 h windows)
  /// and lifetime error budget remaining (1.0 = untouched; negative =
  /// overspent). See obs/slo.hpp for the formula.
  double slo_fast_burn = 0.0;
  double slo_slow_burn = 0.0;
  double slo_budget_remaining = 1.0;

  Log2Histogram batch_rows;        // rows per scored batch
  Log2Histogram queue_delay_us;    // submit -> batch formation, per request
  Log2Histogram e2e_latency_us;    // submit -> verdict ready, per request

  std::uint64_t rejected_total() const noexcept {
    return rejected_queue_full + rejected_shutting_down + rejected_deadline +
           rejected_overloaded + rejected_internal;
  }

  /// Multi-line human-readable dump (the examples print this).
  std::string to_string() const;
};

}  // namespace mev::serve
