// FlightRecorder: bounded, lock-free tail-based retention of complete
// per-request span trees. Sampling heads (record everything, keep a
// uniform fraction) miss exactly the requests worth debugging; this keeps
//
//   * the N slowest successful requests per rotating time window (two
//     banks: the current window fills while the previous one remains
//     readable, so /requestz never goes empty right after rotation), and
//   * the last M error/rejected requests in a ring.
//
// Writers NEVER wait: each slot is guarded by a one-word atomic try-lock;
// a writer that loses the race drops the record and bumps a counter
// (diagnostics must not become backpressure — same contract as the
// Tracer rings). Readers skip busy slots the same way, so the structure
// is clean under TSan with concurrent writers and /requestz scrapes.
//
// Compiled in every build mode: with MEV_ENABLE_OBS=OFF the frontend
// still records (the structure is cheap POD copying), /requestz just has
// no admin server to serve it.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/trace_context.hpp"

namespace mev::obs {

struct FlightRecorderConfig {
  /// Slowest-request slots retained per window (per bank).
  std::size_t slow_slots = 16;
  /// Error/rejected-request ring size.
  std::size_t error_slots = 32;
  /// Slow-bank rotation period. Each record's own start timestamp drives
  /// rotation, so FakeClock tests control it exactly.
  std::uint64_t window_us = 10'000'000;
};

/// The serving path's stage taxonomy — a telescoping partition of
/// [dispatch, respond]: parse (request decode), admission (auth, rate
/// limit, submit), queue (shard ring + batcher wait), batch (dequeue and
/// tensor assembly), scan (model forward), serialize (completion dispatch
/// + response build). Stage durations sum exactly to the e2e latency.
inline constexpr std::size_t kFlightStages = 6;
inline constexpr const char* kFlightStageNames[kFlightStages] = {
    "parse", "admission", "queue", "batch", "scan", "serialize"};

struct FlightSpan {
  const char* name = nullptr;  // string literal
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

struct FlightRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t root_span_id = 0;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::array<std::uint64_t, kFlightStages> stage_us{};
  std::uint32_t rows = 0;
  std::uint16_t http_status = 0;
  std::uint8_t reject_reason = 0;  // serve::RejectReason numeric value
  bool error = false;              // retained in the error ring, not slow bank
  std::array<FlightSpan, 8> spans{};
  std::uint8_t num_spans = 0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Offers a completed request. Error records go to the error ring;
  /// successes compete for a slow slot in the current window's bank.
  /// Never blocks, never allocates; drops on slot contention.
  void record(const FlightRecord& record) noexcept;

  /// Copies every retained record (both slow banks + error ring), skipping
  /// slots a writer holds at that instant. Unordered; callers sort.
  std::vector<FlightRecord> snapshot() const;

  std::uint64_t recorded() const noexcept {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    // true while one thread (reader or writer) owns the payload.
    mutable std::atomic<bool> busy{false};
    // 0 = empty. Mirrors record.duration_us so the min-scan that picks an
    // eviction victim needs no slot lock.
    std::atomic<std::uint64_t> duration{0};
    FlightRecord record;
  };

  bool try_store(Slot& slot, const FlightRecord& record) noexcept;
  void record_slow(const FlightRecord& record) noexcept;
  void record_error(const FlightRecord& record) noexcept;

  FlightRecorderConfig config_;
  std::array<std::vector<Slot>, 2> slow_banks_;
  std::vector<Slot> error_ring_;
  std::atomic<std::uint64_t> window_{0};  // current window index
  std::atomic<std::uint64_t> error_cursor_{0};
  std::atomic<std::uint64_t> recorded_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace mev::obs
