#include "serve/overload.hpp"

#include <algorithm>
#include <cmath>

namespace mev::serve {

void OverloadController::record_delay(std::uint64_t delay_ms) noexcept {
  if (!config_.enabled) return;
  std::uint64_t current = min_delay_ms_.load(std::memory_order_relaxed);
  while (delay_ms < current &&
         !min_delay_ms_.compare_exchange_weak(current, delay_ms,
                                              std::memory_order_relaxed)) {
  }
}

bool OverloadController::should_shed() noexcept {
  if (!config_.enabled) return false;
  const std::uint64_t ppm = shed_ppm_.load(std::memory_order_relaxed);
  if (ppm == 0) return false;
  const std::uint64_t before =
      shed_acc_.fetch_add(ppm, std::memory_order_relaxed);
  return before / 1'000'000 != (before + ppm) / 1'000'000;
}

void OverloadController::tick(std::uint64_t now_ms) {
  if (!config_.enabled) return;
  const std::uint64_t end = interval_end_ms_.load(std::memory_order_relaxed);
  if (end != 0 && now_ms < end) return;
  close_interval(now_ms);
}

void OverloadController::close_interval(std::uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(interval_mutex_);
  const std::uint64_t end = interval_end_ms_.load(std::memory_order_relaxed);
  if (end == 0) {
    // First tick: open the first interval, nothing to evaluate yet.
    interval_end_ms_.store(now_ms + config_.interval_ms,
                           std::memory_order_relaxed);
    return;
  }
  if (now_ms < end) return;  // raced another closer

  const std::uint64_t interval_min =
      min_delay_ms_.exchange(UINT64_MAX, std::memory_order_relaxed);
  interval_end_ms_.store(now_ms + config_.interval_ms,
                         std::memory_order_relaxed);

  // No sample (idle interval) counts as good: an idle service has no
  // standing queue by definition, and recovery must proceed even when
  // shedding has choked off most of the traffic.
  const bool bad =
      interval_min != UINT64_MAX && interval_min > config_.target_delay_ms;

  if (bad) {
    consecutive_good_ = 0;
    ++consecutive_bad_;
    shed_ = std::min(
        config_.max_shed,
        shed_ + config_.shed_step *
                    std::sqrt(static_cast<double>(consecutive_bad_)));
    state_.store(OverloadState::kBrownout, std::memory_order_relaxed);
  } else {
    consecutive_bad_ = 0;
    ++consecutive_good_;
    shed_ /= 2.0;
    if (shed_ < 0.005) shed_ = 0.0;
    const OverloadState state = state_.load(std::memory_order_relaxed);
    if (state == OverloadState::kBrownout)
      state_.store(OverloadState::kRecovering, std::memory_order_relaxed);
    else if (state == OverloadState::kRecovering && shed_ == 0.0 &&
             consecutive_good_ >= config_.recover_intervals)
      state_.store(OverloadState::kHealthy, std::memory_order_relaxed);
  }
  shed_ppm_.store(static_cast<std::uint32_t>(shed_ * 1e6),
                  std::memory_order_relaxed);
}

}  // namespace mev::serve
