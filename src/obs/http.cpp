#include "obs/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace mev::obs::http {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

/// Strict non-negative decimal; false on empty, sign, or stray chars.
bool parse_content_length(std::string_view s, std::uint64_t* out) noexcept {
  if (s.empty() || s.size() > 18) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

const std::string* Request::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

std::string_view Request::path() const noexcept {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

void RequestParser::fail(int status) noexcept {
  state_ = State::kError;
  status_ = ParseStatus::kError;
  error_status_ = status;
}

bool RequestParser::parse_request_line(std::string_view line) {
  // METHOD SP request-target SP HTTP-version
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return false;
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(version);
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view name = line.substr(0, colon);
  // Whitespace before the colon is invalid per RFC 7230; reject.
  if (name.back() == ' ' || name.back() == '\t') return false;
  request_.headers.emplace_back(std::string(name),
                                std::string(trim(line.substr(colon + 1))));
  return true;
}

void RequestParser::finish_headers() {
  // Framing decision point. Chunked bodies are out of scope entirely; a
  // Content-Length body is accepted up to the configured cap (0 = never).
  if (request_.header("Transfer-Encoding") != nullptr) {
    fail(400);
    return;
  }
  const std::string* length_header = request_.header("Content-Length");
  std::uint64_t length = 0;
  if (length_header != nullptr &&
      !parse_content_length(*length_header, &length)) {
    fail(400);
    return;
  }
  if (length_header == nullptr &&
      (request_.method == "POST" || request_.method == "PUT")) {
    // A bodyless POST is almost always a broken client; demand explicit
    // framing rather than silently treating it as empty.
    fail(411);
    return;
  }
  if (length > limits_.max_body_bytes) {
    fail(413);
    return;
  }
  if (length == 0) {
    state_ = State::kComplete;
    status_ = ParseStatus::kComplete;
    return;
  }
  body_remaining_ = static_cast<std::size_t>(length);
  request_.body.reserve(body_remaining_);
  state_ = State::kBody;
}

std::size_t RequestParser::feed(const char* data, std::size_t size) {
  std::size_t consumed = 0;
  while (consumed < size && state_ != State::kComplete &&
         state_ != State::kError) {
    if (state_ == State::kBody) {
      // Raw byte accumulation — no line splitting inside a body.
      const std::size_t take =
          std::min(body_remaining_, size - consumed);
      request_.body.append(data + consumed, take);
      consumed += take;
      body_remaining_ -= take;
      if (body_remaining_ == 0) {
        state_ = State::kComplete;
        status_ = ParseStatus::kComplete;
      }
      continue;
    }
    // Accumulate one line, tolerating any split point in the input.
    const char* begin = data + consumed;
    const char* nl = static_cast<const char*>(
        std::memchr(begin, '\n', size - consumed));
    const std::size_t limit = state_ == State::kRequestLine
                                  ? limits_.max_request_line
                                  : limits_.max_header_line;
    if (nl == nullptr) {
      line_.append(begin, size - consumed);
      consumed = size;
      if (line_.size() > limit ||
          (state_ == State::kHeaders &&
           header_bytes_ + line_.size() > limits_.max_header_bytes))
        fail(431);
      break;
    }
    line_.append(begin, static_cast<std::size_t>(nl - begin));
    consumed += static_cast<std::size_t>(nl - begin) + 1;
    if (line_.size() > limit) {
      fail(431);
      break;
    }
    if (state_ == State::kHeaders) {
      header_bytes_ += line_.size() + 1;  // +1: the consumed newline
      if (header_bytes_ > limits_.max_header_bytes) {
        fail(431);
        break;
      }
    }
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();

    switch (state_) {
      case State::kRequestLine:
        if (line_.empty()) break;  // tolerate leading blank lines (RFC 7230)
        if (!parse_request_line(line_)) {
          fail(400);
          break;
        }
        state_ = State::kHeaders;
        break;
      case State::kHeaders:
        if (line_.empty()) {
          finish_headers();
          break;
        }
        if (request_.headers.size() >= limits_.max_headers) {
          fail(431);
          break;
        }
        if (!parse_header_line(line_)) {
          fail(400);
          break;
        }
        break;
      case State::kBody:
      case State::kComplete:
      case State::kError:
        break;
    }
    line_.clear();
  }
  return consumed;
}

void RequestParser::reset() {
  state_ = State::kRequestLine;
  status_ = ParseStatus::kNeedMore;
  error_status_ = 0;
  line_.clear();
  header_bytes_ = 0;
  body_remaining_ = 0;
  request_ = Request{};
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 415: return "Unsupported Media Type";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::string format_response(int status, std::string_view content_type,
                            std::string_view body) {
  return format_response(status, content_type, body, /*keep_alive=*/false,
                         {});
}

std::string format_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive,
                            const std::vector<HeaderView>& extra_headers) {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  for (const auto& [name, value] : extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                    : "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

namespace {

int query_hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string decode_query_component(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < s.size()) {
      const int hi = query_hex_value(s[i + 1]);
      const int lo = query_hex_value(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
      } else {
        out += c;  // malformed escape: keep the '%' literally
      }
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view target) {
  std::vector<std::pair<std::string, std::string>> params;
  const std::size_t q = target.find('?');
  if (q == std::string_view::npos) return params;
  std::string_view rest = target.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      params.emplace_back(decode_query_component(pair), std::string{});
    } else {
      params.emplace_back(decode_query_component(pair.substr(0, eq)),
                          decode_query_component(pair.substr(eq + 1)));
    }
  }
  return params;
}

const std::string* query_param(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view name) noexcept {
  for (const auto& [key, value] : params)
    if (key == name) return &value;
  return nullptr;
}

}  // namespace mev::obs::http
