#include "eval/distance_analysis.hpp"

#include <sstream>
#include <stdexcept>

#include "math/linalg.hpp"
#include "eval/report.hpp"

namespace mev::eval {

namespace {

/// Mean L2 over up to `max_pairs` (a-row, b-row) pairs, visited with a
/// deterministic stride so the estimate is reproducible.
double mean_cross_distance(const math::Matrix& a, const math::Matrix& b,
                           std::size_t max_pairs) {
  if (a.rows() == 0 || b.rows() == 0)
    throw std::invalid_argument("mean_cross_distance: empty population");
  const std::size_t total = a.rows() * b.rows();
  const std::size_t stride = total <= max_pairs ? 1 : total / max_pairs;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t k = 0; k < total; k += stride) {
    const std::size_t i = k / b.rows();
    const std::size_t j = k % b.rows();
    sum += math::l2_distance(a.row(i), b.row(j));
    ++n;
  }
  return sum / static_cast<double>(n);
}

}  // namespace

DistanceTriple l2_distance_analysis(const math::Matrix& malware,
                                    const math::Matrix& adversarial,
                                    const math::Matrix& clean,
                                    std::size_t max_pairs) {
  if (malware.rows() != adversarial.rows())
    throw std::invalid_argument(
        "l2_distance_analysis: malware/adversarial row mismatch");
  DistanceTriple t;
  // Paired: advex i was crafted from malware i.
  double paired = 0.0;
  for (std::size_t i = 0; i < malware.rows(); ++i)
    paired += math::l2_distance(malware.row(i), adversarial.row(i));
  t.malware_to_adversarial =
      malware.rows() == 0 ? 0.0 : paired / static_cast<double>(malware.rows());
  t.malware_to_clean = mean_cross_distance(malware, clean, max_pairs);
  t.clean_to_adversarial = mean_cross_distance(clean, adversarial, max_pairs);
  return t;
}

std::string render_distance_curve(
    const std::string& parameter,
    const std::vector<DistanceCurvePoint>& points) {
  Table table("L2 distances across the decision boundary vs " + parameter);
  table.header({parameter, "d(malware, advex)", "d(malware, clean)",
                "d(clean, advex)", "paper ordering holds"});
  for (const auto& p : points) {
    table.row({Table::fmt(p.attack_strength, 4),
               Table::fmt(p.distances.malware_to_adversarial),
               Table::fmt(p.distances.malware_to_clean),
               Table::fmt(p.distances.clean_to_adversarial),
               p.distances.paper_ordering_holds() ? "yes" : "no"});
  }
  return table.render();
}

}  // namespace mev::eval
