// Transferability evaluation (§II-B.2): adversarial examples crafted on
// one model are deployed against another. Transfer rate = fraction of
// crafted examples that the TARGET model classifies as clean.
#pragma once

#include "attack/attack.hpp"

namespace mev::attack {

struct TransferResult {
  double craft_success_rate = 0.0;   // evasion rate on the craft model
  double target_detection_rate = 0.0;  // detection rate on the target model
  double transfer_rate = 0.0;        // 1 - target_detection_rate
  std::size_t evaded_count = 0;      // #examples evading the target
  std::size_t total = 0;
};

/// Evaluates crafted examples against a (different) target model. The
/// target is read-only (scored through a local InferenceSession).
TransferResult evaluate_transfer(const nn::Network& target_model,
                                 const AttackResult& crafted);

}  // namespace mev::attack
