file(REMOVE_RECURSE
  "libmev_defense.a"
)
