#include "obs/log.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <ostream>

#include "obs/scope.hpp"

namespace mev::obs {

#if MEV_OBS_ENABLED

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  if (res.ec == std::errc()) {
    out.append(buf, res.ptr);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

void append_field_value(std::string& out, const LogField& f, bool json) {
  switch (f.kind) {
    case LogField::Kind::kString:
      if (json) {
        out += '"';
        append_json_escaped(out, f.str != nullptr ? f.str : "");
        out += '"';
      } else {
        out += f.str != nullptr ? f.str : "";
      }
      break;
    case LogField::Kind::kF64:
      append_double(out, f.f64);
      break;
    case LogField::Kind::kI64:
      out += std::to_string(f.i64);
      break;
    case LogField::Kind::kU64:
      out += std::to_string(f.u64);
      break;
  }
}

}  // namespace

Logger::Logger(LoggerConfig config)
    : min_level_(static_cast<int>(config.min_level)),
      json_(config.json),
      sink_(config.sink != nullptr ? config.sink : &std::cerr),
      clock_(config.clock != nullptr ? config.clock
                                     : &runtime::SystemClock::instance()) {
  MetricsRegistry* registry = config.metrics;
  if (registry == nullptr) registry = current_registry();
  lines_counter_ = registry->counter("mev.obs.log_lines_total",
                                     "log records written to the sink");
  dropped_counter_ = registry->counter(
      "mev.obs.log_dropped_total",
      "log records suppressed by per-site rate limiting");
}

void Logger::log(LogLevel level, const char* component,
                 std::string_view message, const LogField* fields,
                 std::size_t num_fields) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  write_record(level, component, message, fields, num_fields,
               clock_->now_us());
}

void Logger::log_site(LogSite& site, LogLevel level, const char* component,
                      std::string_view message,
                      std::initializer_list<LogField> fields) {
  if (!enabled(level) || level == LogLevel::kOff) return;
  const std::uint64_t now_us = clock_->now_us();
  if (site.rate_per_s > 0.0) {
    std::lock_guard<std::mutex> lock(mutex_);
    const double burst = std::max(site.burst, 1.0);
    if (!site.initialized) {
      site.tokens = burst;
      site.last_refill_us = now_us;
      site.initialized = true;
    }
    const std::uint64_t elapsed_us =
        now_us >= site.last_refill_us ? now_us - site.last_refill_us : 0;
    site.tokens = std::min(
        burst, site.tokens + static_cast<double>(elapsed_us) * 1e-6 *
                                 site.rate_per_s);
    site.last_refill_us = now_us;
    if (site.tokens < 1.0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      dropped_counter_.inc();
      return;
    }
    site.tokens -= 1.0;
  }
  write_record(level, component, message, fields.begin(), fields.size(),
               now_us);
}

void Logger::write_record(LogLevel level, const char* component,
                          std::string_view message, const LogField* fields,
                          std::size_t num_fields, std::uint64_t ts_us) {
  std::string out;
  out.reserve(96 + message.size() + num_fields * 24);
  if (json_) {
    out += "{\"ts_us\":";
    out += std::to_string(ts_us);
    out += ",\"level\":\"";
    out += runtime::to_string(level);
    out += "\",\"component\":\"";
    append_json_escaped(out, component != nullptr ? component : "");
    out += "\",\"msg\":\"";
    append_json_escaped(out, message);
    out += '"';
    for (std::size_t i = 0; i < num_fields; ++i) {
      out += ",\"";
      append_json_escaped(out, fields[i].key != nullptr ? fields[i].key : "");
      out += "\":";
      append_field_value(out, fields[i], /*json=*/true);
    }
    out += "}\n";
  } else {
    char ts[32];
    std::snprintf(ts, sizeof(ts), "%.6f", static_cast<double>(ts_us) * 1e-6);
    out += ts;
    out += ' ';
    out += runtime::to_string(level);
    out += ' ';
    out += component != nullptr ? component : "";
    out += ' ';
    out += message;
    for (std::size_t i = 0; i < num_fields; ++i) {
      out += ' ';
      out += fields[i].key != nullptr ? fields[i].key : "";
      out += '=';
      append_field_value(out, fields[i], /*json=*/false);
    }
    out += '\n';
  }

  lines_.fetch_add(1, std::memory_order_relaxed);
  lines_counter_.inc();
  std::lock_guard<std::mutex> lock(mutex_);
  (*sink_) << out;
  sink_->flush();
}

namespace {

/// Bridge installed into runtime/log_hook.hpp so the layers below obs/
/// (circuit breaker, resilient oracle) land in the same structured stream.
void runtime_log_bridge(runtime::LogLevel level, const char* component,
                        const char* message, const runtime::LogField* fields,
                        std::size_t num_fields) {
  Logger& logger = default_logger();
  if (logger.enabled(level))
    logger.log(level, component, message != nullptr ? message : "", fields,
               num_fields);
}

[[maybe_unused]] const bool g_runtime_hook_installed = [] {
  runtime::set_log_hook(&runtime_log_bridge);
  return true;
}();

}  // namespace

#endif  // MEV_OBS_ENABLED

Logger& default_logger() {
  static Logger logger([] {
    LoggerConfig config;
    config.min_level = runtime::parse_log_level(std::getenv("MEV_LOG_LEVEL"),
                                                LogLevel::kWarn);
    return config;
  }());
  return logger;
}

}  // namespace mev::obs
