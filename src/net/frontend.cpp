#include "net/frontend.hpp"

#include <exception>
#include <utility>

#include "obs/scope.hpp"

namespace mev::net {

namespace {

constexpr const char* kTextPlain = "text/plain; charset=utf-8";
constexpr const char* kJson = "application/json";

/// The statuses the score path can answer with; pre-registered so every
/// labeled family exists (at zero) from the first /metrics scrape.
constexpr int kStatuses[] = {200, 400, 401, 404, 405, 429, 500, 503, 504};

constexpr const char* kRejectReasons[] = {"queue_full", "overloaded",
                                          "shutting_down", "deadline",
                                          "internal_error"};

/// Content-Type up to any ";parameter", trimmed — "application/json;
/// charset=utf-8" negotiates the same as "application/json".
std::string_view media_type(const std::string& content_type) noexcept {
  std::string_view type = content_type;
  const std::size_t semi = type.find(';');
  if (semi != std::string_view::npos) type = type.substr(0, semi);
  while (!type.empty() && (type.back() == ' ' || type.back() == '\t'))
    type.remove_suffix(1);
  return type;
}

bool parse_u64(std::string_view s, std::uint64_t* out) noexcept {
  if (s.empty() || s.size() > 18) return false;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::size_t reject_index(serve::RejectReason reason) noexcept {
  switch (reason) {
    case serve::RejectReason::kQueueFull: return 0;
    case serve::RejectReason::kOverloaded: return 1;
    case serve::RejectReason::kShuttingDown: return 2;
    case serve::RejectReason::kDeadline: return 3;
    default: return 4;  // kInternalError (kNone never reaches here)
  }
}

}  // namespace

/// Callback context for one in-flight scored request: owns the response
/// ticket until the service resolves the submission (exactly once —
/// scored, rejected, or swept at shutdown).
struct ScoringFrontend::PendingScore {
  ScoringFrontend* frontend;
  obs::http::ResponseTicket ticket;
  ScoreContext sc;
};

ScoringFrontend::ScoringFrontend(serve::ScoringService& service,
                                 FrontendConfig config)
    : service_(service),
      config_(std::move(config)),
      clock_(config_.clock != nullptr ? config_.clock : &service.clock()),
      logger_(config_.logger != nullptr ? config_.logger
                                        : &obs::default_logger()),
      tracer_(obs::resolve(config_.tracer)),
      limiter_(config_.api_keys, clock_),
      recorder_(config_.flight),
      clients_(config_.client_stats, obs::resolve(config_.metrics)) {
  obs::MetricsRegistry* registry = obs::resolve(config_.metrics);
  rows_counter_ = registry->counter("mev.net.rows_total",
                                    "rows received on /v1/score");
  for (std::size_t i = 0; i < obs::kFlightStages; ++i)
    stage_hist_[i] = registry->histogram(
        "mev.net.stage_us", "score request stage duration (us)",
        {{"stage", obs::kFlightStageNames[i]}});
  auth_failures_counter_ =
      registry->counter("mev.net.auth_failures_total",
                        "requests rejected 401 (unknown/missing API key)");
  rate_limited_counter_ = registry->counter(
      "mev.net.rate_limited_total", "requests rejected 429 (over rate)");
  // Windowed: 1m/5m p50/p95/p99 gauges ride next to the lifetime
  // buckets on /metrics, timestamped by the frontend clock.
  latency_us_ = registry->windowed_histogram(
      "mev.net.request_latency_us",
      "score request latency, dispatch to response (us)", clock_);
  for (const int status : kStatuses)
    status_counters_.emplace_back(
        status,
        registry->counter("mev.net.http_responses_total",
                          "HTTP responses by status",
                          {{"status", std::to_string(status)}}));
  for (const char* reason : kRejectReasons)
    reject_counters_.emplace_back(
        reason, registry->counter("mev.net.rejected_total",
                                  "score requests rejected by the service",
                                  {{"reason", reason}}));
  if (config_.admin != nullptr)
    config_.admin->add_endpoint(
        "/clientz", "per-client windowed query stats + score PSI, JSON",
        [this](const obs::http::Request&) {
          return obs::http::format_response(
              200, kJson, clients_.to_json(clock_->now_us()));
        });
}

ScoringFrontend::~ScoringFrontend() {
  stop();
  if (config_.admin != nullptr) config_.admin->remove_endpoint("/clientz");
}

bool ScoringFrontend::start() {
  if (server_ != nullptr && server_->running()) return true;
  obs::MetricsRegistry* registry = obs::resolve(config_.metrics);

  obs::http::SocketServerConfig socket_cfg;
  socket_cfg.port = config_.port;
  socket_cfg.bind_address = config_.bind_address;
  socket_cfg.worker_threads = config_.worker_threads;
  socket_cfg.max_queued_connections = config_.max_queued_connections;
  socket_cfg.io_timeout_ms = config_.io_timeout_ms;
  socket_cfg.keep_alive = true;
  socket_cfg.max_pipeline = config_.max_pipeline;
  socket_cfg.limits.max_body_bytes = config_.max_body_bytes;
  socket_cfg.log_component = "net.http";
  socket_cfg.logger = logger_;
  socket_cfg.shed_counter = registry->counter(
      "mev.net.connections_shed_total",
      "connections closed unserved because the accept queue was full");
  socket_cfg.parse_error_counter = registry->counter(
      "mev.net.parse_errors_total",
      "connections answered from an HTTP parse error");
  server_ = std::make_unique<obs::http::SocketServer>(
      std::move(socket_cfg),
      [this](obs::http::Request&& request,
             obs::http::ResponseTicket ticket) {
        dispatch(std::move(request), std::move(ticket));
      });
  if (!server_->start()) {
    server_.reset();
    return false;
  }
  return true;
}

void ScoringFrontend::stop() {
  if (server_ != nullptr) server_->stop();
}

bool ScoringFrontend::running() const noexcept {
  return server_ != nullptr && server_->running();
}

std::uint16_t ScoringFrontend::port() const noexcept {
  return server_ != nullptr ? server_->port() : 0;
}

FrontendStats ScoringFrontend::stats() const noexcept {
  FrontendStats stats;
  if (server_ != nullptr) {
    const obs::http::SocketServer::Stats socket = server_->stats();
    stats.connections_accepted = socket.connections_accepted;
    stats.connections_shed = socket.connections_shed;
    stats.requests = socket.requests;
  }
  stats.scored_requests = scored_requests_.load(std::memory_order_relaxed);
  stats.scored_rows = scored_rows_.load(std::memory_order_relaxed);
  stats.auth_failures = auth_failures_.load(std::memory_order_relaxed);
  stats.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  stats.bad_requests = bad_requests_.load(std::memory_order_relaxed);
  stats.rejected_queue_full = rejected_[0].load(std::memory_order_relaxed);
  stats.rejected_overloaded = rejected_[1].load(std::memory_order_relaxed);
  stats.rejected_shutting_down =
      rejected_[2].load(std::memory_order_relaxed);
  stats.rejected_deadline = rejected_[3].load(std::memory_order_relaxed);
  stats.rejected_internal = rejected_[4].load(std::memory_order_relaxed);
  return stats;
}

void ScoringFrontend::bump_status(int status) noexcept {
  for (auto& [candidate, counter] : status_counters_) {
    if (candidate == status) {
      counter.inc();
      return;
    }
  }
}

void ScoringFrontend::respond_error(obs::http::ResponseTicket& ticket,
                                    int status, std::string_view reason,
                                    std::string_view detail,
                                    std::uint64_t retry_after_s) {
  bump_status(status);
  std::vector<obs::http::HeaderView> extra;
  std::string retry_value;
  if (retry_after_s > 0) {
    retry_value = std::to_string(retry_after_s);
    extra.emplace_back("Retry-After", retry_value);
  }
  ticket.respond(obs::http::format_response(
      status, kJson, format_error_json(reason, detail), ticket.keep_alive(),
      extra));
}

void ScoringFrontend::dispatch(obs::http::Request&& request,
                               obs::http::ResponseTicket ticket) {
  try {
    const std::string_view path = request.path();
    if (path == "/v1/score") {
      if (request.method != "POST") {
        bump_status(405);
        ticket.respond(obs::http::format_response(
            405, kJson,
            format_error_json("method_not_allowed", "use POST"),
            ticket.keep_alive(), {{"Allow", "POST"}}));
        return;
      }
      handle_score(request, ticket, clock_->now_us());
      return;
    }
    if (path == "/healthz") {
      bump_status(200);
      ticket.respond(obs::http::format_response(
          200, kTextPlain, "ok\n", ticket.keep_alive(), {}));
      return;
    }
    if (path == "/readyz") {
      const obs::Readiness readiness = service_.readiness();
      const int status = readiness.ready ? 200 : 503;
      bump_status(status);
      ticket.respond(obs::http::format_response(
          status, kTextPlain, readiness.reason + "\n", ticket.keep_alive(),
          {}));
      return;
    }
    respond_error(ticket, 404, "not_found", "unknown path");
  } catch (const std::exception& e) {
    // Containment: a routing/parse bug answers 500, never a wedged
    // connection or a torn-down worker.
    respond_error(ticket, 500, "internal_error", e.what());
  }
}

void ScoringFrontend::handle_score(obs::http::Request& request,
                                   obs::http::ResponseTicket& ticket,
                                   std::uint64_t dispatch_us) {
  // 0. Correlation. An incoming W3C traceparent joins this request to the
  //    caller's trace; a malformed (or absent) one silently starts a
  //    fresh trace — correlation is never a reason to reject. Every exit
  //    below goes through respond_traced, which stamps X-Trace-Id and the
  //    Server-Timing stage breakdown.
  ScoreContext sc;
  sc.dispatch_us = dispatch_us;
  obs::TraceContext incoming;
  const std::string* traceparent = request.header("traceparent");
  if (traceparent != nullptr)
    incoming = obs::parse_traceparent(*traceparent);
  sc.trace = tracer_->make_context(incoming);
  sc.parent_span = incoming.span_id;
  const auto fail = [&](int status, const char* reason,
                        std::string_view detail,
                        std::uint64_t retry_after_s = 0) {
    respond_traced(ticket, sc, serve::StageStamps{}, status,
                   serve::RejectReason::kNone,
                   format_error_json(reason, detail), retry_after_s);
  };

  // 1. Authentication (presence only — the bucket charge needs the row
  //    count, so over-rate is decided after decode).
  const std::string* api_key = request.header("X-Api-Key");
  if (!limiter_.open() && api_key == nullptr) {
    auth_failures_.fetch_add(1, std::memory_order_relaxed);
    auth_failures_counter_.inc();
    fail(401, "unauthorized", "missing X-Api-Key");
    return;
  }

  // 2. Decode rows per Content-Type.
  const std::string* content_type = request.header("Content-Type");
  const std::string_view type =
      content_type != nullptr ? media_type(*content_type)
                              : std::string_view{};
  BodyParseResult parsed;
  if (type == kJsonContentType) {
    parsed = parse_json_rows(request.body, service_.count_cols(),
                             config_.max_request_rows);
  } else if (type == kBinaryContentType) {
    parsed = parse_binary_rows(request.body, service_.count_cols(),
                               config_.max_request_rows);
  } else {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    fail(415, "unsupported_media_type",
         "use application/json or application/x-mev-rows");
    return;
  }
  sc.parse_end_us = clock_->now_us();
  if (!parsed.ok) {
    bad_requests_.fetch_add(1, std::memory_order_relaxed);
    fail(400, "bad_request", parsed.error);
    return;
  }
  const std::size_t rows = parsed.rows.rows();
  sc.rows = static_cast<std::uint32_t>(rows);
  rows_counter_.inc(rows);

  // 3. Rate limit, charged per row against this key's bucket. The
  //    limiter's client label keys the per-client stats: every request
  //    that authenticates is counted against its client's windows (an
  //    over-rate one both counts and records a rejection).
  if (!limiter_.open()) {
    const ApiKeyLimiter::Decision decision =
        limiter_.check(*api_key, static_cast<double>(rows));
    if (decision.outcome == ApiKeyLimiter::Outcome::kUnknownKey) {
      auth_failures_.fetch_add(1, std::memory_order_relaxed);
      auth_failures_counter_.inc();
      fail(401, "unauthorized", "unknown API key");
      return;
    }
    sc.client = clients_.entry(decision.client);
    sc.client->record_request(sc.parse_end_us, rows);
    if (decision.outcome == ApiKeyLimiter::Outcome::kOverRate) {
      sc.client->record_reject(sc.parse_end_us);
      rate_limited_.fetch_add(1, std::memory_order_relaxed);
      rate_limited_counter_.inc();
      fail(429, "rate_limited", "per-key row budget exhausted",
           decision.retry_after_s);
      return;
    }
  } else {
    sc.client = clients_.entry("(anon)");
    sc.client->record_request(sc.parse_end_us, rows);
  }

  // 4. Deadline: explicit header wins; otherwise the configured default.
  serve::SubmitOptions options;
  options.deadline_ms = config_.default_deadline_ms;
  options.trace = sc.trace;
  const std::string* deadline_header = request.header("X-Deadline-Ms");
  if (deadline_header != nullptr) {
    std::uint64_t deadline_ms = 0;
    if (!parse_u64(*deadline_header, &deadline_ms)) {
      bad_requests_.fetch_add(1, std::memory_order_relaxed);
      fail(400, "bad_request",
           "X-Deadline-Ms must be a non-negative integer");
      return;
    }
    options.deadline_ms = deadline_ms;
  }

  // 5. Hand off to the service. The callback context owns the ticket
  //    from here; the socket worker returns to its connection loop. A
  //    synchronous rejection may already have fired on_score before
  //    submit_with_callback returns — hence release-before-call.
  auto pending = std::make_unique<PendingScore>();
  pending->frontend = this;
  pending->ticket = std::move(ticket);
  pending->sc = sc;
  PendingScore* raw = pending.release();
  try {
    service_.submit_with_callback(std::move(parsed.rows), options,
                                  &ScoringFrontend::on_score, raw);
  } catch (const std::exception& e) {
    // Validation threw before admission: the callback never fires;
    // reclaim the context and answer.
    std::unique_ptr<PendingScore> reclaim(raw);
    respond_traced(reclaim->ticket, reclaim->sc, serve::StageStamps{}, 500,
                   serve::RejectReason::kNone,
                   format_error_json("internal_error", e.what()),
                   /*retry_after_s=*/0);
  }
}

void ScoringFrontend::on_score(void* ctx, serve::ScoreResult&& result) {
  std::unique_ptr<PendingScore> pending(static_cast<PendingScore*>(ctx));
  pending->frontend->finish_score(*pending, std::move(result));
}

void ScoringFrontend::finish_score(PendingScore& pending,
                                   serve::ScoreResult&& result) {
  if (result.ok()) {
    scored_requests_.fetch_add(1, std::memory_order_relaxed);
    scored_rows_.fetch_add(pending.sc.rows, std::memory_order_relaxed);
    if (pending.sc.client != nullptr) {
      // Per-client drift: every verdict confidence feeds this client's
      // score window; the PSI gauge refreshes on the same timestamps.
      const std::uint64_t now_us = clock_->now_us();
      for (const auto& verdict : result.verdicts)
        pending.sc.client->record_score(now_us, verdict.malware_confidence);
      pending.sc.client->refresh_psi(now_us);
    }
    respond_traced(pending.ticket, pending.sc, result.stages, 200,
                   serve::RejectReason::kNone, format_verdicts_json(result),
                   /*retry_after_s=*/0);
    return;
  }
  if (pending.sc.client != nullptr)
    pending.sc.client->record_reject(clock_->now_us());
  const HttpStatus mapped = status_for(result.rejected);
  const std::size_t index = reject_index(result.rejected);
  rejected_[index].fetch_add(1, std::memory_order_relaxed);
  reject_counters_[index].second.inc();
  // 503s are retryable backpressure — say when; 504/500 are not.
  respond_traced(pending.ticket, pending.sc, result.stages, mapped.status,
                 result.rejected,
                 format_error_json(mapped.reason,
                                   serve::to_string(result.rejected)),
                 /*retry_after_s=*/mapped.status == 503 ? 1 : 0);
}

void ScoringFrontend::respond_traced(obs::http::ResponseTicket& ticket,
                                     const ScoreContext& sc,
                                     const serve::StageStamps& stamps,
                                     int status, serve::RejectReason reject,
                                     std::string_view body,
                                     std::uint64_t retry_after_s) {
  const std::uint64_t respond_us = clock_->now_us();

  // Telescoping stage boundaries over [dispatch, respond]. A zero stamp
  // (the request never reached that boundary — early error, reject) and
  // any cross-clock skew both collapse to "carry the previous boundary
  // forward", so consecutive diffs always partition the e2e latency:
  // their sum EQUALS respond - dispatch by construction.
  std::uint64_t t[obs::kFlightStages + 1] = {
      sc.dispatch_us,      sc.parse_end_us,    stamps.admitted_us,
      stamps.formed_us,    stamps.scan_start_us, stamps.scan_end_us,
      respond_us};
  for (std::size_t i = 1; i <= obs::kFlightStages; ++i)
    if (t[i] < t[i - 1]) t[i] = t[i - 1];
  std::array<std::uint64_t, obs::kFlightStages> stage_us;
  for (std::size_t i = 0; i < obs::kFlightStages; ++i)
    stage_us[i] = t[i + 1] - t[i];
  const std::uint64_t total_us = t[obs::kFlightStages] - t[0];

  latency_us_.record(total_us);
  for (std::size_t i = 0; i < obs::kFlightStages; ++i)
    stage_hist_[i].record(stage_us[i]);
  bump_status(status);

  // Spans: the net-side root + parse child; the service worker already
  // emitted mev.serve.queue / mev.serve.scan under the same trace id.
  if (tracer_->enabled()) {
    tracer_->complete_span("mev.net.parse", sc.trace, t[0], t[1]);
    tracer_->complete_span("mev.net.request", sc.trace, sc.parent_span, t[0],
                           respond_us);
  }

  // Flight record: the full stage tree in one POD. Stage span ids are
  // synthesized (root ^ stage#) — stable, collision-free within a trace,
  // and allocation-free.
  obs::FlightRecord record;
  record.trace_id = sc.trace.trace_id;
  record.trace_hi = sc.trace.trace_hi;
  record.root_span_id = sc.trace.span_id;
  record.start_us = t[0];
  record.duration_us = total_us;
  record.stage_us = stage_us;
  record.rows = sc.rows;
  record.http_status = static_cast<std::uint16_t>(status);
  record.reject_reason = static_cast<std::uint8_t>(reject);
  record.error = status != 200;
  record.spans[0] = obs::FlightSpan{"mev.net.request", sc.trace.span_id,
                                    sc.parent_span, t[0], total_us};
  for (std::size_t i = 0; i < obs::kFlightStages; ++i)
    record.spans[i + 1] =
        obs::FlightSpan{obs::kFlightStageNames[i],
                        sc.trace.span_id ^ (i + 1), sc.trace.span_id, t[i],
                        stage_us[i]};
  record.num_spans = obs::kFlightStages + 1;
  recorder_.record(record);

  // Correlation headers on every score-path response. Server-Timing
  // durations are milliseconds (the header's unit), microsecond-precise.
  std::string trace_id = obs::format_trace_id(sc.trace);
  std::string timing;
  timing.reserve(128);
  const auto append_ms = [&timing](std::uint64_t us) {
    timing += std::to_string(us / 1000);
    timing += '.';
    const std::uint64_t frac = us % 1000;
    timing += static_cast<char>('0' + frac / 100);
    timing += static_cast<char>('0' + frac / 10 % 10);
    timing += static_cast<char>('0' + frac % 10);
  };
  for (std::size_t i = 0; i < obs::kFlightStages; ++i) {
    timing += obs::kFlightStageNames[i];
    timing += ";dur=";
    append_ms(stage_us[i]);
    timing += ", ";
  }
  timing += "total;dur=";
  append_ms(total_us);

  std::vector<obs::http::HeaderView> extra;
  extra.emplace_back("X-Trace-Id", trace_id);
  extra.emplace_back("Server-Timing", timing);
  std::string retry_value;
  if (retry_after_s > 0) {
    retry_value = std::to_string(retry_after_s);
    extra.emplace_back("Retry-After", retry_value);
  }
  ticket.respond(obs::http::format_response(status, kJson, body,
                                            ticket.keep_alive(), extra));
}

}  // namespace mev::net
