#include "defense/distillation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mev::defense {
namespace {

nn::LabeledData blobs(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  nn::LabeledData data;
  data.x = math::Matrix(n, 2);
  data.labels.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    data.x(i, 0) = static_cast<float>(label + 0.25 * rng.normal());
    data.x(i, 1) = static_cast<float>(label + 0.25 * rng.normal());
    data.labels[i] = label;
  }
  return data;
}

DistillationConfig config() {
  DistillationConfig cfg;
  cfg.teacher_architecture.dims = {2, 16, 2};
  cfg.teacher_architecture.seed = 1;
  cfg.student_architecture.dims = {2, 16, 2};
  cfg.student_architecture.seed = 2;
  cfg.temperature = 20.0f;
  cfg.teacher_training.epochs = 25;
  cfg.teacher_training.batch_size = 32;
  cfg.teacher_training.learning_rate = 0.01f;
  cfg.student_training.epochs = 25;
  cfg.student_training.batch_size = 32;
  return cfg;
}

TEST(Distillation, RejectsSubUnitTemperature) {
  auto cfg = config();
  cfg.temperature = 0.5f;
  EXPECT_THROW(defensive_distillation(blobs(32, 3), cfg),
               std::invalid_argument);
}

TEST(Distillation, StudentLearnsTheTask) {
  const auto data = blobs(300, 4);
  const auto result = defensive_distillation(data, config());
  ASSERT_NE(result.teacher, nullptr);
  ASSERT_NE(result.student, nullptr);
  EXPECT_GT(nn::accuracy(*result.student, data.x, data.labels), 0.9);
}

TEST(Distillation, StudentLogitsAreInflatedByTemperature) {
  // The defense mechanism: the student fits logits/T to the soft labels,
  // so its raw logits at T=1 deployment are inflated, saturating the
  // softmax and shrinking dF/dX where the softmax saturates.
  const auto data = blobs(300, 5);
  auto cfg = config();
  cfg.temperature = 50.0f;
  cfg.student_training.epochs = 60;
  const auto result = defensive_distillation(data, cfg);

  nn::Network plain = nn::make_mlp(cfg.teacher_architecture);
  nn::TrainConfig tc;
  tc.epochs = 60;
  tc.batch_size = 32;
  nn::train(plain, data, tc);

  const math::Matrix probe = data.x.slice_rows(0, 50);
  const double student_scale =
      result.student->forward(probe).max_abs();
  const double plain_scale = plain.forward(probe).max_abs();
  EXPECT_GT(student_scale, plain_scale);
}

TEST(Distillation, TeacherAndStudentAgreeMostly) {
  const auto data = blobs(200, 6);
  const auto result = defensive_distillation(data, config());
  const auto teacher_preds = result.teacher->predict(data.x);
  const auto student_preds = result.student->predict(data.x);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < teacher_preds.size(); ++i)
    if (teacher_preds[i] == student_preds[i]) ++agree;
  EXPECT_GT(static_cast<double>(agree) / teacher_preds.size(), 0.85);
}

}  // namespace
}  // namespace mev::defense
