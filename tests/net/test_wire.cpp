// Wire codecs for POST /v1/score: strict JSON rows, the length-prefixed
// binary format, response formatting, and the serve→HTTP status mapping.
// Pure string processing — no sockets — so every framing edge is covered
// here and the socket tests (test_frontend.cpp) only need happy paths.
#include "net/wire.hpp"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "data/dataset.hpp"

namespace {

using mev::net::BodyParseResult;
using mev::net::encode_binary_rows;
using mev::net::format_error_json;
using mev::net::format_verdicts_json;
using mev::net::kBinaryMagic;
using mev::net::parse_binary_rows;
using mev::net::parse_json_rows;
using mev::net::status_for;

namespace math = mev::math;

math::Matrix ramp(std::size_t rows, std::size_t cols) {
  math::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(i) * 0.5f;
  return m;
}

// ---------------------------------------------------------------- JSON --

TEST(WireJson, ParsesRowsWithAssortedSpacingAndNumberForms) {
  const auto result = parse_json_rows(
      " [ [1, 2.5 ,3e0] ,\n\t[-4.25,0,1e2] ]\n", /*expected_cols=*/3);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.rows.rows(), 2u);
  ASSERT_EQ(result.rows.cols(), 3u);
  EXPECT_FLOAT_EQ(result.rows.row(0)[0], 1.0f);
  EXPECT_FLOAT_EQ(result.rows.row(0)[1], 2.5f);
  EXPECT_FLOAT_EQ(result.rows.row(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(result.rows.row(1)[0], -4.25f);
  EXPECT_FLOAT_EQ(result.rows.row(1)[2], 100.0f);
}

TEST(WireJson, RejectsMalformedBodies) {
  const char* bad[] = {
      "",                      // empty
      "{}",                    // not an array
      "[]",                    // zero rows
      "[[1,2]",                // unterminated outer array
      "[[1,2],]",              // trailing comma = missing row
      "[[1,2],[3]]",           // ragged columns
      "[[1,\"x\"]]",           // non-number
      "[[1,nan]]",             // from_chars parses nan → non-finite
      "[[1,2]] extra",         // trailing bytes
      "[1,2]",                 // rows must be arrays
  };
  for (const char* body : bad) {
    const auto result = parse_json_rows(body, 2);
    EXPECT_FALSE(result.ok) << body;
    EXPECT_FALSE(result.error.empty()) << body;
  }
}

TEST(WireJson, ColumnMismatchNamesTheOffendingRow) {
  const auto result = parse_json_rows("[[1,2,3],[4,5]]", 3);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.error.find("row 1"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("2 columns"), std::string::npos);
}

TEST(WireJson, EnforcesTheRowCap) {
  EXPECT_TRUE(parse_json_rows("[[1],[2]]", 1, /*max_rows=*/2).ok);
  const auto over = parse_json_rows("[[1],[2],[3]]", 1, /*max_rows=*/2);
  EXPECT_FALSE(over.ok);
  EXPECT_NE(over.error.find("too many rows"), std::string::npos);
}

// -------------------------------------------------------------- binary --

TEST(WireBinary, RoundTripsThroughTheEncoder) {
  const math::Matrix m = ramp(3, 5);
  const std::string body = encode_binary_rows(m);
  ASSERT_EQ(body.size(), 12u + 3 * 5 * sizeof(float));
  std::uint32_t magic = 0;
  std::memcpy(&magic, body.data(), 4);
  EXPECT_EQ(magic, kBinaryMagic);

  const auto result = parse_binary_rows(body, 5);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.rows.rows(), 3u);
  ASSERT_EQ(result.rows.cols(), 5u);
  EXPECT_EQ(std::memcmp(result.rows.data(), m.data(),
                        m.size() * sizeof(float)),
            0);
}

TEST(WireBinary, RejectsBadFrames) {
  const std::string good = encode_binary_rows(ramp(2, 4));

  EXPECT_FALSE(parse_binary_rows("", 4).ok);
  EXPECT_FALSE(parse_binary_rows(good.substr(0, 11), 4).ok);  // short header

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(parse_binary_rows(bad_magic, 4).ok);

  EXPECT_FALSE(parse_binary_rows(good, 5).ok);          // column mismatch
  EXPECT_FALSE(parse_binary_rows(good + "x", 4).ok);    // trailing bytes
  EXPECT_FALSE(parse_binary_rows(good.substr(0, good.size() - 4), 4).ok);

  std::string zero_rows = good;
  const std::uint32_t zero = 0;
  std::memcpy(zero_rows.data() + 4, &zero, 4);
  EXPECT_FALSE(parse_binary_rows(zero_rows, 4).ok);

  EXPECT_FALSE(parse_binary_rows(good, 4, /*max_rows=*/1).ok);
  EXPECT_TRUE(parse_binary_rows(good, 4, /*max_rows=*/2).ok);
}

TEST(WireBinary, DeclaredRowCountCannotOverrunTheBody) {
  // Header claims 1000 rows but carries 2 rows of payload: the exact-size
  // check must fail before any memcpy sizing happens off the header.
  std::string lying = encode_binary_rows(ramp(2, 4));
  const std::uint32_t claimed = 1000;
  std::memcpy(lying.data() + 4, &claimed, 4);
  const auto result = parse_binary_rows(lying, 4);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("expected"), std::string::npos);
}

// ----------------------------------------------------------- responses --

TEST(WireResponses, FormatsVerdictsAsJson) {
  mev::serve::ScoreResult result;
  result.model_version = 7;
  result.verdicts.push_back(
      {mev::data::kMalwareLabel, 0.75});
  result.verdicts.push_back({mev::data::kCleanLabel, 0.25});
  const std::string json = format_verdicts_json(result);
  EXPECT_EQ(json,
            "{\"model_version\":7,\"verdicts\":["
            "{\"malware\":true,\"confidence\":0.75},"
            "{\"malware\":false,\"confidence\":0.25}]}\n");
}

TEST(WireResponses, FormatsEmptyVerdictLists) {
  mev::serve::ScoreResult result;
  result.model_version = 1;
  EXPECT_EQ(format_verdicts_json(result),
            "{\"model_version\":1,\"verdicts\":[]}\n");
}

TEST(WireResponses, ErrorJsonEscapesHostileDetail) {
  EXPECT_EQ(format_error_json("bad_request", "say \"no\" to back\\slash"),
            "{\"error\":\"bad_request\","
            "\"detail\":\"say \\\"no\\\" to back\\\\slash\"}\n");
  // Control characters are blanked, not emitted raw.
  EXPECT_EQ(format_error_json("x", "a\r\nb"),
            "{\"error\":\"x\",\"detail\":\"a  b\"}\n");
}

TEST(WireResponses, StatusMappingCoversEveryRejectReason) {
  using mev::serve::RejectReason;
  EXPECT_EQ(status_for(RejectReason::kNone).status, 200);
  EXPECT_EQ(status_for(RejectReason::kQueueFull).status, 503);
  EXPECT_STREQ(status_for(RejectReason::kQueueFull).reason, "queue_full");
  EXPECT_EQ(status_for(RejectReason::kOverloaded).status, 503);
  EXPECT_STREQ(status_for(RejectReason::kOverloaded).reason, "overloaded");
  EXPECT_EQ(status_for(RejectReason::kShuttingDown).status, 503);
  EXPECT_STREQ(status_for(RejectReason::kShuttingDown).reason,
               "shutting_down");
  EXPECT_EQ(status_for(RejectReason::kDeadline).status, 504);
  EXPECT_STREQ(status_for(RejectReason::kDeadline).reason, "deadline");
  EXPECT_EQ(status_for(RejectReason::kInternalError).status, 500);
}

}  // namespace
