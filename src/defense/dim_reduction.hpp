// Dimensionality-reduction defense (§II-C.4, Bhagoji et al. 2017): project
// inputs to the first k principal components (k << n; the paper uses
// k = 19) and train the classifier in the reduced space. Adversarial
// perturbations concentrated outside the kept components are discarded by
// the projection.
#pragma once

#include <memory>

#include "defense/classifier.hpp"
#include "math/pca.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace mev::defense {

struct DimReductionConfig {
  std::size_t k = 19;
  /// Hidden widths of the classifier trained on the k-dim projection
  /// (input k and output 2 are added automatically).
  std::vector<std::size_t> hidden = {64, 32};
  nn::TrainConfig training;
  std::uint64_t seed = 11;
};

class DimReductionClassifier final : public Classifier {
 public:
  DimReductionClassifier(math::Pca pca, std::shared_ptr<nn::Network> net);

  std::vector<int> classify(const math::Matrix& features) override;
  std::vector<double> malware_confidence(const math::Matrix& features) override;
  std::string name() const override { return "dim-reduction"; }

  const math::Pca& pca() const noexcept { return pca_; }
  nn::Network& network() noexcept { return *net_; }

 private:
  math::Pca pca_;
  std::shared_ptr<nn::Network> net_;
  std::unique_ptr<nn::InferenceSession> session_;
};

/// Fits PCA on the training features and trains the reduced classifier.
std::unique_ptr<DimReductionClassifier> train_dim_reduction_defense(
    const nn::LabeledData& train_data, const DimReductionConfig& config,
    const nn::LabeledData* validation = nullptr);

}  // namespace mev::defense
