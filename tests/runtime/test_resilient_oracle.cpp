#include "runtime/resilient_oracle.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "runtime/fault_injection.hpp"

namespace mev::runtime {
namespace {

class ThresholdOracle final : public CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
};

/// Throws a given error for the first N calls, then succeeds.
class FailNTimesOracle final : public CountOracle {
 public:
  explicit FailNTimesOracle(std::size_t n) : remaining_(n) {}
  std::vector<int> label_counts(const math::Matrix& counts) override {
    ++calls;
    if (remaining_ > 0) {
      --remaining_;
      throw TransientOracleError("not yet");
    }
    record_queries(counts.rows());
    return std::vector<int>(counts.rows(), 1);
  }
  std::size_t calls = 0;

 private:
  std::size_t remaining_;
};

math::Matrix some_counts(std::size_t n, std::size_t d = 4) {
  math::Matrix m(n, d);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(i % 11);
  return m;
}

RetryPolicy fast_retry() {
  RetryPolicy p;
  p.max_attempts = 5;
  p.initial_backoff_ms = 10;
  p.max_backoff_ms = 100;
  p.jitter = 0.0;
  return p;
}

TEST(ResilientOracle, CleanPathIsAPassThrough) {
  ThresholdOracle inner;
  FakeClock clock;
  ResilientOracle oracle(inner, fast_retry(), {}, &clock);
  ThresholdOracle reference;
  EXPECT_EQ(oracle.label_counts(some_counts(8)),
            reference.label_counts(some_counts(8)));
  EXPECT_EQ(oracle.queries(), 8u);
  const auto s = oracle.stats();
  EXPECT_EQ(s.retries, 0u);
  EXPECT_EQ(s.backoff_ms, 0u);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(ResilientOracle, EmptyBatchShortCircuits) {
  ThresholdOracle inner;
  FakeClock clock;
  ResilientOracle oracle(inner, fast_retry(), {}, &clock);
  EXPECT_TRUE(oracle.label_counts(math::Matrix(0, 4)).empty());
  EXPECT_EQ(oracle.stats().calls, 0u);
}

TEST(ResilientOracle, RetriesTransientFailuresWithBackoff) {
  FailNTimesOracle inner(2);
  FakeClock clock;
  ResilientOracle oracle(inner, fast_retry(), {}, &clock);
  const auto labels = oracle.label_counts(some_counts(4));
  EXPECT_EQ(labels, std::vector<int>(4, 1));
  const auto s = oracle.stats();
  EXPECT_EQ(s.attempts, 3u);
  EXPECT_EQ(s.retries, 2u);
  // Exponential, no jitter: 10 then 20 ms, simulated — never slept for real.
  EXPECT_EQ(clock.sleeps(), (std::vector<std::uint64_t>{10, 20}));
  EXPECT_EQ(s.backoff_ms, 30u);
}

TEST(ResilientOracle, PermanentErrorsPropagateWithoutRetry) {
  class PermanentOracle final : public CountOracle {
   public:
    std::vector<int> label_counts(const math::Matrix&) override {
      ++calls;
      throw PermanentOracleError("gone");
    }
    std::size_t calls = 0;
  };
  PermanentOracle inner;
  FakeClock clock;
  ResilientOracle oracle(inner, fast_retry(), {}, &clock);
  EXPECT_THROW(oracle.label_counts(some_counts(3)), PermanentOracleError);
  EXPECT_EQ(inner.calls, 1u);
  EXPECT_EQ(oracle.stats().failed_queries, 3u);
}

TEST(ResilientOracle, WrongLengthResponsesAreRetried) {
  class GarbleOnceOracle final : public CountOracle {
   public:
    std::vector<int> label_counts(const math::Matrix& counts) override {
      record_queries(counts.rows());
      if (++calls == 1) return std::vector<int>(counts.rows() - 1, 0);
      return std::vector<int>(counts.rows(), 1);
    }
    std::size_t calls = 0;
  };
  GarbleOnceOracle inner;
  FakeClock clock;
  ResilientOracle oracle(inner, fast_retry(), {}, &clock);
  EXPECT_EQ(oracle.label_counts(some_counts(4)), std::vector<int>(4, 1));
  EXPECT_EQ(oracle.stats().garbled_batches, 1u);
  EXPECT_EQ(oracle.stats().retries, 1u);
}

TEST(ResilientOracle, BreakerTripsOnRepeatedFailureAndRecovers) {
  FailNTimesOracle inner(4);
  FakeClock clock;
  CircuitBreakerConfig breaker;
  breaker.failure_threshold = 3;
  breaker.open_cooldown_ms = 500;
  ResilientOracle oracle(inner, fast_retry(), breaker, &clock);
  // Attempt 3 trips the breaker; the retry loop then waits out the 500 ms
  // cooldown (simulated), the half-open trial fails, reopens, waits again,
  // and finally succeeds on attempt 5.
  const auto labels = oracle.label_counts(some_counts(2));
  EXPECT_EQ(labels, std::vector<int>(2, 1));
  const auto s = oracle.stats();
  EXPECT_EQ(s.breaker_trips, 2u);
  EXPECT_EQ(oracle.breaker().state(), BreakerState::kClosed);
  EXPECT_GE(s.backoff_ms, 1000u);  // two cooldown waits
}

TEST(ResilientOracle, BisectsBatchesTheOracleRefuses) {
  ThresholdOracle inner;
  FakeClock clock;
  // The oracle rejects batches above 3 rows; a 16-row submission must be
  // bisected down to <= 3-row pieces.
  FaultInjectingOracle flaky(inner, FaultProfile::tiny_batches(), &clock);
  RetryPolicy retry = fast_retry();
  retry.max_attempts = 1;  // oversized batches never succeed; skip retries
  CircuitBreakerConfig breaker;
  breaker.failure_threshold = 1000;  // keep the breaker out of this test
  ResilientOracle oracle(flaky, retry, breaker, &clock);
  const math::Matrix counts = some_counts(16);
  ThresholdOracle reference;
  EXPECT_EQ(oracle.label_counts(counts), reference.label_counts(counts));
  EXPECT_GE(oracle.stats().bisections, 5u);
  EXPECT_EQ(oracle.queries(), 16u);       // logical rows, like fault-free
  EXPECT_GT(inner.queries(), 0u);
}

TEST(ResilientOracle, SingleRowExhaustionIsPermanent) {
  FailNTimesOracle inner(1000);
  FakeClock clock;
  ResilientOracle oracle(inner, fast_retry(), {}, &clock);
  EXPECT_THROW(oracle.label_counts(some_counts(1)), PermanentOracleError);
  EXPECT_EQ(oracle.stats().failed_queries, 1u);
}

TEST(ResilientOracle, CallDeadlineBoundsBackoffWaiting) {
  FailNTimesOracle inner(1000);
  FakeClock clock;
  RetryPolicy retry = fast_retry();
  retry.initial_backoff_ms = 100;
  retry.backoff_multiplier = 1.0;
  retry.call_deadline_ms = 250;  // room for two 100 ms backoffs, not three
  ResilientOracle oracle(inner, retry, {}, &clock);
  EXPECT_THROW(oracle.label_counts(some_counts(1)), DeadlineExceededError);
  EXPECT_LE(clock.now_ms(), 250u);
}

TEST(ResilientOracle, RunDeadlineSpansCalls) {
  // Fails on every odd-numbered call, so every batch needs one retry.
  class FlakyEveryOtherOracle final : public CountOracle {
   public:
    std::vector<int> label_counts(const math::Matrix& counts) override {
      if (++calls % 2 == 1) throw TransientOracleError("hiccup");
      record_queries(counts.rows());
      return std::vector<int>(counts.rows(), 1);
    }
    std::size_t calls = 0;
  };
  FakeClock clock;
  RetryPolicy retry = fast_retry();
  retry.initial_backoff_ms = 300;
  retry.max_backoff_ms = 300;
  retry.backoff_multiplier = 1.0;
  retry.run_deadline_ms = 500;
  FlakyEveryOtherOracle inner;
  ResilientOracle oracle(inner, retry, {}, &clock);
  // First call retries once: 300 of the 500 ms run budget is spent.
  EXPECT_EQ(oracle.label_counts(some_counts(2)), std::vector<int>(2, 1));
  EXPECT_EQ(clock.now_ms(), 300u);
  clock.advance(150);
  // The second call's retry backoff would land at 750 ms — over budget.
  EXPECT_THROW(oracle.label_counts(some_counts(1)), DeadlineExceededError);
}

TEST(ResilientOracle, TimeoutsAreCounted) {
  ThresholdOracle inner;
  FakeClock clock;
  FaultProfile profile;
  profile.timeout_rate = 1.0;
  profile.seed = 3;
  FaultInjectingOracle slow(inner, profile, &clock);
  RetryPolicy retry = fast_retry();
  retry.max_attempts = 3;
  ResilientOracle oracle(slow, retry, {}, &clock);
  EXPECT_THROW(oracle.label_counts(some_counts(1)), PermanentOracleError);
  EXPECT_EQ(oracle.stats().timeouts, 3u);
}

// The acceptance-criteria matrix: under EVERY built-in fault profile the
// resilient stack converges to exactly the fault-free labels.
TEST(ResilientOracle, EquivalenceMatrixAcrossBuiltinProfiles) {
  const math::Matrix counts = some_counts(32);
  ThresholdOracle reference;
  const std::vector<int> expected = reference.label_counts(counts);
  for (const FaultProfile& profile : FaultProfile::builtin_profiles()) {
    ThresholdOracle inner;
    FakeClock clock;
    FaultInjectingOracle flaky(inner, profile, &clock);
    CircuitBreakerConfig breaker;
    breaker.open_cooldown_ms = 50;
    ResilientOracle oracle(flaky, fast_retry(), breaker, &clock);
    std::vector<int> got;
    ASSERT_NO_THROW(got = oracle.label_counts(counts)) << profile.name;
    EXPECT_EQ(got, expected) << profile.name;
    EXPECT_EQ(oracle.queries(), counts.rows()) << profile.name;
    if (profile.fail_first_calls > 0 || profile.max_batch_rows > 0) {
      EXPECT_GT(oracle.stats().retries + oracle.stats().bisections, 0u)
          << profile.name;
    }
  }
}

// One independent stack per thread over a shared fake-fault scenario —
// the concurrency model the sweep paths use (share nothing mutable).
// Exercised under TSan by the CI stress job.
TEST(ResilientOracle, IndependentStacksRunConcurrently) {
  const math::Matrix counts = some_counts(24);
  ThresholdOracle reference;
  const std::vector<int> expected = reference.label_counts(counts);
  constexpr int kThreads = 4;
  std::vector<std::vector<int>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ThresholdOracle inner;
      FakeClock clock;
      FaultProfile profile = FaultProfile::flaky();
      profile.seed = 100 + static_cast<std::uint64_t>(t);
      FaultInjectingOracle flaky(inner, profile, &clock);
      ResilientOracle oracle(flaky, fast_retry(), {}, &clock);
      for (int repeat = 0; repeat < 20; ++repeat)
        results[static_cast<std::size_t>(t)] = oracle.label_counts(counts);
    });
  }
  for (auto& thread : threads) thread.join();
  for (const auto& r : results) EXPECT_EQ(r, expected);
}

}  // namespace
}  // namespace mev::runtime
