#!/usr/bin/env python3
"""Compare fresh bench JSON against the committed baselines.

Two report formats are understood:

* BENCH_micro.json — a flat ``{"BM_Name/arg": ns_per_op}`` map written by
  ``bench/bench_micro``. Lower is better.
* BENCH_serve.json — the structured report written by ``bench/bench_serve``
  with ``closed_loop`` / ``open_loop`` sweeps.
* BENCH_http.json — the report written by ``bench/bench_http``. The pinned
  signals are the HTTP-vs-in-process achieved-rows/s ratio at 1x offered
  load (higher is better, with an absolute floor: the network edge must
  keep at least half of the in-process open-loop throughput), the HTTP
  request latency p95 (lower is better), and the requests-per-connection
  count (absolute floor — proves keep-alive reuse rather than a
  connection per request). The pinned signals are the
  end-to-end latency p95 of each sweep point (lower is better), the
  closed-loop speedup-vs-sequential of each worker count (higher is
  better; the ratio, not absolute rows/s, so co-tenant load on the bench
  box cancels out), and the overload-phase goodput ratio (goodput at 2x
  offered load over measured sequential capacity, higher is better, with
  an absolute floor). Baselines written before the overload phase existed
  simply skip that gate.

The check is direction-aware: only a change for the *worse* beyond the
tolerance band fails; improvements are reported and pass. Keys present in
only one file are reported but never fail the check, so adding or removing
a benchmark does not require touching this script.

Multi-worker throughput gates are *skipped* (not failed) when either run
was under-provisioned — the sweep point uses more workers than the box has
cores (``hardware_concurrency`` in the report). A 1-core container cannot
multiply compute with a worker pool, and failing the gate there would only
punish the hardware, not the code.

Usage:
    check_regression.py --kind micro --baseline BENCH_micro.json \
        --fresh build/bench/BENCH_micro.json [--tolerance 0.25]
    check_regression.py --kind serve --baseline BENCH_serve.json \
        --fresh build/bench/BENCH_serve.json
    check_regression.py --kind http --baseline BENCH_http.json \
        --fresh build/bench/BENCH_http.json

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/input error.
"""

import argparse
import json
import sys

# Micro benchmarks gating the check (prefix match on "name/arg" keys):
# session-based inference is the hot path of every attack loop, and the
# span/counter costs are the observability overhead contract. Everything
# else in BENCH_micro.json is informational.
PINNED_MICRO_PREFIXES = (
    "BM_SessionForward",
    "BM_ObsSpanEnabled",
    "BM_ObsCounterInc",
    "BM_ObsHistogramRecord",
    "BM_WindowRecord",
    "BM_SloUpdate",
)

# Overload-phase absolute floor: at 2x offered load with shedding on, the
# service must still complete at least this fraction of its measured
# sequential capacity. Deliberately below the ~0.7 the bench reports on an
# idle box, so only a real overload-behavior collapse trips it, not
# co-tenant noise.
OVERLOAD_GOODPUT_FLOOR = 0.55

# HTTP frontend contract: achieved rows/s over HTTP at 1x offered load
# must stay at or above this fraction of the in-process open-loop rate
# measured in the same run (so box speed cancels out), and each of the
# bench's keep-alive connections must carry many requests.
HTTP_RATIO_FLOOR = 0.5
HTTP_REQUESTS_PER_CONNECTION_FLOOR = 16


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


class Comparison:
    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.regressions = []
        self.improvements = []
        self.skipped = []

    def check(self, key, baseline, fresh):
        """Record one lower-is-better comparison."""
        self._check(key, baseline, fresh, higher_is_better=False)

    def check_higher(self, key, baseline, fresh):
        """Record one higher-is-better comparison (throughput)."""
        self._check(key, baseline, fresh, higher_is_better=True)

    def _check(self, key, baseline, fresh, higher_is_better):
        if baseline is None or fresh is None or baseline <= 0:
            self.skip(key, "missing or zero in one file")
            return
        ratio = fresh / baseline
        line = f"{key}: {baseline:.6g} -> {fresh:.6g} ({ratio - 1.0:+.1%})"
        worse = ratio < 1.0 - self.tolerance if higher_is_better \
            else ratio > 1.0 + self.tolerance
        better = ratio > 1.0 + self.tolerance if higher_is_better \
            else ratio < 1.0 - self.tolerance
        if worse:
            self.regressions.append(line)
        elif better:
            self.improvements.append(line)

    def skip(self, key, reason):
        self.skipped.append(f"{key} ({reason})")

    def report(self, label):
        for line in self.improvements:
            print(f"  improved   {line}")
        for line in self.regressions:
            print(f"  REGRESSED  {line}")
        for line in self.skipped:
            print(f"  skipped    {line}")
        if self.regressions:
            print(
                f"{label}: {len(self.regressions)} pinned key(s) regressed "
                f"beyond {self.tolerance:.0%}"
            )
            return False
        print(
            f"{label}: ok ({len(self.improvements)} improved, "
            f"{len(self.skipped)} skipped)"
        )
        return True


def check_micro(baseline, fresh, tolerance):
    comparison = Comparison(tolerance)
    for key in sorted(baseline):
        if not key.startswith(PINNED_MICRO_PREFIXES):
            continue
        comparison.check(key, baseline.get(key), fresh.get(key))
    for key in sorted(set(fresh) - set(baseline)):
        if key.startswith(PINNED_MICRO_PREFIXES):
            comparison.skip(key, "new key, no baseline")
    return comparison.report("micro")


def serve_points(report):
    """Yield (key, e2e p95) for every sweep point in a serve report."""
    for point in report.get("closed_loop", []):
        key = (
            f"closed_loop[workers={point.get('workers')},"
            f"window_ms={point.get('window_ms')}].e2e_latency_us.p95"
        )
        yield key, point.get("e2e_latency_us", {}).get("p95")
    for point in report.get("open_loop", []):
        key = (
            f"open_loop[rate={point.get('rate_multiplier')}]"
            ".e2e_latency_us.p95"
        )
        yield key, point.get("e2e_latency_us", {}).get("p95")


def serve_throughput_points(report):
    """Yield (key, speedup, workers) for every closed-loop sweep point.

    The gated number is ``speedup_vs_sequential``, not absolute rows/s:
    both are measured in the same process run, so the ratio cancels out
    how fast (or how loaded) the box happened to be — absolute rows/s
    swings with co-tenant load even when the service is unchanged.
    """
    for point in report.get("closed_loop", []):
        key = (
            f"closed_loop[workers={point.get('workers')},"
            f"window_ms={point.get('window_ms')}].speedup_vs_sequential"
        )
        yield key, point.get("speedup_vs_sequential"), point.get("workers") or 0


def check_serve(baseline, fresh, tolerance):
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"error: scale mismatch: baseline is "
            f"'{baseline.get('scale')}', fresh is '{fresh.get('scale')}' — "
            "rerun bench_serve at the baseline's scale",
            file=sys.stderr,
        )
        sys.exit(2)
    comparison = Comparison(tolerance)
    fresh_map = dict(serve_points(fresh))
    for key, base_value in serve_points(baseline):
        comparison.check(key, base_value, fresh_map.get(key))

    # Closed-loop throughput, higher is better. A point is gated only when
    # BOTH runs had at least as many cores as workers; otherwise the pool
    # was time-slicing one core and the number measures the scheduler, not
    # the service.
    base_cores = baseline.get("hardware_concurrency") or 1
    fresh_cores = fresh.get("hardware_concurrency") or 1
    fresh_tp = {key: value for key, value, _ in serve_throughput_points(fresh)}
    for key, base_value, workers in serve_throughput_points(baseline):
        if workers > base_cores or workers > fresh_cores:
            comparison.skip(
                key,
                f"under-provisioned: {workers} workers on "
                f"min({base_cores}, {fresh_cores}) cores",
            )
            continue
        comparison.check_higher(key, base_value, fresh_tp.get(key))

    check_overload(comparison, baseline, fresh)
    return comparison.report("serve")


def check_overload(comparison, baseline, fresh):
    """Gate the overload-phase goodput ratio (PR 7).

    Relative: compared against the baseline like any throughput key.
    Absolute: a fresh ratio below OVERLOAD_GOODPUT_FLOOR fails outright —
    that is the overload-resilience contract, not a perf delta. Reports
    written before the overload phase existed lack the key; those skip the
    relative gate instead of failing, so old baselines stay usable.
    """
    key = "overload_goodput_ratio"
    fresh_ratio = fresh.get(key)
    base_ratio = baseline.get(key)
    if fresh_ratio is None:
        comparison.skip(key, "fresh report has no overload phase")
        return
    if fresh_ratio < OVERLOAD_GOODPUT_FLOOR:
        comparison.regressions.append(
            f"{key}: {fresh_ratio:.3f} below absolute floor "
            f"{OVERLOAD_GOODPUT_FLOOR}"
        )
    if base_ratio is None:
        comparison.skip(key, "baseline predates the overload phase")
        return
    comparison.check_higher(key, base_ratio, fresh_ratio)

    # Deadline bound on completed work: p99 of what the overloaded service
    # DID complete must stay within the configured deadline (plus one
    # octave of histogram resolution — Log2Histogram percentiles are
    # bucket-interpolated).
    overload = fresh.get("overload", {})
    p99 = overload.get("e2e_latency_us", {}).get("p99")
    deadline_ms = overload.get("deadline_ms")
    if p99 is None or deadline_ms is None:
        comparison.skip("overload.e2e_latency_us.p99", "not in fresh report")
        return
    bound_us = 2.0 * deadline_ms * 1000.0
    if p99 > bound_us:
        comparison.regressions.append(
            f"overload.e2e_latency_us.p99: {p99:.0f}us exceeds "
            f"{bound_us:.0f}us (2x the {deadline_ms}ms deadline)"
        )


def check_http(baseline, fresh, tolerance):
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"error: scale mismatch: baseline is "
            f"'{baseline.get('scale')}', fresh is '{fresh.get('scale')}' — "
            "rerun bench_http at the baseline's scale",
            file=sys.stderr,
        )
        sys.exit(2)
    comparison = Comparison(tolerance)

    # The contract gate: absolute floor on the HTTP/in-process ratio.
    fresh_ratio = fresh.get("http_vs_inproc_ratio")
    if fresh_ratio is None:
        comparison.skip("http_vs_inproc_ratio", "missing from fresh report")
    elif fresh_ratio < HTTP_RATIO_FLOOR:
        comparison.regressions.append(
            f"http_vs_inproc_ratio: {fresh_ratio:.3f} below absolute "
            f"floor {HTTP_RATIO_FLOOR}"
        )
    comparison.check_higher(
        "http_vs_inproc_ratio",
        baseline.get("http_vs_inproc_ratio"),
        fresh_ratio,
    )

    # Keep-alive reuse: connections must be amortized over many requests.
    per_conn = fresh.get("requests_per_connection")
    if per_conn is None:
        comparison.skip("requests_per_connection", "missing from fresh report")
    elif per_conn < HTTP_REQUESTS_PER_CONNECTION_FLOOR:
        comparison.regressions.append(
            f"requests_per_connection: {per_conn} below absolute floor "
            f"{HTTP_REQUESTS_PER_CONNECTION_FLOOR} — keep-alive reuse broken"
        )

    # Latency of the HTTP path, lower is better.
    comparison.check(
        "http_open_loop.latency_us.p95",
        baseline.get("http_open_loop", {}).get("latency_us", {}).get("p95"),
        fresh.get("http_open_loop", {}).get("latency_us", {}).get("p95"),
    )
    return comparison.report("http")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--kind", choices=("micro", "serve", "http"), required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    options = parser.parse_args()
    if options.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    baseline = load(options.baseline)
    fresh = load(options.fresh)
    # The "meta" provenance block (git SHA, build flags, core count) is
    # informational only — it must never make two reports incomparable.
    for report in (baseline, fresh):
        if isinstance(report, dict):
            report.pop("meta", None)
    checkers = {"micro": check_micro, "serve": check_serve,
                "http": check_http}
    ok = checkers[options.kind](baseline, fresh, options.tolerance)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
