# Empty dependencies file for mev_core.
# This may be replaced when dependencies are built.
