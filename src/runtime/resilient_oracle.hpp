// ResilientOracle — the production decorator for a flaky label oracle.
// Composes, per batch:
//
//   1. a CircuitBreaker gate (waits out open cooldowns, bounded by the
//      deadline budgets);
//   2. a retry loop with exponential backoff + deterministic jitter
//      (RetryPolicy), treating OracleError::transient() failures and
//      wrong-length responses as retryable;
//   3. batch bisection: a multi-row batch that exhausts its attempts is
//      split in half and each half retried independently, so one poisoned
//      row (or an oracle with a batch-size cap) cannot sink the whole
//      submission. A single row that exhausts its attempts throws
//      PermanentOracleError.
//
// Permanent errors propagate immediately; DeadlineExceededError is thrown
// when a backoff or cooldown wait would cross the per-call or per-run
// budget. queries() counts LOGICAL rows successfully labeled — identical
// to what a fault-free oracle would report — while stats() exposes the
// cost of getting there (attempts, retries, backoff time, trips).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/rng.hpp"
#include "runtime/circuit_breaker.hpp"
#include "runtime/clock.hpp"
#include "runtime/oracle.hpp"
#include "runtime/oracle_error.hpp"
#include "runtime/retry.hpp"

namespace mev::runtime {

struct ResilienceStats {
  std::size_t calls = 0;            // outer label_counts() calls
  std::size_t attempts = 0;         // inner submissions (incl. retries)
  std::size_t retries = 0;          // attempts beyond the first per batch
  std::size_t timeouts = 0;
  std::size_t garbled_batches = 0;  // wrong-length or garbled responses
  std::size_t breaker_trips = 0;
  std::size_t bisections = 0;       // batch splits after exhausted attempts
  std::size_t failed_queries = 0;   // rows abandoned as permanently failed
  std::uint64_t backoff_ms = 0;     // total time spent waiting
};

class ResilientOracle final : public CountOracle {
 public:
  /// `clock` defaults to the shared SystemClock; tests inject a FakeClock
  /// so backoff and cooldown waits are simulated, not slept.
  explicit ResilientOracle(CountOracle& inner, RetryPolicy retry = {},
                           CircuitBreakerConfig breaker = {},
                           Clock* clock = nullptr);

  std::vector<int> label_counts(const math::Matrix& counts) override;

  /// Cumulative counters; breaker_trips is filled from the breaker.
  ResilienceStats stats() const;
  const CircuitBreaker& breaker() const noexcept { return breaker_; }
  const RetryPolicy& policy() const noexcept { return retry_; }

 private:
  std::vector<int> label_batch(const math::Matrix& counts,
                               std::uint64_t call_deadline_ms);
  /// Sleeps `ms`, first checking it fits the deadline budgets.
  void wait(std::uint64_t ms, std::uint64_t call_deadline_ms);
  void wait_for_breaker(std::uint64_t call_deadline_ms);

  CountOracle* inner_;
  RetryPolicy retry_;
  Clock* clock_;
  CircuitBreaker breaker_;
  math::Rng jitter_rng_;
  ResilienceStats stats_;
  std::uint64_t run_started_ms_ = 0;
  bool run_started_ = false;
};

}  // namespace mev::runtime
