// The end-to-end feature pipeline: ApiLog -> raw counts -> normalized
// feature vector. This is the exact code path the detector, the defenses
// and the live source-level attack all share.
#pragma once

#include <memory>

#include "data/api_log.hpp"
#include "data/api_vocab.hpp"
#include "features/extractor.hpp"
#include "features/transform.hpp"

namespace mev::features {

class FeaturePipeline {
 public:
  FeaturePipeline(const data::ApiVocab& vocab,
                  std::unique_ptr<FeatureTransform> transform)
      : extractor_(vocab), transform_(std::move(transform)) {
    if (transform_ == nullptr)
      throw std::invalid_argument("FeaturePipeline: null transform");
  }

  FeaturePipeline(const FeaturePipeline& other)
      : extractor_(other.extractor_), transform_(other.transform_->clone()) {}
  FeaturePipeline& operator=(const FeaturePipeline& other) {
    if (this != &other) {
      extractor_ = other.extractor_;
      transform_ = other.transform_->clone();
    }
    return *this;
  }
  FeaturePipeline(FeaturePipeline&&) noexcept = default;
  FeaturePipeline& operator=(FeaturePipeline&&) noexcept = default;

  /// Normalized feature vector for one log.
  std::vector<float> features_from_log(const data::ApiLog& log) const {
    return transform_->apply_row(extractor_.extract(log));
  }

  /// Normalized features for raw count rows.
  math::Matrix features_from_counts(const math::Matrix& counts) const {
    return transform_->apply(counts);
  }

  std::vector<float> features_from_counts_row(
      std::span<const float> counts) const {
    return transform_->apply_row(counts);
  }

  const CountExtractor& extractor() const noexcept { return extractor_; }
  const FeatureTransform& transform() const noexcept { return *transform_; }
  std::size_t dim() const noexcept { return transform_->dim(); }

 private:
  CountExtractor extractor_;
  std::unique_ptr<FeatureTransform> transform_;
};

}  // namespace mev::features
