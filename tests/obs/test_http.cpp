// RequestParser edge cases: torn reads at every byte boundary, pipelined
// requests, limit enforcement (431), and malformed input (400). The parser
// is pure string code compiled in every build mode, so these tests run
// with and without MEV_ENABLE_OBS.
#include <string>

#include <gtest/gtest.h>

#include "obs/http.hpp"

namespace {

using mev::obs::http::ParserLimits;
using mev::obs::http::ParseStatus;
using mev::obs::http::Request;
using mev::obs::http::RequestParser;

constexpr const char* kSimpleGet =
    "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n";

TEST(RequestParser, ParsesASimpleGet) {
  RequestParser parser;
  const std::string input = kSimpleGet;
  const std::size_t consumed = parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(consumed, input.size());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/metrics");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  ASSERT_NE(parser.request().header("host"), nullptr);
  EXPECT_EQ(*parser.request().header("HOST"), "localhost");
}

TEST(RequestParser, TornAtEveryByteBoundaryStillParses) {
  const std::string input = kSimpleGet;
  for (std::size_t split = 1; split < input.size(); ++split) {
    RequestParser parser;
    std::size_t consumed = parser.feed(input.data(), split);
    EXPECT_EQ(parser.status(), ParseStatus::kNeedMore)
        << "split at " << split;
    consumed += parser.feed(input.data() + consumed, input.size() - consumed);
    ASSERT_EQ(parser.status(), ParseStatus::kComplete)
        << "split at " << split;
    EXPECT_EQ(consumed, input.size()) << "split at " << split;
    EXPECT_EQ(parser.request().target, "/metrics") << "split at " << split;
  }
}

TEST(RequestParser, OneByteAtATimeStillParses) {
  const std::string input = kSimpleGet;
  RequestParser parser;
  std::size_t consumed = 0;
  for (char c : input)
    if (parser.status() == ParseStatus::kNeedMore)
      consumed += parser.feed(&c, 1);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(consumed, input.size());
  EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(RequestParser, PipelinedRequestsAreConsumedOneAtATime) {
  const std::string input =
      "GET /healthz HTTP/1.1\r\n\r\nGET /readyz HTTP/1.1\r\n\r\n";
  RequestParser parser;
  const std::size_t first = parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_LT(first, input.size());  // second request left unconsumed

  parser.reset();
  const std::size_t second =
      parser.feed(input.data() + first, input.size() - first);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/readyz");
  EXPECT_EQ(first + second, input.size());
}

TEST(RequestParser, OversizedRequestLineFailsWith431) {
  ParserLimits limits;
  limits.max_request_line = 64;
  RequestParser parser(limits);
  const std::string input =
      "GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n";
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, OversizedRequestLineWithoutNewlineFailsEagerly) {
  // The limit applies to the accumulated partial line too — a scraper
  // streaming an endless first line is rejected without buffering it all.
  ParserLimits limits;
  limits.max_request_line = 64;
  RequestParser parser(limits);
  const std::string input(100, 'a');  // no newline yet
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, TooManyHeadersFailWith431) {
  ParserLimits limits;
  limits.max_headers = 4;
  RequestParser parser(limits);
  std::string input = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 10; ++i)
    input += "X-Header-" + std::to_string(i) + ": v\r\n";
  input += "\r\n";
  parser.feed(input);
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(RequestParser, MalformedRequestLineFailsWith400) {
  for (const char* bad : {"NOSPACES\r\n\r\n", "GET /only-two\r\n\r\n",
                          "GET / NOTHTTP/1.1\r\n\r\n"}) {
    RequestParser parser;
    parser.feed(std::string_view(bad));
    ASSERT_EQ(parser.status(), ParseStatus::kError) << bad;
    EXPECT_EQ(parser.error_status(), 400) << bad;
  }
}

TEST(RequestParser, HeaderWithoutColonFailsWith400) {
  RequestParser parser;
  parser.feed(std::string_view("GET / HTTP/1.1\r\nbogusheader\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(RequestParser, RequestsWithBodiesAreRejected) {
  RequestParser parser;
  parser.feed(std::string_view(
      "POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);

  parser.reset();
  parser.feed(std::string_view(
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  EXPECT_EQ(parser.error_status(), 400);

  // An explicit zero-length body is fine.
  parser.reset();
  parser.feed(std::string_view("GET / HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_EQ(parser.status(), ParseStatus::kComplete);
}

TEST(RequestParser, BareLfAndLeadingBlankLinesAreTolerated) {
  RequestParser parser;
  parser.feed(std::string_view("\r\n\nGET /varz HTTP/1.1\nHost: x\n\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/varz");
  ASSERT_NE(parser.request().header("Host"), nullptr);
  EXPECT_EQ(*parser.request().header("Host"), "x");
}

TEST(RequestParser, PathStripsTheQueryString) {
  RequestParser parser;
  parser.feed(std::string_view("GET /metrics?verbose=1 HTTP/1.1\r\n\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().target, "/metrics?verbose=1");
  EXPECT_EQ(parser.request().path(), "/metrics");
}

TEST(RequestParser, ResetClearsErrorAndRequestState) {
  RequestParser parser;
  parser.feed(std::string_view("garbage\r\n"));
  ASSERT_EQ(parser.status(), ParseStatus::kError);
  parser.reset();
  EXPECT_EQ(parser.status(), ParseStatus::kNeedMore);
  EXPECT_EQ(parser.error_status(), 0);
  parser.feed(std::string_view(kSimpleGet));
  EXPECT_EQ(parser.status(), ParseStatus::kComplete);
}

TEST(FormatResponse, ProducesAFramedCloseDelimitedResponse) {
  const std::string response =
      mev::obs::http::format_response(200, "text/plain", "ok\n");
  EXPECT_EQ(response,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 3\r\n"
            "Connection: close\r\n\r\n"
            "ok\n");
  EXPECT_NE(mev::obs::http::format_response(503, "text/plain", "draining\n")
                .find("503 Service Unavailable"),
            std::string::npos);
}

}  // namespace
