# Empty compiler generated dependencies file for mev_data.
# This may be replaced when dependencies are built.
