#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string_view>

namespace mev::data {

namespace {

constexpr std::string_view kLoaderMarkers[] = {
    "getstartupinfo", "getfiletype", "getmodulehandle", "getprocaddress",
    "getstdhandle", "freeenvironmentstrings", "getcpinfo", "getcommandline",
    "getenvironmentstrings", "heapalloc", "heapfree", "getlasterror",
    "initializecriticalsection", "entercriticalsection",
    "leavecriticalsection", "tlsgetvalue", "flsalloc", "getcurrentthreadid",
    "getcurrentprocessid", "queryperformancecounter",
    "getsystemtimeasfiletime", "gettickcount", "multibytetowidechar",
    "widechartomultibyte", "getacp", "encodepointer", "decodepointer",
    "lstrlen", "loadlibrary", "exitprocess", "getversion", "getprocessheap",
};

constexpr std::string_view kMalwareMarkers[] = {
    "writeprocessmemory", "readprocessmemory", "createremotethread",
    "virtualallocex", "virtualprotect", "ntunmapviewofsection",
    "setthreadcontext", "getthreadcontext", "queueuserapc", "winexec",
    "shellexecute", "regsetvalue", "regcreatekey", "regdeletevalue",
    "regdeletekey", "cryptencrypt", "cryptdecrypt", "cryptgenkey",
    "cryptacquirecontext", "crypthashdata", "bcrypt", "internet", "http",
    "urldownload", "winhttp", "dnsquery", "socket", "connect", "send",
    "recv", "wsastartup", "wsasocket", "gethostbyname", "getaddrinfo",
    "keybd_event", "mouse_event", "sendinput", "setwindowshookex",
    "getasynckeystate", "getkeystate", "getkeyboardstate", "blockinput",
    "attachthreadinput", "isdebuggerpresent", "checkremotedebugger",
    "outputdebugstring", "terminateprocess", "openprocess",
    "adjusttokenprivileges", "lookupprivilegevalue", "createservice",
    "startservice", "deleteservice", "createtoolhelp32snapshot",
    "process32", "thread32", "module32", "movefileex", "deletefile",
    "settfileattributes", "createmutex", "openmutex", "clipcursor",
    "findwindow", "debugactiveprocess", "impersonateloggedonuser",
};

constexpr std::string_view kCleanMarkers[] = {
    "createwindow", "destroywindow", "messagebox", "showwindow",
    "updatewindow", "getdc", "releasedc", "getwindowdc", "windowfromdc",
    "bitblt", "stretchblt", "createcompatible", "selectobject",
    "deleteobject", "deletedc", "getdibits", "setpixel", "getpixel",
    "loadicon", "destroyicon", "loadcursor", "dispatchmessage",
    "getmessage", "peekmessage", "translatemessage", "waitmessage",
    "postquitmessage", "defwindowproc", "registerclass", "sendmessage",
    "postmessage", "settimer", "killtimer", "openclipboard",
    "closeclipboard", "getclipboarddata", "setclipboarddata",
    "emptyclipboard", "writeconsole", "readconsole", "getconsole",
    "setconsole", "allocconsole", "getprivateprofile", "writeprivateprofile",
    "getprofile", "writeprofile", "comparestring", "lcmapstring",
    "charupper", "charlower", "getlocaleinfo", "gettimezoneinformation",
    "coinitialize", "cocreateinstance", "cotaskmem", "oleinitialize",
    "sysallocstring", "sysfreestring", "variant", "extracticon",
    "shgetfolderpath", "shgetknownfolderpath", "findexecutable",
    "getfileversioninfo", "verqueryvalue", "dllsload", "formatmessage",
};

bool matches_any(std::string_view name,
                 std::span<const std::string_view> markers) {
  for (std::string_view m : markers)
    if (name.find(m) != std::string_view::npos) return true;
  return false;
}

std::vector<double> apply_drift(const std::vector<double>& rates,
                                double sigma, math::Rng& rng) {
  std::vector<double> out(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i)
    out[i] = rates[i] * std::exp(rng.normal(0.0, sigma));
  return out;
}

}  // namespace

GenerativeModel::GenerativeModel(const ApiVocab& vocab, GenerativeConfig config)
    : vocab_(&vocab), config_(config) {
  const std::size_t n = vocab.size();
  profiles_.clean_rates.assign(n, 0.0);
  profiles_.malware_rates.assign(n, 0.0);

  math::Rng rng(config_.seed);
  std::size_t mal_sig_used = 0, clean_sig_used = 0;
  const std::size_t cap = config_.max_signature_apis == 0
                              ? n
                              : config_.max_signature_apis;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& name = vocab.name(i);
    const bool loader = matches_any(name, kLoaderMarkers);
    const bool mal_sig = !loader && matches_any(name, kMalwareMarkers) &&
                         mal_sig_used < cap;
    const bool clean_sig = !loader && !mal_sig &&
                           matches_any(name, kCleanMarkers) &&
                           clean_sig_used < cap;
    if (mal_sig) ++mal_sig_used;
    if (clean_sig) ++clean_sig_used;

    // Background usage shared by both classes.
    double background = 0.005;
    if (rng.bernoulli(config_.background_support))
      background = rng.gamma(1.0, config_.background_rate);

    double clean_rate = background;
    double malware_rate = background;
    if (loader) {
      const double rate = config_.loader_rate * rng.uniform(0.5, 1.5);
      clean_rate += rate;
      malware_rate += rate;
      profiles_.loader_apis.push_back(i);
    } else if (mal_sig) {
      const double boost = rng.gamma(
          config_.signature_shape,
          config_.signature_boost / config_.signature_shape);
      malware_rate += boost;
      clean_rate += boost * config_.malware_marker_leakage;
      profiles_.malware_signature_apis.push_back(i);
    } else if (clean_sig) {
      const double boost = rng.gamma(
          config_.signature_shape,
          config_.signature_boost / config_.signature_shape);
      clean_rate += boost;
      malware_rate += boost * config_.clean_marker_leakage;
      profiles_.clean_signature_apis.push_back(i);
    }
    profiles_.clean_rates[i] = clean_rate;
    profiles_.malware_rates[i] = malware_rate;
  }

  math::Rng drift_rng(config_.seed ^ 0x56697275734e6574ULL);  // "VirusNet"
  drift_clean_ =
      apply_drift(profiles_.clean_rates, config_.test_drift_sigma, drift_rng);
  drift_malware_ = apply_drift(profiles_.malware_rates,
                               config_.test_drift_sigma, drift_rng);
}

std::vector<float> GenerativeModel::sample_from_rates(
    const std::vector<double>& rates, math::Rng& rng) const {
  const double activity =
      rng.gamma(config_.activity_shape, 1.0 / config_.activity_shape);
  std::vector<float> counts(rates.size(), 0.0f);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double rate = rates[i] * activity;
    if (rate <= 0.0) continue;
    std::uint32_t c = rng.poisson(rate);
    // Occasional call-in-a-loop bursts give counts a realistic heavy tail.
    if (c > 0 && rng.bernoulli(config_.burst_probability))
      c *= static_cast<std::uint32_t>(
          rng.uniform_int(2, static_cast<std::int64_t>(config_.burst_max)));
    counts[i] = static_cast<float>(c);
  }
  return counts;
}

std::vector<float> GenerativeModel::generate_counts(int label, math::Rng& rng,
                                                    bool drifted) const {
  if (label != kCleanLabel && label != kMalwareLabel)
    throw std::invalid_argument("generate_counts: bad label");
  const double flip_p = label == kCleanLabel ? config_.hard_sample_clean
                                             : config_.hard_sample_malware;
  const bool flipped = rng.bernoulli(flip_p);
  const bool use_malware_profile = (label == kMalwareLabel) != flipped;
  const std::vector<double>& rates =
      drifted ? (use_malware_profile ? drift_malware_ : drift_clean_)
              : (use_malware_profile ? profiles_.malware_rates
                                     : profiles_.clean_rates);
  return sample_from_rates(rates, rng);
}

ApiLog GenerativeModel::log_from_counts(const std::vector<float>& counts,
                                        const std::string& sample_name,
                                        math::Rng& rng) const {
  if (counts.size() != vocab_->size())
    throw std::invalid_argument("log_from_counts: dimension mismatch");
  ApiLog log;
  log.sample_name = sample_name;
  log.os = static_cast<OsVariant>(rng.uniform_index(4));

  std::vector<std::size_t> sequence;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto k = static_cast<std::size_t>(std::lround(counts[i]));
    for (std::size_t j = 0; j < k; ++j) sequence.push_back(i);
  }
  rng.shuffle(sequence);

  const std::uint32_t main_tid =
      static_cast<std::uint32_t>(60000 + rng.uniform_index(8000));
  const std::uint32_t worker_tid = main_tid + 16;
  std::uint64_t address = 0x13FBC0000ULL + rng.uniform_index(0x10000);
  log.calls.reserve(sequence.size());
  for (std::size_t idx : sequence) {
    ApiCall call;
    call.api = vocab_->name(idx);
    call.address = address;
    call.thread_id = rng.bernoulli(0.85) ? main_tid : worker_tid;
    address += 0x10 + rng.uniform_index(0x40);
    log.calls.push_back(std::move(call));
  }
  return log;
}

ApiLog GenerativeModel::generate_log(int label, const std::string& sample_name,
                                     math::Rng& rng, bool drifted) const {
  return log_from_counts(generate_counts(label, rng, drifted), sample_name,
                         rng);
}

CountDataset GenerativeModel::generate_dataset(std::size_t n_clean,
                                               std::size_t n_malware,
                                               math::Rng& rng,
                                               bool drifted) const {
  CountDataset ds;
  ds.counts = math::Matrix(n_clean + n_malware, vocab_->size());
  ds.labels.reserve(n_clean + n_malware);
  std::size_t row = 0;
  for (std::size_t i = 0; i < n_clean; ++i, ++row) {
    const auto counts = generate_counts(kCleanLabel, rng, drifted);
    ds.counts.set_row(row, counts);
    ds.labels.push_back(kCleanLabel);
  }
  for (std::size_t i = 0; i < n_malware; ++i, ++row) {
    const auto counts = generate_counts(kMalwareLabel, rng, drifted);
    ds.counts.set_row(row, counts);
    ds.labels.push_back(kMalwareLabel);
  }
  return ds;
}

DatasetBundle GenerativeModel::generate_bundle(const DatasetSpec& spec,
                                               math::Rng& rng) const {
  DatasetBundle bundle;
  bundle.train = generate_dataset(spec.train_clean, spec.train_malware, rng);
  bundle.validation = generate_dataset(spec.val_clean, spec.val_malware, rng);
  bundle.test = generate_dataset(spec.test_clean, spec.test_malware, rng,
                                 /*drifted=*/true);
  return bundle;
}

}  // namespace mev::data
