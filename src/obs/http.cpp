#include "obs/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>

namespace mev::obs::http {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
    s.remove_suffix(1);
  return s;
}

}  // namespace

const std::string* Request::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers)
    if (iequals(key, name)) return &value;
  return nullptr;
}

std::string_view Request::path() const noexcept {
  const std::string_view t = target;
  const std::size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

void RequestParser::fail(int status) noexcept {
  state_ = State::kError;
  status_ = ParseStatus::kError;
  error_status_ = status;
}

bool RequestParser::parse_request_line(std::string_view line) {
  // METHOD SP request-target SP HTTP-version
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  const std::string_view version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return false;
  request_.method = std::string(line.substr(0, sp1));
  request_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(version);
  return true;
}

bool RequestParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view name = line.substr(0, colon);
  // Whitespace before the colon is invalid per RFC 7230; reject.
  if (name.back() == ' ' || name.back() == '\t') return false;
  request_.headers.emplace_back(std::string(name),
                                std::string(trim(line.substr(colon + 1))));
  return true;
}

std::size_t RequestParser::feed(const char* data, std::size_t size) {
  std::size_t consumed = 0;
  while (consumed < size && state_ != State::kComplete &&
         state_ != State::kError) {
    // Accumulate one line, tolerating any split point in the input.
    const char* begin = data + consumed;
    const char* nl = static_cast<const char*>(
        std::memchr(begin, '\n', size - consumed));
    const std::size_t limit = state_ == State::kRequestLine
                                  ? limits_.max_request_line
                                  : limits_.max_header_line;
    if (nl == nullptr) {
      line_.append(begin, size - consumed);
      consumed = size;
      if (line_.size() > limit) fail(431);
      break;
    }
    line_.append(begin, static_cast<std::size_t>(nl - begin));
    consumed += static_cast<std::size_t>(nl - begin) + 1;
    if (line_.size() > limit) {
      fail(431);
      break;
    }
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();

    switch (state_) {
      case State::kRequestLine:
        if (line_.empty()) break;  // tolerate leading blank lines (RFC 7230)
        if (!parse_request_line(line_)) {
          fail(400);
          break;
        }
        state_ = State::kHeaders;
        break;
      case State::kHeaders:
        if (line_.empty()) {
          // End of headers. The admin plane never accepts a body: a
          // request that announces one would desynchronize pipelining.
          const std::string* length = request_.header("Content-Length");
          if ((length != nullptr && *length != "0") ||
              request_.header("Transfer-Encoding") != nullptr) {
            fail(400);
            break;
          }
          state_ = State::kComplete;
          status_ = ParseStatus::kComplete;
          break;
        }
        if (request_.headers.size() >= limits_.max_headers) {
          fail(431);
          break;
        }
        if (!parse_header_line(line_)) {
          fail(400);
          break;
        }
        break;
      case State::kComplete:
      case State::kError:
        break;
    }
    line_.clear();
  }
  return consumed;
}

void RequestParser::reset() {
  state_ = State::kRequestLine;
  status_ = ParseStatus::kNeedMore;
  error_status_ = 0;
  line_.clear();
  request_ = Request{};
}

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string format_response(int status, std::string_view content_type,
                            std::string_view body) {
  std::string out;
  out.reserve(96 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace mev::obs::http
