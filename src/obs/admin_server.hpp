// Embedded HTTP admin server: the live telemetry plane for long-running
// processes (the scoring service, multi-hour black-box runs). Turns the
// pull-to-file exporters from the obs layer into scrapeable endpoints:
//
//   GET /metrics   Prometheus text exposition of the wired registry, plus
//                  the telemetry plane's own loss signals
//                  (trace_spans_dropped_total, metrics_series)
//   GET /varz      JSON snapshot of the same registry
//   GET /healthz   liveness: 200 "ok" while the process serves
//   GET /readyz    readiness: 200/503 from the installed probe (the
//                  scoring service wires accepting-vs-draining and the
//                  queue high-water mark here)
//   GET /tracez    last-N completed spans from the tracer rings, JSON;
//                  filters: ?name_prefix=&min_dur_us=&limit=
//   GET /requestz  flight-recorder dump — complete span trees + stage
//                  breakdowns of the slowest and error requests; one
//                  request as Chrome trace via ?trace_id=<16hex>&
//                  format=chrome
//   GET /sloz      burn rates + error budget from the attached
//                  SloTracker (obs/slo.hpp), JSON
//   GET /statusz   build + process provenance: git SHA, build flags,
//                  core count, pid, start time, uptime (obs/build_info)
//   GET /          plain-text index of every registered endpoint,
//                  including extras added via add_endpoint()
//
// Model: the shared http::SocketServer (one accept thread multiplexing on
// poll(), a BOUNDED connection queue, a small worker pool; full queue =
// connections shed immediately and counted) — the admin plane must never
// become a memory or latency liability for the process it observes.
// Connections are handled request-per-connection (Connection: close,
// keep-alive disabled) with a receive timeout, so a stuck scraper cannot
// pin a worker. stop() is idempotent and joins every thread; routing
// (handle()) is a pure function of the parsed request, unit-testable
// without sockets.
//
// With MEV_ENABLE_OBS=OFF the server is a same-shape stub whose start()
// reports failure (port() stays 0) — call sites compile unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/http.hpp"
#include "obs/http_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"

#ifndef MEV_OBS_ENABLED
#define MEV_OBS_ENABLED 1
#endif

namespace mev::obs {

/// Readiness verdict returned by the installed probe. `reason` is served
/// as the /readyz body either way.
struct Readiness {
  bool ready = true;
  std::string reason = "ok";
};

struct AdminServerConfig {
  /// Off by default: embedding a listening socket is always opt-in.
  bool enabled = false;
  /// TCP port to bind; 0 = kernel-assigned ephemeral port (read it back
  /// from port() after start()).
  std::uint16_t port = 0;
  /// Loopback by default: the admin plane is an operator surface, not a
  /// public one.
  std::string bind_address = "127.0.0.1";
  /// Worker threads serving parsed connections.
  std::size_t worker_threads = 2;
  /// Accepted-but-unserved connections held at once; beyond this new
  /// connections are shed (closed) immediately.
  std::size_t max_queued_connections = 16;
  /// Spans returned by /tracez (newest last).
  std::size_t tracez_spans = 256;
  /// Per-connection receive/send timeout.
  std::uint64_t io_timeout_ms = 2000;
  /// Sinks served by the endpoints; nullptr = the ambient
  /// obs::current_tracer()/current_registry()/default_logger() at
  /// construction. Must outlive the server.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  Logger* logger = nullptr;
  /// Timing source for /sloz window evaluation; nullptr = the system
  /// clock. Must outlive the server.
  runtime::Clock* clock = nullptr;
};

#if MEV_OBS_ENABLED

class AdminServer {
 public:
  using ReadinessProbe = std::function<Readiness()>;

  explicit AdminServer(AdminServerConfig config = {});
  /// Stops and joins if still running.
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Installs the /readyz probe (replacing the default always-ready one).
  /// Called from worker threads; must be thread-safe. Safe to install
  /// before or after start().
  void set_readiness_probe(ReadinessProbe probe);

  /// Wires the /requestz source. A post-hoc setter (not config) because
  /// the frontend that owns the recorder is typically constructed after
  /// the service that owns this server. nullptr detaches; the recorder
  /// must outlive the server while attached.
  void set_flight_recorder(const FlightRecorder* recorder) noexcept {
    flight_.store(recorder, std::memory_order_release);
  }

  /// Wires the /sloz source (same post-hoc idiom as the flight recorder:
  /// the service that owns the tracker constructs after the server
  /// config). nullptr detaches; the tracker must outlive the server while
  /// attached. /metrics scrapes refresh the tracker's gauges.
  void set_slo_tracker(SloTracker* tracker) noexcept {
    slo_.store(tracker, std::memory_order_release);
  }

  /// Registers an extra GET endpoint served by handle() and listed on the
  /// `/` index. `handler` returns the full HTTP response (use
  /// http::format_response). Built-in paths win; re-registering a path
  /// replaces its handler. Thread-safe; callable before or after start().
  using EndpointHandler = std::function<std::string(const http::Request&)>;
  void add_endpoint(std::string path, std::string description,
                    EndpointHandler handler);
  /// Unregisters an extra endpoint (no-op for unknown paths). Call before
  /// destroying whatever the handler captures.
  void remove_endpoint(std::string_view path);

  /// Binds, listens, and spawns the accept/worker threads. Returns false
  /// (with an error log) when the socket cannot be bound; the process
  /// keeps running — telemetry must never take the workload down.
  bool start();

  /// Closes the listener, sheds queued connections, joins all threads.
  /// Idempotent.
  void stop();

  bool running() const noexcept;
  /// The bound TCP port (resolves port 0 to the kernel's choice); 0 when
  /// not started.
  std::uint16_t port() const noexcept;

  /// Routes one parsed request to its endpoint and returns the full HTTP
  /// response. Pure routing — no sockets — so tests can drive every
  /// endpoint directly.
  std::string handle(const http::Request& request);

  const AdminServerConfig& config() const noexcept { return config_; }

 private:
  std::string metrics_body() const;
  std::string tracez_body(const http::Request& request) const;
  std::string requestz_body(const http::Request& request) const;
  std::string varz_body() const;
  std::string sloz_body() const;
  std::string index_body() const;

  AdminServerConfig config_;
  Tracer* tracer_;
  MetricsRegistry* registry_;
  Logger* logger_;
  runtime::Clock* clock_;
  std::atomic<const FlightRecorder*> flight_{nullptr};
  std::atomic<SloTracker*> slo_{nullptr};

  Counter requests_counter_;
  Counter shed_counter_;

  mutable std::mutex probe_mutex_;
  ReadinessProbe probe_;

  struct ExtraEndpoint {
    std::string path;
    std::string description;
    EndpointHandler handler;
  };
  mutable std::mutex endpoints_mutex_;
  std::vector<ExtraEndpoint> extra_endpoints_;

  std::unique_ptr<http::SocketServer> server_;
};

#else  // MEV_OBS_ENABLED == 0: inline no-op stub, same shape.

class AdminServer {
 public:
  using ReadinessProbe = std::function<Readiness()>;

  explicit AdminServer(AdminServerConfig config = {}) : config_(config) {}

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  using EndpointHandler = std::function<std::string(const http::Request&)>;

  void set_readiness_probe(ReadinessProbe) {}
  void set_flight_recorder(const FlightRecorder*) noexcept {}
  void set_slo_tracker(SloTracker*) noexcept {}
  void add_endpoint(std::string, std::string, EndpointHandler) {}
  void remove_endpoint(std::string_view) {}
  bool start() { return false; }
  void stop() {}
  bool running() const noexcept { return false; }
  std::uint16_t port() const noexcept { return 0; }
  std::string handle(const http::Request&) {
    return http::format_response(404, "text/plain; charset=utf-8",
                                 "not found\n");
  }
  const AdminServerConfig& config() const noexcept { return config_; }

 private:
  AdminServerConfig config_;
};

#endif  // MEV_OBS_ENABLED

}  // namespace mev::obs
