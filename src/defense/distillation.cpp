#include "defense/distillation.hpp"

#include <stdexcept>

namespace mev::defense {

DistillationResult defensive_distillation(const nn::LabeledData& train_data,
                                          const DistillationConfig& config,
                                          const nn::LabeledData* validation) {
  if (config.temperature < 1.0f)
    throw std::invalid_argument(
        "defensive_distillation: temperature must be >= 1");

  DistillationResult result;

  // 1. Teacher, trained with the temperature in its loss.
  result.teacher =
      std::make_shared<nn::Network>(nn::make_mlp(config.teacher_architecture));
  nn::TrainConfig teacher_cfg = config.teacher_training;
  teacher_cfg.temperature = config.temperature;
  nn::train(*result.teacher, train_data, teacher_cfg, validation);

  // 2. Soft labels at temperature T.
  const math::Matrix soft_labels =
      result.teacher->predict_proba(train_data.x, config.temperature);

  // 3. Student trained on soft labels at temperature T. The softmax-CE
  //    gradient carries a 1/T factor, so the learning rate is scaled by T
  //    to keep the effective step size temperature-independent (the
  //    standard gradient compensation in distillation).
  result.student =
      std::make_shared<nn::Network>(nn::make_mlp(config.student_architecture));
  nn::TrainConfig student_cfg = config.student_training;
  student_cfg.temperature = config.temperature;
  student_cfg.learning_rate *= config.temperature;
  nn::train_soft(*result.student, train_data.x, soft_labels, student_cfg,
                 validation);

  // 4. Deployment at T = 1 is the caller's default: Network::predict and
  //    predict_proba use temperature 1 unless told otherwise.
  return result;
}

}  // namespace mev::defense
