// Tracer behavior: ring overflow accounting, Chrome trace-event JSON
// schema, FakeClock determinism, concurrent emission (exercised under
// TSan in CI), and the null-safe helpers. The behavioral tests only exist
// in full-obs builds; the stub build still compiles this file and checks
// that the no-op surface stays callable.
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "runtime/clock.hpp"

namespace {

using mev::obs::Span;
using mev::obs::Tracer;
using mev::obs::TracerConfig;
using mev::runtime::FakeClock;

#if MEV_OBS_ENABLED

TEST(Tracer, RingOverflowDropsAndCounts) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  for (int i = 0; i < 10; ++i) tracer.instant("mev.test.tick");
  EXPECT_EQ(tracer.event_count(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // Overflow is surfaced inside the trace itself.
  EXPECT_NE(tracer.chrome_trace().find("mev.obs.dropped_events"),
            std::string::npos);
}

TEST(Tracer, ChromeTraceJsonSchemaIsPinned) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  {
    Span s = tracer.span("mev.test.op");
    s.arg("x", 1.0);
    clock.advance(2);  // 2 ms -> dur 2000 us
  }
  EXPECT_EQ(tracer.chrome_trace(),
            "{\"traceEvents\":["
            "{\"name\":\"mev.test.op\",\"cat\":\"mev\",\"ph\":\"X\","
            "\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":2000,\"args\":{\"x\":1}}"
            "],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(Tracer, InstantEventsUseThePhaseAndScopeFields) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  tracer.instant("mev.test.marker");
  const std::string json = tracer.chrome_trace();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(Tracer, FakeClockMakesTracesDeterministic) {
  const auto run = [] {
    FakeClock clock(100);
    Tracer tracer(TracerConfig{.ring_capacity = 64, .clock = &clock});
    for (int round = 0; round < 3; ++round) {
      Span s = tracer.span("mev.test.round");
      s.arg("round", static_cast<double>(round));
      clock.advance(5);
      tracer.instant("mev.test.mid");
      clock.advance(7);
    }
    return tracer.chrome_trace();
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  FakeClock clock;
  Tracer tracer(
      TracerConfig{.ring_capacity = 16, .clock = &clock, .enabled = false});
  { Span s = tracer.span("mev.test.op"); }
  tracer.instant("mev.test.marker");
  EXPECT_EQ(tracer.event_count(), 0u);
  tracer.set_enabled(true);
  { Span s = tracer.span("mev.test.op"); }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, MovedFromSpanDoesNotDoubleEmit) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  {
    Span a = tracer.span("mev.test.op");
    Span b = std::move(a);
    a.finish();  // inert: ownership moved to b
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(Tracer, ConcurrentSpanEmissionIsLosslessAcrossThreads) {
  // Constant FakeClock: no writer mutates time, so the only shared state
  // under test is the tracer itself (TSan-checked in CI).
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 1 << 12, .clock = &clock});
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s = tracer.span("mev.test.worker");
        s.arg("i", static_cast<double>(i));
      }
    });
  // Concurrent export must be safe (possibly missing in-flight events).
  for (int i = 0; i < 10; ++i) (void)tracer.chrome_trace();
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ClearForgetsEventsAndDrops) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 2, .clock = &clock});
  for (int i = 0; i < 5; ++i) tracer.instant("mev.test.tick");
  tracer.clear();
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Scope, OverridesAmbientSinksAndRestoresOnExit) {
  FakeClock clock;
  Tracer tracer(TracerConfig{.ring_capacity = 16, .clock = &clock});
  mev::obs::MetricsRegistry registry;
  mev::obs::Tracer* outer = mev::obs::current_tracer();
  {
    mev::obs::Scope scope(&tracer, &registry);
    EXPECT_EQ(mev::obs::current_tracer(), &tracer);
    EXPECT_EQ(mev::obs::current_registry(), &registry);
    {
      // nullptr keeps the outer override.
      mev::obs::Scope inner(nullptr, nullptr);
      EXPECT_EQ(mev::obs::current_tracer(), &tracer);
      EXPECT_EQ(mev::obs::current_registry(), &registry);
    }
    EXPECT_EQ(mev::obs::resolve(static_cast<Tracer*>(nullptr)), &tracer);
  }
  EXPECT_EQ(mev::obs::current_tracer(), outer);
}

TEST(Scope, DefaultTracerStartsDisabled) {
  EXPECT_FALSE(mev::obs::default_tracer().enabled());
}

#endif  // MEV_OBS_ENABLED

TEST(Tracer, NullSafeHelpersAreInert) {
  // Compiles and runs identically with obs on or off.
  Span s = mev::obs::span(nullptr, "mev.test.op");
  s.arg("x", 1.0);
  s.finish();
  mev::obs::instant(nullptr, "mev.test.marker");
  SUCCEED();
}

TEST(Tracer, StubAndFullTracerExposeTheInjectedClock) {
  FakeClock clock(42);
  Tracer tracer(TracerConfig{.ring_capacity = 4, .clock = &clock});
  EXPECT_EQ(tracer.clock().now_ms(), 42u);
}

}  // namespace
