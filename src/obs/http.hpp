// Minimal HTTP/1.1 request parsing for the embedded servers: a pure,
// incremental state machine with no socket or obs/ dependencies, so every
// edge (torn reads, oversized lines, pipelining, body framing) is
// unit-testable without a network. Deliberately tiny — the admin plane
// needs `GET /path HTTP/1.x` plus headers, and the scoring frontend adds
// `Content-Length`-framed bodies behind a configurable cap.
//
//   http::RequestParser parser;
//   while (...) {
//     n = recv(...);
//     consumed = parser.feed(data, n);      // consumes at most one request
//     if (parser.status() == ParseStatus::kComplete) { ...; parser.reset(); }
//     // unconsumed bytes (n - consumed) belong to the NEXT pipelined
//     // request: feed them again after reset().
//   }
//
// This file is compiled regardless of MEV_ENABLE_OBS — it is pure string
// processing; only the servers that use it are stubbed out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mev::obs::http {

/// A parsed request line + headers (+ body when the parser allows one).
struct Request {
  std::string method;
  std::string target;   // origin-form, e.g. "/metrics?verbose=1"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  // Content-Length bytes, empty unless a body was sent

  /// First header with this name (ASCII case-insensitive); nullptr when
  /// absent.
  const std::string* header(std::string_view name) const noexcept;
  /// `target` without the query string.
  std::string_view path() const noexcept;
};

enum class ParseStatus {
  kNeedMore,   // fed bytes ended mid-request; feed more
  kComplete,   // request() is valid; unconsumed bytes are the next request
  kError,      // malformed or over limits; error_status() says which
};

struct ParserLimits {
  /// Longest accepted request line (method + target + version + CRLF).
  std::size_t max_request_line = 4096;
  /// Longest accepted single header line.
  std::size_t max_header_line = 4096;
  /// Accepted header count; the rest is an error, not a truncation.
  std::size_t max_headers = 64;
  /// Total bytes across all header lines (defense against many medium
  /// lines slipping under the per-line cap); exceeding it is a 431.
  std::size_t max_header_bytes = 16384;
  /// Largest accepted Content-Length. 0 (the default, and the admin
  /// plane's setting) rejects every request that announces a body with
  /// 413 — a surprise body would desynchronize pipelining.
  std::size_t max_body_bytes = 0;
};

class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  /// Consumes bytes from `data` until one request completes, an error is
  /// found, or the input runs out; returns how many bytes were consumed.
  /// Bytes past a completed request are left for the caller (pipelining).
  std::size_t feed(const char* data, std::size_t size);
  std::size_t feed(std::string_view data) {
    return feed(data.data(), data.size());
  }

  ParseStatus status() const noexcept { return status_; }
  /// The HTTP status to answer an error with: 431 for over-limit lines,
  /// header count or total header bytes; 411 for a POST/PUT that frames
  /// no body; 413 for a body over max_body_bytes; 400 otherwise. 0 while
  /// not in error.
  int error_status() const noexcept { return error_status_; }
  /// Valid when status() == kComplete.
  const Request& request() const noexcept { return request_; }
  /// Moves the parsed request out (valid once kComplete); the caller
  /// should reset() before feeding again.
  Request take_request() noexcept { return std::move(request_); }

  /// Ready for the next request (after kComplete or kError).
  void reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kComplete, kError };

  void fail(int status) noexcept;
  bool parse_request_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  void finish_headers();

  ParserLimits limits_;
  State state_ = State::kRequestLine;
  ParseStatus status_ = ParseStatus::kNeedMore;
  int error_status_ = 0;
  std::string line_;  // the partially received current line
  std::size_t header_bytes_ = 0;
  std::size_t body_remaining_ = 0;
  Request request_;
};

/// Serializes a complete HTTP/1.1 response with Content-Length and
/// Connection: close (the admin server is connection-per-request).
std::string format_response(int status, std::string_view content_type,
                            std::string_view body);

/// An extra response header as name/value; the value's storage must
/// outlive the format_response call.
using HeaderView = std::pair<std::string_view, std::string_view>;

/// Serializes a complete HTTP/1.1 response, advertising keep-alive or
/// close explicitly plus any extra headers (e.g. Retry-After).
std::string format_response(int status, std::string_view content_type,
                            std::string_view body, bool keep_alive,
                            const std::vector<HeaderView>& extra_headers);

/// Reason phrase for the statuses the embedded servers use.
const char* status_text(int status) noexcept;

/// Decodes the query string of an origin-form target ("/tracez?a=1&b=x%20y")
/// into name/value pairs in wire order. Percent-escapes and '+' (as space)
/// are decoded in both names and values; a parameter without '=' gets an
/// empty value; empty segments ("a=1&&b=2") are skipped. Malformed
/// percent-escapes are kept literally rather than rejected — query parsing
/// never fails, it just yields what was sent.
std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view target);

/// First value for `name` in parse_query() output; nullptr when absent.
const std::string* query_param(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view name) noexcept;

}  // namespace mev::obs::http
