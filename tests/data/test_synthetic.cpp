#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "features/extractor.hpp"

namespace mev::data {
namespace {

const ApiVocab& vocab() { return ApiVocab::instance(); }

GenerativeModel model(std::uint64_t seed = 2018) {
  GenerativeConfig cfg;
  cfg.seed = seed;
  return GenerativeModel(vocab(), cfg);
}

TEST(Synthetic, ProfilesAreDeterministicInSeed) {
  const GenerativeModel a = model(1), b = model(1), c = model(2);
  EXPECT_EQ(a.profiles().clean_rates, b.profiles().clean_rates);
  EXPECT_NE(a.profiles().clean_rates, c.profiles().clean_rates);
}

TEST(Synthetic, ProfileStructure) {
  const GenerativeModel m = model();
  const auto& p = m.profiles();
  EXPECT_FALSE(p.loader_apis.empty());
  EXPECT_FALSE(p.malware_signature_apis.empty());
  EXPECT_FALSE(p.clean_signature_apis.empty());
  // Signature caps respected.
  EXPECT_LE(p.malware_signature_apis.size(), 16u);
  EXPECT_LE(p.clean_signature_apis.size(), 16u);
}

TEST(Synthetic, LoaderApisCarryNoLabelSignal) {
  const GenerativeModel m = model();
  const auto& p = m.profiles();
  for (std::size_t i : p.loader_apis)
    EXPECT_NEAR(p.clean_rates[i], p.malware_rates[i], 1e-9) << i;
}

TEST(Synthetic, SignatureApisAreAsymmetric) {
  const GenerativeModel m = model();
  const auto& p = m.profiles();
  double mal_in_mal = 0, mal_in_clean = 0;
  for (std::size_t i : p.malware_signature_apis) {
    mal_in_mal += p.malware_rates[i];
    mal_in_clean += p.clean_rates[i];
  }
  EXPECT_GT(mal_in_mal, 3.0 * mal_in_clean);
}

TEST(Synthetic, SignatureApisComeFromMarkerLists) {
  // Every selected malware-signature API must look malware-ish: spot-check
  // that none of the paper's clean-direction APIs (Fig. 1) are in it.
  const GenerativeModel m = model();
  const auto& sig = m.profiles().malware_signature_apis;
  for (const char* benign : {"destroyicon", "dllsload", "waitmessage"}) {
    const auto idx = vocab().index_of(benign);
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(std::find(sig.begin(), sig.end(), *idx), sig.end()) << benign;
  }
}

TEST(Synthetic, CountsAreNonNegativeIntegers) {
  const GenerativeModel m = model();
  math::Rng rng(3);
  for (int label : {kCleanLabel, kMalwareLabel}) {
    const auto counts = m.generate_counts(label, rng);
    ASSERT_EQ(counts.size(), vocab().size());
    for (float c : counts) {
      EXPECT_GE(c, 0.0f);
      EXPECT_EQ(c, std::floor(c));
    }
  }
}

TEST(Synthetic, GenerateCountsRejectsBadLabel) {
  const GenerativeModel m = model();
  math::Rng rng(4);
  EXPECT_THROW(m.generate_counts(2, rng), std::invalid_argument);
}

TEST(Synthetic, ClassesAreDistinguishableInSignatureMass) {
  const GenerativeModel m = model();
  math::Rng rng(5);
  const auto& sig = m.profiles().malware_signature_apis;
  double mal_mass = 0, clean_mass = 0;
  for (int i = 0; i < 50; ++i) {
    const auto mal = m.generate_counts(kMalwareLabel, rng);
    const auto clean = m.generate_counts(kCleanLabel, rng);
    for (std::size_t j : sig) {
      mal_mass += mal[j];
      clean_mass += clean[j];
    }
  }
  EXPECT_GT(mal_mass, 2.0 * clean_mass);
}

TEST(Synthetic, LogFromCountsRoundTripsThroughExtractor) {
  const GenerativeModel m = model();
  math::Rng rng(6);
  const auto counts = m.generate_counts(kMalwareLabel, rng);
  const ApiLog log = m.log_from_counts(counts, "t.exe", rng);
  const features::CountExtractor extractor(vocab());
  EXPECT_EQ(extractor.extract(log), counts);
}

TEST(Synthetic, LogFromCountsRejectsWrongDimension) {
  const GenerativeModel m = model();
  math::Rng rng(7);
  EXPECT_THROW(m.log_from_counts(std::vector<float>(3, 0.0f), "x", rng),
               std::invalid_argument);
}

TEST(Synthetic, GenerateLogHasNameAndCalls) {
  const GenerativeModel m = model();
  math::Rng rng(8);
  const ApiLog log = m.generate_log(kMalwareLabel, "sample.exe", rng);
  EXPECT_EQ(log.sample_name, "sample.exe");
  EXPECT_GT(log.size(), 10u);
}

TEST(Synthetic, DatasetSizesAndOrdering) {
  const GenerativeModel m = model();
  math::Rng rng(9);
  const CountDataset ds = m.generate_dataset(5, 7, rng);
  EXPECT_EQ(ds.size(), 12u);
  EXPECT_EQ(ds.count_label(kCleanLabel), 5u);
  EXPECT_EQ(ds.count_label(kMalwareLabel), 7u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(ds.labels[i], kCleanLabel);
}

TEST(Synthetic, BundleMatchesSpec) {
  const GenerativeModel m = model();
  math::Rng rng(10);
  const DatasetSpec spec = DatasetSpec::scaled(0.002, 8);
  const DatasetBundle b = m.generate_bundle(spec, rng);
  EXPECT_EQ(b.train.size(), spec.train_total());
  EXPECT_EQ(b.validation.size(), spec.val_total());
  EXPECT_EQ(b.test.size(), spec.test_total());
}

TEST(Synthetic, DriftChangesDistribution) {
  const GenerativeModel m = model();
  math::Rng rng_a(11), rng_b(11);
  // Same rng stream, but drifted profile should give different samples in
  // aggregate (compare total mass over many samples).
  double plain = 0, drifted = 0;
  for (int i = 0; i < 30; ++i) {
    for (float c : m.generate_counts(kMalwareLabel, rng_a, false)) plain += c;
    for (float c : m.generate_counts(kMalwareLabel, rng_b, true)) drifted += c;
  }
  EXPECT_NE(plain, drifted);
}

TEST(Synthetic, DeterministicDatasetGivenSeed) {
  const GenerativeModel m = model();
  math::Rng a(12), b(12);
  const CountDataset da = m.generate_dataset(4, 4, a);
  const CountDataset db = m.generate_dataset(4, 4, b);
  EXPECT_EQ(da.counts, db.counts);
}

}  // namespace
}  // namespace mev::data
