#include "runtime/fault_injection.hpp"

#include <gtest/gtest.h>

namespace mev::runtime {
namespace {

/// Labels row i with counts(i, 0) > 5.
class ThresholdOracle final : public CountOracle {
 public:
  std::vector<int> label_counts(const math::Matrix& counts) override {
    record_queries(counts.rows());
    std::vector<int> labels(counts.rows());
    for (std::size_t i = 0; i < counts.rows(); ++i)
      labels[i] = counts(i, 0) > 5.0f ? 1 : 0;
    return labels;
  }
};

math::Matrix some_counts(std::size_t n, std::size_t d = 4) {
  math::Matrix m(n, d);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(i % 11);
  return m;
}

TEST(FaultInjection, NoneProfilePassesThrough) {
  ThresholdOracle inner;
  FakeClock clock;
  FaultInjectingOracle oracle(inner, FaultProfile::none(), &clock);
  const auto labels = oracle.label_counts(some_counts(8));
  EXPECT_EQ(labels, inner.label_counts(some_counts(8)));
  EXPECT_EQ(oracle.injected().faults(), 0u);
  EXPECT_EQ(oracle.queries(), 8u);
}

TEST(FaultInjection, FaultSequenceIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    ThresholdOracle inner;
    FakeClock clock;
    FaultProfile profile = FaultProfile::chaos();
    profile.max_batch_rows = 0;  // keep every call admissible
    profile.seed = seed;
    FaultInjectingOracle oracle(inner, profile, &clock);
    std::vector<int> outcome;  // 0 ok, 1..4 fault kinds
    for (int i = 0; i < 64; ++i) {
      try {
        oracle.label_counts(some_counts(2));
        outcome.push_back(0);
      } catch (const OracleError& e) {
        outcome.push_back(1 + static_cast<int>(e.kind()));
      }
    }
    return outcome;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(FaultInjection, OutageFailsTheFirstCalls) {
  ThresholdOracle inner;
  FakeClock clock;
  FaultProfile profile;
  profile.fail_first_calls = 3;
  FaultInjectingOracle oracle(inner, profile, &clock);
  for (int i = 0; i < 3; ++i)
    EXPECT_THROW(oracle.label_counts(some_counts(2)), TransientOracleError);
  EXPECT_NO_THROW(oracle.label_counts(some_counts(2)));
  EXPECT_EQ(oracle.injected().outage, 3u);
  EXPECT_EQ(inner.queries(), 2u);  // only the successful call reached it
}

TEST(FaultInjection, OversizedBatchesAreAlwaysRejected) {
  ThresholdOracle inner;
  FakeClock clock;
  FaultInjectingOracle oracle(inner, FaultProfile::tiny_batches(), &clock);
  EXPECT_THROW(oracle.label_counts(some_counts(4)), TransientOracleError);
  EXPECT_NO_THROW(oracle.label_counts(some_counts(3)));
  EXPECT_EQ(oracle.injected().oversized, 1u);
}

TEST(FaultInjection, TimeoutsAdvanceTheClock) {
  ThresholdOracle inner;
  FakeClock clock;
  FaultProfile profile;
  profile.timeout_rate = 1.0;
  profile.timeout_cost_ms = 40;
  FaultInjectingOracle oracle(inner, profile, &clock);
  EXPECT_THROW(oracle.label_counts(some_counts(2)), OracleTimeoutError);
  EXPECT_THROW(oracle.label_counts(some_counts(2)), OracleTimeoutError);
  EXPECT_EQ(clock.now_ms(), 80u);
  EXPECT_EQ(oracle.injected().timeouts, 2u);
}

TEST(FaultInjection, GarbledResponsesHaveWrongLength) {
  ThresholdOracle inner;
  FakeClock clock;
  FaultProfile profile;
  profile.garble_rate = 1.0;
  FaultInjectingOracle oracle(inner, profile, &clock);
  const auto labels = oracle.label_counts(some_counts(5));
  EXPECT_EQ(labels.size(), 4u);  // one label dropped
  EXPECT_EQ(oracle.injected().garbled, 1u);
}

TEST(FaultInjection, ErrorTaxonomyClassifiesTransience) {
  EXPECT_TRUE(TransientOracleError("x").transient());
  EXPECT_TRUE(OracleTimeoutError("x").transient());
  EXPECT_TRUE(GarbledResponseError("x").transient());
  EXPECT_FALSE(PermanentOracleError("x").transient());
  EXPECT_EQ(OracleTimeoutError("x").kind(), FaultKind::kTimeout);
  EXPECT_STREQ(to_string(FaultKind::kPermanent), "permanent");
}

TEST(FaultInjection, BuiltinProfilesAreNamedAndNontrivial) {
  const auto profiles = FaultProfile::builtin_profiles();
  ASSERT_GE(profiles.size(), 5u);
  for (const auto& p : profiles) {
    EXPECT_NE(p.name, "none");
    EXPECT_TRUE(p.transient_rate > 0 || p.timeout_rate > 0 ||
                p.garble_rate > 0 || p.fail_first_calls > 0 ||
                p.max_batch_rows > 0)
        << p.name;
  }
}

}  // namespace
}  // namespace mev::runtime
