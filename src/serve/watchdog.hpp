// Worker watchdog: per-worker heartbeat counters sampled by a monitor,
// detecting workers wedged inside inference (a stalling model, a runaway
// kernel) so the service can route around them.
//
// Division of labor:
//  * Workers are instrumented, not trusted: each loop iteration bumps a
//    relaxed atomic heartbeat, and parking on the eventcount sets an idle
//    flag (an idle worker is healthy — only a *non-idle* worker whose
//    heartbeat stops advancing for stall_ms is stalled).
//  * The monitor samples every worker in poll(now_ms) — either called by
//    the watchdog's own monitor thread (start()), or manually by tests
//    and single-threaded harnesses with a runtime::FakeClock timestamp,
//    which makes every detection threshold deterministic.
//  * Transitions (healthy→stalled, stalled→healthy) fire a hook the
//    service uses to log and to recruit siblings onto the stuck worker's
//    shards; the stalled flag itself is an atomic the submit path reads
//    to reroute wakeups away from a worker that cannot answer them.
//
// The monitor thread paces itself with a condition variable (so stop()
// interrupts a sleep immediately) but makes every *decision* from
// clock->now_ms() — wall pacing, injectable time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/clock.hpp"

namespace mev::serve {

struct WatchdogConfig {
  /// Spawn the monitor thread on start(). poll() works either way, so
  /// deterministic tests leave this false and drive poll() by hand.
  bool enabled = false;
  /// A non-idle worker whose heartbeat has not advanced for this long is
  /// declared stalled.
  std::uint64_t stall_ms = 1000;
  /// Monitor sampling period.
  std::uint64_t poll_ms = 100;
  /// Timestamp source for stall decisions; nullptr = SystemClock. Must
  /// outlive the watchdog.
  runtime::Clock* clock = nullptr;
};

class Watchdog {
 public:
  /// `worker` indices passed to the methods below must be < `workers`.
  Watchdog(std::size_t workers, WatchdogConfig config);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Worker side (lock-free): progress proof, bumped once per loop
  /// iteration and once per scored batch.
  void heartbeat(std::size_t worker) noexcept {
    workers_[worker]->beats.fetch_add(1, std::memory_order_relaxed);
  }
  /// Worker side: set before parking on the eventcount, cleared after
  /// waking. An idle worker never counts as stalled.
  void set_idle(std::size_t worker, bool idle) noexcept {
    workers_[worker]->idle.store(idle, std::memory_order_relaxed);
  }

  /// Samples every worker against `now_ms`, updating stall states and
  /// firing the transition hook on changes. Returns the number of workers
  /// currently stalled. Thread-safe (internally serialized); normally the
  /// monitor thread's job, callable directly in tests.
  std::size_t poll(std::uint64_t now_ms);

  bool stalled(std::size_t worker) const noexcept {
    return workers_[worker]->stalled.load(std::memory_order_relaxed);
  }
  std::size_t stalled_count() const noexcept {
    return stalled_count_.load(std::memory_order_relaxed);
  }
  /// Cumulative healthy→stalled transitions.
  std::uint64_t stall_events() const noexcept {
    return stall_events_.load(std::memory_order_relaxed);
  }
  /// Cumulative stalled→healthy transitions.
  std::uint64_t recoveries() const noexcept {
    return recoveries_.load(std::memory_order_relaxed);
  }

  /// Invoked from poll() (monitor context) on each transition. Set before
  /// start(); the hook must not call back into poll().
  using TransitionHook = std::function<void(std::size_t worker, bool stalled)>;
  void set_transition_hook(TransitionHook hook) { hook_ = std::move(hook); }

  /// Spawns the monitor thread (no-op unless config.enabled and not
  /// already running). stop() joins it; the destructor calls stop().
  void start();
  void stop();

  std::size_t worker_count() const noexcept { return workers_.size(); }
  const WatchdogConfig& config() const noexcept { return config_; }

 private:
  /// Heap-held so worker slots never move and hot atomics are not
  /// false-shared through vector reallocation.
  struct WorkerSlot {
    std::atomic<std::uint64_t> beats{0};  // worker-side progress counter
    std::atomic<bool> idle{false};        // worker-side parked flag
    std::atomic<bool> stalled{false};     // monitor-side verdict
    // Monitor-side sampling state (only touched under poll_mutex_):
    std::uint64_t last_beats = 0;
    std::uint64_t last_change_ms = 0;
    bool sampled = false;  // last_change_ms valid
  };

  void monitor_loop();

  WatchdogConfig config_;
  runtime::Clock* clock_;
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
  TransitionHook hook_;

  std::atomic<std::size_t> stalled_count_{0};
  std::atomic<std::uint64_t> stall_events_{0};
  std::atomic<std::uint64_t> recoveries_{0};

  std::mutex poll_mutex_;  // serializes poll() (monitor vs. tests)

  std::mutex monitor_mutex_;  // pacing cv + stop flag
  std::condition_variable monitor_cv_;
  bool stop_requested_ = false;
  std::thread monitor_;
};

}  // namespace mev::serve
