#include "core/substitute.hpp"

#include <memory>

#include "features/transform.hpp"

namespace mev::core {

namespace {

SubstituteResult train_with_pipeline(features::FeaturePipeline pipeline,
                                     const data::CountDataset& attacker_data,
                                     const ExperimentConfig& config) {
  const math::Matrix features =
      pipeline.features_from_counts(attacker_data.counts);
  auto network = std::make_shared<nn::Network>(
      nn::make_mlp(config.substitute_architecture(features.cols())));

  nn::LabeledData train_data{features, attacker_data.labels};
  SubstituteResult result{std::move(pipeline), network,
                          nn::train(*network, train_data,
                                    config.substitute_training()),
                          0.0};
  result.train_accuracy =
      nn::accuracy(*network, train_data.x, train_data.labels);
  return result;
}

}  // namespace

SubstituteResult train_substitute_exact_features(
    const data::CountDataset& attacker_data, const ExperimentConfig& config,
    const features::FeaturePipeline& target_pipeline) {
  return train_with_pipeline(target_pipeline, attacker_data, config);
}

SubstituteResult train_substitute_binary_features(
    const data::CountDataset& attacker_data, const ExperimentConfig& config,
    const data::ApiVocab& vocab) {
  auto transform =
      std::make_unique<features::BinaryTransform>(vocab.size());
  return train_with_pipeline(
      features::FeaturePipeline(vocab, std::move(transform)), attacker_data,
      config);
}

}  // namespace mev::core
