#!/usr/bin/env python3
"""Compare fresh bench JSON against the committed baselines.

Two report formats are understood:

* BENCH_micro.json — a flat ``{"BM_Name/arg": ns_per_op}`` map written by
  ``bench/bench_micro``. Lower is better.
* BENCH_serve.json — the structured report written by ``bench/bench_serve``
  with ``closed_loop`` / ``open_loop`` sweeps. The pinned signal is the
  end-to-end latency p95 of each sweep point (lower is better).

The check is direction-aware: only a change for the *worse* beyond the
tolerance band fails; improvements are reported and pass. Keys present in
only one file are reported but never fail the check, so adding or removing
a benchmark does not require touching this script.

Usage:
    check_regression.py --kind micro --baseline BENCH_micro.json \
        --fresh build/bench/BENCH_micro.json [--tolerance 0.25]
    check_regression.py --kind serve --baseline BENCH_serve.json \
        --fresh build/bench/BENCH_serve.json

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/input error.
"""

import argparse
import json
import sys

# Micro benchmarks gating the check (prefix match on "name/arg" keys):
# session-based inference is the hot path of every attack loop, and the
# span/counter costs are the observability overhead contract. Everything
# else in BENCH_micro.json is informational.
PINNED_MICRO_PREFIXES = (
    "BM_SessionForward",
    "BM_ObsSpanEnabled",
    "BM_ObsCounterInc",
    "BM_ObsHistogramRecord",
)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError) as error:
        print(f"error: cannot read {path}: {error}", file=sys.stderr)
        sys.exit(2)


class Comparison:
    def __init__(self, tolerance):
        self.tolerance = tolerance
        self.regressions = []
        self.improvements = []
        self.skipped = []

    def check(self, key, baseline, fresh):
        """Record one lower-is-better comparison."""
        if baseline is None or fresh is None:
            self.skipped.append(key)
            return
        if baseline <= 0:
            self.skipped.append(key)
            return
        ratio = fresh / baseline
        line = f"{key}: {baseline:.6g} -> {fresh:.6g} ({ratio - 1.0:+.1%})"
        if ratio > 1.0 + self.tolerance:
            self.regressions.append(line)
        elif ratio < 1.0 - self.tolerance:
            self.improvements.append(line)

    def report(self, label):
        for line in self.improvements:
            print(f"  improved   {line}")
        for line in self.regressions:
            print(f"  REGRESSED  {line}")
        for key in self.skipped:
            print(f"  skipped    {key} (missing or zero in one file)")
        if self.regressions:
            print(
                f"{label}: {len(self.regressions)} pinned key(s) regressed "
                f"beyond {self.tolerance:.0%}"
            )
            return False
        print(
            f"{label}: ok ({len(self.improvements)} improved, "
            f"{len(self.skipped)} skipped)"
        )
        return True


def check_micro(baseline, fresh, tolerance):
    comparison = Comparison(tolerance)
    for key in sorted(baseline):
        if not key.startswith(PINNED_MICRO_PREFIXES):
            continue
        comparison.check(key, baseline.get(key), fresh.get(key))
    for key in sorted(set(fresh) - set(baseline)):
        if key.startswith(PINNED_MICRO_PREFIXES):
            comparison.skipped.append(key)
    return comparison.report("micro")


def serve_points(report):
    """Yield (key, e2e p95) for every sweep point in a serve report."""
    for point in report.get("closed_loop", []):
        key = (
            f"closed_loop[workers={point.get('workers')},"
            f"window_ms={point.get('window_ms')}].e2e_latency_us.p95"
        )
        yield key, point.get("e2e_latency_us", {}).get("p95")
    for point in report.get("open_loop", []):
        key = (
            f"open_loop[rate={point.get('rate_multiplier')}]"
            ".e2e_latency_us.p95"
        )
        yield key, point.get("e2e_latency_us", {}).get("p95")


def check_serve(baseline, fresh, tolerance):
    if baseline.get("scale") != fresh.get("scale"):
        print(
            f"error: scale mismatch: baseline is "
            f"'{baseline.get('scale')}', fresh is '{fresh.get('scale')}' — "
            "rerun bench_serve at the baseline's scale",
            file=sys.stderr,
        )
        sys.exit(2)
    comparison = Comparison(tolerance)
    fresh_map = dict(serve_points(fresh))
    for key, base_value in serve_points(baseline):
        comparison.check(key, base_value, fresh_map.get(key))
    return comparison.report("serve")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kind", choices=("micro", "serve"), required=True)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    options = parser.parse_args()
    if options.tolerance < 0:
        parser.error("--tolerance must be non-negative")

    baseline = load(options.baseline)
    fresh = load(options.fresh)
    checker = check_micro if options.kind == "micro" else check_serve
    ok = checker(baseline, fresh, options.tolerance)
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
