#include "math/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace mev::math {
namespace {

const std::vector<float> kA{1, 2, 3};
const std::vector<float> kB{4, 6, 3};

TEST(Linalg, Dot) {
  EXPECT_DOUBLE_EQ(dot(kA, kB), 4 + 12 + 9);
  const std::vector<float> bad{1};
  EXPECT_THROW(dot(kA, bad), std::invalid_argument);
}

TEST(Linalg, L2Distance) {
  EXPECT_DOUBLE_EQ(l2_distance(kA, kB), 5.0);
  EXPECT_DOUBLE_EQ(l2_distance(kA, kA), 0.0);
}

TEST(Linalg, L1Distance) {
  EXPECT_DOUBLE_EQ(l1_distance(kA, kB), 3 + 4 + 0);
}

TEST(Linalg, LinfDistance) {
  EXPECT_DOUBLE_EQ(linf_distance(kA, kB), 4.0);
}

TEST(Linalg, L0Distance) {
  EXPECT_EQ(l0_distance(kA, kB), 2u);
  EXPECT_EQ(l0_distance(kA, kA), 0u);
  const std::vector<float> close{1.05f, 2, 3};
  EXPECT_EQ(l0_distance(kA, close, 0.1f), 0u);
}

TEST(Linalg, L2Norm) {
  const std::vector<float> v{3, 4};
  EXPECT_DOUBLE_EQ(l2_norm(v), 5.0);
  EXPECT_DOUBLE_EQ(l2_norm(std::vector<float>{}), 0.0);
}

TEST(Linalg, Axpy) {
  std::vector<float> y{1, 1, 1};
  axpy(2.0f, kA, y);
  EXPECT_EQ(y[0], 3.0f);
  EXPECT_EQ(y[2], 7.0f);
}

TEST(Linalg, SoftmaxSumsToOne) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  softmax_inplace(logits);
  double sum = 0;
  for (float p : logits) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(logits[2], logits[1]);
  EXPECT_GT(logits[1], logits[0]);
}

TEST(Linalg, SoftmaxNumericallyStableForLargeLogits) {
  std::vector<float> logits{1000.0f, 1001.0f};
  softmax_inplace(logits);
  EXPECT_FALSE(std::isnan(logits[0]));
  EXPECT_NEAR(logits[0] + logits[1], 1.0, 1e-6);
}

TEST(Linalg, SoftmaxTemperatureFlattens) {
  const std::vector<float> logits{0.0f, 4.0f};
  const auto sharp = softmax(logits, 1.0f);
  const auto soft = softmax(logits, 50.0f);
  EXPECT_GT(sharp[1] - sharp[0], soft[1] - soft[0]);
  EXPECT_NEAR(soft[0], 0.5, 0.05);
}

TEST(Linalg, SoftmaxInvalidTemperatureThrows) {
  std::vector<float> logits{1.0f, 2.0f};
  EXPECT_THROW(softmax_inplace(logits, 0.0f), std::invalid_argument);
  EXPECT_THROW(softmax_inplace(logits, -1.0f), std::invalid_argument);
}

TEST(Linalg, SoftmaxEmptyIsNoop) {
  std::vector<float> empty;
  EXPECT_NO_THROW(softmax_inplace(empty));
}

TEST(Linalg, ArgmaxArgmin) {
  const std::vector<float> v{3, 9, 1, 9};
  EXPECT_EQ(argmax(v), 1u);  // first maximum
  EXPECT_EQ(argmin(v), 2u);
  EXPECT_THROW(argmax(std::vector<float>{}), std::invalid_argument);
  EXPECT_THROW(argmin(std::vector<float>{}), std::invalid_argument);
}

TEST(Linalg, TriangleInequalityHolds) {
  const std::vector<float> a{1, 0, 2}, b{0, 1, 0}, c{2, 2, 2};
  EXPECT_LE(l2_distance(a, c), l2_distance(a, b) + l2_distance(b, c) + 1e-9);
}

}  // namespace
}  // namespace mev::math
