// Reproduces Table IV (the substitute model) and Fig. 4: grey-box attacks.
//  (a) exact features known: theta=0.1, sweep gamma — curves for the
//      substitute (craft) and the target (transfer).
//  (b) exact features known: gamma=0.005 ("adding 2 features"), sweep theta.
//  (c) binary features only: theta=0.1, sweep gamma — substitute collapses
//      but the target stays high (weak transfer; paper: target 0.695,
//      transfer rate 0.305).
//
// Expected shape (paper): grey-box transfer is effective but weaker than
// white-box; less feature knowledge -> much weaker transfer.
//
//   ./bench_fig4_greybox [tiny|fast|full]
#include <iostream>

#include "bench_common.hpp"
#include "core/greybox.hpp"
#include "core/security_eval.hpp"
#include "core/substitute.hpp"
#include "eval/report.hpp"
#include "features/transform.hpp"

using namespace mev;

namespace {

void print_table4(const core::SubstituteResult& sub,
                  const core::ExperimentConfig& config,
                  std::size_t train_rows) {
  eval::Table t4("TABLE IV: THE SUBSTITUTE MODEL");
  t4.header({"property", "paper", "this run"});
  t4.row({"training data", "57170 balanced",
          std::to_string(train_rows) + " balanced"});
  t4.row({"architecture", "491-1200-1500-1300-2 (5-layer DNN)",
          sub.network->architecture_string() + " (5-layer DNN)"});
  t4.row({"training", "1000 epochs, batch 256, lr 0.001, Adam",
          std::to_string(config.substitute_training().epochs) +
              " epochs, batch 256, lr 0.001, Adam"});
  t4.row({"train accuracy", "-", eval::Table::fmt(sub.train_accuracy)});
  std::cout << t4.render() << "\n";
}

void run_panel(bench::Environment& env, nn::Network& substitute,
               const core::FeatureSpaceMap& map,
               const core::SweepConfig& sweep, const std::string& title) {
  std::cerr << "# sweeping " << title << "...\n";
  const auto result =
      core::run_security_sweep(substitute, env.target_network(),
                               env.malware_features, sweep, map);
  std::cout << "\n--- " << title << " ---\n";
  eval::SecurityCurve target = result.target_curve;
  target.name = "target model (transfer)";
  eval::SecurityCurve craft = result.craft_curve;
  craft.name = "substitute model (craft)";
  std::cout << eval::render_curves({target, craft});
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));

  // The attacker's own data and substitute (exact feature knowledge).
  std::cerr << "# training the substitute (Table IV, exact features)...\n";
  const data::CountDataset attacker_data = bench::attacker_dataset(env);
  const auto& vocab = data::ApiVocab::instance();
  auto sub_exact =
      core::train_substitute_exact_features(attacker_data, env.config,
                                           env.detector().pipeline());
  print_table4(sub_exact, env.config, attacker_data.size());

  // Feature-space map: craft in the attacker's count space, deploy through
  // the target pipeline as integer API additions.
  const auto& attacker_transform = dynamic_cast<const features::CountTransform&>(
      sub_exact.pipeline.transform());
  const auto count_map = core::make_greybox_count_map(
      attacker_transform, env.detector().pipeline(), env.malware_counts);

  run_panel(env, *sub_exact.network, count_map, core::SweepConfig::fig4a(),
            "Fig. 4(a): grey-box exact features, theta=0.100, sweep gamma");
  run_panel(env, *sub_exact.network, count_map, core::SweepConfig::fig4b(),
            "Fig. 4(b): grey-box exact features, gamma=0.005, sweep theta");

  // Headline operating point for (a): theta=0.1, gamma=0.005.
  {
    core::SweepConfig op;
    op.parameter = core::SweepParameter::kGamma;
    op.grid = {0.005};
    op.fixed_theta = 0.1;
    const auto r = core::run_security_sweep(*sub_exact.network,
                                            env.target_network(),
                                            env.malware_features, op,
                                            count_map);
    const double det = r.target_curve.points[0].detection_rate;
    std::cout << "\noperating point theta=0.1, gamma=0.005 (2 features): "
              << "target detection = " << eval::Table::fmt(det)
              << " (paper: 0.147), transfer rate = "
              << eval::Table::fmt(1.0 - det) << " (paper: 0.853)\n";
  }

  // Fig. 4(c): the binary-feature attacker.
  std::cerr << "# training the binary-feature substitute (Fig. 4(c))...\n";
  auto sub_binary =
      core::train_substitute_binary_features(attacker_data, env.config, vocab);
  const auto binary_map = core::make_greybox_binary_map(
      env.detector().pipeline(), env.malware_counts);
  run_panel(env, *sub_binary.network, binary_map, core::SweepConfig::fig4a(),
            "Fig. 4(c): grey-box binary features, theta=0.100, sweep gamma");

  {
    core::SweepConfig op;
    op.parameter = core::SweepParameter::kGamma;
    op.grid = {0.025};
    op.fixed_theta = 0.1;
    const auto r = core::run_security_sweep(*sub_binary.network,
                                            env.target_network(),
                                            env.malware_features, op,
                                            binary_map);
    const double det = r.target_curve.points[0].detection_rate;
    std::cout << "\nbinary-feature attacker at theta=0.1, gamma=0.025: "
              << "target detection = " << eval::Table::fmt(det)
              << " (paper: 0.695), transfer rate = "
              << eval::Table::fmt(1.0 - det) << " (paper: 0.305)\n"
              << "=> attacks weaken as attacker knowledge decreases\n";
  }
  return 0;
}
