#include "attack/transfer.hpp"

#include "data/dataset.hpp"
#include "nn/session.hpp"

namespace mev::attack {

TransferResult evaluate_transfer(const nn::Network& target_model,
                                 const AttackResult& crafted) {
  TransferResult result;
  result.total = crafted.size();
  result.craft_success_rate = crafted.success_rate();
  if (result.total == 0) return result;

  nn::InferenceSession session(target_model, crafted.adversarial.rows());
  const auto preds = session.predict(crafted.adversarial);
  std::size_t detected = 0;
  for (int p : preds)
    if (p == data::kMalwareLabel) ++detected;
  result.target_detection_rate =
      static_cast<double>(detected) / static_cast<double>(result.total);
  result.transfer_rate = 1.0 - result.target_detection_rate;
  result.evaded_count = result.total - detected;
  return result;
}

}  // namespace mev::attack
