// Batching-policy unit tests: all timing is FakeClock-driven, no threads,
// no sleeps — the flush conditions are pure functions of (pending, now).
#include "serve/micro_batcher.hpp"

#include <gtest/gtest.h>

#include "runtime/clock.hpp"

namespace mev::serve {
namespace {

Request make_request(std::size_t rows, std::uint64_t enqueue_ms,
                     std::uint64_t deadline_ms = 0) {
  Request r;
  r.counts = math::Matrix(rows, 4);
  r.enqueue_ms = enqueue_ms;
  r.enqueue_us = enqueue_ms * 1000;
  r.deadline_ms = deadline_ms;
  return r;
}

BatcherConfig config(std::size_t max_rows, std::uint64_t delay_ms) {
  return BatcherConfig{max_rows, delay_ms};
}

TEST(MicroBatcher, ZeroMaxBatchThrows) {
  EXPECT_THROW(MicroBatcher(config(0, 1)), std::invalid_argument);
}

TEST(MicroBatcher, EmptyNeverFlushes) {
  MicroBatcher b(config(8, 5));
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(b.poll(100).has_value());
  EXPECT_FALSE(b.ms_until_flush(100).has_value());
}

TEST(MicroBatcher, FlushesAtMaxBatchRowsImmediately) {
  runtime::FakeClock clock(10);
  MicroBatcher b(config(8, 1000));
  b.add(make_request(3, clock.now_ms()));
  b.add(make_request(5, clock.now_ms()));
  // Full by rows: no waiting for the delay window.
  const auto batch = b.poll(clock.now_ms());
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->rows, 8u);
  EXPECT_EQ(batch->requests.size(), 2u);
  EXPECT_TRUE(b.empty());
}

TEST(MicroBatcher, PartialBatchWaitsForDelayThenFlushes) {
  runtime::FakeClock clock(100);
  MicroBatcher b(config(64, 5));
  b.add(make_request(3, clock.now_ms()));
  EXPECT_FALSE(b.poll(clock.now_ms()).has_value());
  clock.advance(4);
  EXPECT_FALSE(b.poll(clock.now_ms()).has_value());
  clock.advance(1);  // oldest has now waited exactly max_queue_delay
  const auto batch = b.poll(clock.now_ms());
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->rows, 3u);
}

TEST(MicroBatcher, DelayMeasuredFromOldestRequest) {
  runtime::FakeClock clock(0);
  MicroBatcher b(config(64, 10));
  b.add(make_request(1, clock.now_ms()));
  clock.advance(8);
  b.add(make_request(1, clock.now_ms()));  // newer rider
  clock.advance(2);                        // oldest at 10ms, newest at 2ms
  const auto batch = b.poll(clock.now_ms());
  ASSERT_TRUE(batch.has_value());
  // Both ride the flush triggered by the oldest request's delay.
  EXPECT_EQ(batch->requests.size(), 2u);
}

TEST(MicroBatcher, RequestsAreNeverSplit) {
  runtime::FakeClock clock(0);
  MicroBatcher b(config(64, 5));
  b.add(make_request(40, clock.now_ms()));
  b.add(make_request(40, clock.now_ms()));
  const auto first = b.poll(clock.now_ms());
  ASSERT_TRUE(first.has_value());
  // 40 + 40 > 64: the second request must wait for the next batch rather
  // than being split.
  EXPECT_EQ(first->rows, 40u);
  EXPECT_EQ(b.pending_rows(), 40u);
  clock.advance(5);
  const auto second = b.poll(clock.now_ms());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->rows, 40u);
}

TEST(MicroBatcher, OversizedRequestFormsItsOwnBatch) {
  runtime::FakeClock clock(0);
  MicroBatcher b(config(8, 5));
  b.add(make_request(20, clock.now_ms()));
  b.add(make_request(2, clock.now_ms()));
  const auto batch = b.poll(clock.now_ms());
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->rows, 20u);  // larger than max_batch_rows, still whole
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(b.pending_rows(), 2u);
}

TEST(MicroBatcher, ForceFlushesPartialBatch) {
  runtime::FakeClock clock(0);
  MicroBatcher b(config(64, 1000));
  b.add(make_request(2, clock.now_ms()));
  EXPECT_FALSE(b.poll(clock.now_ms()).has_value());
  const auto batch = b.poll(clock.now_ms(), /*force=*/true);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->rows, 2u);
}

TEST(MicroBatcher, ExpiredRequestsAreTakenNotScored) {
  runtime::FakeClock clock(0);
  MicroBatcher b(config(64, 100));
  b.add(make_request(2, clock.now_ms(), /*deadline_ms=*/5));
  b.add(make_request(3, clock.now_ms(), /*deadline_ms=*/50));
  clock.advance(10);  // first deadline passed, second still live
  std::vector<Request> expired;
  b.take_expired(clock.now_ms(), expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].counts.rows(), 2u);
  EXPECT_EQ(b.pending_rows(), 3u);
  // The survivor still flushes normally (by force here).
  const auto batch = b.poll(clock.now_ms(), /*force=*/true);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->rows, 3u);
}

TEST(MicroBatcher, MsUntilFlushTracksDelayAndDeadlines) {
  runtime::FakeClock clock(1000);
  MicroBatcher b(config(8, 20));
  EXPECT_FALSE(b.ms_until_flush(clock.now_ms()).has_value());

  b.add(make_request(1, clock.now_ms()));
  EXPECT_EQ(b.ms_until_flush(clock.now_ms()), 20u);
  clock.advance(15);
  EXPECT_EQ(b.ms_until_flush(clock.now_ms()), 5u);

  // An earlier deadline pulls the wake-up forward.
  b.add(make_request(1, clock.now_ms(), clock.now_ms() + 2));
  EXPECT_EQ(b.ms_until_flush(clock.now_ms()), 2u);

  // A full batch is due immediately.
  b.add(make_request(8, clock.now_ms()));
  EXPECT_EQ(b.ms_until_flush(clock.now_ms()), 0u);
}

TEST(MicroBatcher, FifoOrderWithinAndAcrossBatches) {
  runtime::FakeClock clock(0);
  MicroBatcher b(config(4, 5));
  for (std::size_t i = 0; i < 6; ++i) {
    Request r = make_request(2, clock.now_ms());
    r.counts.fill(static_cast<float>(i));
    b.add(std::move(r));
  }
  const auto first = b.poll(clock.now_ms());
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->requests.size(), 2u);
  EXPECT_EQ(first->requests[0].counts(0, 0), 0.0f);
  EXPECT_EQ(first->requests[1].counts(0, 0), 1.0f);
  const auto second = b.poll(clock.now_ms());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->requests[0].counts(0, 0), 2.0f);
}

}  // namespace
}  // namespace mev::serve
