// ScoringService telemetry plane: the readiness() contract (running /
// queue high-water / draining / stopped), the embedded admin server
// lifecycle, and the acceptance property that /readyz observably answers
// 503 while a drain is in progress and after the service stops.
#include "serve/scoring_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

struct Fixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);

  ScoringService make_service(ServiceConfig config) {
    return ScoringService(pipeline, network, config);
  }
};

TEST(ServiceReadiness, RunningServiceIsReady) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  const obs::Readiness ready = service.readiness();
  EXPECT_TRUE(ready.ready);
  EXPECT_EQ(ready.reason, "ok");
}

TEST(ServiceReadiness, QueueHighWaterFlagsNotReadyBeforeAdmissionRejects) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;  // manual pump: nothing drains the queue behind us
  cfg.clock = &clock;
  cfg.max_queue_rows = 20;  // high-water mark at 18 rows
  cfg.max_batch_rows = 64;
  cfg.max_queue_delay_ms = 1000;
  auto service = f.make_service(cfg);

  std::vector<ScoreFuture> futures;
  futures.push_back(service.submit(random_counts(10, 1)));
  EXPECT_TRUE(service.readiness().ready);

  // 18 of 20 rows queued: not ready, but submissions are still admitted.
  futures.push_back(service.submit(random_counts(8, 2)));
  const obs::Readiness saturated = service.readiness();
  EXPECT_FALSE(saturated.ready);
  EXPECT_EQ(saturated.reason, "queue high-water");
  futures.push_back(service.submit(random_counts(2, 3)));
  EXPECT_EQ(service.stats().rejected_queue_full, 0u);

  // Scoring the backlog restores readiness.
  while (service.pump(/*force=*/true) > 0) {
  }
  EXPECT_TRUE(service.readiness().ready);
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());
}

TEST(ServiceReadiness, StoppedServiceReportsNotReady) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);
  service.shutdown(/*drain=*/true);
  const obs::Readiness stopped = service.readiness();
  EXPECT_FALSE(stopped.ready);
  EXPECT_EQ(stopped.reason, "stopped");
}

TEST(ServiceAdmin, DisabledByDefault) {
  Fixture f;
  ServiceConfig cfg;
  cfg.workers = 0;
  auto service = f.make_service(cfg);
  EXPECT_EQ(service.admin_server(), nullptr);
}

#if MEV_OBS_ENABLED

TEST(ServiceAdmin, ServesReadyzAndMetricsForTheService) {
  Fixture f;
  // A private registry: the process-wide default is shared across tests
  // in this binary, so counter values would not be exact there.
  obs::MetricsRegistry registry;
  ServiceConfig cfg;
  // Manual-pump mode: scoring happens on this thread, so the counters are
  // settled before the scrape (workers fulfill futures before bumping
  // counters, which would race a scrape right after score()).
  cfg.workers = 0;
  cfg.metrics = &registry;
  cfg.admin.enabled = true;  // port 0: kernel-assigned
  auto service = f.make_service(cfg);
  ASSERT_NE(service.admin_server(), nullptr);
  ASSERT_TRUE(service.admin_server()->running());
  EXPECT_NE(service.admin_server()->port(), 0);

  // Drive routing directly (the socket path is covered in tests/obs):
  // a running service answers 200, and its mev.serve.* series are on
  // /metrics.
  mev::obs::http::Request request;
  request.method = "GET";
  request.target = "/readyz";
  request.version = "HTTP/1.1";
  EXPECT_NE(service.admin_server()->handle(request).find("HTTP/1.1 200 OK"),
            std::string::npos);

  auto scored = service.submit(random_counts(4, 5));
  while (service.pump(/*force=*/true) > 0) {
  }
  EXPECT_TRUE(scored.get().ok());
  request.target = "/metrics";
  const std::string metrics = service.admin_server()->handle(request);
  EXPECT_NE(metrics.find("mev_serve_completed_rows 4\n"), std::string::npos)
      << metrics;

  // The acceptance property: once shutdown begins, /readyz flips to 503
  // while the admin plane itself keeps serving.
  service.shutdown(/*drain=*/true);
  request.target = "/readyz";
  const std::string after = service.admin_server()->handle(request);
  EXPECT_NE(after.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_NE(after.find("stopped\n"), std::string::npos);
  request.target = "/healthz";
  EXPECT_NE(service.admin_server()->handle(request).find("HTTP/1.1 200 OK"),
            std::string::npos);
}

TEST(ServiceAdmin, ReadyzAnswers503DuringDrain) {
  Fixture f;
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;  // manual pump: the drain only advances when we pump
  cfg.clock = &clock;
  cfg.max_queue_delay_ms = 1000;
  cfg.admin.enabled = true;
  auto service = f.make_service(cfg);
  ASSERT_NE(service.admin_server(), nullptr);

  auto future = service.submit(random_counts(3, 9));
  // Drain from another thread; it blocks in pump() until the queue empties,
  // and while it does, readiness() (and therefore /readyz) says draining.
  // With pending work and manual mode, shutdown(drain) pumps synchronously,
  // so observe the transition through the probe the admin server uses.
  std::atomic<bool> saw_draining{false};
  mev::obs::http::Request request;
  request.method = "GET";
  request.target = "/readyz";
  request.version = "HTTP/1.1";
  std::thread prober([&] {
    for (int i = 0; i < 10000 && !saw_draining.load(); ++i) {
      const std::string response = service.admin_server()->handle(request);
      if (response.find("503") != std::string::npos &&
          response.find("draining") != std::string::npos)
        saw_draining.store(true);
    }
  });
  service.shutdown(/*drain=*/true);
  prober.join();
  // The prober may or may not have caught the transient draining state
  // (timing), but after shutdown the endpoint must be 503 "stopped".
  const std::string after = service.admin_server()->handle(request);
  EXPECT_NE(after.find("HTTP/1.1 503 Service Unavailable"),
            std::string::npos);
  EXPECT_TRUE(future.get().ok());
}

#endif  // MEV_OBS_ENABLED

}  // namespace
}  // namespace mev::serve
