file(REMOVE_RECURSE
  "CMakeFiles/mev_core.dir/blackbox.cpp.o"
  "CMakeFiles/mev_core.dir/blackbox.cpp.o.d"
  "CMakeFiles/mev_core.dir/detector.cpp.o"
  "CMakeFiles/mev_core.dir/detector.cpp.o.d"
  "CMakeFiles/mev_core.dir/experiment_config.cpp.o"
  "CMakeFiles/mev_core.dir/experiment_config.cpp.o.d"
  "CMakeFiles/mev_core.dir/greybox.cpp.o"
  "CMakeFiles/mev_core.dir/greybox.cpp.o.d"
  "CMakeFiles/mev_core.dir/persistence.cpp.o"
  "CMakeFiles/mev_core.dir/persistence.cpp.o.d"
  "CMakeFiles/mev_core.dir/security_eval.cpp.o"
  "CMakeFiles/mev_core.dir/security_eval.cpp.o.d"
  "CMakeFiles/mev_core.dir/substitute.cpp.o"
  "CMakeFiles/mev_core.dir/substitute.cpp.o.d"
  "CMakeFiles/mev_core.dir/threat_model.cpp.o"
  "CMakeFiles/mev_core.dir/threat_model.cpp.o.d"
  "libmev_core.a"
  "libmev_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
