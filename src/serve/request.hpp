// Request/response vocabulary of the scoring service. A submission either
// completes with one Verdict per input row or is REJECTED with an explicit
// reason — the service never queues unboundedly and never silently drops.
#pragma once

#include <cstdint>
#include <future>
#include <vector>

#include "core/detector.hpp"
#include "math/matrix.hpp"

namespace mev::serve {

/// Why a submission did not produce verdicts.
enum class RejectReason {
  kNone = 0,        // not rejected: verdicts are valid
  kQueueFull,       // admission control: queued rows would exceed the bound
  kShuttingDown,    // service stopped (or stopping without drain)
  kDeadline,        // the request's deadline expired before scoring
};

inline const char* to_string(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kDeadline: return "deadline";
  }
  return "unknown";
}

/// Outcome of one submission: either verdicts (one per submitted row, in
/// submission order) or a rejection reason.
struct ScoreResult {
  RejectReason rejected = RejectReason::kNone;
  std::vector<core::Verdict> verdicts;
  /// Model snapshot version that scored this request (0 when rejected).
  std::uint64_t model_version = 0;

  bool ok() const noexcept { return rejected == RejectReason::kNone; }
};

/// Per-submission options.
struct SubmitOptions {
  /// Relative deadline in milliseconds measured from submission on the
  /// service clock; 0 means no deadline. A request still queued when its
  /// deadline passes is rejected with RejectReason::kDeadline instead of
  /// being scored late.
  std::uint64_t deadline_ms = 0;
};

/// One queued unit of work. Internal to the service and the batcher, but
/// defined here so the batcher is unit-testable without the service.
struct Request {
  math::Matrix counts;
  std::promise<ScoreResult> promise;
  std::uint64_t enqueue_us = 0;   // clock->now_us() at submit (histograms)
  std::uint64_t enqueue_ms = 0;   // clock->now_ms() at submit (batch delay)
  std::uint64_t deadline_ms = 0;  // absolute clock ms; 0 = none

  bool expired(std::uint64_t now_ms) const noexcept {
    return deadline_ms != 0 && now_ms >= deadline_ms;
  }
};

}  // namespace mev::serve
