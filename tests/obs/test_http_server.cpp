// SocketServer behavior over real sockets: keep-alive with pipelining,
// arrival-order response writes under out-of-order async completion,
// Connection: close semantics (client-requested and server-policy),
// inline parse-error answers, idle timeouts, and the dropped-ticket 500
// backstop. The server is compiled in every build mode (it only needs the
// parser + stub-safe obs facades), so these tests run with and without
// MEV_ENABLE_OBS.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/http.hpp"
#include "obs/http_server.hpp"

namespace {

using mev::obs::http::format_response;
using mev::obs::http::Request;
using mev::obs::http::ResponseTicket;
using mev::obs::http::SocketServer;
using mev::obs::http::SocketServerConfig;

constexpr const char* kText = "text/plain";

/// Minimal test client: blocking connect/send plus a Content-Length-aware
/// reader so pipelined responses can be split back apart.
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  void send_raw(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
  }

  /// Reads exactly one framed response (headers + Content-Length body);
  /// empty string on EOF/timeout.
  std::string read_response() {
    for (;;) {
      const std::size_t header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        const std::string headers = buffer_.substr(0, header_end + 4);
        std::size_t body_len = 0;
        const std::size_t cl = headers.find("Content-Length: ");
        if (cl != std::string::npos)
          body_len = static_cast<std::size_t>(
              std::stoul(headers.substr(cl + 16)));
        if (buffer_.size() >= header_end + 4 + body_len) {
          const std::string response =
              buffer_.substr(0, header_end + 4 + body_len);
          buffer_.erase(0, header_end + 4 + body_len);
          return response;
        }
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// True when the server closed (EOF) with nothing further buffered.
  bool at_eof() {
    if (!buffer_.empty()) return false;
    char chunk[256];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    return n == 0;
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

SocketServerConfig base_config() {
  SocketServerConfig config;
  config.port = 0;
  config.worker_threads = 2;
  config.io_timeout_ms = 3000;
  config.keep_alive = true;
  return config;
}

TEST(SocketServer, KeepAlivePipeliningServesManyRequestsPerConnection) {
  SocketServer server(base_config(),
                      [](Request&& request, ResponseTicket ticket) {
                        ticket.respond(format_response(
                            200, kText, std::string(request.path()) + "\n",
                            ticket.keep_alive(), {}));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  // Three requests in ONE write: the parser must split them and the
  // responses must come back individually framed, in order.
  client.send_raw(
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n");
  for (const char* expected : {"/a", "/b", "/c"}) {
    const std::string response = client.read_response();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find(std::string("\r\n\r\n") + expected + "\n"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  }
  const SocketServer::Stats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.requests, 3u);
}

TEST(SocketServer, AsyncOutOfOrderCompletionWritesInArrivalOrder) {
  // The dispatcher parks every ticket; a separate thread completes them
  // in REVERSE order. The wire order must still match arrival order.
  std::mutex mutex;
  std::vector<std::pair<std::string, ResponseTicket>> parked;
  SocketServer server(base_config(),
                      [&](Request&& request, ResponseTicket ticket) {
                        std::lock_guard<std::mutex> lock(mutex);
                        parked.emplace_back(std::string(request.path()),
                                            std::move(ticket));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  client.send_raw("GET /first HTTP/1.1\r\n\r\nGET /second HTTP/1.1\r\n\r\n");

  // Wait for both to be parked, then resolve second-then-first.
  for (int i = 0; i < 500; ++i) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      if (parked.size() == 2) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::thread resolver([&] {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(parked.size(), 2u);
    for (std::size_t i = parked.size(); i-- > 0;)
      parked[i].second.respond(format_response(
          200, kText, parked[i].first + "\n",
          parked[i].second.keep_alive(), {}));
  });
  resolver.join();

  EXPECT_NE(client.read_response().find("/first\n"), std::string::npos);
  EXPECT_NE(client.read_response().find("/second\n"), std::string::npos);
}

TEST(SocketServer, ClientConnectionCloseIsHonored) {
  SocketServer server(base_config(),
                      [](Request&&, ResponseTicket ticket) {
                        const bool keep = ticket.keep_alive();
                        ticket.respond(
                            format_response(200, kText, "ok\n", keep, {}));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  client.send_raw("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  const std::string response = client.read_response();
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.at_eof());
}

TEST(SocketServer, Http10DefaultsToClose) {
  SocketServer server(base_config(),
                      [](Request&&, ResponseTicket ticket) {
                        const bool keep = ticket.keep_alive();
                        ticket.respond(
                            format_response(200, kText, "ok\n", keep, {}));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  client.send_raw("GET / HTTP/1.0\r\n\r\n");
  const std::string response = client.read_response();
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.at_eof());
}

TEST(SocketServer, KeepAliveDisabledServesOneRequestPerConnection) {
  SocketServerConfig config = base_config();
  config.keep_alive = false;  // the admin plane's posture
  SocketServer server(std::move(config),
                      [](Request&& request, ResponseTicket ticket) {
                        ticket.respond(format_response(
                            200, kText, std::string(request.path()) + "\n",
                            ticket.keep_alive(), {}));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  // Two pipelined requests: only the first is served, then close.
  client.send_raw("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  const std::string response = client.read_response();
  EXPECT_NE(response.find("/a\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(client.read_response(), "");  // EOF: /b never answered
}

TEST(SocketServer, ParseErrorsAnswerInlineAndClose) {
  SocketServer server(base_config(),
                      [](Request&&, ResponseTicket ticket) {
                        ticket.respond(
                            format_response(200, kText, "ok\n", true, {}));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  client.send_raw("total garbage\r\n\r\n");
  const std::string response = client.read_response();
  EXPECT_NE(response.find("HTTP/1.1 400 Bad Request"), std::string::npos);
  EXPECT_TRUE(client.at_eof());
  EXPECT_EQ(server.stats().parse_errors, 1u);
}

TEST(SocketServer, DroppedTicketAnswers500NotAWedgedConnection) {
  SocketServer server(base_config(),
                      [](Request&&, ResponseTicket ticket) {
                        // Dispatcher "forgets" to respond; the ticket's
                        // destructor must answer so the client unblocks.
                        ResponseTicket dropped = std::move(ticket);
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  client.send_raw("GET / HTTP/1.1\r\n\r\n");
  const std::string response = client.read_response();
  EXPECT_NE(response.find("HTTP/1.1 500 Internal Server Error"),
            std::string::npos);
}

TEST(SocketServer, IdleKeepAliveConnectionsTimeOut) {
  SocketServerConfig config = base_config();
  config.io_timeout_ms = 200;
  SocketServer server(std::move(config),
                      [](Request&&, ResponseTicket ticket) {
                        ticket.respond(
                            format_response(200, kText, "ok\n", true, {}));
                      });
  ASSERT_TRUE(server.start());
  Client client(server.port());
  ASSERT_TRUE(client.ok());
  // Send nothing: the server must hang up on its own.
  EXPECT_TRUE(client.at_eof());
}

TEST(SocketServer, StartStopIsIdempotentAndResolvesEphemeralPorts) {
  SocketServer server(base_config(),
                      [](Request&&, ResponseTicket ticket) {
                        ticket.respond(
                            format_response(200, kText, "ok\n", false, {}));
                      });
  ASSERT_TRUE(server.start());
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.port(), 0);
  EXPECT_TRUE(server.start());
  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
  server.stop();
}

TEST(SocketServer, LateResponseAfterStopIsHarmless) {
  // A completion callback may fire after the connection — or the whole
  // server — is gone; respond() must be a safe no-op then.
  ResponseTicket parked;
  std::atomic<bool> got{false};
  SocketServerConfig config = base_config();
  config.io_timeout_ms = 200;  // bounds the shutdown drain wait
  auto server = std::make_unique<SocketServer>(
      std::move(config), [&](Request&&, ResponseTicket ticket) {
        parked = std::move(ticket);
        got.store(true);
      });
  ASSERT_TRUE(server->start());
  {
    Client client(server->port());
    ASSERT_TRUE(client.ok());
    client.send_raw("GET / HTTP/1.1\r\n\r\n");
    for (int i = 0; i < 500 && !got.load(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(got.load());
  }
  server->stop();
  server.reset();
  parked.respond(format_response(200, kText, "too late\n", false, {}));
}

}  // namespace
