
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/blackbox.cpp" "src/core/CMakeFiles/mev_core.dir/blackbox.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/blackbox.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/mev_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/experiment_config.cpp" "src/core/CMakeFiles/mev_core.dir/experiment_config.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/experiment_config.cpp.o.d"
  "/root/repo/src/core/greybox.cpp" "src/core/CMakeFiles/mev_core.dir/greybox.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/greybox.cpp.o.d"
  "/root/repo/src/core/persistence.cpp" "src/core/CMakeFiles/mev_core.dir/persistence.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/persistence.cpp.o.d"
  "/root/repo/src/core/security_eval.cpp" "src/core/CMakeFiles/mev_core.dir/security_eval.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/security_eval.cpp.o.d"
  "/root/repo/src/core/substitute.cpp" "src/core/CMakeFiles/mev_core.dir/substitute.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/substitute.cpp.o.d"
  "/root/repo/src/core/threat_model.cpp" "src/core/CMakeFiles/mev_core.dir/threat_model.cpp.o" "gcc" "src/core/CMakeFiles/mev_core.dir/threat_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/mev_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/mev_data.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/mev_features.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/mev_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/mev_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mev_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
