// Score-distribution drift detection for the serving layer: verdict
// confidences (P(malware) per scored row) are binned into a frozen
// *reference* population captured at startup (or after swap_model()) and
// a sliding *current* window, and compared with the population stability
// index (obs::psi). A model swap resets the reference — the new model's
// own early traffic becomes the new baseline — so drift always means
// "the query mix changed", not "the model changed".
//
// Why this matters here: the paper's black-box attackers (and the
// adaptive ones in the defense chapters) shift the score distribution of
// their probe stream long before any single verdict looks anomalous. A
// per-client PSI (net/client_stats.hpp keys one ScoreDrift per API key)
// surfaces which caller's mix moved.
//
// Built on the always-compiled window primitives, so drift math works
// identically with MEV_ENABLE_OBS=OFF. Thread-safety is telemetry-grade:
// record() is lock-free; a record racing reset_reference() may land in
// the discarded baseline (bounded loss, never corruption).
#pragma once

#include <atomic>
#include <cstdint>

#include "obs/window.hpp"

namespace mev::serve {

struct DriftConfig {
  /// Geometry of the current-side sliding window. Default 12 x 5 s.
  obs::WindowConfig window{5'000'000, 12};
  /// Trailing span compared against the reference (0 = the ring's full
  /// span, i.e. 60 s by default).
  std::uint64_t window_us = 0;
  /// Scores accumulated before the reference freezes. Until frozen,
  /// psi() reports 0 (no baseline = no evidence of drift).
  std::uint64_t reference_min_count = 256;
};

/// One drift tracker: a frozen reference bin population plus a sliding
/// current window of obs::kScoreBins linear bins over [0, 1].
class ScoreDrift {
 public:
  explicit ScoreDrift(DriftConfig config = {});

  ScoreDrift(const ScoreDrift&) = delete;
  ScoreDrift& operator=(const ScoreDrift&) = delete;

  /// Records one verdict confidence: always feeds the current window;
  /// feeds the reference too until it freezes at reference_min_count.
  void record(std::uint64_t now_us, double score) noexcept;

  /// Discards the frozen reference and starts re-capturing from the next
  /// records (called on swap_model()).
  void reset_reference() noexcept;

  bool reference_frozen() const noexcept {
    return frozen_.load(std::memory_order_acquire);
  }
  std::uint64_t reference_count() const noexcept {
    return reference_count_.load(std::memory_order_relaxed);
  }

  /// PSI between the frozen reference and the trailing current window at
  /// `now_us`; 0 while the reference is still capturing.
  double psi(std::uint64_t now_us) const noexcept;

  obs::ScoreBins reference() const noexcept;
  obs::ScoreBins current(std::uint64_t now_us) const noexcept;

  const DriftConfig& config() const noexcept { return config_; }

 private:
  DriftConfig config_;
  obs::SlidingScoreHistogram current_;
  std::array<std::atomic<std::uint64_t>, obs::kScoreBins> reference_bins_{};
  std::atomic<std::uint64_t> reference_count_{0};
  std::atomic<bool> frozen_{false};
};

}  // namespace mev::serve
