#include "defense/ensemble.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/dataset.hpp"

namespace mev::defense {
namespace {

/// A classifier that answers with a fixed label for every row.
class ConstantClassifier final : public Classifier {
 public:
  explicit ConstantClassifier(int label) : label_(label) {}
  std::vector<int> classify(const math::Matrix& features) override {
    return std::vector<int>(features.rows(), label_);
  }
  std::string name() const override { return "const"; }

 private:
  int label_;
};

std::shared_ptr<Classifier> constant(int label) {
  return std::make_shared<ConstantClassifier>(label);
}

const math::Matrix kProbe(3, 2);

TEST(Ensemble, RejectsEmptyOrNullMembers) {
  EXPECT_THROW(EnsembleClassifier({}), std::invalid_argument);
  EXPECT_THROW(EnsembleClassifier({nullptr}), std::invalid_argument);
}

TEST(Ensemble, MajorityVote) {
  EnsembleClassifier clf({constant(1), constant(1), constant(0)},
                         VotePolicy::kMajority);
  for (int pred : clf.classify(kProbe)) EXPECT_EQ(pred, 1);

  EnsembleClassifier clean_wins({constant(0), constant(0), constant(1)},
                                VotePolicy::kMajority);
  for (int pred : clean_wins.classify(kProbe)) EXPECT_EQ(pred, 0);
}

TEST(Ensemble, MajorityTieBreaksToMalware) {
  EnsembleClassifier clf({constant(1), constant(0)}, VotePolicy::kMajority);
  for (int pred : clf.classify(kProbe)) EXPECT_EQ(pred, data::kMalwareLabel);
}

TEST(Ensemble, AnyMalwarePolicy) {
  EnsembleClassifier clf({constant(0), constant(0), constant(1)},
                         VotePolicy::kAnyMalware);
  for (int pred : clf.classify(kProbe)) EXPECT_EQ(pred, data::kMalwareLabel);

  EnsembleClassifier all_clean({constant(0), constant(0)},
                               VotePolicy::kAnyMalware);
  for (int pred : all_clean.classify(kProbe)) EXPECT_EQ(pred, 0);
}

TEST(Ensemble, ConfidenceIsMemberMean) {
  EnsembleClassifier clf({constant(1), constant(0)});
  const auto conf = clf.malware_confidence(kProbe);
  for (double c : conf) EXPECT_DOUBLE_EQ(c, 0.5);  // (1.0 + 0.0) / 2
}

TEST(Ensemble, NameListsMembers) {
  EnsembleClassifier clf({constant(1), constant(0)}, VotePolicy::kAnyMalware);
  EXPECT_EQ(clf.name(), "ensemble-any(const+const)");
  EXPECT_EQ(clf.size(), 2u);
}

}  // namespace
}  // namespace mev::defense
