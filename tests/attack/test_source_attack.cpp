#include "attack/source_attack.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.hpp"
#include "features/transform.hpp"
#include "nn/trainer.hpp"

namespace mev::attack {
namespace {

struct Fixture {
  const data::ApiVocab& vocab = data::ApiVocab::instance();
  data::GenerativeModel generator{vocab, data::GenerativeConfig{}};
  std::unique_ptr<features::FeaturePipeline> pipeline;
  nn::Network net;
  data::ApiLog malware_log;

  Fixture() {
    math::Rng rng(31);
    const data::CountDataset train = generator.generate_dataset(150, 150, rng);
    auto transform = std::make_unique<features::CountTransform>();
    transform->fit(train.counts);
    pipeline = std::make_unique<features::FeaturePipeline>(
        vocab, std::move(transform));

    nn::MlpConfig cfg;
    cfg.dims = {vocab.size(), 32, 2};
    cfg.seed = 32;
    net = nn::make_mlp(cfg);
    nn::LabeledData data{pipeline->features_from_counts(train.counts),
                         train.labels};
    nn::TrainConfig tc;
    tc.epochs = 15;
    nn::train(net, data, tc);

    malware_log = generator.generate_log(data::kMalwareLabel, "m.exe", rng);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(SourceAttack, PerCallDeltaIsNonNegative) {
  auto& f = fixture();
  const auto counts = f.pipeline->extractor().extract(f.malware_log);
  const auto delta = per_call_feature_delta(*f.pipeline, counts);
  ASSERT_EQ(delta.size(), f.vocab.size());
  for (float d : delta) EXPECT_GE(d, 0.0f);
}

TEST(SourceAttack, PerCallDeltaMatchesSingleInsertion) {
  auto& f = fixture();
  const auto counts = f.pipeline->extractor().extract(f.malware_log);
  const auto delta = per_call_feature_delta(*f.pipeline, counts);
  // Verify against an actual single-API insertion for a few features.
  const auto base = f.pipeline->features_from_counts_row(counts);
  for (std::size_t j = 0; j < f.vocab.size(); j += 97) {
    auto bumped = counts;
    bumped[j] += 1.0f;
    const auto after = f.pipeline->features_from_counts_row(bumped);
    EXPECT_NEAR(after[j] - base[j], delta[j], 1e-6);
  }
}

TEST(SourceAttack, SelectApiValidation) {
  auto& f = fixture();
  const std::vector<float> feats(f.vocab.size(), 0.5f);
  const std::vector<float> bad_delta(3, 0.1f);
  EXPECT_THROW(select_api_to_add(f.net, feats, bad_delta),
               std::invalid_argument);
  // All features saturated: nothing admissible.
  const std::vector<float> saturated(f.vocab.size(), 1.0f);
  EXPECT_THROW(select_api_to_add(f.net, saturated), std::runtime_error);
}

TEST(SourceAttack, SelectApiReturnsGrowableFeature) {
  auto& f = fixture();
  const auto feats = f.pipeline->features_from_log(f.malware_log);
  const std::size_t j = select_api_to_add(f.net, feats);
  EXPECT_LT(j, f.vocab.size());
  EXPECT_LT(feats[j], 1.0f);
}

TEST(SourceAttack, LiveTestPointsCountAndStart) {
  auto& f = fixture();
  const auto result =
      run_live_test(f.net, f.net, *f.pipeline, f.malware_log, 8);
  ASSERT_EQ(result.points.size(), 9u);  // k = 0..8
  EXPECT_EQ(result.points.front().insertions, 0u);
  EXPECT_EQ(result.points.back().insertions, 8u);
  EXPECT_FALSE(result.api_name.empty());
  EXPECT_TRUE(f.vocab.contains(result.api_name));
}

TEST(SourceAttack, InsertionsNeverRaiseConfidenceWhenChosenWell) {
  auto& f = fixture();
  const auto result =
      run_live_test(f.net, f.net, *f.pipeline, f.malware_log, 8);
  // The white-box choice (craft == target) must not increase confidence at
  // full budget vs no insertion.
  EXPECT_LE(result.points.back().malware_confidence,
            result.points.front().malware_confidence + 1e-6);
}

TEST(SourceAttack, ZeroInsertionMatchesPlainScan) {
  auto& f = fixture();
  const auto result =
      run_live_test(f.net, *f.pipeline, f.malware_log, /*feature=*/3, 2);
  const auto feats = f.pipeline->features_from_log(f.malware_log);
  const math::Matrix probs =
      f.net.predict_proba(math::Matrix::row_vector(feats));
  EXPECT_NEAR(result.points[0].malware_confidence,
              probs(0, data::kMalwareLabel), 1e-6);
}

TEST(SourceAttack, FeatureIndexOutOfRangeThrows) {
  auto& f = fixture();
  EXPECT_THROW(
      run_live_test(f.net, *f.pipeline, f.malware_log, f.vocab.size(), 2),
      std::invalid_argument);
}

TEST(SourceAttack, InsertionsActuallyLandInLog) {
  auto& f = fixture();
  data::ApiLog log = f.malware_log;
  const std::string api = f.vocab.name(7);
  const std::size_t before = log.count_api(api);
  log.append_calls(api, 5);
  EXPECT_EQ(log.count_api(api), before + 5);
}

}  // namespace
}  // namespace mev::attack
