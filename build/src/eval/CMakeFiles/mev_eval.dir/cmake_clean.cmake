file(REMOVE_RECURSE
  "CMakeFiles/mev_eval.dir/distance_analysis.cpp.o"
  "CMakeFiles/mev_eval.dir/distance_analysis.cpp.o.d"
  "CMakeFiles/mev_eval.dir/metrics.cpp.o"
  "CMakeFiles/mev_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/mev_eval.dir/report.cpp.o"
  "CMakeFiles/mev_eval.dir/report.cpp.o.d"
  "CMakeFiles/mev_eval.dir/roc.cpp.o"
  "CMakeFiles/mev_eval.dir/roc.cpp.o.d"
  "libmev_eval.a"
  "libmev_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
