// Reproduces Fig. 3: security-evaluation curves for the WHITE-BOX attack.
//  (a) theta = 0.1, gamma in [0 : 0.005 : 0.030]  (adding 0..~14 features)
//  (b) gamma = 0.025, theta in [0 : 0.0125 : 0.15]
// plus the paper's control: randomly adding the same feature budget does
// not decrease the detection rate.
//
// Expected shape (paper): detection drops sharply as gamma or theta grows
// (to 0.099 at theta=0.1, gamma=0.025 on their model); random stays flat.
//
//   ./bench_fig3_whitebox [tiny|fast|full]
#include <iostream>

#include "attack/random_attack.hpp"
#include "bench_common.hpp"
#include "core/security_eval.hpp"
#include "eval/report.hpp"

using namespace mev;

namespace {

eval::SecurityCurve random_baseline_curve(bench::Environment& env,
                                          const core::SweepConfig& sweep) {
  eval::SecurityCurve curve;
  curve.name = "random addition (control)";
  curve.parameter =
      sweep.parameter == core::SweepParameter::kGamma ? "gamma" : "theta";
  for (double value : sweep.grid) {
    attack::RandomAdditionConfig cfg;
    cfg.seed = env.config.seed + 17;
    if (sweep.parameter == core::SweepParameter::kGamma) {
      cfg.gamma = static_cast<float>(value);
      cfg.theta = static_cast<float>(sweep.fixed_theta);
    } else {
      cfg.theta = static_cast<float>(value);
      cfg.gamma = static_cast<float>(sweep.fixed_gamma);
    }
    const attack::RandomAddition random_attack(cfg);
    const auto crafted =
        random_attack.craft(env.target_network(), env.malware_features);
    const auto preds = env.target_network().predict(crafted.adversarial);
    eval::CurvePoint point;
    point.attack_strength = value;
    point.detection_rate = eval::detection_rate(preds);
    point.mean_l2 = crafted.mean_l2();
    point.mean_features = crafted.mean_features_changed();
    curve.points.push_back(point);
  }
  return curve;
}

void run_panel(bench::Environment& env, const core::SweepConfig& sweep,
               const std::string& title) {
  std::cerr << "# sweeping " << title << "...\n";
  const auto result = core::run_security_sweep(
      env.target_network(), env.target_network(), env.malware_features,
      sweep);
  const auto random_curve = random_baseline_curve(env, sweep);
  std::cout << "\n--- " << title << " ---\n";
  eval::SecurityCurve jsma_curve = result.target_curve;
  jsma_curve.name = "JSMA white-box";
  std::cout << eval::render_curves({jsma_curve, random_curve});
}

}  // namespace

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));
  const auto cm = bench::baseline_confusion(env);
  std::cout << "Fig. 3 — white-box JSMA security evaluation\n"
            << "baseline (no attack): TPR=" << eval::Table::fmt(cm.tpr())
            << " TNR=" << eval::Table::fmt(cm.tnr()) << " on "
            << env.malware_features.rows() << " attacked malware samples\n";

  run_panel(env, core::SweepConfig::fig3a(),
            "Fig. 3(a): theta=0.100, sweep gamma");
  run_panel(env, core::SweepConfig::fig3b(),
            "Fig. 3(b): gamma=0.025, sweep theta");

  // The paper's headline operating point.
  core::SweepConfig op;
  op.parameter = core::SweepParameter::kGamma;
  op.grid = {0.025};
  op.fixed_theta = 0.1;
  const auto headline = core::run_security_sweep(
      env.target_network(), env.target_network(), env.malware_features, op);
  const double det = headline.target_curve.points[0].detection_rate;
  std::cout << "\noperating point theta=0.1, gamma=0.025: detection rate = "
            << eval::Table::fmt(det) << " (paper: 0.099), i.e. "
            << eval::Table::fmt(100.0 * (1.0 - det), 1)
            << "% of attacked malware evades\n";
  return 0;
}
