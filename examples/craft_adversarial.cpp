// Fig. 1 reproduction: craft one adversarial malware example with add-only
// JSMA and print which API calls were added, with before/after confidence.
//
//   ./craft_adversarial [tiny|fast|full]
#include <iostream>

#include "attack/jsma.hpp"
#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"

using namespace mev;

int main(int argc, char** argv) {
  const auto config =
      core::ExperimentConfig::from_name(argc > 1 ? argv[1] : "tiny");
  const auto& vocab = data::ApiVocab::instance();
  const data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);

  std::cout << "training the white-box target detector...\n";
  const data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);
  core::MalwareDetector& detector = *trained.detector;

  // Fig. 1 shows a malware sample evading after TWO added API calls; find
  // a detected test sample for which the 2-feature JSMA budget suffices
  // (samples deep inside the malware region need a larger budget).
  attack::JsmaConfig jsma_cfg;
  jsma_cfg.theta = 1.0f;   // an added API call saturates its feature
  jsma_cfg.gamma = 0.005f; // budget: 2 features, like Fig. 1
  jsma_cfg.target_class = data::kCleanLabel;
  const attack::Jsma jsma(jsma_cfg);

  const auto malware_rows = bundle.test.indices_of(data::kMalwareLabel);
  math::Matrix x;
  core::Verdict before;
  attack::AttackResult crafted;
  for (std::size_t row : malware_rows) {
    math::Matrix candidate(1, trained.test_features.cols());
    candidate.set_row(0, trained.test_features.row(row));
    const auto verdict = detector.scan_features(candidate).front();
    if (!verdict.is_malware() || verdict.malware_confidence < 0.8) continue;
    attack::AttackResult attempt = jsma.craft(detector.network(), candidate);
    const bool evaded = attempt.evaded[0];
    x = std::move(candidate);
    before = verdict;
    crafted = std::move(attempt);
    if (evaded) break;  // keep the last attempt otherwise
  }
  if (x.empty()) {
    std::cerr << "no confidently-detected malware sample found\n";
    return 1;
  }
  std::cout << "original sample: P(malware) = " << before.malware_confidence
            << " -> detected as MALWARE\n";

  const auto after = detector.scan_features(crafted.adversarial).front();
  std::cout << "adversarial sample: P(malware) = " << after.malware_confidence
            << (after.is_malware() ? " -> still detected\n"
                                   : " -> EVADED (classified clean)\n");

  std::cout << "added API calls (features increased by JSMA):\n";
  for (std::size_t j = 0; j < x.cols(); ++j) {
    const float delta = crafted.adversarial(0, j) - x(0, j);
    if (delta > 0.0f)
      std::cout << "  + " << vocab.name(j) << "  (feature " << j
                << ", delta " << delta << ")\n";
  }
  std::cout << "perturbed features: " << crafted.features_changed[0]
            << ", L2 perturbation: " << crafted.l2_perturbation[0] << "\n";
  return 0;
}
