#include "attack/fgsm.hpp"

#include <algorithm>
#include <stdexcept>

#include "math/linalg.hpp"
#include "nn/session.hpp"

namespace mev::attack {

FgsmAddOnly::FgsmAddOnly(FgsmConfig config) : config_(config) {
  if (config_.theta < 0.0f)
    throw std::invalid_argument("FgsmAddOnly: theta must be non-negative");
}

AttackResult FgsmAddOnly::craft(const nn::Network& model,
                                const math::Matrix& x) const {
  const std::size_t n = x.rows(), m = x.cols();
  AttackResult result;
  result.adversarial = x;
  result.evaded.assign(n, false);
  result.features_changed.assign(n, 0);
  result.l2_perturbation.assign(n, 0.0);
  if (n == 0) return result;

  nn::InferenceSession session(model, n);
  // input_gradient returns a reference into the session; copy before the
  // final predict reuses the buffers.
  const math::Matrix grad =
      session.input_gradient(x, config_.target_class);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t changed = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (grad(i, j) <= 0.0f) continue;  // add-only, toward target class
      float& value = result.adversarial(i, j);
      if (value >= 1.0f) continue;
      value = std::min(1.0f, value + config_.theta);
      ++changed;
    }
    result.features_changed[i] = changed;
    result.l2_perturbation[i] =
        math::l2_distance(x.row(i), result.adversarial.row(i));
  }

  const auto preds = session.predict(result.adversarial);
  for (std::size_t i = 0; i < n; ++i)
    result.evaded[i] = preds[i] == config_.target_class;
  return result;
}

}  // namespace mev::attack
