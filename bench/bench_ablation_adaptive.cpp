// Ablation: the paper's closing open challenge — "It is an open challenge
// to design a defense against a powerful adaptive attack."
//
// This bench quantifies the gap: each defended model is attacked TWICE —
//  * static: the original grey-box advex (crafted against the undefended
//    substitute, as in Table VI), and
//  * adaptive: fresh white-box JSMA crafted directly against the defended
//    model itself.
// A defense that survives the static attack but collapses under the
// adaptive one (the usual outcome, cf. Carlini & Wagner 2017) has not
// solved the problem — it has moved the blind spot. Also evaluates the
// ensemble the paper suggests (adversarial training + dim. reduction).
//
//   ./bench_ablation_adaptive [tiny|fast|full]
#include <iostream>
#include <memory>

#include "attack/jsma.hpp"
#include "bench_common.hpp"
#include "core/greybox.hpp"
#include "core/substitute.hpp"
#include "defense/adversarial_training.hpp"
#include "defense/classifier.hpp"
#include "defense/dim_reduction.hpp"
#include "defense/ensemble.hpp"
#include "eval/report.hpp"
#include "features/transform.hpp"

using namespace mev;

int main(int argc, char** argv) {
  auto env = bench::make_environment(bench::parse_scale(argc, argv));

  // Static grey-box advex pool (Table VI recipe).
  std::cerr << "# substitute + static advex (theta=0.1, gamma=0.02)...\n";
  const data::CountDataset attacker_data = bench::attacker_dataset(env);
  auto sub = core::train_substitute_exact_features(
      attacker_data, env.config, env.detector().pipeline());
  const auto& attacker_transform =
      dynamic_cast<const features::CountTransform&>(
          sub.pipeline.transform());
  const auto map = core::make_greybox_count_map(
      attacker_transform, env.detector().pipeline(), env.malware_counts);
  attack::JsmaConfig static_cfg;
  static_cfg.theta = 0.1f;
  static_cfg.gamma = 0.02f;
  static_cfg.early_stop = false;
  const auto static_crafted = attack::Jsma(static_cfg).craft(
      *sub.network, map.to_craft_space(env.malware_features));
  const math::Matrix static_advex = map.to_target_space(static_crafted.adversarial);

  // Defenses under test: adversarial training, dim reduction, their
  // ensemble (the paper's suggestion), and the undefended baseline.
  std::cerr << "# adversarial training...\n";
  math::Rng clean_rng(env.config.seed + 9100);
  const auto clean_pool = env.generator.generate_dataset(
      static_advex.rows(), 0, clean_rng);
  const math::Matrix clean_pool_features =
      env.detector().features_of_counts(clean_pool.counts);
  const auto adv_set = defense::build_adversarial_training_set(
      env.trained.train_features, env.bundle.train.labels, static_advex,
      &clean_pool_features);
  defense::AdversarialTrainingConfig at_cfg{env.config.target_architecture(),
                                            env.config.target_training()};
  auto adv_net = defense::adversarial_training(adv_set, at_cfg);
  auto adv_clf =
      std::make_shared<defense::NetworkClassifier>(adv_net, "AdvTraining");

  std::cerr << "# dimensionality reduction (k=19)...\n";
  nn::LabeledData train_data{env.trained.train_features,
                             env.bundle.train.labels};
  defense::DimReductionConfig dr_cfg;
  dr_cfg.k = 19;
  dr_cfg.training = env.config.target_training();
  std::shared_ptr<defense::Classifier> dim_clf =
      std::shared_ptr<defense::DimReductionClassifier>(
          train_dim_reduction_defense(train_data, dr_cfg));

  auto baseline_clf = std::make_shared<defense::NetworkClassifier>(
      env.detector().network_ptr(), "No Defense");
  auto ensemble = std::make_shared<defense::EnsembleClassifier>(
      std::vector<std::shared_ptr<defense::Classifier>>{adv_clf, dim_clf},
      defense::VotePolicy::kAnyMalware);

  // Adaptive attack: white-box JSMA against each network-backed defense.
  // (The ensemble and dim-reduction have no single differentiable network
  // in input space; they are attacked with the adv-trained model's
  // gradients — the strongest available surrogate.)
  attack::JsmaConfig adaptive_cfg;
  adaptive_cfg.theta = 0.1f;
  adaptive_cfg.gamma = 0.05f;  // a stronger adaptive budget
  adaptive_cfg.early_stop = false;
  const attack::Jsma adaptive(adaptive_cfg);

  struct Row {
    std::string name;
    double clean_tnr, static_tpr, adaptive_tpr;
  };
  std::vector<Row> rows;
  const auto eval_defense = [&](defense::Classifier& clf,
                                nn::Network& gradient_source) {
    std::cerr << "# adaptive attack vs " << clf.name() << "...\n";
    const auto adaptive_crafted =
        adaptive.craft(gradient_source, env.malware_features);
    Row row;
    row.name = clf.name();
    row.clean_tnr =
        1.0 - eval::detection_rate(clf.classify(env.clean_features));
    row.static_tpr = eval::detection_rate(clf.classify(static_advex));
    row.adaptive_tpr =
        eval::detection_rate(clf.classify(adaptive_crafted.adversarial));
    rows.push_back(row);
  };

  eval_defense(*baseline_clf, env.target_network());
  eval_defense(*adv_clf, adv_clf->network());
  eval_defense(*dim_clf, adv_clf->network());
  eval_defense(*ensemble, adv_clf->network());

  eval::Table t("Adaptive-attack ablation (static = Table VI advex; "
                "adaptive = white-box JSMA vs the defense)");
  t.header({"defense", "clean TNR", "static advex TPR",
            "adaptive advex TPR"});
  for (const auto& r : rows)
    t.row({r.name, eval::Table::fmt(r.clean_tnr),
           eval::Table::fmt(r.static_tpr), eval::Table::fmt(r.adaptive_tpr)});
  std::cout << t.render();
  std::cout << "\nReading: a large static->adaptive drop means the defense "
               "moved the blind spot\nrather than closing it — the paper's "
               "open challenge.\n";
  return 0;
}
