file(REMOVE_RECURSE
  "CMakeFiles/mev_features.dir/extractor.cpp.o"
  "CMakeFiles/mev_features.dir/extractor.cpp.o.d"
  "CMakeFiles/mev_features.dir/transform.cpp.o"
  "CMakeFiles/mev_features.dir/transform.cpp.o.d"
  "libmev_features.a"
  "libmev_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mev_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
