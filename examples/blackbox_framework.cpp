// Fig. 2 framework: a black-box attacker with no knowledge of the target
// trains a substitute through a label-only oracle (Jacobian augmentation),
// then transfers JSMA adversarial examples to the target.
//
//   ./blackbox_framework [tiny|fast|full] [--trace out.json]
//                        [--metrics out.prom] [--serve] [--admin-port N]
//
//   --trace out.json   write a Chrome trace (per-round augment/label/train
//                      spans, trainer epochs, JSMA shards) — load it at
//                      https://ui.perfetto.dev or chrome://tracing
//   --metrics out.prom write a Prometheus text-format metrics snapshot
//                      (oracle query/cache/retry counters, trainer loss,
//                      serve latency histograms with --serve)
//   --serve            route oracle queries through the src/serve/
//                      ScoringService (same labels, realistic deployment)
//   --admin-port N     serve /metrics /varz /healthz /readyz /tracez live
//                      for the duration of the black-box run (0 =
//                      kernel-assigned; the bound port is printed)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "attack/jsma.hpp"
#include "attack/transfer.hpp"
#include "core/blackbox.hpp"
#include "core/greybox.hpp"
#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "eval/report.hpp"
#include "obs/obs.hpp"
#include "serve/scoring_service.hpp"
#include "serve/service_oracle.hpp"

using namespace mev;

int main(int argc, char** argv) {
  std::string scale = "tiny", trace_path, metrics_path;
  bool use_serve = false, admin_enabled = false;
  int admin_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) trace_path = argv[++i];
    else if (arg == "--metrics" && i + 1 < argc) metrics_path = argv[++i];
    else if (arg == "--serve") use_serve = true;
    else if (arg == "--admin-port" && i + 1 < argc) {
      admin_enabled = true;
      admin_port = std::atoi(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: " << argv[0]
                << " [tiny|fast|full] [--trace out.json]"
                   " [--metrics out.prom] [--serve] [--admin-port N]\n";
      return 2;
    } else {
      scale = arg;
    }
  }

  const auto config = core::ExperimentConfig::from_name(scale);
  const auto& vocab = data::ApiVocab::instance();
  math::Rng rng(config.seed);

  // Observability sinks for the whole run: tracing only costs when a
  // --trace output was requested; the registry is always cheap to fill.
  obs::Tracer tracer(
      obs::TracerConfig{.ring_capacity = 1 << 16,
                        .clock = nullptr,
                        .enabled = !trace_path.empty()});
  obs::MetricsRegistry registry;
  obs::Scope obs_scope(&tracer, &registry);

  std::cout << "[1/3] training the (hidden) target detector...\n";
  const data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  const data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);

  // The oracle: direct detector access, or the scoring service in front of
  // the same model with --serve (labels are bit-identical either way).
  std::unique_ptr<serve::ScoringService> service;
  std::unique_ptr<runtime::CountOracle> oracle_holder;
  if (use_serve) {
    serve::ServiceConfig serve_cfg;
    serve_cfg.tracer = &tracer;
    serve_cfg.metrics = &registry;
    service = std::make_unique<serve::ScoringService>(
        trained.detector->pipeline(), trained.detector->network_ptr(),
        serve_cfg);
    oracle_holder = std::make_unique<serve::ServiceOracle>(*service);
  } else {
    oracle_holder = std::make_unique<core::DetectorOracle>(*trained.detector);
  }
  runtime::CountOracle& oracle = *oracle_holder;

  // The attacker's own seed samples: a small set drawn from a DIFFERENT
  // generator seed (different data, per the threat model).
  data::GenerativeConfig attacker_gen_cfg;
  attacker_gen_cfg.seed = config.seed ^ 0xA77AC4E2ULL;
  const data::GenerativeModel attacker_gen(vocab, attacker_gen_cfg);
  math::Rng attacker_rng(config.seed + 31337);
  const std::size_t seed_n =
      config.scale == core::ExperimentScale::kTiny ? 40 : 150;
  const data::CountDataset seed =
      attacker_gen.generate_dataset(seed_n / 2, seed_n / 2, attacker_rng);

  std::cout << "[2/3] black-box substitute training via the oracle...\n";
  core::BlackBoxConfig bb_cfg;
  bb_cfg.substitute_architecture =
      config.substitute_architecture(vocab.size());
  bb_cfg.training_per_round = config.substitute_training();
  bb_cfg.training_per_round.epochs =
      std::max<std::size_t>(5, bb_cfg.training_per_round.epochs / 3);
  bb_cfg.tracer = &tracer;
  bb_cfg.metrics = &registry;
  if (admin_enabled) {
    bb_cfg.admin.enabled = true;
    bb_cfg.admin.port = static_cast<std::uint16_t>(admin_port);
    std::cout << "      admin plane will serve /metrics /readyz /tracez "
                 "for the duration of the run\n";
  }
  const core::BlackBoxResult bb =
      core::run_blackbox_framework(oracle, seed.counts, bb_cfg);

  eval::Table rounds("Substitute training rounds (Jacobian augmentation)");
  rounds.header({"round", "dataset rows", "oracle queries",
                 "agreement with oracle"});
  for (std::size_t r = 0; r < bb.rounds.size(); ++r)
    rounds.row({std::to_string(r), std::to_string(bb.rounds[r].dataset_rows),
                std::to_string(bb.rounds[r].oracle_queries),
                eval::Table::fmt(bb.rounds[r].oracle_agreement)});
  std::cout << rounds.render();

  std::cout << "[3/3] crafting on the substitute, deploying on the target...\n";
  // Malware feature rows in the ATTACKER's feature space.
  const auto malware_rows = bundle.test.indices_of(data::kMalwareLabel);
  std::vector<std::size_t> rows(
      malware_rows.begin(),
      malware_rows.begin() +
          std::min(malware_rows.size(), config.attack_sample_cap()));
  const math::Matrix malware_counts = bundle.test.counts.gather_rows(rows);
  const math::Matrix attacker_features =
      bb.attacker_transform.apply(malware_counts);

  attack::JsmaConfig jsma_cfg;
  jsma_cfg.theta = 0.1f;
  jsma_cfg.gamma = 0.025f;
  const attack::Jsma jsma(jsma_cfg);
  const attack::AttackResult crafted =
      jsma.craft(*bb.substitute, attacker_features);

  // Realize feature-space perturbations as integer API-call ADDITIONS and
  // submit through the target's full pipeline (add-only, like the paper).
  const math::Matrix additions = core::additions_from_count_perturbation(
      bb.attacker_transform, attacker_features, crafted.adversarial);
  math::Matrix adv_counts = malware_counts;
  adv_counts += additions;
  const auto baseline = trained.detector->scan_counts(malware_counts);
  const auto attacked = trained.detector->scan_counts(adv_counts);
  std::size_t detected_before = 0, detected_after = 0;
  for (const auto& v : baseline) detected_before += v.is_malware() ? 1 : 0;
  for (const auto& v : attacked) detected_after += v.is_malware() ? 1 : 0;

  eval::Table result("Black-box attack (Fig. 2 framework)");
  result.header({"metric", "value"});
  result.row({"oracle queries used", std::to_string(bb.total_queries)});
  result.row({"target detection, original malware",
              eval::Table::fmt(static_cast<double>(detected_before) /
                               static_cast<double>(baseline.size()))});
  result.row({"target detection, black-box advex",
              eval::Table::fmt(static_cast<double>(detected_after) /
                               static_cast<double>(attacked.size()))});
  result.row({"substitute evasion rate",
              eval::Table::fmt(crafted.success_rate())});
  std::cout << result.render();

  if (service != nullptr) service->shutdown(/*drain=*/true);
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    tracer.write_chrome_trace(os);
    if (!os) {
      std::cerr << "error: cannot write trace to " << trace_path << "\n";
      return 1;
    }
    std::cout << "trace written to " << trace_path
              << " (load it at https://ui.perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    registry.write_prometheus(os);
    if (!os) {
      std::cerr << "error: cannot write metrics to " << metrics_path << "\n";
      return 1;
    }
    std::cout << "metrics written to " << metrics_path << "\n";
  }
  return 0;
}
