#include "data/api_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace mev::data {
namespace {

TEST(ApiLog, FormatMatchesPaperTable2) {
  ApiCall call;
  call.api = "GetProcAddress";
  call.address = 0x13FBC34D6;
  call.args = "76D30000,\"FlsAlloc\"";
  call.thread_id = 61484;
  EXPECT_EQ(format_api_call(call),
            "GetProcAddress:13FBC34D6 (76D30000,\"FlsAlloc\")\"61484\"");
}

TEST(ApiLog, FormatEmptyArgs) {
  ApiCall call;
  call.api = "GetFileType";
  call.address = 0x7FEFDD39D0C;
  call.thread_id = 61468;
  EXPECT_EQ(format_api_call(call), "GetFileType:7FEFDD39D0C ()\"61468\"");
}

TEST(ApiLog, ParsePaperLines) {
  // Lines taken verbatim from the paper's Table II.
  const ApiCall a = parse_api_call("GetStartupInfoW:7FEFDD39C37 ()\"61468\"");
  EXPECT_EQ(a.api, "GetStartupInfoW");
  EXPECT_EQ(a.address, 0x7FEFDD39C37ull);
  EXPECT_EQ(a.args, "");
  EXPECT_EQ(a.thread_id, 61468u);

  const ApiCall b = parse_api_call(
      "GetProcAddress:13FBC34D6 (76D30000,\"FlsAlloc\")\"61484\"");
  EXPECT_EQ(b.api, "GetProcAddress");
  EXPECT_EQ(b.args, "76D30000,\"FlsAlloc\"");
  EXPECT_EQ(b.thread_id, 61484u);
}

TEST(ApiLog, FormatParseRoundTrip) {
  ApiCall call;
  call.api = "RegSetValueExW";
  call.address = 0xABCDEF0123;
  call.args = "HKEY_CURRENT_USER,\"Run\",4";
  call.thread_id = 1234;
  EXPECT_EQ(parse_api_call(format_api_call(call)), call);
}

class ApiLogMalformed : public ::testing::TestWithParam<const char*> {};

TEST_P(ApiLogMalformed, ParseThrows) {
  EXPECT_THROW(parse_api_call(GetParam()), std::runtime_error);
}

INSTANTIATE_TEST_SUITE_P(
    BadLines, ApiLogMalformed,
    ::testing::Values("", "noformat", ":13F ()\"1\"",
                      "Api:NOTHEX ()\"1\"", "Api:13F ()\"\"",
                      "Api:13F ()\"abc\"", "Api:13F \"1\"",
                      "Api:13F (x\"1\"", "Api:13F ()\"1",
                      "Api:13F()\"1\""));

TEST(ApiLog, CountApiIsCaseInsensitive) {
  ApiLog log;
  log.append_calls("WriteFile", 3);
  log.append_calls("ReadFile", 1);
  EXPECT_EQ(log.count_api("writefile"), 3u);
  EXPECT_EQ(log.count_api("WRITEFILE"), 3u);
  EXPECT_EQ(log.count_api("missing"), 0u);
  EXPECT_EQ(log.size(), 4u);
}

TEST(ApiLog, AppendCallsAssignsPlausibleMetadata) {
  ApiLog log;
  log.append_calls("WinExec", 2);
  ASSERT_EQ(log.calls.size(), 2u);
  EXPECT_NE(log.calls[0].address, log.calls[1].address);
  EXPECT_EQ(log.calls[0].thread_id, log.calls[1].thread_id);
  // Appending more continues from the last call's context.
  log.append_calls("WinExec", 1);
  EXPECT_GT(log.calls[2].address, log.calls[1].address);
}

TEST(ApiLog, WriteReadRoundTrip) {
  ApiLog log;
  log.sample_name = "evil.exe";
  log.os = OsVariant::kWin10;
  log.append_calls("CreateFileW", 2);
  log.append_calls("WriteProcessMemory", 1);

  std::stringstream buffer;
  write_log(log, buffer);
  const ApiLog loaded = read_log(buffer);
  EXPECT_EQ(loaded, log);
}

TEST(ApiLog, StringRoundTrip) {
  ApiLog log;
  log.sample_name = "x.dll";
  log.os = OsVariant::kWinXp;
  log.append_calls("LoadLibraryA", 1);
  EXPECT_EQ(log_from_string(log_to_string(log)), log);
}

TEST(ApiLog, ReadIgnoresUnknownHeadersAndBlankLines) {
  const std::string text =
      "# sample: a.exe\n# custom: whatever\n\n# os: Win8\n"
      "GetFileType:1A ()\"7\"\n";
  const ApiLog log = log_from_string(text);
  EXPECT_EQ(log.sample_name, "a.exe");
  EXPECT_EQ(log.os, OsVariant::kWin8);
  EXPECT_EQ(log.size(), 1u);
}

TEST(ApiLog, OsVariantStringRoundTrip) {
  for (OsVariant os : {OsVariant::kWin7, OsVariant::kWinXp, OsVariant::kWin8,
                       OsVariant::kWin10}) {
    EXPECT_EQ(os_variant_from_string(to_string(os)), os);
  }
  EXPECT_THROW(os_variant_from_string("Win95"), std::runtime_error);
}

}  // namespace
}  // namespace mev::data
