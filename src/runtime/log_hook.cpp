#include "runtime/log_hook.hpp"

#include <atomic>
#include <cstring>

namespace mev::runtime {

namespace {

std::atomic<LogHookFn> g_hook{nullptr};

}  // namespace

const char* to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

LogLevel parse_log_level(const char* text, LogLevel fallback) noexcept {
  if (text == nullptr) return fallback;
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff})
    if (std::strcmp(text, to_string(level)) == 0) return level;
  return fallback;
}

void set_log_hook(LogHookFn hook) noexcept {
  g_hook.store(hook, std::memory_order_release);
}

LogHookFn log_hook() noexcept {
  return g_hook.load(std::memory_order_acquire);
}

void log(LogLevel level, const char* component, const char* message,
         const LogField* fields, std::size_t num_fields) noexcept {
  const LogHookFn hook = g_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(level, component, message, fields, num_fields);
}

}  // namespace mev::runtime
