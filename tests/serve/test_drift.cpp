// ScoreDrift: reference capture/freeze semantics, PSI against the
// sliding current window, reset on swap_model(), and the service wiring
// (stats() drift + SLO fields, the advisory — never 503 — fast-burn
// readiness reason), all deterministic under FakeClock.
#include "serve/drift.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "runtime/clock.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {
namespace {

constexpr std::uint64_t kSecond = 1'000'000;

DriftConfig small_config() {
  DriftConfig config;
  config.window = {/*bucket_us=*/kSecond, /*buckets=*/4};
  config.reference_min_count = 10;
  return config;
}

TEST(ScoreDriftTest, PsiIsZeroWhileTheReferenceCaptures) {
  ScoreDrift drift(small_config());
  for (int i = 0; i < 9; ++i) drift.record(100, 0.1);
  EXPECT_FALSE(drift.reference_frozen());
  EXPECT_EQ(drift.reference_count(), 9u);
  // No baseline yet: even a wildly different current window reads 0.
  EXPECT_EQ(drift.psi(200), 0.0);
}

TEST(ScoreDriftTest, ReferenceFreezesAtMinCount) {
  ScoreDrift drift(small_config());
  for (int i = 0; i < 10; ++i) drift.record(100, 0.1);
  EXPECT_TRUE(drift.reference_frozen());
  EXPECT_EQ(drift.reference_count(), 10u);
  // Later records feed only the current window.
  drift.record(200, 0.9);
  EXPECT_EQ(drift.reference_count(), 10u);
  const obs::ScoreBins reference = drift.reference();
  EXPECT_EQ(reference[obs::score_bin(0.1)], 10u);
  EXPECT_EQ(reference[obs::score_bin(0.9)], 0u);
}

TEST(ScoreDriftTest, StableTrafficStaysBelowTheMinorThreshold) {
  ScoreDrift drift(small_config());
  for (int i = 0; i < 10; ++i) drift.record(100, 0.1);
  // Same mix keeps flowing: PSI stays in the "stable" band (< 0.1).
  for (int i = 0; i < 50; ++i) drift.record(2 * kSecond, 0.1);
  EXPECT_LT(drift.psi(2 * kSecond + 1), 0.1);
}

TEST(ScoreDriftTest, ShiftedTrafficCrossesTheMajorThreshold) {
  ScoreDrift drift(small_config());
  for (int i = 0; i < 10; ++i) drift.record(100, 0.1);
  // The probe mix flips to high-confidence scores; once the capture-era
  // records slide out of the 4 s current window, only the shifted
  // population remains.
  for (int i = 0; i < 50; ++i) drift.record(10 * kSecond, 0.95);
  EXPECT_GT(drift.psi(10 * kSecond + 1), 0.25);
}

TEST(ScoreDriftTest, ResetReferenceRecapturesFromFreshTraffic) {
  ScoreDrift drift(small_config());
  for (int i = 0; i < 10; ++i) drift.record(100, 0.1);
  ASSERT_TRUE(drift.reference_frozen());
  drift.reset_reference();
  EXPECT_FALSE(drift.reference_frozen());
  EXPECT_EQ(drift.reference_count(), 0u);
  EXPECT_EQ(drift.psi(200), 0.0);
  // The new baseline is the post-reset mix; matching traffic is no drift.
  for (int i = 0; i < 10; ++i) drift.record(20 * kSecond, 0.9);
  EXPECT_TRUE(drift.reference_frozen());
  for (int i = 0; i < 20; ++i) drift.record(21 * kSecond, 0.9);
  EXPECT_LT(drift.psi(21 * kSecond + 1), 0.1);
}

// ---------------------------------------------------------------------------
// Service wiring: drift + SLO surfaced through ScoringService.

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

TEST(ServiceDriftTest, StatsCarryDriftAndSloFields) {
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  cfg.drift.reference_min_count = 8;
  ScoringService service(make_pipeline(7), make_network(11), cfg);

  // The first request freezes the 8-score reference; replaying the exact
  // same rows makes the current window a 2x copy of the reference, so the
  // proportions match and PSI is pinned at 0.
  const math::Matrix rows = random_counts(8, 42);
  for (int i = 0; i < 2; ++i) {
    ScoreFuture future = service.submit(rows);
    while (service.pump(/*force=*/true) > 0) {
    }
    ASSERT_TRUE(future.get().ok());
  }

  const ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.drift_reference_frozen);
  EXPECT_TRUE(service.drift().reference_frozen());
  EXPECT_LT(stats.score_psi, 0.01);
  // One clean request: no burn, full budget.
  EXPECT_DOUBLE_EQ(stats.slo_fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(stats.slo_slow_burn, 0.0);
  EXPECT_DOUBLE_EQ(stats.slo_budget_remaining, 1.0);
}

TEST(ServiceDriftTest, SwapModelResetsTheReference) {
  runtime::FakeClock clock;
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  cfg.drift.reference_min_count = 4;
  ScoringService service(make_pipeline(7), make_network(11), cfg);

  ScoreFuture future = service.submit(random_counts(8, 42));
  while (service.pump(/*force=*/true) > 0) {
  }
  ASSERT_TRUE(future.get().ok());
  ASSERT_TRUE(service.drift().reference_frozen());

  // A new model's confidences are a new baseline, not "drift".
  service.swap_model(make_pipeline(7), make_network(13));
  EXPECT_FALSE(service.drift().reference_frozen());
  EXPECT_EQ(service.drift().reference_count(), 0u);

  ScoreFuture after = service.submit(random_counts(8, 43));
  while (service.pump(/*force=*/true) > 0) {
  }
  ASSERT_TRUE(after.get().ok());
  EXPECT_TRUE(service.drift().reference_frozen());
}

TEST(ServiceDriftTest, RejectionsBurnTheAvailabilityBudget) {
  runtime::FakeClock clock;
  clock.advance(10'000);  // t = 10 s so an absolute deadline can be "past"
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  ScoringService service(make_pipeline(7), make_network(11), cfg);

  // An already-expired absolute deadline rejects at admission; the
  // resolve path still records it against the availability SLO.
  SubmitOptions expired;
  expired.deadline_at_ms = 1;
  ScoreFuture future = service.submit(random_counts(2, 42), expired);
  EXPECT_EQ(future.get().rejected, RejectReason::kDeadline);

  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.slo_fast_burn, 14.4);  // 100% errors vs 99.9% objective
  EXPECT_LT(stats.slo_budget_remaining, 0.0);
}

TEST(ServiceDriftTest, FastBurnIsAdvisoryNeverNotReady) {
  runtime::FakeClock clock;
  clock.advance(10'000);
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.clock = &clock;
  ScoringService service(make_pipeline(7), make_network(11), cfg);
  ASSERT_EQ(service.readiness().reason, "ok");

  SubmitOptions expired;
  expired.deadline_at_ms = 1;
  for (int i = 0; i < 5; ++i) {
    ScoreFuture future = service.submit(random_counts(1, 42), expired);
    EXPECT_EQ(future.get().rejected, RejectReason::kDeadline);
  }
  ASSERT_TRUE(service.slo().snapshot(clock.now_us()).fast_burn_alert);

  // The alert annotates /readyz but MUST NOT flip it: burn-rate paging is
  // an operator signal, and flapping readiness under error bursts would
  // amplify the outage. The overload controller owns 503.
  const obs::Readiness readiness = service.readiness();
  EXPECT_TRUE(readiness.ready);
  EXPECT_NE(readiness.reason.find("advisory"), std::string::npos);
  EXPECT_NE(readiness.reason.find("slo fast burn"), std::string::npos);
}

}  // namespace
}  // namespace mev::serve
