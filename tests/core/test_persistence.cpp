#include "core/persistence.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "core/experiment_config.hpp"
#include "data/synthetic.hpp"

namespace mev::core {
namespace {

struct Fixture {
  const data::ApiVocab& vocab = data::ApiVocab::instance();
  data::GenerativeModel generator{vocab, data::GenerativeConfig{}};
  data::DatasetBundle bundle;
  DetectorTrainingResult trained;

  Fixture() {
    const auto config = ExperimentConfig::tiny();
    math::Rng rng(config.seed + 5);
    bundle = generator.generate_bundle(data::DatasetSpec::scaled(0.003, 16),
                                       rng);
    auto arch = config.target_architecture();
    auto tc = config.target_training();
    tc.epochs = 5;
    trained = train_detector(bundle, arch, tc, vocab);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Persistence, RoundTripPreservesVerdicts) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector";
  save_detector(*f.trained.detector, prefix);
  auto loaded = load_detector(prefix, f.vocab);
  ASSERT_NE(loaded, nullptr);

  math::Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    const data::ApiLog log = f.generator.generate_log(
        i % 2, "roundtrip_" + std::to_string(i) + ".exe", rng);
    const Verdict a = f.trained.detector->scan(log);
    const Verdict b = loaded->scan(log);
    EXPECT_EQ(a.predicted_class, b.predicted_class);
    EXPECT_NEAR(a.malware_confidence, b.malware_confidence, 1e-6);
  }
}

TEST(Persistence, RoundTripPreservesFeatureTransform) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector2";
  save_detector(*f.trained.detector, prefix);
  auto loaded = load_detector(prefix, f.vocab);
  math::Rng rng(78);
  const auto counts = f.generator.generate_counts(data::kMalwareLabel, rng);
  math::Matrix m(1, counts.size());
  m.set_row(0, counts);
  EXPECT_EQ(f.trained.detector->features_of_counts(m),
            loaded->features_of_counts(m));
}

TEST(Persistence, MissingFilesThrow) {
  auto& f = fixture();
  EXPECT_THROW(load_detector("/nonexistent/prefix", f.vocab),
               std::runtime_error);
}

TEST(Persistence, CorruptTransformThrows) {
  auto& f = fixture();
  const std::string prefix = ::testing::TempDir() + "/mev_detector3";
  save_detector(*f.trained.detector, prefix);
  // Corrupt the transform file header.
  {
    std::ofstream ts(prefix + ".transform");
    ts << "mystery\n";
  }
  EXPECT_THROW(load_detector(prefix, f.vocab), std::runtime_error);
}

}  // namespace
}  // namespace mev::core
