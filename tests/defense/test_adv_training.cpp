#include "defense/adversarial_training.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "data/dataset.hpp"

namespace mev::defense {
namespace {

math::Matrix train_x() { return math::Matrix{{0, 0}, {1, 1}, {0.5f, 0.5f}}; }
std::vector<int> train_y() {
  return {data::kCleanLabel, data::kMalwareLabel, data::kCleanLabel};
}

TEST(AdvTrainingSet, CountsOriginalComposition) {
  const math::Matrix advex{{0.9f, 0.9f}};
  const auto set =
      build_adversarial_training_set(train_x(), train_y(), advex);
  EXPECT_EQ(set.stats.clean, 2u);
  EXPECT_EQ(set.stats.malware, 1u);
  EXPECT_EQ(set.stats.adversarial, 1u);
  EXPECT_EQ(set.stats.total(), 4u);
  EXPECT_EQ(set.data.x.rows(), 4u);
  EXPECT_EQ(set.data.labels.back(), data::kMalwareLabel);
}

TEST(AdvTrainingSet, RemovesDuplicateAdversarialRows) {
  const math::Matrix advex{{0.9f, 0.9f}, {0.9f, 0.9f}, {0.8f, 0.8f}};
  const auto set =
      build_adversarial_training_set(train_x(), train_y(), advex);
  EXPECT_EQ(set.stats.adversarial, 2u);
  EXPECT_EQ(set.stats.duplicates_removed, 1u);
}

TEST(AdvTrainingSet, RemovesAdvexDuplicatingTrainingRows) {
  const math::Matrix advex{{1, 1}};  // identical to a training malware row
  const auto set =
      build_adversarial_training_set(train_x(), train_y(), advex);
  EXPECT_EQ(set.stats.adversarial, 0u);
  EXPECT_EQ(set.stats.duplicates_removed, 1u);
}

TEST(AdvTrainingSet, BalancesWithExtraClean) {
  // 1 malware + 3 advex = 4 positives vs 2 clean: needs 2 extra clean.
  const math::Matrix advex{{0.9f, 0.9f}, {0.8f, 0.8f}, {0.7f, 0.7f}};
  const math::Matrix pool{{0.1f, 0.1f}, {0.2f, 0.2f}, {0.3f, 0.3f}};
  const auto set =
      build_adversarial_training_set(train_x(), train_y(), advex, &pool);
  EXPECT_EQ(set.stats.clean, 4u);
  EXPECT_EQ(set.stats.malware + set.stats.adversarial, 4u);
}

TEST(AdvTrainingSet, PoolExhaustionIsGraceful) {
  const math::Matrix advex{{0.9f, 0.9f}, {0.8f, 0.8f}, {0.7f, 0.7f}};
  const math::Matrix pool{{0.1f, 0.1f}};  // not enough to balance
  const auto set =
      build_adversarial_training_set(train_x(), train_y(), advex, &pool);
  EXPECT_EQ(set.stats.clean, 3u);
}

TEST(AdvTrainingSet, ErrorsOnBadInput) {
  const math::Matrix advex{{0.9f, 0.9f}};
  std::vector<int> short_labels{0};
  EXPECT_THROW(
      build_adversarial_training_set(train_x(), short_labels, advex),
      std::invalid_argument);
  const math::Matrix wrong_dim{{1, 2, 3}};
  EXPECT_THROW(
      build_adversarial_training_set(train_x(), train_y(), wrong_dim),
      std::invalid_argument);
  const math::Matrix bad_pool{{1, 2, 3}};
  EXPECT_THROW(build_adversarial_training_set(train_x(), train_y(), advex,
                                              &bad_pool),
               std::invalid_argument);
}

TEST(AdvTraining, TrainsAModel) {
  math::Matrix x(40, 2);
  std::vector<int> y(40);
  math::Rng rng(3);
  for (std::size_t i = 0; i < 40; ++i) {
    const int label = static_cast<int>(i % 2);
    x(i, 0) = static_cast<float>(label + 0.2 * rng.normal());
    x(i, 1) = static_cast<float>(label + 0.2 * rng.normal());
    y[i] = label;
  }
  const auto set = build_adversarial_training_set(x, y, math::Matrix(0, 2));
  AdversarialTrainingConfig cfg;
  cfg.architecture.dims = {2, 8, 2};
  cfg.training.epochs = 20;
  cfg.training.batch_size = 16;
  cfg.training.learning_rate = 0.01f;
  auto net = adversarial_training(set, cfg);
  ASSERT_NE(net, nullptr);
  EXPECT_GT(nn::accuracy(*net, x, y), 0.9);
}

}  // namespace
}  // namespace mev::defense
