#include "core/detector.hpp"

#include <stdexcept>

#include "features/transform.hpp"

namespace mev::core {

MalwareDetector::MalwareDetector(features::FeaturePipeline pipeline,
                                 std::shared_ptr<nn::Network> network)
    : pipeline_(std::move(pipeline)),
      network_(std::move(network)),
      scratch_mutex_(std::make_unique<std::mutex>()) {
  if (network_ == nullptr)
    throw std::invalid_argument("MalwareDetector: null network");
  if (network_->input_dim() != pipeline_.dim())
    throw std::invalid_argument(
        "MalwareDetector: pipeline/network dimension mismatch");
}

nn::InferenceSession MalwareDetector::make_session(
    std::size_t max_batch) const {
  return nn::InferenceSession(*network_, max_batch);
}

nn::InferenceSession& MalwareDetector::scratch() {
  if (scratch_ == nullptr)
    scratch_ = std::make_unique<nn::InferenceSession>(*network_);
  return *scratch_;
}

Verdict MalwareDetector::scan(const data::ApiLog& log) {
  std::lock_guard<std::mutex> lock(*scratch_mutex_);
  return scan(scratch(), log);
}

Verdict MalwareDetector::scan(nn::InferenceSession& session,
                              const data::ApiLog& log) const {
  const auto feats = pipeline_.features_from_log(log);
  return scan_features(session, math::Matrix::row_vector(feats)).front();
}

std::vector<Verdict> MalwareDetector::scan_counts(const math::Matrix& counts) {
  std::lock_guard<std::mutex> lock(*scratch_mutex_);
  return scan_counts(scratch(), counts);
}

std::vector<Verdict> MalwareDetector::scan_counts(
    nn::InferenceSession& session, const math::Matrix& counts) const {
  return scan_features(session, pipeline_.features_from_counts(counts));
}

std::vector<Verdict> MalwareDetector::scan_features(
    const math::Matrix& features) {
  std::lock_guard<std::mutex> lock(*scratch_mutex_);
  return scan_features(scratch(), features);
}

std::vector<Verdict> MalwareDetector::scan_features(
    nn::InferenceSession& session, const math::Matrix& features) const {
  const math::Matrix& probs = session.predict_proba(features);
  std::vector<Verdict> verdicts(features.rows());
  for (std::size_t i = 0; i < features.rows(); ++i) {
    verdicts[i].malware_confidence = probs(i, data::kMalwareLabel);
    verdicts[i].predicted_class =
        probs(i, data::kMalwareLabel) >= probs(i, data::kCleanLabel)
            ? data::kMalwareLabel
            : data::kCleanLabel;
  }
  return verdicts;
}

std::vector<float> MalwareDetector::features_of(const data::ApiLog& log) const {
  return pipeline_.features_from_log(log);
}

math::Matrix MalwareDetector::features_of_counts(
    const math::Matrix& counts) const {
  return pipeline_.features_from_counts(counts);
}

DetectorTrainingResult train_detector(const data::DatasetBundle& bundle,
                                      const nn::MlpConfig& architecture,
                                      const nn::TrainConfig& training,
                                      const data::ApiVocab& vocab) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(bundle.train.counts);
  features::FeaturePipeline pipeline(vocab, std::move(transform));

  DetectorTrainingResult result;
  result.train_features = pipeline.features_from_counts(bundle.train.counts);
  result.val_features =
      pipeline.features_from_counts(bundle.validation.counts);
  result.test_features = pipeline.features_from_counts(bundle.test.counts);

  auto network = std::make_shared<nn::Network>(nn::make_mlp(architecture));
  nn::LabeledData train_data{result.train_features, bundle.train.labels};
  nn::LabeledData val_data{result.val_features, bundle.validation.labels};
  result.history = nn::train(*network, train_data, training, &val_data);

  result.detector =
      std::make_unique<MalwareDetector>(std::move(pipeline), network);
  return result;
}

}  // namespace mev::core
