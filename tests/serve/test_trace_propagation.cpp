// Trace-context propagation through the serving pipeline: the
// TraceContext submitted with a request survives the shard rings, the
// micro-batcher, and the worker threads, the worker emits the
// queue/scan spans under the submitter's trace, StageStamps come back
// monotone, and uncorrelated requests emit no per-request spans. The
// cross-THREAD half of the tentpole: the correlated events are recorded
// on a worker thread the submitter never sees.
#include <atomic>
#include <future>
#include <memory>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "data/api_vocab.hpp"
#include "features/transform.hpp"
#include "math/rng.hpp"
#include "obs/trace.hpp"
#include "obs/trace_context.hpp"
#include "runtime/clock.hpp"
#include "serve/scoring_service.hpp"

namespace mev::serve {
namespace {

constexpr std::size_t kDim = data::kNumApiFeatures;

math::Matrix random_counts(std::size_t rows, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, kDim);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.poisson(3.0));
  return m;
}

features::FeaturePipeline make_pipeline(std::uint64_t seed) {
  auto transform = std::make_unique<features::CountTransform>();
  transform->fit(random_counts(64, seed));
  return features::FeaturePipeline(data::ApiVocab::instance(),
                                   std::move(transform));
}

std::shared_ptr<nn::Network> make_network(std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.dims = {kDim, 16, 2};
  cfg.seed = seed;
  return std::make_shared<nn::Network>(nn::make_mlp(cfg));
}

struct Fixture {
  features::FeaturePipeline pipeline = make_pipeline(7);
  std::shared_ptr<nn::Network> network = make_network(11);

  ScoringService make_service(ServiceConfig config) {
    return ScoringService(pipeline, network, config);
  }
};

TEST(TracePropagation, StageStampsAreMonotoneAndPopulated) {
  Fixture f;
  runtime::FakeClock clock(10);
  ServiceConfig cfg;
  cfg.workers = 0;  // manual pump: deterministic boundaries
  cfg.max_batch_rows = 8;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  std::promise<ScoreResult> done;
  auto got = done.get_future();
  service.submit_with_callback(
      random_counts(2, 42), {},
      [](void* ctx, ScoreResult&& result) {
        static_cast<std::promise<ScoreResult>*>(ctx)->set_value(
            std::move(result));
      },
      &done);
  clock.advance(3);
  service.pump(/*force=*/true);
  ScoreResult result = got.get();
  ASSERT_TRUE(result.ok());
  // admitted at submit (clock 10 ms), formed/scanned after the advance.
  EXPECT_EQ(result.stages.admitted_us, 10'000u);
  EXPECT_GE(result.stages.formed_us, result.stages.admitted_us);
  EXPECT_GE(result.stages.scan_start_us, result.stages.formed_us);
  EXPECT_GE(result.stages.scan_end_us, result.stages.scan_start_us);
  EXPECT_EQ(result.stages.formed_us, 13'000u);
}

#if MEV_OBS_ENABLED

TEST(TracePropagation, WorkerThreadsEmitSpansUnderTheSubmittersTrace) {
  Fixture f;
  runtime::FakeClock clock;
  obs::Tracer tracer(
      obs::TracerConfig{.ring_capacity = 256, .clock = &clock});
  ServiceConfig cfg;
  cfg.workers = 2;  // REAL threads: the cross-thread propagation test
  cfg.max_batch_rows = 4;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  cfg.tracer = &tracer;
  auto service = f.make_service(cfg);

  const obs::TraceContext request_ctx = tracer.make_context();
  SubmitOptions options;
  options.trace = request_ctx;
  ScoreResult result =
      service.score(random_counts(3, 7), options);
  ASSERT_TRUE(result.ok());
  service.shutdown();

  // The worker thread emitted mev.serve.queue and mev.serve.scan under
  // the submitted trace, parented on the submitted span.
  bool saw_queue = false, saw_scan = false;
  for (const obs::TraceEvent& e : tracer.recent(256)) {
    if (e.trace_id != request_ctx.trace_id) continue;
    EXPECT_EQ(e.parent_span_id, request_ctx.span_id) << e.name;
    EXPECT_NE(e.span_id, request_ctx.span_id);
    if (std::string_view(e.name) == "mev.serve.queue") saw_queue = true;
    if (std::string_view(e.name) == "mev.serve.scan") saw_scan = true;
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_scan);
}

TEST(TracePropagation, UncorrelatedRequestsEmitNoRequestSpans) {
  Fixture f;
  runtime::FakeClock clock;
  obs::Tracer tracer(
      obs::TracerConfig{.ring_capacity = 256, .clock = &clock});
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 4;
  cfg.max_queue_delay_ms = 0;
  cfg.clock = &clock;
  cfg.tracer = &tracer;
  auto service = f.make_service(cfg);

  std::atomic<bool> called{false};
  service.submit_with_callback(
      random_counts(1, 3), {},
      [](void* ctx, ScoreResult&&) {
        static_cast<std::atomic<bool>*>(ctx)->store(true);
      },
      &called);
  service.pump(/*force=*/true);
  ASSERT_TRUE(called.load());
  for (const obs::TraceEvent& e : tracer.recent(256)) {
    EXPECT_EQ(e.trace_id, 0u) << e.name
                              << " carried a trace id for an uncorrelated "
                                 "request";
    EXPECT_NE(std::string_view(e.name), "mev.serve.queue");
  }
}

TEST(TracePropagation, EveryRequestInABatchKeepsItsOwnTrace) {
  Fixture f;
  runtime::FakeClock clock;
  obs::Tracer tracer(
      obs::TracerConfig{.ring_capacity = 256, .clock = &clock});
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 64;  // all three requests coalesce into one batch
  cfg.max_queue_delay_ms = 5;
  cfg.clock = &clock;
  cfg.tracer = &tracer;
  auto service = f.make_service(cfg);

  std::vector<obs::TraceContext> contexts;
  std::atomic<int> completions{0};
  for (int i = 0; i < 3; ++i) {
    contexts.push_back(tracer.make_context());
    SubmitOptions options;
    options.trace = contexts.back();
    service.submit_with_callback(
        random_counts(2, 100 + i), options,
        [](void* ctx, ScoreResult&& result) {
          EXPECT_TRUE(result.ok());
          ++*static_cast<std::atomic<int>*>(ctx);
        },
        &completions);
  }
  clock.advance(5);
  service.pump(/*force=*/true);
  ASSERT_EQ(completions.load(), 3);
  // One shared batch, but three distinct queue spans — one per trace.
  for (const obs::TraceContext& ctx : contexts) {
    int queue_spans = 0;
    for (const obs::TraceEvent& e : tracer.recent(256)) {
      if (e.trace_id == ctx.trace_id &&
          std::string_view(e.name) == "mev.serve.queue")
        ++queue_spans;
    }
    EXPECT_EQ(queue_spans, 1) << "trace " << ctx.trace_id;
  }
}

#endif  // MEV_OBS_ENABLED

TEST(TracePropagation, RejectedRequestsStillReportAdmissionStamps) {
  Fixture f;
  runtime::FakeClock clock(100);
  ServiceConfig cfg;
  cfg.workers = 0;
  cfg.max_batch_rows = 4;
  cfg.clock = &clock;
  auto service = f.make_service(cfg);

  SubmitOptions options;
  options.deadline_ms = 1;
  std::promise<ScoreResult> done;
  auto got = done.get_future();
  service.submit_with_callback(
      random_counts(1, 5), options,
      [](void* ctx, ScoreResult&& result) {
        static_cast<std::promise<ScoreResult>*>(ctx)->set_value(
            std::move(result));
      },
      &done);
  clock.advance(50);  // long past the 1 ms deadline
  service.pump(/*force=*/true);
  ScoreResult result = got.get();
  EXPECT_EQ(result.rejected, RejectReason::kDeadline);
  EXPECT_EQ(result.stages.admitted_us, 100'000u);
}

}  // namespace
}  // namespace mev::serve
