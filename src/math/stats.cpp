#include "math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mev::math {

double mean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double mean_f(std::span<const float> v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (float x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(std::span<const double> v) { return std::sqrt(variance(v)); }

Summary summarize(std::span<const double> v) {
  Summary s;
  s.count = v.size();
  if (v.empty()) return s;
  s.min = s.max = v[0];
  double sum = 0.0;
  for (double x : v) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(v.size());
  double sq = 0.0;
  for (double x : v) sq += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(v.size()));
  return s;
}

double percentile(std::span<const double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile: p out of [0,100]");
  std::vector<double> sorted(v.begin(), v.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Matrix covariance_matrix(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("covariance: empty matrix");
  const auto mu = column_means(x);
  Matrix centered = x;
  for (std::size_t r = 0; r < centered.rows(); ++r) {
    auto row = centered.row(r);
    for (std::size_t c = 0; c < centered.cols(); ++c) row[c] -= mu[c];
  }
  Matrix cov = matmul_at_b(centered, centered);
  cov *= 1.0f / static_cast<float>(x.rows());
  return cov;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size())
    throw std::invalid_argument("pearson: length mismatch");
  if (a.size() < 2) return 0.0;
  const double ma = mean(a), mb = mean(b);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  if (da == 0.0 || db == 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

}  // namespace mev::math
