// Persistence: trained detectors and black-box run checkpoints round-trip
// through files so a deployment can load the exact model the evaluation
// measured, and an interrupted run can resume where it stopped.
//
// All files are written crash-safely (temp file + atomic rename) inside a
// checksummed envelope (runtime/atomic_file.hpp): a magic/version header
// plus an FNV-1a checksum, so loaders reject truncated, corrupted, or
// wrong-type files with a clear std::runtime_error instead of silently
// loading garbage.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/blackbox.hpp"
#include "core/detector.hpp"

namespace mev::core {

/// Writes `<path_prefix>.net` (binary network) and `<path_prefix>.transform`
/// (text transform), each atomically and checksummed. Supports
/// CountTransform- and BinaryTransform-based pipelines; throws
/// std::runtime_error on I/O failure or unknown transform types.
void save_detector(const MalwareDetector& detector,
                   const std::string& path_prefix);

/// Loads a detector saved by save_detector, binding it to `vocab` (which
/// must have the same size the detector was trained with).
std::unique_ptr<MalwareDetector> load_detector(const std::string& path_prefix,
                                               const data::ApiVocab& vocab);

/// Everything run_blackbox_framework needs to continue from the end of a
/// completed augmentation round: the grown dataset, the attacker
/// transform, the substitute weights, per-round stats, the query-cache
/// contents, and a fingerprint of (config, seed set) guarding against
/// resuming under a different setup. There is no hidden cross-round RNG:
/// substitute init and shuffling restart from config seeds each round, so
/// this state is sufficient for a bit-identical resume.
struct BlackBoxCheckpoint {
  std::uint64_t config_fingerprint = 0;
  std::size_t next_round = 0;  // first round not yet completed
  bool finished = false;       // the run completed; result is final
  std::size_t total_queries = 0;
  math::Matrix counts;         // the attacker's dataset after augmentation
  std::vector<BlackBoxRoundStats> rounds;
  nn::Network substitute;
  features::CountTransform attacker_transform;
  math::Matrix cache_rows;     // realized-count query cache (may be empty)
  std::vector<int> cache_labels;
};

/// Atomically writes the checkpoint (checksummed envelope).
void save_blackbox_checkpoint(const BlackBoxCheckpoint& checkpoint,
                              const std::string& path);

/// Loads a checkpoint written by save_blackbox_checkpoint; throws
/// std::runtime_error on missing/truncated/corrupted files.
BlackBoxCheckpoint load_blackbox_checkpoint(const std::string& path);

}  // namespace mev::core
