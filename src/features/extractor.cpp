#include "features/extractor.hpp"

namespace mev::features {

std::vector<float> CountExtractor::extract(const data::ApiLog& log) const {
  std::vector<float> counts(vocab_->size(), 0.0f);
  for (const auto& call : log.calls) {
    const auto idx = vocab_->index_of(call.api);
    if (idx.has_value()) counts[*idx] += 1.0f;
  }
  return counts;
}

math::Matrix CountExtractor::extract_batch(
    std::span<const data::ApiLog> logs) const {
  math::Matrix out(logs.size(), vocab_->size());
  for (std::size_t i = 0; i < logs.size(); ++i)
    out.set_row(i, extract(logs[i]));
  return out;
}

}  // namespace mev::features
