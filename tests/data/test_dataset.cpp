#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mev::data {
namespace {

TEST(DatasetSpec, PaperNumbersMatchTable1) {
  const DatasetSpec s = DatasetSpec::paper();
  EXPECT_EQ(s.train_total(), 57170u);
  EXPECT_EQ(s.train_clean, 28594u);
  EXPECT_EQ(s.train_malware, 28576u);
  EXPECT_EQ(s.val_total(), 578u);
  EXPECT_EQ(s.test_total(), 45028u);
  EXPECT_EQ(s.test_malware, 28874u);
}

TEST(DatasetSpec, ScaledPreservesProportionsRoughly) {
  const DatasetSpec s = DatasetSpec::scaled(0.1);
  EXPECT_NEAR(static_cast<double>(s.train_clean), 2859.4, 1.0);
  EXPECT_NEAR(static_cast<double>(s.test_malware), 2887.4, 1.0);
}

TEST(DatasetSpec, ScaledEnforcesMinimum) {
  const DatasetSpec s = DatasetSpec::scaled(0.0001, 16);
  EXPECT_GE(s.val_clean, 16u);
  EXPECT_GE(s.val_malware, 16u);
}

TEST(DatasetSpec, ScaledRejectsBadFactor) {
  EXPECT_THROW(DatasetSpec::scaled(0.0), std::invalid_argument);
  EXPECT_THROW(DatasetSpec::scaled(1.5), std::invalid_argument);
}

TEST(DatasetSpec, DescribeMentionsAllSplits) {
  const std::string text = describe(DatasetSpec::paper());
  EXPECT_NE(text.find("57170"), std::string::npos);
  EXPECT_NE(text.find("578"), std::string::npos);
  EXPECT_NE(text.find("45028"), std::string::npos);
}

CountDataset make_dataset() {
  CountDataset ds;
  ds.counts = math::Matrix{{1, 0}, {0, 2}, {3, 3}};
  ds.labels = {kCleanLabel, kMalwareLabel, kMalwareLabel};
  return ds;
}

TEST(CountDataset, CountLabel) {
  const CountDataset ds = make_dataset();
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds.count_label(kCleanLabel), 1u);
  EXPECT_EQ(ds.count_label(kMalwareLabel), 2u);
}

TEST(CountDataset, IndicesOf) {
  const CountDataset ds = make_dataset();
  const auto idx = ds.indices_of(kMalwareLabel);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 2u);
}

TEST(CountDataset, Subset) {
  const CountDataset ds = make_dataset();
  const CountDataset sub = ds.subset({2, 0});
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.labels[0], kMalwareLabel);
  EXPECT_EQ(sub.counts(0, 0), 3.0f);
  EXPECT_EQ(sub.counts(1, 0), 1.0f);
}

TEST(CountDataset, Append) {
  CountDataset a = make_dataset();
  const CountDataset b = make_dataset();
  a.append(b);
  EXPECT_EQ(a.size(), 6u);
  EXPECT_EQ(a.counts.rows(), 6u);
}

TEST(CountDataset, AppendDimMismatchThrows) {
  CountDataset a = make_dataset();
  CountDataset b;
  b.counts = math::Matrix{{1, 2, 3}};
  b.labels = {kCleanLabel};
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(CountDataset, AppendEmptyIsNoop) {
  CountDataset a = make_dataset();
  a.append(CountDataset{});
  EXPECT_EQ(a.size(), 3u);
}

TEST(Labels, ConventionMatchesPaper) {
  // Eq. 1: i = 0 is clean, i = 1 is malware.
  EXPECT_EQ(kCleanLabel, 0);
  EXPECT_EQ(kMalwareLabel, 1);
}

}  // namespace
}  // namespace mev::data
