// Google-benchmark microbenchmarks for the library's hot paths: matmul,
// network forward/backward (legacy API and InferenceSession), JSMA
// crafting throughput, feature transforms, PCA fitting and
// synthetic-corpus generation — plus the add-only vs unconstrained-JSMA
// ablation cost (DESIGN.md §5).
//
// Besides the console table, the binary writes BENCH_micro.json (ns/op per
// benchmark) to the working directory for machine consumption.
#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "attack/jsma.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "features/transform.hpp"
#include "math/matrix.hpp"
#include "math/pca.hpp"
#include "math/rng.hpp"
#include "nn/loss.hpp"
#include "nn/network.hpp"
#include "nn/session.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "obs/window.hpp"

#include "bench_meta.hpp"

using namespace mev;
using mev::bench::write_meta_json;

namespace {

math::Matrix random_matrix(std::size_t rows, std::size_t cols,
                           std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.data()[i] = static_cast<float>(rng.uniform());
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const math::Matrix a = random_matrix(n, n, 1);
  const math::Matrix b = random_matrix(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n *
                          n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_NetworkForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.dims = {491, 192, 240, 208, 2};
  cfg.seed = 3;
  nn::Network net = nn::make_mlp(cfg);
  const math::Matrix x = random_matrix(batch, 491, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
}
BENCHMARK(BM_NetworkForward)->Arg(1)->Arg(64)->Arg(256);

void BM_SessionForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.dims = {491, 192, 240, 208, 2};
  cfg.seed = 3;
  const nn::Network net = nn::make_mlp(cfg);
  nn::InferenceSession session(net, batch);
  const math::Matrix x = random_matrix(batch, 491, 4);
  session.forward(x);  // warm-up: steady state is allocation-free
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.forward(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
}
BENCHMARK(BM_SessionForward)->Arg(1)->Arg(64)->Arg(256);

void BM_SessionBackward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.dims = {491, 192, 240, 208, 2};
  cfg.seed = 3;
  nn::Network net = nn::make_mlp(cfg);
  nn::InferenceSession session(net, batch);
  session.bind_params(net);
  const math::Matrix x = random_matrix(batch, 491, 4);
  std::vector<int> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = i % 2;
  for (auto _ : state) {
    session.zero_param_grads();
    const math::Matrix& logits = session.forward(x, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    benchmark::DoNotOptimize(session.backward(loss.grad_logits));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
}
BENCHMARK(BM_SessionBackward)->Arg(64)->Arg(256);

void BM_SessionInputGradient(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.dims = {491, 64, 32, 2};
  cfg.seed = 5;
  const nn::Network net = nn::make_mlp(cfg);
  nn::InferenceSession session(net, batch);
  const math::Matrix x = random_matrix(batch, 491, 6);
  session.input_gradient(x, 0);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.input_gradient(x, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
}
BENCHMARK(BM_SessionInputGradient)->Arg(1)->Arg(32);

void BM_SessionInputGradientsAll(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.dims = {491, 64, 32, 2};
  cfg.seed = 5;
  const nn::Network net = nn::make_mlp(cfg);
  nn::InferenceSession session(net, batch);
  const math::Matrix x = random_matrix(batch, 491, 6);
  session.input_gradients_all(x);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.input_gradients_all(x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
}
BENCHMARK(BM_SessionInputGradientsAll)->Arg(32);

void BM_NetworkTrainStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.dims = {491, 192, 240, 208, 2};
  cfg.seed = 3;
  nn::Network net = nn::make_mlp(cfg);
  const math::Matrix x = random_matrix(batch, 491, 4);
  std::vector<int> labels(batch);
  for (std::size_t i = 0; i < batch; ++i) labels[i] = i % 2;
  for (auto _ : state) {
    net.zero_grad();
    const math::Matrix logits = net.forward(x, true);
    const auto loss = nn::softmax_cross_entropy(logits, labels);
    benchmark::DoNotOptimize(net.backward(loss.grad_logits));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
}
BENCHMARK(BM_NetworkTrainStep)->Arg(64)->Arg(256);

void BM_JsmaCraft(benchmark::State& state) {
  const bool allow_repeat = state.range(0) != 0;
  nn::MlpConfig cfg;
  cfg.dims = {491, 64, 32, 2};
  cfg.seed = 5;
  nn::Network net = nn::make_mlp(cfg);
  const math::Matrix x = random_matrix(32, 491, 6);
  attack::JsmaConfig jcfg;
  jcfg.theta = 0.1f;
  jcfg.gamma = 0.025f;
  jcfg.allow_repeat = allow_repeat;  // ablation: repeat-allowed JSMA
  const attack::Jsma jsma(jcfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jsma.craft(net, x));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_JsmaCraft)->Arg(0)->Arg(1);

/// JSMA with the obs/ layer live (enabled tracer + registry in scope):
/// compare against BM_JsmaCraft/0 to quantify instrumentation overhead
/// (DESIGN.md §9 requires < 2%).
void BM_JsmaCraftTraced(benchmark::State& state) {
  nn::MlpConfig cfg;
  cfg.dims = {491, 64, 32, 2};
  cfg.seed = 5;
  nn::Network net = nn::make_mlp(cfg);
  const math::Matrix x = random_matrix(32, 491, 6);
  attack::JsmaConfig jcfg;
  jcfg.theta = 0.1f;
  jcfg.gamma = 0.025f;
  const attack::Jsma jsma(jcfg);
  obs::Tracer tracer(obs::TracerConfig{.ring_capacity = 1 << 16});
  obs::MetricsRegistry registry;
  obs::Scope scope(&tracer, &registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(jsma.craft(net, x));
    tracer.clear();  // keep the ring from saturating mid-run
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 32);
}
BENCHMARK(BM_JsmaCraftTraced);

void BM_ObsSpanEnabled(benchmark::State& state) {
  obs::Tracer tracer(obs::TracerConfig{.ring_capacity = 1 << 16});
  for (auto _ : state) {
    obs::Span s = tracer.span("mev.bench.op");
    s.arg("x", 1.0);
    benchmark::DoNotOptimize(&s);
    if (tracer.event_count() >= (1u << 15)) tracer.clear();
  }
}
BENCHMARK(BM_ObsSpanEnabled);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer tracer(
      obs::TracerConfig{.ring_capacity = 1 << 16, .clock = nullptr,
                        .enabled = false});
  for (auto _ : state) {
    obs::Span s = tracer.span("mev.bench.op");
    s.arg("x", 1.0);
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_ObsSpanDisabled);

// Correlated-span cost on top of BM_ObsSpanEnabled: id allocation + the
// extra TraceEvent fields. Informational (not pinned by check_regression).
void BM_ObsSpanWithContext(benchmark::State& state) {
  obs::Tracer tracer(obs::TracerConfig{.ring_capacity = 1 << 16});
  const obs::TraceContext root = tracer.make_context();
  for (auto _ : state) {
    obs::Span s = tracer.span("mev.bench.op", root);
    benchmark::DoNotOptimize(&s);
    if (tracer.event_count() >= (1u << 15)) tracer.clear();
  }
}
BENCHMARK(BM_ObsSpanWithContext);

// One completed request offered to the flight recorder (the per-response
// cost the HTTP frontend pays, slow-bank min-scan included).
void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder recorder(
      obs::FlightRecorderConfig{.slow_slots = 16, .error_slots = 32});
  obs::FlightRecord record;
  record.trace_id = 1;
  record.root_span_id = 2;
  record.num_spans = 7;
  std::uint64_t n = 0;
  for (auto _ : state) {
    record.start_us = n;
    record.duration_us = 1 + (n & 0x3ff);
    ++n;
    recorder.record(record);
    benchmark::DoNotOptimize(&recorder);
  }
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter counter = registry.counter("mev.bench.counter");
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram histogram = registry.histogram("mev.bench.hist");
  std::uint64_t v = 0;
  for (auto _ : state) {
    histogram.record(v++ & 0xffff);
    benchmark::DoNotOptimize(histogram);
  }
}
BENCHMARK(BM_ObsHistogramRecord);

// One add into the sliding-window counter with an advancing timestamp —
// the per-event cost of every windowed rate on /metrics and /sloz. The
// advancing clock exercises the occasional bucket rotation, not just the
// fast already-claimed path.
void BM_WindowRecord(benchmark::State& state) {
  obs::SlidingCounter counter(obs::WindowConfig{5'000'000, 60});
  std::uint64_t now_us = 0;
  for (auto _ : state) {
    counter.add(now_us);
    now_us += 100;  // 10 kHz event rate: a rotation every 50k adds
    benchmark::DoNotOptimize(&counter);
  }
}
BENCHMARK(BM_WindowRecord);

// One resolved request recorded against both SLO objectives (two sliding
// counters each for availability and latency) — the per-request cost the
// scoring service pays on the resolve path.
void BM_SloUpdate(benchmark::State& state) {
  obs::SloTracker tracker;
  std::uint64_t now_us = 0;
  for (auto _ : state) {
    tracker.record(now_us, true, 1'000 + (now_us & 0x3ff));
    now_us += 100;
    benchmark::DoNotOptimize(&tracker);
  }
}
BENCHMARK(BM_SloUpdate);

void BM_CountTransform(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  math::Rng rng(7);
  math::Matrix counts(rows, 491);
  for (std::size_t i = 0; i < counts.size(); ++i)
    counts.data()[i] = static_cast<float>(rng.poisson(2.0));
  features::CountTransform t;
  t.fit(counts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.apply(counts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows);
}
BENCHMARK(BM_CountTransform)->Arg(256)->Arg(1024);

void BM_PcaFit(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const math::Matrix x = random_matrix(512, 491, 8);
  for (auto _ : state) {
    math::Pca pca;
    pca.fit(x, k);
    benchmark::DoNotOptimize(pca.components());
  }
}
BENCHMARK(BM_PcaFit)->Arg(8)->Arg(19);

void BM_SyntheticGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const data::GenerativeModel gen(data::ApiVocab::instance(),
                                  data::GenerativeConfig{});
  math::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.generate_dataset(n / 2, n / 2, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SyntheticGeneration)->Arg(128)->Arg(512);

void BM_LogRoundTrip(benchmark::State& state) {
  const data::GenerativeModel gen(data::ApiVocab::instance(),
                                  data::GenerativeConfig{});
  math::Rng rng(10);
  const data::ApiLog log = gen.generate_log(1, "bench.exe", rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::log_from_string(data::log_to_string(log)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(log.calls.size()));
}
BENCHMARK(BM_LogRoundTrip);

/// Console reporter that additionally records real ns/op per benchmark and
/// dumps them as BENCH_micro.json for scripted consumption.
class JsonDumpReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations) * 1e9
              : 0.0;
      results_.emplace_back(run.benchmark_name(), ns_per_op);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  void write_json(const std::string& path) const {
    std::ofstream out(path);
    out << "{\n";
    for (const auto& [name, ns_per_op] : results_)
      out << "  \"" << name << "\": " << ns_per_op << ",\n";
    write_meta_json(out);  // last entry: every result line ends with ','
    out << "\n}\n";
  }

 private:
  std::vector<std::pair<std::string, double>> results_;  // name -> ns/op
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonDumpReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  reporter.write_json("BENCH_micro.json");
  return 0;
}
