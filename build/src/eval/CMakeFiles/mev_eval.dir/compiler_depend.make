# Empty compiler generated dependencies file for mev_eval.
# This may be replaced when dependencies are built.
