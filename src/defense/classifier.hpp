// A uniform "defended classifier" interface so the Table VI evaluation can
// score every defense the same way: features in, class out.
//
// Detection-style defenses (feature squeezing) map "flagged as adversarial"
// to the malware class: an input rejected by the detector is blocked, which
// operationally equals a malware verdict.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "nn/network.hpp"
#include "nn/session.hpp"

namespace mev::defense {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Class per row (0 clean, 1 malware).
  virtual std::vector<int> classify(const math::Matrix& features) = 0;

  /// P(malware) per row, when the defense exposes a score.
  virtual std::vector<double> malware_confidence(const math::Matrix& features);

  virtual std::string name() const = 0;
};

/// Wraps a plain network (no defense, adversarially trained, distilled...).
/// Owns its inference session, so several classifiers may share one
/// network; a single classifier instance is not safe to call concurrently.
class NetworkClassifier final : public Classifier {
 public:
  /// Takes shared ownership so classifiers can outlive their builders.
  explicit NetworkClassifier(std::shared_ptr<nn::Network> net,
                             std::string name = "network");

  std::vector<int> classify(const math::Matrix& features) override;
  std::vector<double> malware_confidence(const math::Matrix& features) override;
  std::string name() const override { return name_; }

  nn::Network& network() noexcept { return *net_; }

 private:
  std::shared_ptr<nn::Network> net_;
  std::unique_ptr<nn::InferenceSession> session_;
  std::string name_;
};

}  // namespace mev::defense
