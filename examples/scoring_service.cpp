// Scoring-service demo: the detector deployed as an in-process service.
// Several producer threads submit API logs and raw count batches while a
// defense retrain (defensive distillation) is hot-swapped in mid-run with
// zero downtime; the run ends with the service's stats summary.
//
//   ./scoring_service [tiny|fast|full] [--admin-port N] [--http-port N]
//                     [--hold-ms N] [--chaos PROFILE] [--overload]
//
//   --admin-port N  start the embedded HTTP admin plane on port N (0 =
//                   kernel-assigned; the bound port is printed) serving
//                   /metrics /varz /healthz /readyz /tracez
//   --http-port N   start the scoring HTTP frontend on port N (0 =
//                   kernel-assigned; the bound port is printed) serving
//                   POST /v1/score with two demo API keys: "demo"
//                   (effectively unlimited) and "throttled" (1 row/s,
//                   burst 4 — for exercising 429s)
//   --hold-ms N     keep the service (and admin endpoints) up for N ms
//                   after the traffic finishes, so an external scraper
//                   can observe the live state before shutdown
//   --chaos P       inject model faults for the first half of the run
//                   (P = throwing|garbled|slow|stalling|chaos), then
//                   clear them — the stats summary shows the contained
//                   damage: failed batches, typed rejections, worker
//                   stalls, and zero lost requests
//   --overload      enable the adaptive load shedder (brownout posture
//                   shows up in the stats and flips /readyz to 503)
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "defense/distillation.hpp"
#include "net/frontend.hpp"
#include "serve/scoring_service.hpp"

using namespace mev;

namespace {

bool find_profile(const std::string& name, serve::ModelFaultProfile* out) {
  for (const auto& profile : serve::ModelFaultProfile::builtin_profiles()) {
    if (profile.name == name) {
      *out = profile;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scale = "tiny";
  bool admin_enabled = false;
  int admin_port = 0;
  bool http_enabled = false;
  int http_port = 0;
  long hold_ms = 0;
  bool overload = false;
  bool chaos = false;
  serve::ModelFaultProfile fault;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--admin-port" && i + 1 < argc) {
      admin_enabled = true;
      admin_port = std::atoi(argv[++i]);
    } else if (arg == "--http-port" && i + 1 < argc) {
      http_enabled = true;
      http_port = std::atoi(argv[++i]);
    } else if (arg == "--hold-ms" && i + 1 < argc) {
      hold_ms = std::atol(argv[++i]);
    } else if (arg == "--chaos" && i + 1 < argc) {
      const std::string name = argv[++i];
      if (!find_profile(name, &fault)) {
        std::cerr << "unknown chaos profile '" << name << "'; built-ins:";
        for (const auto& p : serve::ModelFaultProfile::builtin_profiles())
          std::cerr << " " << p.name;
        std::cerr << "\n";
        return 2;
      }
      chaos = true;
    } else if (arg == "--overload") {
      overload = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "usage: " << argv[0]
                << " [tiny|fast|full] [--admin-port N] [--http-port N]"
                   " [--hold-ms N] [--chaos PROFILE] [--overload]\n";
      return 2;
    } else {
      scale = arg;
    }
  }
  const auto config = core::ExperimentConfig::from_name(scale);
  const auto& vocab = data::ApiVocab::instance();
  const data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);

  std::cout << "[1/4] training the target detector...\n";
  const data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);

  std::cout << "[2/4] starting the scoring service (4 workers, "
               "max_batch=64, window=2ms)...\n";
  serve::ServiceConfig service_cfg;
  service_cfg.workers = 4;
  service_cfg.max_batch_rows = 64;
  service_cfg.max_queue_delay_ms = 2;
  if (admin_enabled) {
    service_cfg.admin.enabled = true;
    service_cfg.admin.port = static_cast<std::uint16_t>(admin_port);
  }
  if (overload) {
    service_cfg.overload.enabled = true;
    service_cfg.overload.target_delay_ms = 5;
  }
  if (chaos) {
    // The watchdog's monitor thread makes a stalling profile visible as
    // worker_stalls/worker_recoveries in the final summary.
    service_cfg.watchdog.enabled = true;
    service_cfg.watchdog.stall_ms = 50;
    service_cfg.watchdog.poll_ms = 10;
  }
  serve::ScoringService service(trained.detector->pipeline(),
                                trained.detector->network_ptr(), service_cfg);
  if (admin_enabled) {
    // std::endl, not "\n": a scraper watching redirected stdout needs the
    // port line flushed before the demo's traffic phase starts.
    if (service.admin_server() != nullptr && service.admin_server()->running())
      std::cout << "      admin server listening on 127.0.0.1:"
                << service.admin_server()->port() << std::endl;
    else
      std::cout << "      admin server unavailable (obs disabled or bind "
                   "failed)"
                << std::endl;
  }
  std::unique_ptr<net::ScoringFrontend> frontend;
  if (http_enabled) {
    net::FrontendConfig http_cfg;
    http_cfg.port = static_cast<std::uint16_t>(http_port);
    // "demo" is effectively unlimited; "throttled" exists so an external
    // driver (the CI smoke job) can provoke deterministic 429s.
    http_cfg.api_keys = {
        net::ApiKey{"demo", "demo", 1e6, 2e6},
        net::ApiKey{"throttled", "throttled", 1.0, 4.0},
    };
    // Register the per-client stats endpoint on the service's admin
    // plane (null when the admin is off — the frontend skips it).
    http_cfg.admin = service.admin_server();
    frontend = std::make_unique<net::ScoringFrontend>(service, http_cfg);
    // Surface the frontend's flight recorder on the admin plane's
    // /requestz (the frontend outlives the scrape window below).
    if (service.admin_server() != nullptr)
      service.admin_server()->set_flight_recorder(
          &frontend->flight_recorder());
    // std::endl for the same reason as the admin line: scrapers need the
    // port (and the expected row width) before traffic starts.
    if (frontend->start())
      std::cout << "      scoring endpoint listening on 127.0.0.1:"
                << frontend->port() << " (cols=" << vocab.size() << ")"
                << std::endl;
    else
      std::cout << "      scoring endpoint unavailable (bind failed)"
                << std::endl;
  }
  std::shared_ptr<serve::ModelFaultInjector> injector;
  if (chaos) {
    injector = service.set_model_fault(fault);
    std::cout << "      chaos: injecting '" << fault.name
              << "' model faults for the first half of the traffic\n";
  }

  // Producers: half submit individual sandbox logs, half submit raw count
  // batches — both arrive through the same submit() front door.
  std::cout << "[3/4] submitting traffic from 4 producer threads while "
               "hot-swapping a distilled model...\n";
  std::atomic<std::size_t> malware_verdicts{0};
  std::atomic<std::size_t> scored_rows{0};
  std::atomic<std::size_t> rejected_requests{0};
  std::vector<std::thread> producers;
  const std::size_t per_producer = config.dataset_spec().test_malware;
  for (std::size_t p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      math::Rng producer_rng(config.seed + 100 + p);
      const auto& extractor = trained.detector->pipeline().extractor();
      std::vector<serve::ScoreFuture> futures;
      for (std::size_t i = 0; i < per_producer; ++i) {
        const int label =
            (i % 2 == 0) ? data::kMalwareLabel : data::kCleanLabel;
        const data::ApiLog log = generator.generate_log(
            label, "sample.exe", producer_rng);
        math::Matrix counts(1, vocab.size());
        counts.set_row(0, extractor.extract(log));
        futures.push_back(service.submit(std::move(counts)));
      }
      for (auto& future : futures) {
        const serve::ScoreResult result = future.get();
        if (!result.ok()) {
          ++rejected_requests;  // typed rejection — never a lost future
          continue;
        }
        scored_rows += result.verdicts.size();
        for (const auto& verdict : result.verdicts)
          if (verdict.is_malware()) ++malware_verdicts;
      }
    });
  }

  // Meanwhile: retrain with defensive distillation and roll it out with
  // zero downtime. In-flight batches finish on the old model; every batch
  // formed after swap_model() uses the student.
  defense::DistillationConfig distill_cfg;
  distill_cfg.teacher_architecture = config.target_architecture();
  distill_cfg.student_architecture = config.target_architecture();
  distill_cfg.teacher_training = config.target_training();
  distill_cfg.student_training = config.target_training();
  const nn::LabeledData train_data{trained.train_features,
                                   bundle.train.labels};
  const auto distilled =
      defense::defensive_distillation(train_data, distill_cfg);
  if (chaos) {
    // Clear the faults before the rollout: the second half of the run
    // shows the same pool scoring clean on the new model.
    service.clear_model_fault();
    const auto counts = injector->injected();
    std::cout << "      chaos cleared after " << counts.batches
              << " batches (" << counts.throws << " throws, "
              << counts.garbled << " garbled, " << counts.slowed
              << " slowed, " << counts.stalled << " stalls)\n";
  }
  const std::uint64_t version = service.swap_model(
      trained.detector->pipeline(), distilled.student);
  std::cout << "      swapped in distilled model (snapshot v" << version
            << ") while producers were mid-flight\n";

  for (auto& producer : producers) producer.join();
  if (hold_ms > 0) {
    // Scrape window: the admin endpoints answer with the service live.
    std::this_thread::sleep_for(std::chrono::milliseconds(hold_ms));
  }
  if (frontend != nullptr) {
    // Detach the recorder first: the frontend (declared after the
    // service) is destroyed before the admin server that serves it.
    if (service.admin_server() != nullptr)
      service.admin_server()->set_flight_recorder(nullptr);
    frontend->stop();  // before the service drains
  }
  service.shutdown();  // drain

  std::cout << "[4/4] done: scored " << scored_rows.load() << " rows, "
            << malware_verdicts.load() << " malware verdicts";
  if (rejected_requests.load() > 0)
    std::cout << ", " << rejected_requests.load()
              << " typed rejections (none lost)";
  std::cout << "\n\n";
  std::cout << "service stats:\n" << service.stats().to_string();
  return 0;
}
