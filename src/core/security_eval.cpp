#include "core/security_eval.hpp"

#include <exception>
#include <stdexcept>

#include "attack/transfer.hpp"
#include "data/dataset.hpp"
#include "math/linalg.hpp"
#include "nn/session.hpp"

namespace mev::core {

namespace {

std::vector<double> linspace_grid(double start, double step, double stop) {
  std::vector<double> grid;
  for (double v = start; v <= stop + 1e-9; v += step) grid.push_back(v);
  return grid;
}

}  // namespace

SweepConfig SweepConfig::fig3a() {
  SweepConfig c;
  c.parameter = SweepParameter::kGamma;
  c.grid = linspace_grid(0.0, 0.005, 0.030);
  c.fixed_theta = 0.1;
  return c;
}

SweepConfig SweepConfig::fig3b() {
  SweepConfig c;
  c.parameter = SweepParameter::kTheta;
  c.grid = linspace_grid(0.0, 0.0125, 0.15);
  c.fixed_gamma = 0.025;
  return c;
}

SweepConfig SweepConfig::fig4a() { return fig3a(); }

SweepConfig SweepConfig::fig4b() {
  SweepConfig c = fig3b();
  c.fixed_gamma = 0.005;  // "adding 2 features"
  return c;
}

FeatureSpaceMap FeatureSpaceMap::identity() {
  FeatureSpaceMap map;
  map.to_craft_space = [](const math::Matrix& m) { return m; };
  map.to_target_space = [](const math::Matrix& m) { return m; };
  return map;
}

SweepResult run_security_sweep(const nn::Network& craft_model,
                               const nn::Network& target_model,
                               const math::Matrix& malware_features,
                               const SweepConfig& sweep,
                               const FeatureSpaceMap& map,
                               const math::Matrix* clean_features) {
  if (sweep.grid.empty())
    throw std::invalid_argument("run_security_sweep: empty grid");
  if (map.to_craft_space == nullptr || map.to_target_space == nullptr)
    throw std::invalid_argument("run_security_sweep: null feature-space map");

  SweepResult result;
  result.target_curve.name = "target model";
  result.craft_curve.name = "craft model";
  const char* parameter_name =
      sweep.parameter == SweepParameter::kGamma ? "gamma" : "theta";
  result.target_curve.parameter = parameter_name;
  result.craft_curve.parameter = parameter_name;

  const math::Matrix craft_inputs = map.to_craft_space(malware_features);

  // Grid points are independent: pre-size the curves and fill by index so
  // the loop can run in parallel (dynamic schedule — per-point cost grows
  // with the swept attack strength).
  const std::size_t grid_size = sweep.grid.size();
  result.target_curve.points.resize(grid_size);
  result.craft_curve.points.resize(grid_size);
  if (clean_features != nullptr) result.distances.resize(grid_size);

  // One error slot per grid point — written without synchronization since
  // each parallel iteration touches only its own index.
  std::vector<std::exception_ptr> errors(grid_size);
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 1) if (grid_size > 1)
#endif
  for (std::size_t gi = 0; gi < grid_size; ++gi) {
    try {
      const double value = sweep.grid[gi];
      attack::JsmaConfig jsma_cfg;
      jsma_cfg.target_class = data::kCleanLabel;
      // Security curves measure detection at a FIXED attack strength, so
      // the full budget is always spent; stopping at the craft model's
      // boundary would understate transferability (the crafted point must
      // sit past the substitute's boundary to cross the target's).
      jsma_cfg.early_stop = false;
      if (sweep.parameter == SweepParameter::kGamma) {
        jsma_cfg.gamma = static_cast<float>(value);
        jsma_cfg.theta = static_cast<float>(sweep.fixed_theta);
      } else {
        jsma_cfg.theta = static_cast<float>(value);
        jsma_cfg.gamma = static_cast<float>(sweep.fixed_gamma);
      }
      const attack::Jsma jsma(jsma_cfg);
      const attack::AttackResult crafted =
          jsma.craft(craft_model, craft_inputs);

      // Deploy in target space.
      const math::Matrix deployed = map.to_target_space(crafted.adversarial);
      nn::InferenceSession target_session(target_model, deployed.rows());
      const auto target_preds = target_session.predict(deployed);
      std::size_t detected = 0;
      for (int p : target_preds)
        if (p == data::kMalwareLabel) ++detected;

      eval::CurvePoint target_point;
      target_point.attack_strength = value;
      target_point.detection_rate =
          target_preds.empty()
              ? 0.0
              : static_cast<double>(detected) /
                    static_cast<double>(target_preds.size());
      // Perturbation statistics are reported in TARGET feature space so the
      // white-box and grey-box numbers are comparable.
      double l2_sum = 0.0;
      for (std::size_t i = 0; i < deployed.rows(); ++i)
        l2_sum += math::l2_distance(malware_features.row(i), deployed.row(i));
      target_point.mean_l2 =
          deployed.rows() == 0
              ? 0.0
              : l2_sum / static_cast<double>(deployed.rows());
      target_point.mean_features = crafted.mean_features_changed();
      result.target_curve.points[gi] = target_point;

      eval::CurvePoint craft_point = target_point;
      craft_point.detection_rate = 1.0 - crafted.success_rate();
      craft_point.mean_l2 = crafted.mean_l2();
      result.craft_curve.points[gi] = craft_point;

      if (clean_features != nullptr) {
        eval::DistanceCurvePoint dp;
        dp.attack_strength = value;
        dp.distances = eval::l2_distance_analysis(malware_features, deployed,
                                                  *clean_features);
        result.distances[gi] = dp;
      }
    } catch (...) {
      errors[gi] = std::current_exception();
    }
  }

  // Per-point failure isolation: record what failed, keep what succeeded.
  std::size_t failed = 0;
  for (std::size_t gi = 0; gi < grid_size; ++gi) {
    if (errors[gi] == nullptr) continue;
    if (!sweep.isolate_failures) std::rethrow_exception(errors[gi]);
    ++failed;
    SweepResult::FailedPoint point;
    point.index = gi;
    point.attack_strength = sweep.grid[gi];
    try {
      std::rethrow_exception(errors[gi]);
    } catch (const std::exception& e) {
      point.message = e.what();
    } catch (...) {
      point.message = "unknown error";
    }
    result.failed_points.push_back(std::move(point));
  }
  if (failed == grid_size)  // nothing usable came back; surface the cause
    std::rethrow_exception(errors.front());
  return result;
}

}  // namespace mev::core
