#include "eval/report.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mev::eval {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t("My Title");
  t.header({"col1", "column2"});
  t.row({"a", "b"});
  t.row({"longer", "x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("My Title"), std::string::npos);
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, SeparatorRenders) {
  Table t("Wide title");
  t.row({"alpha"});
  t.separator();
  t.row({"beta"});
  const std::string out = t.render();
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(0.12345, 3), "0.123");
  EXPECT_EQ(Table::fmt(2.0, 1), "2.0");
}

TEST(Table, FmtOrNan) {
  EXPECT_EQ(Table::fmt_or_nan(std::nan("")), "nan");
  EXPECT_EQ(Table::fmt_or_nan(0.5), "0.500");
}

SecurityCurve curve(const std::string& name) {
  SecurityCurve c;
  c.name = name;
  c.parameter = "gamma";
  for (int i = 0; i < 4; ++i) {
    CurvePoint p;
    p.attack_strength = 0.01 * i;
    p.detection_rate = 1.0 - 0.2 * i;
    p.mean_l2 = 0.1 * i;
    p.mean_features = 2.0 * i;
    c.points.push_back(p);
  }
  return c;
}

TEST(Curves, RenderSingle) {
  const std::string out = render_curve(curve("target"));
  EXPECT_NE(out.find("gamma"), std::string::npos);
  EXPECT_NE(out.find("target"), std::string::npos);
  EXPECT_NE(out.find("0.800"), std::string::npos);
}

TEST(Curves, RenderMultipleNamesAllSeries) {
  const std::string out = render_curves({curve("alpha"), curve("beta")});
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // ASCII plot legend letters
  EXPECT_NE(out.find("A = alpha"), std::string::npos);
  EXPECT_NE(out.find("B = beta"), std::string::npos);
}

TEST(Curves, EmptyInput) {
  EXPECT_EQ(render_curves({}), "(no curves)\n");
}

}  // namespace
}  // namespace mev::eval
