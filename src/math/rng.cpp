#include "math/rng.hpp"

#include <cmath>

namespace mev::math {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zero outputs from any seed, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded draw; bias is negligible for the
  // n << 2^64 used here, but reject to be exact.
  if (n == 0) return 0;
  const std::uint64_t threshold = (~n + 1) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint32_t Rng::poisson(double lambda) noexcept {
  if (lambda <= 0.0) return 0;
  if (lambda > 30.0) {
    // Normal approximation with continuity correction.
    const double x = normal(lambda, std::sqrt(lambda));
    return x < 0.5 ? 0 : static_cast<std::uint32_t>(x + 0.5);
  }
  const double limit = std::exp(-lambda);
  double product = uniform();
  std::uint32_t k = 0;
  while (product > limit) {
    product *= uniform();
    ++k;
  }
  return k;
}

double Rng::gamma(double shape, double scale) noexcept {
  if (shape <= 0.0 || scale <= 0.0) return 0.0;
  if (shape < 1.0) {
    // Boost shape above 1 and correct with a power of a uniform draw.
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

double Rng::exponential(double rate) noexcept {
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / rate;
}

std::size_t Rng::categorical(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights)
    if (w > 0.0) total += w;
  if (total <= 0.0) return 0;
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace mev::math
