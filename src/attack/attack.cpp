#include "attack/attack.hpp"

namespace mev::attack {

double AttackResult::success_rate() const noexcept {
  if (evaded.empty()) return 0.0;
  std::size_t n = 0;
  for (bool e : evaded)
    if (e) ++n;
  return static_cast<double>(n) / static_cast<double>(evaded.size());
}

double AttackResult::mean_features_changed() const noexcept {
  if (features_changed.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t f : features_changed) s += static_cast<double>(f);
  return s / static_cast<double>(features_changed.size());
}

double AttackResult::mean_l2() const noexcept {
  if (l2_perturbation.empty()) return 0.0;
  double s = 0.0;
  for (double d : l2_perturbation) s += d;
  return s / static_cast<double>(l2_perturbation.size());
}

}  // namespace mev::attack
