#include "defense/adversarial_training.hpp"

#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "data/dataset.hpp"

namespace mev::defense {

namespace {

/// Byte-exact row hash for duplicate removal.
struct RowKey {
  std::string bytes;
  bool operator==(const RowKey&) const = default;
};

struct RowKeyHash {
  std::size_t operator()(const RowKey& k) const noexcept {
    return std::hash<std::string>{}(k.bytes);
  }
};

RowKey key_of(std::span<const float> row) {
  RowKey k;
  k.bytes.resize(row.size() * sizeof(float));
  std::memcpy(k.bytes.data(), row.data(), k.bytes.size());
  return k;
}

}  // namespace

AdvTrainingSet build_adversarial_training_set(
    const math::Matrix& train_features, const std::vector<int>& train_labels,
    const math::Matrix& adversarial_examples,
    const math::Matrix* extra_clean) {
  if (train_labels.size() != train_features.rows())
    throw std::invalid_argument(
        "build_adversarial_training_set: label count mismatch");
  if (adversarial_examples.rows() > 0 &&
      adversarial_examples.cols() != train_features.cols())
    throw std::invalid_argument(
        "build_adversarial_training_set: feature dim mismatch");

  AdvTrainingSet out;
  out.data.x = train_features;
  out.data.labels = train_labels;
  for (int l : train_labels) {
    if (l == data::kCleanLabel) ++out.stats.clean;
    else ++out.stats.malware;
  }

  // Deduplicate the adversarial block against itself and the original set.
  std::unordered_set<RowKey, RowKeyHash> seen;
  seen.reserve(train_features.rows() + adversarial_examples.rows());
  for (std::size_t r = 0; r < train_features.rows(); ++r)
    seen.insert(key_of(train_features.row(r)));
  for (std::size_t r = 0; r < adversarial_examples.rows(); ++r) {
    const auto row = adversarial_examples.row(r);
    if (!seen.insert(key_of(row)).second) {
      ++out.stats.duplicates_removed;
      continue;
    }
    out.data.x.append_row(row);
    out.data.labels.push_back(data::kMalwareLabel);
    ++out.stats.adversarial;
  }

  // Re-balance with extra clean samples (dedup against everything added).
  if (extra_clean != nullptr && extra_clean->rows() > 0) {
    if (extra_clean->cols() != train_features.cols())
      throw std::invalid_argument(
          "build_adversarial_training_set: extra_clean dim mismatch");
    const std::size_t positive = out.stats.malware + out.stats.adversarial;
    for (std::size_t r = 0;
         r < extra_clean->rows() && out.stats.clean < positive; ++r) {
      const auto row = extra_clean->row(r);
      if (!seen.insert(key_of(row)).second) {
        ++out.stats.duplicates_removed;
        continue;
      }
      out.data.x.append_row(row);
      out.data.labels.push_back(data::kCleanLabel);
      ++out.stats.clean;
    }
  }
  return out;
}

std::shared_ptr<nn::Network> adversarial_training(
    const AdvTrainingSet& training_set,
    const AdversarialTrainingConfig& config,
    const nn::LabeledData* validation) {
  auto net = std::make_shared<nn::Network>(nn::make_mlp(config.architecture));
  nn::train(*net, training_set.data, config.training, validation);
  return net;
}

}  // namespace mev::defense
