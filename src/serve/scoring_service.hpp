// ScoringService: the in-process serving layer in front of
// core::MalwareDetector — the deployment surface the paper's black-box
// threat model assumes (the detector as a queried cloud service).
//
// Ingress is sharded and lock-free (PR 6). A submission:
//
//   submit(counts) ──▶ admission control (one atomic row counter) ──▶
//       completion-arena slot (future mode) or caller callback ──▶
//       sharded bounded MPSC ring (shard = submitter-hash, spill to a
//       neighbor when full) ──▶ EventCount wakeup (no mutex when workers
//       are busy) ──▶ per-worker MicroBatcher assembles a batch ──▶ one
//       pre-warmed nn::InferenceSession per worker scores it ──▶ the
//       slot's atomic flips / the callback runs
//
// There is no global queue mutex, no condition-variable broadcast per
// submission, and no per-request heap allocation on the submit path.
// Workers own their shard; an idle worker steals from busy shards so one
// hot submitter cannot strand work behind a parked worker.
//
// Guarantees (unchanged from the single-queue design):
//  * Bounded memory/latency: a submission is either admitted (queued rows
//    never exceed max_queue_rows) or rejected immediately with an explicit
//    reason — the queue never grows without bound.
//  * Exactly-once: every admitted request is resolved exactly once —
//    scored, deadline-rejected, or shutdown-rejected; never dropped,
//    never double-scored (each request lives in exactly one place: a
//    shard ring, one worker's batcher, or the batch being scored).
//  * Parity: a batch is scored through the same
//    MalwareDetector::scan_counts code path as sequential callers, and
//    per-row results are independent of batch composition, so service
//    verdicts are bit-identical to sequential scanning.
//  * Hot swap: swap_model() atomically publishes a new (pipeline, network)
//    snapshot (RCU-style: workers pin the snapshot per batch, the writer
//    never blocks scoring). Batches formed before the swap finish on the
//    snapshot they pinned; every request submitted after swap_model()
//    returns is scored on the new version or later. Zero downtime, no
//    lost or re-scored requests.
//  * Failure containment: a throwing or garbling model fails only its own
//    batch (kInternalError) and never kills the worker thread; a throwing
//    callback is swallowed and counted. Deadlines are enforced at
//    admission, at batch assembly, and again post-dequeue, so expired
//    work never consumes inference. Under sustained overload a
//    CoDel-style controller (config.overload) sheds a deterministic
//    admission fraction (kOverloaded) and shrinks the batch window until
//    queue delay recovers; a wedged worker is detected by the watchdog
//    and its shards are served by siblings. See DESIGN.md §8 for the
//    state machine and invariants.
//
// Lifecycle: construct → start() → submit traffic → shutdown(). With
// ServiceConfig::autostart (the default) the constructor calls start()
// itself. A submission before start() fails fast with kShuttingDown —
// it is never silently queued into a service nobody is pumping.
//
// All flush timing flows through an injectable runtime::Clock; with
// workers = 0 the service runs in manual-pump mode (no threads), which
// together with runtime::FakeClock makes every policy deterministic in
// tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "features/pipeline.hpp"
#include "nn/network.hpp"
#include "nn/session.hpp"
#include "obs/admin_server.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "runtime/clock.hpp"
#include "runtime/event_count.hpp"
#include "runtime/mpsc_queue.hpp"
#include "serve/chaos.hpp"
#include "serve/completion.hpp"
#include "serve/drift.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/overload.hpp"
#include "serve/request.hpp"
#include "serve/stats.hpp"
#include "serve/watchdog.hpp"

namespace mev::serve {

struct ServiceConfig {
  /// Worker threads. 0 = manual-pump mode: no threads are started and the
  /// caller drives scoring with pump() — the deterministic test mode.
  std::size_t workers = 4;
  /// Submission shards (independent MPSC rings). 0 = one per worker
  /// (minimum 1). Submitters hash to a shard by thread id; worker i owns
  /// the shards with index ≡ i (mod workers) and steals from the rest
  /// when its own are empty.
  std::size_t shards = 0;
  /// Capacity of each shard ring in *requests* (rounded up to a power of
  /// two). A full ring spills to the next shard; when every ring is full
  /// the submission is rejected kQueueFull.
  std::size_t shard_capacity = 1024;
  /// Micro-batch flush thresholds (see BatcherConfig).
  std::size_t max_batch_rows = 64;
  std::uint64_t max_queue_delay_ms = 2;
  /// Admission bound: a submission is rejected with kQueueFull when the
  /// rows already queued (rings + batchers) plus its own would exceed
  /// this.
  std::size_t max_queue_rows = 4096;
  /// Pre-warm each worker's session for this batch size (0 = use
  /// max_batch_rows), so the steady state is allocation-free from the
  /// first batch.
  std::size_t session_max_batch = 0;
  /// Start the service from the constructor (the common case). With
  /// autostart = false the service is built idle: submissions fail fast
  /// with kShuttingDown until start() is called.
  bool autostart = true;
  /// Timing source; nullptr = runtime::SystemClock::instance(). Must
  /// outlive the service.
  runtime::Clock* clock = nullptr;
  /// Observability sinks; nullptr = the ambient
  /// obs::current_tracer()/current_registry() at construction time
  /// (resolved once, on the constructing thread — worker threads inherit
  /// them). Every ServiceStats counter/histogram is mirrored into the
  /// registry under mev.serve.* (including a per-shard
  /// mev.serve.shard<i>.queue_rows depth gauge), and each scored batch
  /// emits mev.serve.assemble + mev.serve.batch spans. Must outlive the
  /// service.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Structured log destination; nullptr = obs::default_logger(). Must
  /// outlive the service.
  obs::Logger* logger = nullptr;
  /// Embedded HTTP admin plane (/metrics /varz /healthz /readyz /tracez).
  /// Disabled by default; with enabled=true the service starts the server
  /// on construction, wires its /readyz to readiness(), and keeps it
  /// serving through shutdown() so a drain is observable as 503 — the
  /// server stops only when the service is destroyed. The config's sink
  /// pointers default to the service's own resolved sinks.
  obs::AdminServerConfig admin;
  /// Adaptive load shedding (serve/overload.hpp). Disabled by default:
  /// enabled, sustained queue delay above target flips the service into
  /// brownout — partial batches flush immediately and a deterministic
  /// fraction of admissions is rejected kOverloaded — and /readyz reports
  /// 503 until the controller recovers.
  OverloadConfig overload;
  /// Worker stall detection (serve/watchdog.hpp). The watchdog itself is
  /// always wired (worker heartbeats cost one relaxed atomic add); this
  /// config's `enabled` controls only the monitor *thread* — tests drive
  /// watchdog()->poll() by hand instead. A null watchdog clock inherits
  /// the service clock.
  WatchdogConfig watchdog;
  /// SLO objectives + burn-rate windows (obs/slo.hpp). Every resolved
  /// request feeds the tracker; /sloz and the mev.slo.* gauges read it.
  /// A fast burn above the alert threshold only ANNOTATES /readyz
  /// ("advisory"), never flips it — the overload controller owns 503.
  obs::SloConfig slo;
  /// Score-distribution drift (serve/drift.hpp): verdict confidences vs
  /// a reference window frozen at startup and re-captured on
  /// swap_model().
  DriftConfig drift;
};

class ScoringService {
 public:
  /// Serves `network` behind `pipeline`; dimensions are validated like
  /// core::MalwareDetector's constructor. Calls start() unless
  /// config.autostart is false.
  ScoringService(features::FeaturePipeline pipeline,
                 std::shared_ptr<nn::Network> network,
                 ServiceConfig config = {});
  /// Destructor drains pending work (shutdown(true)) if still running.
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Starts accepting traffic (spawns the worker pool when workers > 0).
  /// Returns true on the idle→running transition, false if the service
  /// was already started (or already shut down). Idempotent.
  bool start();

  /// Submits raw count rows (cols must equal the vocabulary size).
  /// Returns a slot-backed future that resolves with verdicts in row
  /// order, or with a rejection. Admission (queue_full / shutting_down)
  /// is decided synchronously; those futures are already ready on return.
  ScoreFuture submit(math::Matrix counts, SubmitOptions options = {});

  /// Zero-future submission: `callback(ctx, result)` is invoked exactly
  /// once — on a worker thread when scored, on the calling thread when
  /// rejected synchronously, or on the shutdown thread when swept. The
  /// callback must be fast and must not re-enter the service. No
  /// allocation on this path.
  void submit_with_callback(math::Matrix counts, SubmitOptions options,
                            ScoreCallback callback, void* ctx);

  /// Convenience synchronous call: submit + wait.
  ScoreResult score(math::Matrix counts, SubmitOptions options = {});

  /// Atomically publishes a new model snapshot. The new pipeline must
  /// accept the same count dimension as the current one (queued requests
  /// stay scorable). Never blocks scoring; in-flight batches finish on
  /// the snapshot they pinned, and every submission entering after this
  /// returns is scored on the new (or a newer) version. Returns the new
  /// version.
  std::uint64_t swap_model(features::FeaturePipeline pipeline,
                           std::shared_ptr<nn::Network> network);

  /// Version of the currently-published snapshot (1 on construction).
  std::uint64_t model_version() const;

  /// Stops the service. With drain, pending requests are scored first
  /// (partial batches flush immediately); without, they are rejected with
  /// kShuttingDown. Subsequent submissions are rejected. Idempotent.
  void shutdown(bool drain = true);

  /// Manual-pump mode only (workers == 0): drains the shard rings into
  /// the pump batcher, expires overdue requests, then forms and scores at
  /// most one batch if a flush is due (or `force`). Returns the number of
  /// rows scored.
  std::size_t pump(bool force = false);

  /// Point-in-time copy of counters and histograms.
  ServiceStats stats() const;

  /// The verdict served on /readyz: ready while running and below the
  /// queue high-water mark (90% of max_queue_rows); not ready (with a
  /// reason) while idle (not yet started), draining, stopped, or
  /// saturated.
  obs::Readiness readiness() const;

  /// The embedded admin server, or nullptr when config.admin.enabled was
  /// false (or the OBS-off build stubbed it out and start() failed).
  obs::AdminServer* admin_server() noexcept { return admin_.get(); }

  /// Installs a chaos-harness fault injector into the scoring path
  /// (pinned per batch like the model snapshot — an RCU swap, never
  /// blocking workers). Batches formed after clear_model_fault() returns
  /// score clean. The returned injector outlives the swap, so callers can
  /// read its injected() counts after clearing.
  std::shared_ptr<ModelFaultInjector> set_model_fault(
      ModelFaultProfile profile);
  void clear_model_fault();

  /// The stall detector. Always present; its monitor thread runs only
  /// when config.watchdog.enabled — tests call watchdog().poll(now)
  /// directly with FakeClock timestamps.
  Watchdog& watchdog() noexcept { return *watchdog_; }
  /// The load-shedding controller (inert unless config.overload.enabled).
  const OverloadController& overload() const noexcept { return overload_; }
  /// The SLO tracker behind /sloz; fed by every resolved request.
  const obs::SloTracker& slo() const noexcept { return slo_; }
  /// The score-drift tracker (reference frozen after
  /// config.drift.reference_min_count verdicts; reset on swap_model()).
  const ScoreDrift& drift() const noexcept { return drift_; }

  const ServiceConfig& config() const noexcept { return config_; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// The resolved timing source (config clock or the system clock); the
  /// HTTP frontend shares it so deadlines agree across layers.
  runtime::Clock& clock() const noexcept { return *clock_; }
  /// Expected column count of every submitted matrix (the feature
  /// vocabulary size) — invariant across model swaps, validated on swap.
  std::size_t count_cols() const noexcept { return count_cols_; }

 private:
  /// Immutable published model: pipeline + network wrapped back into a
  /// detector so workers reuse the exact sequential scan path.
  struct ModelSnapshot {
    ModelSnapshot(features::FeaturePipeline p, std::shared_ptr<nn::Network> n,
                  std::uint64_t v)
        : detector(std::move(p), std::move(n)),
          version(v),
          count_cols(detector.pipeline().extractor().vocab().size()) {}

    core::MalwareDetector detector;
    std::uint64_t version;
    std::size_t count_cols;  // expected submission width (vocab size)
  };

  enum class State : std::uint8_t { kIdle, kRunning, kDraining, kStopped };

  /// One ingress shard: a bounded lock-free ring plus its depth gauge.
  /// Heap-held so shards never move and each gets its own cache lines.
  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity) {}
    runtime::MpscQueue<Request> ring;
    std::atomic<std::uint64_t> rows{0};  // rows currently in the ring
    obs::Gauge depth_gauge;
  };

  /// Per-worker scratch: the owned batcher, the parking signal, the
  /// pinned snapshot, its session, and the batch assembly buffer (all
  /// reused across batches; sessions reallocated only on snapshot
  /// change).
  struct WorkerState {
    explicit WorkerState(BatcherConfig batcher_config)
        : batcher(batcher_config) {}
    MicroBatcher batcher;
    /// Per-worker eventcount: a submission wakes the *owner* of the shard
    /// it landed on, so one submitter's stream keeps coalescing in one
    /// batcher instead of fragmenting across whichever workers woke first
    /// (fragmented batchers each wait their own flush window — measurably
    /// worse tail latency at low load).
    runtime::EventCount signal;
    std::shared_ptr<const ModelSnapshot> pinned;
    std::unique_ptr<nn::InferenceSession> session;
    math::Matrix batch_counts;
  };

  std::shared_ptr<const ModelSnapshot> current_snapshot() const;
  std::shared_ptr<ModelFaultInjector> current_fault() const;
  /// Shared tail of submit()/submit_with_callback(): admission, shard
  /// routing, wakeup. Resolves the request inline when rejected.
  void submit_request(Request request, std::size_t rows,
                      SubmitOptions options);
  /// Resolves one request with `result` through whichever completion
  /// mode it carries (arena slot or callback). A throwing callback is
  /// contained here — counted, never propagated into the worker loop.
  void resolve(Request& request, ScoreResult&& result);
  /// Fails one request with kInternalError (both completion modes get a
  /// typed rejection — futures do not rethrow service-side faults).
  void resolve_internal_error(Request& request);
  /// Bumps the per-stage deadline expiry counters for `n` requests found
  /// expired at `stage` (all also counted under rejected_deadline).
  void count_deadline_stage(DeadlineStage stage, std::size_t n);

  void worker_loop(std::size_t worker_index);
  /// Moves every request out of `shard`'s ring into `worker`'s batcher.
  /// Returns the number of requests moved.
  std::size_t drain_shard(Shard& shard, WorkerState& worker);
  /// Drains the shards owned by `worker_index`; then, if `steal`, one
  /// pass over the remaining shards.
  std::size_t gather(std::size_t worker_index, WorkerState& worker,
                     bool steal);
  bool all_shards_empty() const;
  /// Expires + flushes + scores at most one batch. Returns rows scored.
  std::size_t assemble_and_score(WorkerState& worker, bool force);
  /// Scores one batch and resolves its requests.
  void score_batch(WorkerState& worker, Batch batch);
  /// Rejects requests and bumps the matching counter. `charged` rows are
  /// subtracted from the admission counter (0 when already subtracted).
  void reject_all(std::vector<Request> requests, RejectReason reason,
                  std::size_t charged_rows);
  void join_workers();
  /// Post-join sweep: anything still in a ring or batcher is scored
  /// (drain) or rejected (no drain) on the calling thread. Exactly-once
  /// even for submissions that raced the running→stopping transition.
  void final_sweep(bool drain);

  /// Registry mirrors of the ServiceStats fields (handles, so hot-path
  /// updates are a relaxed atomic op; inert when no registry is wired).
  /// Rejections share one labeled family,
  /// mev.serve.rejected_total{reason=…}, and deadline expiries one
  /// mev.serve.deadline_expired_total{stage=…}.
  struct ObsHandles {
    obs::Counter accepted_requests, accepted_rows;
    obs::Counter rejected_queue_full, rejected_shutting_down,
        rejected_deadline, rejected_overloaded, rejected_internal;
    obs::Counter expired_at_admission, expired_in_queue,
        expired_post_dequeue;
    obs::Counter completed_requests, completed_rows;
    obs::Counter batches, model_swaps, stolen_requests, spilled_submissions;
    obs::Counter callback_errors, worker_stalls, worker_recoveries,
        batch_failures;
    obs::Histogram batch_rows;
    // Windowed: /metrics carries 1m/5m p50/p95/p99 gauges next to the
    // lifetime exposition for the two latency series.
    obs::WindowedHistogram queue_delay_us, e2e_latency_us;
    obs::Gauge queued_rows, overload_state, shed_fraction, stalled_workers;
  };

  /// Lock-free mirrors of the counter half of ServiceStats (the submit
  /// path must not take a stats mutex).
  struct Counters {
    std::atomic<std::uint64_t> accepted_requests{0}, accepted_rows{0};
    std::atomic<std::uint64_t> rejected_queue_full{0},
        rejected_shutting_down{0}, rejected_deadline{0},
        rejected_overloaded{0}, rejected_internal{0};
    std::atomic<std::uint64_t> expired_at_admission{0}, expired_in_queue{0},
        expired_post_dequeue{0};
    std::atomic<std::uint64_t> completed_requests{0}, completed_rows{0};
    std::atomic<std::uint64_t> batches{0}, model_swaps{0};
    std::atomic<std::uint64_t> stolen_requests{0}, spilled_submissions{0};
    std::atomic<std::uint64_t> callback_errors{0}, batch_failures{0};
  };

  ServiceConfig config_;
  runtime::Clock* clock_;
  obs::Tracer* tracer_;
  obs::Logger* logger_;
  ObsHandles obs_;
  std::size_t count_cols_ = 0;  // invariant across swaps (validated)

  std::atomic<State> state_{State::kIdle};
  /// Rows admitted but not yet scored/rejected (rings + batchers): the
  /// admission bound and the readiness high-water signal.
  std::atomic<std::uint64_t> queued_rows_{0};
  /// Submissions between their state check and their ring push. shutdown()
  /// waits for this to reach zero after flipping state_, so its final
  /// sweep observes every ring push that passed the gate — the lock-free
  /// equivalent of the old check-and-enqueue-under-one-mutex.
  std::atomic<std::uint64_t> inflight_submits_{0};
  std::atomic<std::uint64_t> published_version_{0};

  std::vector<std::unique_ptr<Shard>> shards_;
  /// Round-robin cursor for helper wakeups: a worker that scores a batch
  /// while its own shard still has backlog pokes one sibling to steal.
  std::atomic<std::size_t> help_rr_{0};
  std::shared_ptr<CompletionArena> arena_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ModelSnapshot> snapshot_;
  /// Chaos-harness injector, published/retired under snapshot_mutex_ like
  /// the model snapshot (null = no fault).
  std::shared_ptr<ModelFaultInjector> fault_;
  std::uint64_t next_version_ = 1;

  OverloadController overload_;
  /// Fed from resolve() — the single completion exit — so every request
  /// (scored or rejected) burns or banks budget exactly once.
  obs::SloTracker slo_;
  /// Fed per verdict from score_batch(); reference reset on swap_model().
  ScoreDrift drift_;
  /// Heap-held so worker threads can touch it during construction races
  /// without the member moving; sized to the worker count.
  std::unique_ptr<Watchdog> watchdog_;

  Counters counters_;
  /// Histograms are recorded per scored batch (worker-side only), so one
  /// mutex here never touches the submit path.
  mutable std::mutex histogram_mutex_;
  Log2Histogram batch_rows_hist_, queue_delay_hist_, e2e_latency_hist_;

  std::vector<std::unique_ptr<WorkerState>> worker_states_;
  std::vector<std::thread> threads_;
  /// Serializes start()/shutdown() (never taken on the submit path).
  std::mutex lifecycle_mutex_;

  /// Declared last: destroyed first, so its readiness probe (which reads
  /// this service's state) never outlives the members it touches.
  std::unique_ptr<obs::AdminServer> admin_;
};

}  // namespace mev::serve
