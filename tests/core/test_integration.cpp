// End-to-end integration tests at tiny scale: the full paper pipeline from
// synthetic logs to attacks and defenses.
#include <gtest/gtest.h>

#include <cmath>

#include "attack/jsma.hpp"
#include "attack/random_attack.hpp"
#include "attack/source_attack.hpp"
#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "core/greybox.hpp"
#include "core/substitute.hpp"
#include "data/synthetic.hpp"
#include "defense/adversarial_training.hpp"
#include "defense/classifier.hpp"
#include "eval/metrics.hpp"

namespace mev {
namespace {

struct World {
  core::ExperimentConfig config = core::ExperimentConfig::tiny();
  const data::ApiVocab& vocab = data::ApiVocab::instance();
  data::GenerativeModel generator{vocab, data::GenerativeConfig{}};
  data::DatasetBundle bundle;
  core::DetectorTrainingResult trained;
  math::Matrix malware_features;
  math::Matrix malware_counts;

  World() {
    math::Rng rng(config.seed);
    bundle = generator.generate_bundle(config.dataset_spec(), rng);
    trained = core::train_detector(bundle, config.target_architecture(),
                                   config.target_training(), vocab);
    const auto rows = bundle.test.indices_of(data::kMalwareLabel);
    std::vector<std::size_t> sel(
        rows.begin(),
        rows.begin() + std::min<std::size_t>(rows.size(), 60));
    malware_features = trained.test_features.gather_rows(sel);
    malware_counts = bundle.test.counts.gather_rows(sel);
  }
};

World& world() {
  static World w;
  return w;
}

TEST(Integration, WhiteBoxJsmaDefeatsDetector) {
  auto& w = world();
  auto& net = w.trained.detector->network();
  const double baseline =
      eval::detection_rate(net.predict(w.malware_features));
  attack::JsmaConfig cfg;
  cfg.theta = 1.0f;
  cfg.gamma = 0.05f;
  cfg.early_stop = false;
  const auto crafted = attack::Jsma(cfg).craft(net, w.malware_features);
  const double attacked =
      eval::detection_rate(net.predict(crafted.adversarial));
  EXPECT_GT(baseline, 0.7);
  EXPECT_LT(attacked, baseline - 0.4);
}

TEST(Integration, RandomAdditionIsHarmless) {
  // The paper's control: random additions with the same budget do not
  // meaningfully reduce detection.
  auto& w = world();
  auto& net = w.trained.detector->network();
  const double baseline =
      eval::detection_rate(net.predict(w.malware_features));
  attack::RandomAdditionConfig cfg;
  cfg.theta = 1.0f;
  cfg.gamma = 0.05f;
  const auto crafted =
      attack::RandomAddition(cfg).craft(net, w.malware_features);
  const double attacked =
      eval::detection_rate(net.predict(crafted.adversarial));
  EXPECT_GT(attacked, baseline - 0.15);
}

TEST(Integration, AdversarialTrainingRecoversDetection) {
  auto& w = world();
  auto& net = w.trained.detector->network();
  attack::JsmaConfig cfg;
  cfg.theta = 1.0f;
  cfg.gamma = 0.05f;
  cfg.early_stop = false;
  const auto crafted = attack::Jsma(cfg).craft(net, w.malware_features);
  const double before =
      eval::detection_rate(net.predict(crafted.adversarial));

  math::Rng rng(4242);
  const auto clean_pool = w.generator.generate_dataset(60, 0, rng);
  const math::Matrix clean_features =
      w.trained.detector->features_of_counts(clean_pool.counts);
  const auto set = defense::build_adversarial_training_set(
      w.trained.train_features, w.bundle.train.labels, crafted.adversarial,
      &clean_features);
  defense::AdversarialTrainingConfig at{w.config.target_architecture(),
                                        w.config.target_training()};
  auto hardened = defense::adversarial_training(set, at);
  const double after =
      eval::detection_rate(hardened->predict(crafted.adversarial));
  EXPECT_GT(after, before + 0.3);
  // Malware detection must not collapse.
  EXPECT_GT(eval::detection_rate(hardened->predict(w.malware_features)),
            0.6);
}

TEST(Integration, GreyBoxDeploymentIsRealizable) {
  // Crafted grey-box examples must correspond to integer count additions.
  auto& w = world();
  const auto attacker_data = [&] {
    math::Rng rng(777);
    const auto spec = w.config.dataset_spec();
    return w.generator.generate_dataset(spec.train_clean,
                                        spec.train_malware, rng);
  }();
  auto sub = core::train_substitute_exact_features(
      attacker_data, w.config, w.trained.detector->pipeline());
  const auto& transform = dynamic_cast<const features::CountTransform&>(
      sub.pipeline.transform());
  const auto map = core::make_greybox_count_map(
      transform, w.trained.detector->pipeline(), w.malware_counts);

  attack::JsmaConfig cfg;
  cfg.theta = 0.5f;
  cfg.gamma = 0.05f;
  cfg.early_stop = false;
  const math::Matrix craft = map.to_craft_space(w.malware_features);
  const auto crafted = attack::Jsma(cfg).craft(*sub.network, craft);
  const math::Matrix additions = core::additions_from_count_perturbation(
      transform, craft, crafted.adversarial);
  for (std::size_t i = 0; i < additions.size(); ++i) {
    EXPECT_GE(additions.data()[i], 0.0f);
    EXPECT_EQ(additions.data()[i], std::floor(additions.data()[i]));
  }
}

TEST(Integration, LiveTestThroughFullPipeline) {
  auto& w = world();
  math::Rng rng(31337);
  const data::ApiLog log =
      w.generator.generate_log(data::kMalwareLabel, "live.exe", rng);
  auto& net = w.trained.detector->network();
  const auto result = attack::run_live_test(
      net, net, w.trained.detector->pipeline(), log, 8);
  ASSERT_EQ(result.points.size(), 9u);
  // White-box selection: confidence at k=8 is no higher than at k=0.
  EXPECT_LE(result.points.back().malware_confidence,
            result.points.front().malware_confidence + 1e-6);
}

TEST(Integration, DetectorAgreesAcrossLogAndFeaturePaths) {
  auto& w = world();
  math::Rng rng(606);
  for (int i = 0; i < 5; ++i) {
    const auto counts = w.generator.generate_counts(data::kMalwareLabel, rng);
    const data::ApiLog log =
        w.generator.log_from_counts(counts, "agree.exe", rng);
    const auto via_log = w.trained.detector->scan(log);
    math::Matrix m(1, counts.size());
    m.set_row(0, counts);
    const auto via_counts = w.trained.detector->scan_counts(m).front();
    EXPECT_EQ(via_log.predicted_class, via_counts.predicted_class);
  }
}

}  // namespace
}  // namespace mev
