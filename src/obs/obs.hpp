// Umbrella header for the observability layer: tracing (trace.hpp),
// metrics (metrics.hpp), histograms (histogram.hpp), the ambient-sink
// wiring (scope.hpp), structured logging (log.hpp), and the embedded
// HTTP admin server (admin_server.hpp). Span/metric names follow
// `mev.<layer>.<op>` — DESIGN.md §9 lists the taxonomy and the
// telemetry endpoints.
#pragma once

#include "obs/admin_server.hpp"
#include "obs/histogram.hpp"
#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"
