#include "serve/chaos.hpp"

#include <stdexcept>

namespace mev::serve {

ModelFaultProfile ModelFaultProfile::none() { return {}; }

ModelFaultProfile ModelFaultProfile::throwing() {
  ModelFaultProfile p;
  p.name = "throwing";
  p.throw_rate = 0.30;
  return p;
}

ModelFaultProfile ModelFaultProfile::garbled() {
  ModelFaultProfile p;
  p.name = "garbled";
  p.garble_rate = 0.25;
  return p;
}

ModelFaultProfile ModelFaultProfile::slow() {
  ModelFaultProfile p;
  p.name = "slow";
  p.slow_rate = 0.40;
  p.slow_ms = 20;
  return p;
}

ModelFaultProfile ModelFaultProfile::stalling() {
  ModelFaultProfile p;
  p.name = "stalling";
  p.stall_batches = 2;
  p.stall_ms = 200;
  return p;
}

ModelFaultProfile ModelFaultProfile::chaos() {
  ModelFaultProfile p;
  p.name = "chaos";
  p.throw_rate = 0.15;
  p.garble_rate = 0.10;
  p.slow_rate = 0.20;
  p.slow_ms = 10;
  p.stall_batches = 1;
  p.stall_ms = 100;
  return p;
}

std::vector<ModelFaultProfile> ModelFaultProfile::builtin_profiles() {
  return {throwing(), garbled(), slow(), stalling(), chaos()};
}

ModelFaultInjector::ModelFaultInjector(ModelFaultProfile profile,
                                       runtime::Clock* clock)
    : profile_(std::move(profile)),
      clock_(clock != nullptr ? clock : &runtime::SystemClock::instance()),
      rng_(profile_.seed),
      stalls_remaining_(profile_.stall_batches) {}

void ModelFaultInjector::pre_scan() {
  std::uint64_t sleep = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++injected_.batches;
    if (stalls_remaining_ > 0) {
      --stalls_remaining_;
      ++injected_.stalled;
      sleep = profile_.stall_ms;
    } else if (profile_.slow_rate > 0.0 &&
               rng_.bernoulli(profile_.slow_rate)) {
      ++injected_.slowed;
      sleep = profile_.slow_ms;
    }
  }
  // Sleep outside the lock: a wedged batch on one worker must not block
  // the sibling workers' fault draws.
  if (sleep > 0) clock_->sleep_ms(sleep);
}

void ModelFaultInjector::post_scan(std::vector<core::Verdict>& verdicts) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (profile_.throw_rate > 0.0 && rng_.bernoulli(profile_.throw_rate)) {
    ++injected_.throws;
    throw std::runtime_error("injected model fault (" + profile_.name + ")");
  }
  if (profile_.garble_rate > 0.0 && rng_.bernoulli(profile_.garble_rate) &&
      !verdicts.empty()) {
    ++injected_.garbled;
    verdicts.pop_back();
  }
}

ModelFaultInjector::InjectedCounts ModelFaultInjector::injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

}  // namespace mev::serve
