// Security-evaluation sweeps: detection rate as a function of attack
// strength (Fig. 3 and Fig. 4) and L2-distance analysis (Fig. 5).
//
// A sweep crafts JSMA adversarial examples on a CRAFT model over a grid of
// gamma (fixed theta) or theta (fixed gamma), then measures detection on
// the TARGET model. For the white-box setting pass the same network as
// both craft and target.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "attack/jsma.hpp"
#include "eval/distance_analysis.hpp"
#include "eval/metrics.hpp"
#include "math/matrix.hpp"
#include "nn/network.hpp"

namespace mev::core {

enum class SweepParameter { kGamma, kTheta };

struct SweepConfig {
  SweepParameter parameter = SweepParameter::kGamma;
  std::vector<double> grid;   // swept values
  double fixed_theta = 0.1;   // used when sweeping gamma
  double fixed_gamma = 0.025; // used when sweeping theta

  /// Per-point failure isolation: a grid point that throws is recorded in
  /// SweepResult::failed_points (its curve entries stay zero) instead of
  /// aborting the whole sweep. If EVERY point fails the first error is
  /// rethrown — a fully failed sweep is fatal either way. Set to false to
  /// rethrow the first failure immediately.
  bool isolate_failures = true;

  /// Paper Fig. 3(a) grid: theta=0.1, gamma in [0 : 0.005 : 0.030].
  static SweepConfig fig3a();
  /// Paper Fig. 3(b) grid: gamma=0.025, theta in [0 : 0.0125 : 0.15].
  static SweepConfig fig3b();
  /// Paper Fig. 4(a) grid: theta=0.1, gamma swept (as 3a).
  static SweepConfig fig4a();
  /// Paper Fig. 4(b) grid: gamma=0.005 (2 features), theta swept (as 3b).
  static SweepConfig fig4b();
};

struct SweepResult {
  /// Detection rate of the TARGET model on the crafted examples, per grid
  /// point (the paper's security evaluation curve).
  eval::SecurityCurve target_curve;
  /// Detection rate of the CRAFT model on its own examples (equals the
  /// target curve in the white-box setting).
  eval::SecurityCurve craft_curve;
  /// Fig. 5 distance analysis per grid point (only filled when clean
  /// features are supplied).
  std::vector<eval::DistanceCurvePoint> distances;

  /// Grid points that threw (only populated with isolate_failures).
  struct FailedPoint {
    std::size_t index = 0;        // position in SweepConfig::grid
    double attack_strength = 0.0; // the swept value at that point
    std::string message;
  };
  std::vector<FailedPoint> failed_points;
};

/// `craft_features_of` maps TARGET-space feature rows to CRAFT-space rows
/// (identity for white-box / exact-feature grey-box; a re-extraction for
/// the binary-feature attacker). The crafted CRAFT-space perturbation is
/// mapped back with `target_features_of` before scoring the target.
/// Grid points are evaluated in parallel, so `to_target_space` must be
/// safe to call concurrently (pure function of its input — true of
/// identity() and the grey-box maps, which only read captured state).
struct FeatureSpaceMap {
  std::function<math::Matrix(const math::Matrix&)> to_craft_space;
  std::function<math::Matrix(const math::Matrix&)> to_target_space;

  static FeatureSpaceMap identity();
};

/// Runs the γ/θ sweep. Both models are read-only; the grid points are
/// independent and evaluated in parallel (OpenMP), each with its own
/// inference sessions against the shared networks.
SweepResult run_security_sweep(
    const nn::Network& craft_model, const nn::Network& target_model,
    const math::Matrix& malware_features, const SweepConfig& sweep,
    const FeatureSpaceMap& map = FeatureSpaceMap::identity(),
    const math::Matrix* clean_features = nullptr);

}  // namespace mev::core
