// Oracle failure taxonomy. The resilience layer only needs one bit —
// retryable or not — but keeping the concrete kinds lets stats and logs
// distinguish a slow oracle from a flaky one.
#pragma once

#include <stdexcept>
#include <string>

namespace mev::runtime {

enum class FaultKind {
  kTransient,  // momentary failure; retry is expected to succeed
  kTimeout,    // the call exceeded its latency budget; retryable
  kGarbled,    // response arrived but is unusable (e.g. wrong length)
  kPermanent,  // retrying cannot help (bad request, auth, oracle gone)
};

inline const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kTransient: return "transient";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kGarbled: return "garbled";
    case FaultKind::kPermanent: return "permanent";
  }
  return "unknown";
}

/// Base class for all oracle failures.
class OracleError : public std::runtime_error {
 public:
  OracleError(FaultKind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  FaultKind kind() const noexcept { return kind_; }

  /// Whether the retry layer may re-submit the same batch.
  bool transient() const noexcept { return kind_ != FaultKind::kPermanent; }

 private:
  FaultKind kind_;
};

class TransientOracleError : public OracleError {
 public:
  explicit TransientOracleError(const std::string& what)
      : OracleError(FaultKind::kTransient, what) {}
};

class OracleTimeoutError : public OracleError {
 public:
  explicit OracleTimeoutError(const std::string& what)
      : OracleError(FaultKind::kTimeout, what) {}
};

class GarbledResponseError : public OracleError {
 public:
  explicit GarbledResponseError(const std::string& what)
      : OracleError(FaultKind::kGarbled, what) {}
};

class PermanentOracleError : public OracleError {
 public:
  explicit PermanentOracleError(const std::string& what)
      : OracleError(FaultKind::kPermanent, what) {}
};

/// Thrown by ResilientOracle when a per-call or per-run deadline budget
/// would be exceeded by further waiting. Deliberately NOT an OracleError:
/// it reports the caller's budget running out, not the oracle failing,
/// and must never be swallowed by a retry loop.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace mev::runtime
