file(REMOVE_RECURSE
  "libmev_eval.a"
)
