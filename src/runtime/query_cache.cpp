#include "runtime/query_cache.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "runtime/oracle_error.hpp"

namespace mev::runtime {

std::size_t QueryCache::RowHash::operator()(
    const std::vector<float>& v) const noexcept {
  // FNV-1a over the raw float bytes; count vectors are exact integers so
  // bitwise equality is the right notion of "same sample".
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (float f : v) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int shift = 0; shift < 32; shift += 8) {
      h ^= (bits >> shift) & 0xffU;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

std::optional<int> QueryCache::lookup(std::span<const float> row) const {
  const std::vector<float> key(row.begin(), row.end());
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void QueryCache::insert(std::span<const float> row, int label) {
  std::vector<float> key(row.begin(), row.end());
  const auto [it, inserted] = entries_.try_emplace(std::move(key), label);
  if (inserted)
    order_.push_back(&*it);
  else
    it->second = label;
}

void QueryCache::export_entries(math::Matrix& rows,
                                std::vector<int>& labels) const {
  labels.clear();
  rows = math::Matrix();
  if (order_.empty()) return;
  rows = math::Matrix(order_.size(), order_.front()->first.size());
  labels.reserve(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    rows.set_row(i, order_[i]->first);
    labels.push_back(order_[i]->second);
  }
}

void QueryCache::import_entries(const math::Matrix& rows,
                                const std::vector<int>& labels) {
  if (rows.rows() != labels.size())
    throw std::invalid_argument(
        "QueryCache::import_entries: " + std::to_string(rows.rows()) +
        " rows vs " + std::to_string(labels.size()) + " labels");
  for (std::size_t i = 0; i < rows.rows(); ++i) insert(rows.row(i), labels[i]);
}

std::vector<int> CachingOracle::label_counts(const math::Matrix& counts) {
  std::vector<int> labels(counts.rows(), 0);
  // First-occurrence order of uncached rows, deduplicated within the batch.
  std::vector<std::size_t> unique_rows;
  std::vector<std::vector<std::size_t>> destinations;
  QueryCache batch_seen;
  for (std::size_t i = 0; i < counts.rows(); ++i) {
    if (const auto cached = cache_.lookup(counts.row(i))) {
      labels[i] = *cached;
      ++hits_;
      continue;
    }
    if (const auto seen = batch_seen.lookup(counts.row(i))) {
      destinations[static_cast<std::size_t>(*seen)].push_back(i);
      ++hits_;
      continue;
    }
    batch_seen.insert(counts.row(i), static_cast<int>(unique_rows.size()));
    unique_rows.push_back(i);
    destinations.push_back({i});
  }
  if (unique_rows.empty()) return labels;

  math::Matrix misses(unique_rows.size(), counts.cols());
  for (std::size_t u = 0; u < unique_rows.size(); ++u)
    misses.set_row(u, counts.row(unique_rows[u]));
  const std::vector<int> got = inner_->label_counts(misses);
  if (got.size() != misses.rows())
    throw GarbledResponseError(
        "CachingOracle: inner oracle returned " + std::to_string(got.size()) +
        " labels for " + std::to_string(misses.rows()) + " rows");
  misses_ += unique_rows.size();
  record_queries(unique_rows.size());
  for (std::size_t u = 0; u < unique_rows.size(); ++u) {
    cache_.insert(misses.row(u), got[u]);
    for (std::size_t dest : destinations[u]) labels[dest] = got[u];
  }
  return labels;
}

}  // namespace mev::runtime
