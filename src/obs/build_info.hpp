// Build + process provenance shared by the admin plane (/statusz, /varz)
// and the bench meta blocks: which commit and build flags produced this
// binary, on how many cores, since when. Always compiled — provenance is
// not telemetry and must survive MEV_ENABLE_OBS=OFF.
//
// MEV_GIT_SHA / MEV_BUILD_FLAGS are configure-time compile definitions
// from the top-level CMakeLists.txt (hoisted out of bench/ so every
// target sees them); the fallbacks keep out-of-tree compiles working.
#pragma once

#include <cstdint>
#include <string>

#ifndef MEV_GIT_SHA
#define MEV_GIT_SHA "unknown"
#endif
#ifndef MEV_BUILD_FLAGS
#define MEV_BUILD_FLAGS "unknown"
#endif

namespace mev::obs {

/// Short git SHA captured at configure time ("unknown" out-of-tree).
inline const char* build_git_sha() noexcept { return MEV_GIT_SHA; }
/// Compiler / build-type / flags summary from configure time.
inline const char* build_flags() noexcept { return MEV_BUILD_FLAGS; }

/// This process's pid.
int process_pid() noexcept;
/// Unix seconds when the process started (captured at static init).
std::uint64_t process_start_unix_s() noexcept;
/// Whole seconds since process start (steady clock, jump-proof).
std::uint64_t process_uptime_s() noexcept;

/// The /statusz body: git SHA, build flags, hardware concurrency, pid,
/// start time, and uptime as one JSON object (newline-terminated).
std::string build_info_json();

}  // namespace mev::obs
