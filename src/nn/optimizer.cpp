#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace mev::nn {

namespace {

void check_params(const std::vector<ParamRef>& params) {
  for (const auto& p : params) {
    if (p.value == nullptr || p.grad == nullptr)
      throw std::invalid_argument("Optimizer: null parameter reference");
    if (!p.value->same_shape(*p.grad))
      throw std::invalid_argument("Optimizer: value/grad shape mismatch");
  }
}

void init_state(std::vector<math::Matrix>& state,
                const std::vector<ParamRef>& params) {
  if (state.empty()) {
    state.reserve(params.size());
    for (const auto& p : params)
      state.emplace_back(p.value->rows(), p.value->cols());
  } else if (state.size() != params.size()) {
    throw std::invalid_argument("Optimizer: parameter set changed");
  }
}

}  // namespace

Sgd::Sgd(SgdConfig config) : config_(config) {
  if (config_.learning_rate <= 0.0f)
    throw std::invalid_argument("Sgd: learning rate must be positive");
}

void Sgd::step(const std::vector<ParamRef>& params) {
  check_params(params);
  init_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    math::Matrix& value = *params[i].value;
    const math::Matrix& grad = *params[i].grad;
    math::Matrix& vel = velocity_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      float g = grad.data()[j];
      if (config_.weight_decay > 0.0f)
        g += config_.weight_decay * value.data()[j];
      if (config_.momentum > 0.0f) {
        vel.data()[j] = config_.momentum * vel.data()[j] - config_.learning_rate * g;
        value.data()[j] += vel.data()[j];
      } else {
        value.data()[j] -= config_.learning_rate * g;
      }
    }
  }
}

Adam::Adam(AdamConfig config) : config_(config) {
  if (config_.learning_rate <= 0.0f)
    throw std::invalid_argument("Adam: learning rate must be positive");
  if (config_.beta1 < 0.0f || config_.beta1 >= 1.0f ||
      config_.beta2 < 0.0f || config_.beta2 >= 1.0f)
    throw std::invalid_argument("Adam: betas must be in [0, 1)");
}

void Adam::step(const std::vector<ParamRef>& params) {
  check_params(params);
  init_state(m_, params);
  init_state(v_, params);
  ++step_count_;
  const double bc1 = 1.0 - std::pow(config_.beta1, step_count_);
  const double bc2 = 1.0 - std::pow(config_.beta2, step_count_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    math::Matrix& value = *params[i].value;
    const math::Matrix& grad = *params[i].grad;
    math::Matrix& m = m_[i];
    math::Matrix& v = v_[i];
    for (std::size_t j = 0; j < value.size(); ++j) {
      float g = grad.data()[j];
      if (config_.weight_decay > 0.0f)
        g += config_.weight_decay * value.data()[j];
      m.data()[j] = config_.beta1 * m.data()[j] + (1.0f - config_.beta1) * g;
      v.data()[j] = config_.beta2 * v.data()[j] + (1.0f - config_.beta2) * g * g;
      const double mhat = m.data()[j] / bc1;
      const double vhat = v.data()[j] / bc2;
      value.data()[j] -= static_cast<float>(
          config_.learning_rate * mhat / (std::sqrt(vhat) + config_.epsilon));
    }
  }
}

}  // namespace mev::nn
