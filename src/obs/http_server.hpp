// Shared HTTP/1.1 socket server: the one socket-handling implementation
// behind both the admin plane (obs::AdminServer) and the scoring frontend
// (net::ScoringFrontend). Model:
//
//   * one accept thread multiplexing on poll(), a BOUNDED connection
//     queue, and a small worker pool; when the queue is full new
//     connections are shed (closed) immediately and counted — an embedded
//     server must never become a memory or latency liability.
//   * each worker owns one connection at a time and runs its read/write
//     loop: bytes feed an incremental http::RequestParser; every complete
//     request is handed to the dispatcher together with a ResponseTicket.
//   * the dispatcher may resolve the ticket inline (synchronous routing,
//     the admin plane) or from another thread later (the scoring service's
//     completion callback). The connection loop writes responses strictly
//     in request arrival order, so HTTP/1.1 pipelining stays coherent even
//     when the micro-batcher completes requests out of order.
//   * keep-alive is a server-level policy: when enabled, connections
//     persist across requests (honoring `Connection: close` and HTTP/1.0
//     semantics); when disabled every response closes (the admin plane's
//     connection-per-request model). At most `max_pipeline` requests per
//     connection are in flight before the loop stops reading — the
//     socket's own backpressure then reaches the client.
//
// Compiled regardless of MEV_ENABLE_OBS: it depends only on the pure
// http parser plus the stub-safe Logger/Counter facades, which is what
// lets the scoring endpoint serve traffic in an obs-disabled build.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/http.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace mev::obs::http {

struct SocketServerConfig {
  /// TCP port to bind; 0 = kernel-assigned (read back from port()).
  std::uint16_t port = 0;
  /// Loopback by default: embedded planes are operator surfaces.
  std::string bind_address = "127.0.0.1";
  /// Worker threads; each serves one connection at a time.
  std::size_t worker_threads = 2;
  /// Accepted-but-unserved connections held at once; beyond this new
  /// connections are shed (closed) immediately.
  std::size_t max_queued_connections = 16;
  /// Per-connection receive/send timeout, and the idle keep-alive window:
  /// a connection with no pending work and no bytes for this long closes.
  std::uint64_t io_timeout_ms = 2000;
  /// Server-level keep-alive policy. false = every response advertises
  /// and performs Connection: close.
  bool keep_alive = false;
  /// Requests in flight per connection before the loop stops reading.
  std::size_t max_pipeline = 32;
  /// Parser limits (body cap, header caps) for every connection.
  ParserLimits limits;
  /// Log component tag, e.g. "obs.admin" or "net.http".
  const char* log_component = "obs.http";
  /// Sink for lifecycle/shed logs; nullptr = obs::default_logger().
  Logger* logger = nullptr;
  /// Optional metric handles (inert when default-constructed).
  Counter shed_counter;         // connections closed unserved (queue full)
  Counter parse_error_counter;  // requests answered from a parser error
};

/// Per-connection signaling state (mutex + condvar); defined in the .cpp.
struct ConnState;

/// The write half of one in-flight request. Handed to the dispatcher;
/// respond() may be called exactly once, from any thread, at any time —
/// including after the connection (or the whole server) has gone away, in
/// which case the response is silently dropped. A ticket destroyed
/// without responding answers 500 so the connection can never wedge.
class ResponseTicket {
 public:
  ResponseTicket() = default;
  ResponseTicket(ResponseTicket&&) noexcept = default;
  ResponseTicket& operator=(ResponseTicket&&) noexcept = default;
  ResponseTicket(const ResponseTicket&) = delete;
  ResponseTicket& operator=(const ResponseTicket&) = delete;
  ~ResponseTicket();

  /// Whether the connection stays open after this response; format the
  /// response's Connection header to match.
  bool keep_alive() const noexcept { return keep_alive_; }

  /// Delivers the full serialized response (status line through body).
  void respond(std::string raw_response) noexcept;

 private:
  friend class SocketServer;
  struct Slot;
  ResponseTicket(std::shared_ptr<Slot> slot, bool keep_alive) noexcept
      : slot_(std::move(slot)), keep_alive_(keep_alive) {}

  std::shared_ptr<Slot> slot_;
  bool keep_alive_ = false;
};

class SocketServer {
 public:
  /// Invoked on a worker thread for every complete request. The ticket
  /// must eventually be responded to (its destructor answers 500
  /// otherwise); holding it past the dispatcher return is the async path.
  using Dispatch = std::function<void(Request&&, ResponseTicket)>;

  SocketServer(SocketServerConfig config, Dispatch dispatch);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, spawns accept/worker threads. False (with an error
  /// log) when the socket cannot be bound; the process keeps running.
  bool start();

  /// Closes the listener, stops reading new requests, waits for pending
  /// responses to resolve, joins all threads. Idempotent.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound TCP port; 0 when not started.
  std::uint16_t port() const noexcept {
    return running() ? bound_port_ : 0;
  }

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_shed = 0;
    std::uint64_t requests = 0;
    std::uint64_t responses = 0;
    std::uint64_t parse_errors = 0;
  };
  Stats stats() const noexcept;

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);

  SocketServerConfig config_;
  Dispatch dispatch_;
  Logger* logger_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> parse_errors_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_fds_;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace mev::obs::http
