// Dataset containers and the Table I split specification.
//
// Label convention follows the paper's Eq. 1: class 0 = clean,
// class 1 = malware. "Detection rate" is the fraction of malware samples
// classified as class 1.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "math/matrix.hpp"

namespace mev::data {

inline constexpr int kCleanLabel = 0;
inline constexpr int kMalwareLabel = 1;

/// Raw API-count vectors (one row per sample) with labels.
struct CountDataset {
  math::Matrix counts;       // n x kNumApiFeatures, raw counts as floats
  std::vector<int> labels;   // n entries, kCleanLabel / kMalwareLabel

  std::size_t size() const noexcept { return labels.size(); }

  std::size_t count_label(int label) const noexcept {
    std::size_t n = 0;
    for (int l : labels)
      if (l == label) ++n;
    return n;
  }

  /// Appends all rows of `other` (feature dims must match).
  void append(const CountDataset& other);

  /// Rows whose label matches.
  std::vector<std::size_t> indices_of(int label) const;

  /// Gathers a subset by row indices.
  CountDataset subset(const std::vector<std::size_t>& indices) const;
};

/// Sample counts for the three splits (paper Table I).
struct DatasetSpec {
  std::size_t train_clean = 0;
  std::size_t train_malware = 0;
  std::size_t val_clean = 0;
  std::size_t val_malware = 0;
  std::size_t test_clean = 0;
  std::size_t test_malware = 0;

  std::size_t train_total() const noexcept { return train_clean + train_malware; }
  std::size_t val_total() const noexcept { return val_clean + val_malware; }
  std::size_t test_total() const noexcept { return test_clean + test_malware; }

  /// The paper's exact Table I sizes:
  /// train 57,170 (28,594 clean / 28,576 malware), val 578 (280/298),
  /// test 45,028 (16,154 clean / 28,874 malware).
  static DatasetSpec paper();

  /// Paper proportions scaled by `factor` in (0, 1]; every class count is
  /// at least `min_per_class`.
  static DatasetSpec scaled(double factor, std::size_t min_per_class = 16);
};

/// Train/validation/test bundle.
struct DatasetBundle {
  CountDataset train;
  CountDataset validation;
  CountDataset test;
};

std::string describe(const DatasetSpec& spec);

}  // namespace mev::data
