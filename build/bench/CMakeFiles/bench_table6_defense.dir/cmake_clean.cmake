file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_defense.dir/bench_table6_defense.cpp.o"
  "CMakeFiles/bench_table6_defense.dir/bench_table6_defense.cpp.o.d"
  "bench_table6_defense"
  "bench_table6_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
