// Experiment scaling. The paper's experiments (57k training samples,
// 1000-epoch substitute training, 1200-1500-1300 hidden layers) assume GPU
// scale; this repo runs on small CPU containers, so every bench accepts a
// scale that shrinks the dataset and hidden widths while preserving depth,
// features (491), and all attack/defense parameters (theta, gamma, T, k).
// EXPERIMENTS.md records which scale produced the recorded numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/network.hpp"
#include "nn/trainer.hpp"

namespace mev::core {

enum class ExperimentScale : std::uint8_t {
  kTiny = 0,  // unit tests: seconds
  kFast = 1,  // default for benches: a few minutes end to end
  kFull = 2,  // paper-size architectures and Table I sample counts
};

struct ExperimentConfig {
  ExperimentScale scale = ExperimentScale::kFast;
  std::uint64_t seed = 2018;

  /// Table I proportions scaled for this tier.
  data::DatasetSpec dataset_spec() const;

  /// The 4-layer target DNN (architecture class disclosed by the paper;
  /// widths proprietary, chosen here per scale).
  nn::MlpConfig target_architecture() const;

  /// The 5-layer substitute DNN (Table IV: 491-1200-1500-1300-2 at full
  /// scale) for a given input width (491 normally; the black-box attacker
  /// may use a different feature count).
  nn::MlpConfig substitute_architecture(std::size_t input_dim = 491) const;

  nn::TrainConfig target_training() const;

  /// Paper §III-B: 1000 epochs, batch 256, lr 0.001, Adam — epochs scaled.
  nn::TrainConfig substitute_training() const;

  /// Number of malware samples attacked in security-curve sweeps.
  std::size_t attack_sample_cap() const;

  static ExperimentConfig tiny(std::uint64_t seed = 2018);
  static ExperimentConfig fast(std::uint64_t seed = 2018);
  static ExperimentConfig full(std::uint64_t seed = 2018);

  /// Parses "tiny" / "fast" / "full" (bench CLI flag).
  static ExperimentConfig from_name(const std::string& name,
                                    std::uint64_t seed = 2018);
};

std::string to_string(ExperimentScale scale);

}  // namespace mev::core
