
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/mev_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/mev_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/mev_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/mev_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/mev_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/mev_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/mev_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/mev_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/mev_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/mev_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/mev_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/mev_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/mev_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
