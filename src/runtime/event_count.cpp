#include "runtime/event_count.hpp"

#include <chrono>

namespace mev::runtime {

EventCount::Key EventCount::prepare_wait() noexcept {
  // seq_cst so the waiter increment orders before the caller's subsequent
  // "is there work?" check, and a producer's push orders before its
  // waiter-count load in notify(): one of the two always sees the other.
  const std::uint64_t prev = state_.fetch_add(1, std::memory_order_seq_cst);
  return static_cast<Key>(prev >> kEpochShift);
}

void EventCount::cancel_wait() noexcept {
  state_.fetch_sub(1, std::memory_order_seq_cst);
}

void EventCount::wait(Key key) noexcept {
  std::unique_lock<std::mutex> lock(mutex_);
  // The epoch only advances under mutex_, so this check + cv wait cannot
  // miss a notify: a concurrent notify either already bumped the epoch
  // (we return) or blocks on the mutex until we are inside cv_.wait.
  while (static_cast<Key>(state_.load(std::memory_order_relaxed) >>
                          kEpochShift) == key)
    cv_.wait(lock);
  lock.unlock();
  state_.fetch_sub(1, std::memory_order_seq_cst);
}

bool EventCount::wait_for_ms(Key key, std::uint64_t timeout_ms) noexcept {
  bool notified = true;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (static_cast<Key>(state_.load(std::memory_order_relaxed) >>
                            kEpochShift) == key) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        notified = static_cast<Key>(state_.load(std::memory_order_relaxed) >>
                                    kEpochShift) != key;
        break;
      }
    }
  }
  state_.fetch_sub(1, std::memory_order_seq_cst);
  return notified;
}

void EventCount::notify(bool all) noexcept {
  // Fast path: nobody is parked (or preparing to park) — one load, done.
  if ((state_.load(std::memory_order_seq_cst) & kWaiterMask) == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state_.fetch_add(std::uint64_t{1} << kEpochShift,
                     std::memory_order_seq_cst);
  }
  if (all)
    cv_.notify_all();
  else
    cv_.notify_one();
}

void EventCount::notify_one() noexcept { notify(false); }

void EventCount::notify_all() noexcept { notify(true); }

std::uint32_t EventCount::waiters() const noexcept {
  return static_cast<std::uint32_t>(
      state_.load(std::memory_order_relaxed) & kWaiterMask);
}

}  // namespace mev::runtime
