#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace mev::nn {
namespace {

struct Quadratic {
  // f(w) = 0.5 * ||w - target||^2; grad = w - target.
  math::Matrix w{math::Matrix(1, 3, 0.0f)};
  math::Matrix grad{math::Matrix(1, 3, 0.0f)};
  math::Matrix target{{2.0f, -1.0f, 0.5f}};

  std::vector<ParamRef> params() { return {{&w, &grad}}; }

  void compute_grad() {
    for (std::size_t i = 0; i < 3; ++i)
      grad.data()[i] = w.data()[i] - target.data()[i];
  }
  double loss() const {
    double s = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      const double d = w.data()[i] - target.data()[i];
      s += 0.5 * d * d;
    }
    return s;
  }
};

TEST(Sgd, PlainStepMath) {
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  Sgd sgd(cfg);
  math::Matrix w(1, 1, 1.0f), g(1, 1, 2.0f);
  std::vector<ParamRef> params{{&w, &g}};
  sgd.step(params);
  EXPECT_NEAR(w(0, 0), 1.0f - 0.1f * 2.0f, 1e-6);
}

TEST(Sgd, WeightDecayAddsL2Pull) {
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.weight_decay = 1.0f;
  Sgd sgd(cfg);
  math::Matrix w(1, 1, 1.0f), g(1, 1, 0.0f);
  std::vector<ParamRef> params{{&w, &g}};
  sgd.step(params);
  EXPECT_NEAR(w(0, 0), 1.0f - 0.1f * 1.0f, 1e-6);  // decays toward 0
}

TEST(Sgd, MomentumAccumulates) {
  SgdConfig cfg;
  cfg.learning_rate = 0.1f;
  cfg.momentum = 0.9f;
  Sgd sgd(cfg);
  math::Matrix w(1, 1, 0.0f), g(1, 1, 1.0f);
  std::vector<ParamRef> params{{&w, &g}};
  sgd.step(params);
  const float after_one = w(0, 0);
  sgd.step(params);
  // Second step is larger in magnitude thanks to momentum.
  EXPECT_LT(w(0, 0) - after_one, after_one);
}

TEST(Sgd, ConvergesOnQuadratic) {
  Quadratic q;
  SgdConfig cfg;
  cfg.learning_rate = 0.2f;
  Sgd sgd(cfg);
  auto params = q.params();
  for (int i = 0; i < 200; ++i) {
    q.compute_grad();
    sgd.step(params);
  }
  EXPECT_LT(q.loss(), 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  Quadratic q;
  AdamConfig cfg;
  cfg.learning_rate = 0.1f;
  Adam adam(cfg);
  auto params = q.params();
  for (int i = 0; i < 500; ++i) {
    q.compute_grad();
    adam.step(params);
  }
  EXPECT_LT(q.loss(), 1e-4);
}

TEST(Adam, FirstStepIsApproximatelyLearningRate) {
  // With bias correction the first Adam step is ~lr * sign(grad).
  AdamConfig cfg;
  cfg.learning_rate = 0.01f;
  Adam adam(cfg);
  math::Matrix w(1, 1, 0.0f), g(1, 1, 123.0f);
  std::vector<ParamRef> params{{&w, &g}};
  adam.step(params);
  EXPECT_NEAR(w(0, 0), -0.01f, 1e-4);
}

TEST(Optimizer, InvalidConfigsThrow) {
  SgdConfig s;
  s.learning_rate = 0.0f;
  EXPECT_THROW(Sgd{s}, std::invalid_argument);
  AdamConfig a;
  a.learning_rate = -1.0f;
  EXPECT_THROW(Adam{a}, std::invalid_argument);
  AdamConfig b;
  b.beta1 = 1.0f;
  EXPECT_THROW(Adam{b}, std::invalid_argument);
}

TEST(Optimizer, NullParamThrows) {
  Sgd sgd(SgdConfig{});
  std::vector<ParamRef> params{{nullptr, nullptr}};
  EXPECT_THROW(sgd.step(params), std::invalid_argument);
}

TEST(Optimizer, ShapeMismatchThrows) {
  Sgd sgd(SgdConfig{});
  math::Matrix w(1, 2), g(1, 3);
  std::vector<ParamRef> params{{&w, &g}};
  EXPECT_THROW(sgd.step(params), std::invalid_argument);
}

TEST(Optimizer, ParameterSetChangeThrows) {
  Adam adam(AdamConfig{});
  math::Matrix w(1, 2), g(1, 2);
  std::vector<ParamRef> params{{&w, &g}};
  adam.step(params);
  math::Matrix w2(1, 2), g2(1, 2);
  params.push_back({&w2, &g2});
  EXPECT_THROW(adam.step(params), std::invalid_argument);
}

TEST(Optimizer, LearningRateAccessors) {
  Sgd sgd(SgdConfig{});
  sgd.set_learning_rate(0.5f);
  EXPECT_EQ(sgd.learning_rate(), 0.5f);
  EXPECT_EQ(sgd.name(), "sgd");
  Adam adam(AdamConfig{});
  EXPECT_EQ(adam.name(), "adam");
}

}  // namespace
}  // namespace mev::nn
