#include "serve/scoring_service.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/scope.hpp"

namespace mev::serve {

namespace {

/// The submitting thread's home shard: a cheap per-thread hash so a hot
/// submitter keeps hitting the same ring (cache-warm, contention-free
/// against other submitters) without any registration step.
std::size_t submitter_shard(std::size_t shard_count) noexcept {
  static thread_local const std::size_t hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hash % shard_count;
}

}  // namespace

ScoringService::ScoringService(features::FeaturePipeline pipeline,
                               std::shared_ptr<nn::Network> network,
                               ServiceConfig config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock
                                     : &runtime::SystemClock::instance()),
      tracer_(obs::resolve(config.tracer)),
      logger_(obs::resolve(config.logger)),
      overload_(config.overload),
      slo_(config.slo),
      drift_(config.drift) {
  obs::MetricsRegistry* registry = obs::resolve(config.metrics);
  slo_.register_gauges(registry);
  obs_.accepted_requests = registry->counter(
      "mev.serve.accepted_requests", "submissions admitted to the queue");
  obs_.accepted_rows =
      registry->counter("mev.serve.accepted_rows", "rows admitted");
  // One labeled family per breakdown: rejections by reason, deadline
  // expiries by pipeline stage.
  const char* rejected_name = "mev.serve.rejected_total";
  const char* rejected_help = "rejected submissions, by reason";
  obs_.rejected_queue_full = registry->counter(
      rejected_name, rejected_help, {{"reason", "queue_full"}});
  obs_.rejected_shutting_down = registry->counter(
      rejected_name, rejected_help, {{"reason", "shutting_down"}});
  obs_.rejected_deadline = registry->counter(rejected_name, rejected_help,
                                             {{"reason", "deadline"}});
  obs_.rejected_overloaded = registry->counter(rejected_name, rejected_help,
                                               {{"reason", "overloaded"}});
  obs_.rejected_internal = registry->counter(
      rejected_name, rejected_help, {{"reason", "internal_error"}});
  const char* expired_name = "mev.serve.deadline_expired_total";
  const char* expired_help = "deadline expiries, by pipeline stage";
  obs_.expired_at_admission = registry->counter(expired_name, expired_help,
                                                {{"stage", "admission"}});
  obs_.expired_in_queue =
      registry->counter(expired_name, expired_help, {{"stage", "queue"}});
  obs_.expired_post_dequeue = registry->counter(
      expired_name, expired_help, {{"stage", "post_dequeue"}});
  obs_.callback_errors =
      registry->counter("mev.serve.callback_errors_total",
                        "submission callbacks that threw (contained)");
  obs_.worker_stalls = registry->counter(
      "mev.serve.worker_stalls_total", "watchdog healthy->stalled verdicts");
  obs_.worker_recoveries =
      registry->counter("mev.serve.worker_recoveries_total",
                        "watchdog stalled->healthy verdicts");
  obs_.batch_failures = registry->counter(
      "mev.serve.batch_failures_total",
      "batches failed kInternalError inside worker containment");
  obs_.completed_requests = registry->counter(
      "mev.serve.completed_requests", "requests scored to completion");
  obs_.completed_rows =
      registry->counter("mev.serve.completed_rows", "rows scored");
  obs_.batches =
      registry->counter("mev.serve.batches", "micro-batches scored");
  obs_.model_swaps =
      registry->counter("mev.serve.model_swaps", "hot model swaps published");
  obs_.stolen_requests = registry->counter(
      "mev.serve.stolen_requests", "requests stolen from a non-owned shard");
  obs_.spilled_submissions =
      registry->counter("mev.serve.spilled_submissions",
                        "submissions spilled past a full home shard");
  obs_.batch_rows =
      registry->histogram("mev.serve.batch_rows", "rows per scored batch");
  // Windowed so /metrics exports 1m/5m p50/p95/p99 gauges next to the
  // lifetime buckets; timestamps come from the service clock, so tests
  // with a FakeClock get deterministic windows.
  obs_.queue_delay_us = registry->windowed_histogram(
      "mev.serve.queue_delay_us", "submit-to-batch-formation delay (us)",
      clock_);
  obs_.e2e_latency_us = registry->windowed_histogram(
      "mev.serve.e2e_latency_us", "submit-to-verdict latency (us)", clock_);
  obs_.queued_rows = registry->gauge(
      "mev.serve.queued_rows", "rows admitted but not yet scored/rejected");
  obs_.overload_state = registry->gauge(
      "mev.serve.overload_state",
      "overload controller state (0 healthy, 1 brownout, 2 recovering)");
  obs_.shed_fraction = registry->gauge(
      "mev.serve.shed_fraction", "admission fraction currently being shed");
  obs_.stalled_workers = registry->gauge("mev.serve.stalled_workers",
                                         "workers currently flagged stalled");

  auto snapshot = std::make_shared<ModelSnapshot>(std::move(pipeline),
                                                  std::move(network),
                                                  next_version_++);
  count_cols_ = snapshot->count_cols;
  published_version_.store(snapshot->version, std::memory_order_release);
  snapshot_ = std::move(snapshot);

  const std::size_t shard_count = std::max<std::size_t>(
      config_.shards != 0 ? config_.shards
                          : std::max<std::size_t>(config_.workers, 1),
      1);
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        std::max<std::size_t>(config_.shard_capacity, 2)));
    shards_.back()->depth_gauge = registry->gauge(
        "mev.serve.shard" + std::to_string(i) + ".queue_rows",
        "rows queued in ingress shard " + std::to_string(i));
  }

  arena_ = std::make_shared<CompletionArena>();

  const BatcherConfig batcher_config{config_.max_batch_rows,
                                     config_.max_queue_delay_ms};
  worker_states_.reserve(std::max<std::size_t>(config_.workers, 1));
  for (std::size_t i = 0; i < std::max<std::size_t>(config_.workers, 1); ++i)
    worker_states_.push_back(std::make_unique<WorkerState>(batcher_config));

  WatchdogConfig watchdog_config = config_.watchdog;
  if (watchdog_config.clock == nullptr) watchdog_config.clock = clock_;
  watchdog_ = std::make_unique<Watchdog>(worker_states_.size(),
                                         watchdog_config);
  watchdog_->set_transition_hook([this](std::size_t worker, bool stalled) {
    obs_.stalled_workers.set(
        static_cast<double>(watchdog_->stalled_count()));
    if (stalled) {
      obs_.worker_stalls.inc();
      MEV_LOG(*logger_, obs::LogLevel::kWarn, "serve.service",
              "worker stalled",
              {obs::LogField::u64_value("worker", worker),
               obs::LogField::u64_value("stall_ms",
                                        config_.watchdog.stall_ms)});
      // Sibling recruitment: the stuck worker's shards must keep moving,
      // so wake everyone else to steal its backlog.
      for (std::size_t i = 0; i < worker_states_.size(); ++i)
        if (i != worker) worker_states_[i]->signal.notify_all();
    } else {
      obs_.worker_recoveries.inc();
      MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service",
              "worker recovered",
              {obs::LogField::u64_value("worker", worker)});
    }
  });

  if (config_.autostart) start();

  if (config_.admin.enabled) {
    obs::AdminServerConfig admin = config_.admin;
    // The admin plane serves this service's sinks unless the caller wired
    // its own.
    if (admin.tracer == nullptr) admin.tracer = tracer_;
    if (admin.metrics == nullptr) admin.metrics = registry;
    if (admin.logger == nullptr) admin.logger = logger_;
    if (admin.clock == nullptr) admin.clock = clock_;
    admin_ = std::make_unique<obs::AdminServer>(std::move(admin));
    admin_->set_readiness_probe([this] { return readiness(); });
    admin_->set_slo_tracker(&slo_);
    if (!admin_->start()) admin_.reset();
  }
}

ScoringService::~ScoringService() { shutdown(/*drain=*/true); }

bool ScoringService::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  State expected = State::kIdle;
  if (!state_.compare_exchange_strong(expected, State::kRunning,
                                      std::memory_order_seq_cst))
    return false;
  if (config_.workers > 0) {
    threads_.reserve(config_.workers);
    for (std::size_t i = 0; i < config_.workers; ++i)
      threads_.emplace_back([this, i] { worker_loop(i); });
    watchdog_->start();  // no-op unless config_.watchdog.enabled
  }
  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service", "service started",
          {obs::LogField::u64_value("workers", config_.workers),
           obs::LogField::u64_value("shards", shards_.size()),
           obs::LogField::u64_value("max_queue_rows", config_.max_queue_rows),
           obs::LogField::u64_value("max_batch_rows",
                                    config_.max_batch_rows)});
  return true;
}

std::shared_ptr<const ScoringService::ModelSnapshot>
ScoringService::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

ScoreFuture ScoringService::submit(math::Matrix counts,
                                   SubmitOptions options) {
  const std::size_t rows = counts.rows();
  if (rows > 0 && counts.cols() != count_cols_)
    throw std::invalid_argument(
        "ScoringService::submit: count rows have " +
        std::to_string(counts.cols()) + " columns, expected " +
        std::to_string(count_cols_));

  const CompletionTicket ticket = arena_->acquire();
  ScoreFuture future(arena_, ticket);
  Request request;
  request.counts = std::move(counts);
  request.ticket = ticket;
  request.has_ticket = true;
  submit_request(std::move(request), rows, options);
  return future;
}

void ScoringService::submit_with_callback(math::Matrix counts,
                                          SubmitOptions options,
                                          ScoreCallback callback, void* ctx) {
  const std::size_t rows = counts.rows();
  if (rows > 0 && counts.cols() != count_cols_)
    throw std::invalid_argument(
        "ScoringService::submit_with_callback: count rows have " +
        std::to_string(counts.cols()) + " columns, expected " +
        std::to_string(count_cols_));

  Request request;
  request.counts = std::move(counts);
  request.callback = callback;
  request.callback_ctx = ctx;
  submit_request(std::move(request), rows, options);
}

void ScoringService::submit_request(Request request, std::size_t rows,
                                    SubmitOptions options) {
  request.trace = options.trace;
  if (rows == 0) {
    // Nothing to score: complete immediately with the current version.
    ScoreResult result;
    result.model_version = published_version_.load(std::memory_order_acquire);
    counters_.accepted_requests.fetch_add(1, std::memory_order_relaxed);
    counters_.completed_requests.fetch_add(1, std::memory_order_relaxed);
    obs_.accepted_requests.inc();
    obs_.completed_requests.inc();
    resolve(request, std::move(result));
    return;
  }

  // Ingress gate: shutdown() flips state_ and then waits for this count
  // to drop to zero, which orders every in-flight ring push before its
  // final sweep — no admitted request can be stranded in a ring.
  inflight_submits_.fetch_add(1, std::memory_order_seq_cst);
  const State state = state_.load(std::memory_order_seq_cst);
  if (state != State::kRunning) {
    inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    counters_.rejected_shutting_down.fetch_add(1, std::memory_order_relaxed);
    obs_.rejected_shutting_down.inc();
    MEV_LOG_EVERY(*logger_, obs::LogLevel::kWarn, /*rate_per_s=*/1.0,
                  /*burst=*/5.0, "serve.service", "submission rejected",
                  {obs::LogField::string("reason", state == State::kIdle
                                                       ? "not_started"
                                                       : "shutting_down"),
                   obs::LogField::u64_value("rows", rows)});
    ScoreResult result;
    result.rejected = RejectReason::kShuttingDown;
    resolve(request, std::move(result));
    return;
  }

  // Deadline resolution before admission: the relative and absolute forms
  // min-combine, and a request whose propagated deadline has already
  // passed is rejected here — it must not consume queue capacity or a
  // batch slot it can never use.
  request.enqueue_us = clock_->now_us();
  request.enqueue_ms = clock_->now_ms();
  if (options.deadline_ms != 0)
    request.deadline_ms = request.enqueue_ms + options.deadline_ms;
  if (options.deadline_at_ms != 0)
    request.deadline_ms = request.deadline_ms == 0
                              ? options.deadline_at_ms
                              : std::min(request.deadline_ms,
                                         options.deadline_at_ms);
  if (request.expired(request.enqueue_ms)) {
    inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    counters_.rejected_deadline.fetch_add(1, std::memory_order_relaxed);
    obs_.rejected_deadline.inc();
    count_deadline_stage(DeadlineStage::kAdmission, 1);
    ScoreResult result;
    result.rejected = RejectReason::kDeadline;
    resolve(request, std::move(result));
    return;
  }

  // Overload shed gate: under brownout a deterministic fraction of
  // admissions is turned away with a reason upstream retry policies treat
  // as transient (back off and come back, unlike queue_full races).
  overload_.tick(request.enqueue_ms);
  if (overload_.should_shed()) {
    inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    counters_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
    obs_.rejected_overloaded.inc();
    MEV_LOG_EVERY(*logger_, obs::LogLevel::kWarn, /*rate_per_s=*/1.0,
                  /*burst=*/5.0, "serve.service", "submission rejected",
                  {obs::LogField::string("reason", "overloaded"),
                   obs::LogField::u64_value("rows", rows)});
    ScoreResult result;
    result.rejected = RejectReason::kOverloaded;
    resolve(request, std::move(result));
    return;
  }

  // Admission control: one fetch_add on a shared counter, rolled back on
  // rejection. Replaces the old queue mutex + pending_rows() check.
  const std::uint64_t prev =
      queued_rows_.fetch_add(rows, std::memory_order_acq_rel);
  bool admitted = prev + rows <= config_.max_queue_rows;

  std::size_t shard_index = 0;
  if (admitted) {
    // Route to the submitter's home shard; spill to the next ring when
    // it is full. Only when every ring is full is the submission
    // rejected (the rows bound usually trips first).
    const std::size_t shard_count = shards_.size();
    const std::size_t home = submitter_shard(shard_count);
    admitted = false;
    for (std::size_t i = 0; i < shard_count; ++i) {
      shard_index = (home + i) % shard_count;
      if (shards_[shard_index]->ring.try_push(std::move(request))) {
        admitted = true;
        if (i > 0) {
          counters_.spilled_submissions.fetch_add(1,
                                                  std::memory_order_relaxed);
          obs_.spilled_submissions.inc();
        }
        break;
      }
    }
  }

  if (!admitted) {
    queued_rows_.fetch_sub(rows, std::memory_order_acq_rel);
    inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
    counters_.rejected_queue_full.fetch_add(1, std::memory_order_relaxed);
    obs_.rejected_queue_full.inc();
    MEV_LOG_EVERY(*logger_, obs::LogLevel::kWarn, /*rate_per_s=*/1.0,
                  /*burst=*/5.0, "serve.service", "submission rejected",
                  {obs::LogField::string("reason", "queue_full"),
                   obs::LogField::u64_value("rows", rows)});
    ScoreResult result;
    result.rejected = RejectReason::kQueueFull;
    resolve(request, std::move(result));
    return;
  }

  Shard& shard = *shards_[shard_index];
  const std::uint64_t shard_rows =
      shard.rows.fetch_add(rows, std::memory_order_relaxed) + rows;
  shard.depth_gauge.set(static_cast<double>(shard_rows));
  obs_.queued_rows.set(static_cast<double>(prev + rows));
  counters_.accepted_requests.fetch_add(1, std::memory_order_relaxed);
  counters_.accepted_rows.fetch_add(rows, std::memory_order_relaxed);
  obs_.accepted_requests.inc();
  obs_.accepted_rows.inc(rows);
  // Wake the shard's *owner*, not an arbitrary worker: a submitter's
  // stream then coalesces in one batcher instead of fragmenting across
  // whichever workers happened to wake first (each fragment would wait
  // its own flush window — a ~2x tail-latency penalty at low load).
  // Exception: an owner the watchdog has flagged stalled cannot answer a
  // wakeup — reroute to the next healthy sibling so the request is stolen
  // instead of waiting out the stall.
  std::size_t target = shard_index % worker_states_.size();
  if (worker_states_.size() > 1 && watchdog_->stalled(target)) {
    for (std::size_t i = 1; i < worker_states_.size(); ++i) {
      const std::size_t sibling = (target + i) % worker_states_.size();
      if (!watchdog_->stalled(sibling)) {
        target = sibling;
        break;
      }
    }
  }
  worker_states_[target]->signal.notify_one();
  inflight_submits_.fetch_sub(1, std::memory_order_seq_cst);
}

void ScoringService::resolve(Request& request, ScoreResult&& result) {
  // The single completion exit: every admitted-or-rejected request burns
  // or banks SLO budget exactly once. Synchronous rejections carry
  // enqueue_us == 0 (they never entered a ring) — count availability,
  // skip latency.
  {
    const bool ok = result.rejected == RejectReason::kNone;
    const std::uint64_t now_us = clock_->now_us();
    const std::uint64_t latency_us =
        ok && request.enqueue_us != 0 && now_us > request.enqueue_us
            ? now_us - request.enqueue_us
            : 0;
    slo_.record(now_us, ok, latency_us);
  }
  if (request.callback != nullptr) {
    // Containment: a throwing caller callback must not unwind into the
    // worker loop (it would fail the rest of the batch and, pre-PR 7,
    // killed the thread). The request is already resolved by the call
    // itself, so swallow, count, continue.
    try {
      request.callback(request.callback_ctx, std::move(result));
    } catch (...) {
      counters_.callback_errors.fetch_add(1, std::memory_order_relaxed);
      obs_.callback_errors.inc();
      MEV_LOG_EVERY(*logger_, obs::LogLevel::kWarn, /*rate_per_s=*/1.0,
                    /*burst=*/5.0, "serve.service",
                    "submission callback threw; contained");
    }
  } else if (request.has_ticket) {
    arena_->complete(request.ticket, std::move(result));
  }
}

void ScoringService::resolve_internal_error(Request& request) {
  // Both completion modes get a *typed* rejection: futures resolve with
  // kInternalError rather than rethrowing a service-side fault into the
  // caller — the client-side taxonomy (ServiceOracle) depends on it.
  ScoreResult result;
  result.rejected = RejectReason::kInternalError;
  result.stages.admitted_us = request.enqueue_us;
  resolve(request, std::move(result));
}

void ScoringService::count_deadline_stage(DeadlineStage stage,
                                          std::size_t n) {
  if (n == 0) return;
  switch (stage) {
    case DeadlineStage::kAdmission:
      counters_.expired_at_admission.fetch_add(n, std::memory_order_relaxed);
      obs_.expired_at_admission.inc(n);
      break;
    case DeadlineStage::kQueue:
      counters_.expired_in_queue.fetch_add(n, std::memory_order_relaxed);
      obs_.expired_in_queue.inc(n);
      break;
    case DeadlineStage::kPostDequeue:
      counters_.expired_post_dequeue.fetch_add(n, std::memory_order_relaxed);
      obs_.expired_post_dequeue.inc(n);
      break;
  }
}

std::shared_ptr<ModelFaultInjector> ScoringService::set_model_fault(
    ModelFaultProfile profile) {
  auto injector =
      std::make_shared<ModelFaultInjector>(std::move(profile), clock_);
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    fault_ = injector;
  }
  MEV_LOG(*logger_, obs::LogLevel::kWarn, "serve.service",
          "model fault injected",
          {obs::LogField::string("profile", injector->profile().name.c_str())});
  return injector;
}

void ScoringService::clear_model_fault() {
  std::shared_ptr<ModelFaultInjector> retired;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    retired = std::move(fault_);
  }
  if (retired != nullptr)
    MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service",
            "model fault cleared",
            {obs::LogField::string("profile",
                                   retired->profile().name.c_str())});
}

std::shared_ptr<ModelFaultInjector> ScoringService::current_fault() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return fault_;
}

ScoreResult ScoringService::score(math::Matrix counts,
                                  SubmitOptions options) {
  ScoreFuture future = submit(std::move(counts), options);
  if (config_.workers == 0) {
    // Manual-pump mode: drive the batch through ourselves.
    while (future.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready)
      pump(/*force=*/true);
  }
  return future.get();
}

std::uint64_t ScoringService::swap_model(features::FeaturePipeline pipeline,
                                         std::shared_ptr<nn::Network> network) {
  // Validation (dimension checks) happens in the detector's constructor,
  // outside any lock — a bad swap never disturbs the running snapshot.
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    auto fresh = std::make_shared<ModelSnapshot>(std::move(pipeline),
                                                 std::move(network),
                                                 next_version_++);
    if (fresh->count_cols != count_cols_)
      throw std::invalid_argument(
          "ScoringService::swap_model: new pipeline expects " +
          std::to_string(fresh->count_cols) + " count columns, service was " +
          "built for " + std::to_string(count_cols_));
    version = fresh->version;
    snapshot_ = std::move(fresh);
    // Published under the same mutex workers pin through: a submission
    // entering after swap_model() returns can only be scored by a batch
    // that pins this (or a newer) snapshot.
    published_version_.store(version, std::memory_order_release);
  }
  counters_.model_swaps.fetch_add(1, std::memory_order_relaxed);
  obs_.model_swaps.inc();
  // The old model's score distribution is not a baseline for the new one:
  // re-capture the drift reference from the new model's own verdicts.
  drift_.reset_reference();
  obs::instant(tracer_, "mev.serve.model_swap");
  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service",
          "model swapped", {obs::LogField::u64_value("version", version)});
  return version;
}

std::uint64_t ScoringService::model_version() const {
  return published_version_.load(std::memory_order_acquire);
}

void ScoringService::shutdown(bool drain) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mutex_);
  const State before = state_.load(std::memory_order_seq_cst);
  if (before == State::kStopped) return;
  if (before == State::kIdle) {
    // Never started: nothing queued, nothing to join.
    state_.store(State::kStopped, std::memory_order_seq_cst);
    return;
  }

  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service",
          "shutdown requested",
          {obs::LogField::string("mode", drain ? "drain" : "immediate"),
           obs::LogField::u64_value(
               "pending_rows",
               queued_rows_.load(std::memory_order_relaxed))});

  state_.store(drain ? State::kDraining : State::kStopped,
               std::memory_order_seq_cst);
  // Wait out submissions already past the state check: once the gate is
  // empty, every admitted request is visible in a ring (or already in a
  // worker's batcher) and the sweep below cannot miss one.
  while (inflight_submits_.load(std::memory_order_seq_cst) != 0)
    std::this_thread::yield();
  for (auto& worker : worker_states_) worker->signal.notify_all();

  join_workers();
  // Monitor stopped after the join: stall detection (and its sibling
  // recruitment) stays live while the drain waits out a wedged worker.
  watchdog_->stop();
  final_sweep(drain);
  state_.store(State::kStopped, std::memory_order_seq_cst);
  // The admin server stays up (serving 503 on /readyz) until destruction:
  // an operator can still scrape /metrics from a stopped service.
  MEV_LOG(*logger_, obs::LogLevel::kInfo, "serve.service", "service stopped");
}

obs::Readiness ScoringService::readiness() const {
  switch (state_.load(std::memory_order_acquire)) {
    case State::kIdle:
      return {false, "not started"};
    case State::kDraining:
      return {false, "draining"};
    case State::kStopped:
      return {false, "stopped"};
    case State::kRunning:
      break;
  }
  // Overload gate: brownout (and the hysteretic recovery tail) reads as
  // not-ready so load balancers drain away while shedding is active.
  switch (overload_.state()) {
    case OverloadState::kBrownout:
      return {false, "overload brownout"};
    case OverloadState::kRecovering:
      return {false, "overload recovering"};
    case OverloadState::kHealthy:
      break;
  }
  // Saturation gate: flag before admission control starts rejecting, so
  // load balancers steer away while the service still answers.
  const std::uint64_t high_water =
      config_.max_queue_rows - config_.max_queue_rows / 10;
  if (queued_rows_.load(std::memory_order_relaxed) >= high_water)
    return {false, "queue high-water"};
  // SLO fast-burn is ADVISORY ONLY: it annotates the ready verdict but
  // never flips 503 — draining traffic on an SLO page would amplify the
  // incident, and shedding is the overload controller's job.
  if (slo_.snapshot(clock_->now_us()).fast_burn_alert)
    return {true, "ok (advisory: slo fast burn)"};
  return {true, "ok"};
}

void ScoringService::join_workers() {
  for (auto& thread : threads_)
    if (thread.joinable()) thread.join();
  threads_.clear();
}

std::size_t ScoringService::drain_shard(Shard& shard, WorkerState& worker) {
  // Pull-based: take only until the batcher holds a full batch. Backlog
  // beyond that stays in the shared ring where any worker can claim it —
  // hoarding it in this worker's private batcher would serialize the
  // queue behind one thread and fatten the tail under overload.
  std::size_t moved = 0;
  std::size_t rows = 0;
  while (worker.batcher.pending_rows() < config_.max_batch_rows) {
    auto request = shard.ring.try_pop();
    if (!request.has_value()) break;
    rows += request->counts.rows();
    worker.batcher.add(std::move(*request));
    ++moved;
  }
  if (rows > 0) {
    const std::uint64_t left =
        shard.rows.fetch_sub(rows, std::memory_order_relaxed) - rows;
    shard.depth_gauge.set(static_cast<double>(left));
  }
  return moved;
}

std::size_t ScoringService::gather(std::size_t worker_index,
                                   WorkerState& worker, bool steal) {
  const std::size_t workers = std::max<std::size_t>(config_.workers, 1);
  std::size_t moved = 0;
  for (std::size_t s = worker_index; s < shards_.size(); s += workers)
    moved += drain_shard(*shards_[s], worker);
  if (moved == 0 && steal) {
    // Own shards empty: one stealing pass over everyone else's, so one
    // hot submitter cannot strand work behind a busy worker.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (s % workers == worker_index % workers) continue;
      const std::size_t stolen = drain_shard(*shards_[s], worker);
      if (stolen > 0) {
        counters_.stolen_requests.fetch_add(stolen,
                                            std::memory_order_relaxed);
        obs_.stolen_requests.inc(stolen);
        moved += stolen;
      }
    }
  }
  return moved;
}

bool ScoringService::all_shards_empty() const {
  for (const auto& shard : shards_)
    if (!shard->ring.approx_empty()) return false;
  return true;
}

std::size_t ScoringService::assemble_and_score(WorkerState& worker,
                                               bool force) {
  const std::uint64_t now = clock_->now_ms();
  overload_.tick(now);
  if (overload_.enabled()) {
    obs_.overload_state.set(static_cast<double>(overload_.state()));
    obs_.shed_fraction.set(overload_.shed_fraction());
  }
  std::vector<Request> expired;
  worker.batcher.take_expired(now, expired);
  if (!expired.empty()) {
    std::size_t expired_rows = 0;
    for (const auto& request : expired) expired_rows += request.counts.rows();
    count_deadline_stage(DeadlineStage::kQueue, expired.size());
    reject_all(std::move(expired), RejectReason::kDeadline, expired_rows);
  }
  // Brownout posture: stop waiting for co-riders — flushing partial
  // batches immediately trades batching efficiency for queue delay, which
  // is exactly the trade overload wants.
  std::optional<Batch> batch =
      worker.batcher.poll(now, force || overload_.brownout());
  if (!batch.has_value()) return 0;
  const std::size_t rows = batch->rows;
  queued_rows_.fetch_sub(rows, std::memory_order_acq_rel);
  obs_.queued_rows.set(
      static_cast<double>(queued_rows_.load(std::memory_order_relaxed)));
  score_batch(worker, std::move(*batch));
  return rows;
}

void ScoringService::worker_loop(std::size_t worker_index) {
  WorkerState& worker = *worker_states_[worker_index];
  Watchdog& watchdog = *watchdog_;
  for (;;) {
    // Progress proof for the stall monitor: bumped every iteration, so a
    // worker only reads as stalled while wedged *inside* one (gather /
    // score) pass — normally a model that never returns.
    watchdog.heartbeat(worker_index);
    const State state = state_.load(std::memory_order_seq_cst);
    if (state == State::kStopped)
      return;  // immediate stop: final_sweep() resolves leftovers
    std::size_t moved = 0;
    std::size_t scored = 0;
    try {
      moved = gather(worker_index, worker, /*steal=*/true);
      scored =
          assemble_and_score(worker, /*force=*/state == State::kDraining);
    } catch (const std::exception& error) {
      // Last-resort containment (score_batch already fails its own batch
      // kInternalError): nothing may kill a worker thread. Requests the
      // iteration touched are still in the rings/batcher for the next
      // pass — none are lost.
      MEV_LOG_EVERY(*logger_, obs::LogLevel::kError, /*rate_per_s=*/1.0,
                    /*burst=*/5.0, "serve.service",
                    "worker iteration threw; contained",
                    {obs::LogField::u64_value("worker", worker_index),
                     obs::LogField::string("error", error.what())});
    } catch (...) {
      MEV_LOG_EVERY(*logger_, obs::LogLevel::kError, /*rate_per_s=*/1.0,
                    /*burst=*/5.0, "serve.service",
                    "worker iteration threw; contained",
                    {obs::LogField::u64_value("worker", worker_index)});
    }
    if (scored > 0 && worker_states_.size() > 1) {
      // Work conservation under affinity wakeups: if this worker's own
      // shards refilled with at least a full batch while it was scoring,
      // it is saturated — recruit one sibling to steal. Without this,
      // idle workers parked on their own signals would never learn about
      // a hot shard's backlog. The full-batch threshold matters: a
      // recruit that steals less flushes on its *own* delay window,
      // re-fragmenting the stream the affinity wakeup exists to keep
      // together.
      const std::size_t workers = worker_states_.size();
      std::uint64_t backlog_rows = 0;
      for (std::size_t s = worker_index; s < shards_.size(); s += workers)
        backlog_rows += shards_[s]->rows.load(std::memory_order_relaxed);
      if (backlog_rows >= config_.max_batch_rows) {
        std::size_t target =
            help_rr_.fetch_add(1, std::memory_order_relaxed) % workers;
        if (target == worker_index) target = (target + 1) % workers;
        worker_states_[target]->signal.notify_one();
      }
    }
    if (moved > 0 || scored > 0) continue;
    if (state == State::kDraining) {
      if (worker.batcher.empty() && all_shards_empty()) return;
      continue;  // force-flush whatever is left, then re-check
    }

    // Idle: park on this worker's eventcount. The epoch key closes the
    // race with a submission's notify_one() landing between the re-check
    // and the wait. The re-check spans *all* shards (not just owned ones)
    // so a helper wakeup that raced with the gather above is not lost.
    const runtime::EventCount::Key key = worker.signal.prepare_wait();
    if (!all_shards_empty() ||
        state_.load(std::memory_order_seq_cst) != State::kRunning) {
      worker.signal.cancel_wait();
      continue;
    }
    // Parked = healthy: the idle flag tells the watchdog a quiet worker
    // is waiting for work, not wedged in it.
    watchdog.set_idle(worker_index, true);
    const auto wait_ms = worker.batcher.ms_until_flush(clock_->now_ms());
    if (wait_ms.has_value())
      worker.signal.wait_for_ms(key, std::max<std::uint64_t>(*wait_ms, 1));
    else
      worker.signal.wait(key);
    watchdog.set_idle(worker_index, false);
  }
}

void ScoringService::score_batch(WorkerState& worker, Batch batch) {
  obs::Span batch_span = obs::span(tracer_, "mev.serve.batch");
  const auto fault = current_fault();
  // Chaos phase 1 (latency faults) runs before the deadline gate below,
  // so an injected slow batch or stall deterministically expires
  // deadlined work at the execution stage.
  if (fault != nullptr) fault->pre_scan();

  // Post-dequeue deadline gate: time passes between batch formation and
  // this point (a slow predecessor batch, a wedged backend) — expired
  // work completes with kDeadline instead of consuming inference.
  {
    const std::uint64_t now = clock_->now_ms();
    bool any_expired = false;
    for (const auto& request : batch.requests)
      any_expired |= request.expired(now);
    if (any_expired) {
      std::vector<Request> live;
      std::vector<Request> expired;
      std::size_t live_rows = 0;
      live.reserve(batch.requests.size());
      for (auto& request : batch.requests) {
        if (request.expired(now)) {
          expired.push_back(std::move(request));
        } else {
          live_rows += request.counts.rows();
          live.push_back(std::move(request));
        }
      }
      count_deadline_stage(DeadlineStage::kPostDequeue, expired.size());
      // The whole batch was already uncharged from queued_rows_ when it
      // was popped, so nothing more to subtract here.
      reject_all(std::move(expired), RejectReason::kDeadline,
                 /*charged_rows=*/0);
      batch.requests = std::move(live);
      batch.rows = live_rows;
      if (batch.requests.empty()) return;
    }
  }

  const std::uint64_t formed_us = clock_->now_us();
  if (overload_.enabled()) {
    // CoDel signal: the *minimum* queue delay across this batch — a
    // burst leaves at least one fresh request per interval, a standing
    // queue does not.
    std::uint64_t min_delay_us = UINT64_MAX;
    for (const auto& request : batch.requests)
      min_delay_us = std::min(min_delay_us, formed_us - request.enqueue_us);
    overload_.record_delay(min_delay_us / 1000);
  }

  const auto snapshot = current_snapshot();
  const auto fail_batch = [this, &batch](const char* what) {
    // Containment: the model (or the session rebuild feeding it) failed.
    // The whole batch gets a typed kInternalError — a mis-sized verdict
    // vector must never be attributed row-by-row — and the worker thread
    // survives to take the next batch.
    counters_.batch_failures.fetch_add(1, std::memory_order_relaxed);
    obs_.batch_failures.inc();
    counters_.rejected_internal.fetch_add(batch.requests.size(),
                                          std::memory_order_relaxed);
    obs_.rejected_internal.inc(batch.requests.size());
    MEV_LOG_EVERY(*logger_, obs::LogLevel::kWarn, /*rate_per_s=*/1.0,
                  /*burst=*/5.0, "serve.service", "batch failed",
                  {obs::LogField::string("error", what),
                   obs::LogField::u64_value("rows", batch.rows)});
    for (auto& request : batch.requests) resolve_internal_error(request);
  };

  std::vector<core::Verdict> verdicts;
  std::uint64_t scan_start_us = formed_us;
  try {
    if (worker.pinned.get() != snapshot.get()) {
      // Model changed under us (hot swap) or first batch: bind a fresh
      // pre-warmed session. This is the only allocating path; between
      // swaps the steady state reuses every buffer.
      const std::size_t warm = config_.session_max_batch != 0
                                   ? config_.session_max_batch
                                   : config_.max_batch_rows;
      worker.session = std::make_unique<nn::InferenceSession>(
          snapshot->detector.make_session(warm));
      worker.pinned = snapshot;
    }

    {
      obs::Span assemble = obs::span(tracer_, "mev.serve.assemble");
      worker.batch_counts.resize(batch.rows, snapshot->count_cols);
      std::size_t row = 0;
      for (const auto& request : batch.requests)
        for (std::size_t i = 0; i < request.counts.rows(); ++i)
          worker.batch_counts.set_row(row++, request.counts.row(i));
      assemble.arg("rows", static_cast<double>(batch.rows));
      assemble.arg("requests", static_cast<double>(batch.requests.size()));
    }

    scan_start_us = clock_->now_us();
    verdicts =
        snapshot->detector.scan_counts(*worker.session, worker.batch_counts);
    // Chaos phase 2 (outcome faults) sits inside the containment block:
    // an injected throw or garble takes the same path a real backend
    // fault would.
    if (fault != nullptr) fault->post_scan(verdicts);
    if (verdicts.size() != batch.rows)
      throw std::runtime_error(
          "model returned " + std::to_string(verdicts.size()) +
          " verdicts for " + std::to_string(batch.rows) + " rows");
  } catch (const std::exception& error) {
    fail_batch(error.what());
    return;
  } catch (...) {
    fail_batch("unknown error");
    return;
  }
  const std::uint64_t done_us = clock_->now_us();
  batch_span.arg("rows", static_cast<double>(batch.rows));
  batch_span.arg("requests", static_cast<double>(batch.requests.size()));
  batch_span.arg("model_version", static_cast<double>(snapshot->version));

  std::size_t offset = 0;
  for (auto& request : batch.requests) {
    ScoreResult result;
    result.model_version = snapshot->version;
    const std::size_t n = request.counts.rows();
    result.verdicts.assign(verdicts.begin() + offset,
                           verdicts.begin() + offset + n);
    offset += n;
    result.stages.admitted_us = request.enqueue_us;
    result.stages.formed_us = formed_us;
    result.stages.scan_start_us = scan_start_us;
    result.stages.scan_end_us = done_us;
    if (request.trace.valid()) {
      // Retroactive service-side spans, emitted on THIS worker thread but
      // parented under the submitter's request span — the cross-thread
      // half of the span tree.
      tracer_->complete_span("mev.serve.queue", request.trace,
                             request.enqueue_us, formed_us);
      tracer_->complete_span("mev.serve.scan", request.trace, scan_start_us,
                             done_us);
    }
    resolve(request, std::move(result));
  }

  // Drift: every verdict's confidence feeds the sliding score window
  // (and, until frozen, the reference population).
  for (const auto& verdict : verdicts)
    drift_.record(done_us, verdict.malware_confidence);

  obs_.batches.inc();
  obs_.batch_rows.record(batch.rows);
  obs_.completed_requests.inc(batch.requests.size());
  obs_.completed_rows.inc(batch.rows);
  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  counters_.completed_requests.fetch_add(batch.requests.size(),
                                         std::memory_order_relaxed);
  counters_.completed_rows.fetch_add(batch.rows, std::memory_order_relaxed);
  for (const auto& request : batch.requests) {
    obs_.queue_delay_us.record(formed_us - request.enqueue_us);
    obs_.e2e_latency_us.record(done_us - request.enqueue_us);
  }

  std::lock_guard<std::mutex> lock(histogram_mutex_);
  batch_rows_hist_.record(batch.rows);
  for (const auto& request : batch.requests) {
    queue_delay_hist_.record(formed_us - request.enqueue_us);
    e2e_latency_hist_.record(done_us - request.enqueue_us);
  }
}

void ScoringService::reject_all(std::vector<Request> requests,
                                RejectReason reason,
                                std::size_t charged_rows) {
  if (requests.empty()) return;
  if (charged_rows > 0) {
    queued_rows_.fetch_sub(charged_rows, std::memory_order_acq_rel);
    obs_.queued_rows.set(
        static_cast<double>(queued_rows_.load(std::memory_order_relaxed)));
  }
  for (auto& request : requests) {
    ScoreResult result;
    result.rejected = reason;
    result.stages.admitted_us = request.enqueue_us;
    resolve(request, std::move(result));
  }
  switch (reason) {
    case RejectReason::kQueueFull:
      counters_.rejected_queue_full.fetch_add(requests.size(),
                                              std::memory_order_relaxed);
      obs_.rejected_queue_full.inc(requests.size());
      break;
    case RejectReason::kShuttingDown:
      counters_.rejected_shutting_down.fetch_add(requests.size(),
                                                 std::memory_order_relaxed);
      obs_.rejected_shutting_down.inc(requests.size());
      break;
    case RejectReason::kDeadline:
      counters_.rejected_deadline.fetch_add(requests.size(),
                                            std::memory_order_relaxed);
      obs_.rejected_deadline.inc(requests.size());
      break;
    case RejectReason::kOverloaded:
      counters_.rejected_overloaded.fetch_add(requests.size(),
                                              std::memory_order_relaxed);
      obs_.rejected_overloaded.inc(requests.size());
      break;
    case RejectReason::kInternalError:
      counters_.rejected_internal.fetch_add(requests.size(),
                                            std::memory_order_relaxed);
      obs_.rejected_internal.inc(requests.size());
      break;
    case RejectReason::kNone:
      break;
  }
}

void ScoringService::final_sweep(bool drain) {
  // Workers are joined (or never existed): one thread owns everything.
  WorkerState& sweeper = *worker_states_.front();

  if (drain) {
    // Score every leftover batch on this thread — same path as a worker,
    // so drained verdicts are indistinguishable from normal ones. The
    // rings need an outer loop: drain_shard takes at most one batch's
    // worth per pass.
    for (auto& state : worker_states_)
      while (assemble_and_score(*state, /*force=*/true) > 0) {
      }
    for (;;) {
      std::size_t moved = 0;
      for (auto& shard : shards_) moved += drain_shard(*shard, sweeper);
      const std::size_t scored = assemble_and_score(sweeper, /*force=*/true);
      if (moved == 0 && scored == 0) return;
    }
  }

  // Immediate stop: everything still queued is rejected, exactly once.
  std::vector<Request> orphans;
  std::size_t orphan_rows = 0;
  const std::uint64_t now = clock_->now_ms();
  for (auto& state : worker_states_)
    while (auto batch = state->batcher.poll(now, /*force=*/true)) {
      orphan_rows += batch->rows;
      for (auto& request : batch->requests)
        orphans.push_back(std::move(request));
    }
  for (auto& shard : shards_) {
    std::size_t rows = 0;
    while (auto request = shard->ring.try_pop()) {
      rows += request->counts.rows();
      orphans.push_back(std::move(*request));
    }
    if (rows > 0) {
      orphan_rows += rows;
      const std::uint64_t left =
          shard->rows.fetch_sub(rows, std::memory_order_relaxed) - rows;
      shard->depth_gauge.set(static_cast<double>(left));
    }
  }
  reject_all(std::move(orphans), RejectReason::kShuttingDown, orphan_rows);
}

std::size_t ScoringService::pump(bool force) {
  if (config_.workers != 0)
    throw std::logic_error(
        "ScoringService::pump: only valid in manual mode (workers == 0)");
  WorkerState& worker = *worker_states_.front();
  for (auto& shard : shards_) drain_shard(*shard, worker);
  return assemble_and_score(
      worker,
      force || state_.load(std::memory_order_acquire) != State::kRunning);
}

ServiceStats ScoringService::stats() const {
  ServiceStats stats;
  stats.accepted_requests =
      counters_.accepted_requests.load(std::memory_order_relaxed);
  stats.accepted_rows =
      counters_.accepted_rows.load(std::memory_order_relaxed);
  stats.rejected_queue_full =
      counters_.rejected_queue_full.load(std::memory_order_relaxed);
  stats.rejected_shutting_down =
      counters_.rejected_shutting_down.load(std::memory_order_relaxed);
  stats.rejected_deadline =
      counters_.rejected_deadline.load(std::memory_order_relaxed);
  stats.rejected_overloaded =
      counters_.rejected_overloaded.load(std::memory_order_relaxed);
  stats.rejected_internal =
      counters_.rejected_internal.load(std::memory_order_relaxed);
  stats.expired_at_admission =
      counters_.expired_at_admission.load(std::memory_order_relaxed);
  stats.expired_in_queue =
      counters_.expired_in_queue.load(std::memory_order_relaxed);
  stats.expired_post_dequeue =
      counters_.expired_post_dequeue.load(std::memory_order_relaxed);
  stats.completed_requests =
      counters_.completed_requests.load(std::memory_order_relaxed);
  stats.completed_rows =
      counters_.completed_rows.load(std::memory_order_relaxed);
  stats.batches = counters_.batches.load(std::memory_order_relaxed);
  stats.model_swaps = counters_.model_swaps.load(std::memory_order_relaxed);
  stats.stolen_requests =
      counters_.stolen_requests.load(std::memory_order_relaxed);
  stats.spilled_submissions =
      counters_.spilled_submissions.load(std::memory_order_relaxed);
  stats.callback_errors =
      counters_.callback_errors.load(std::memory_order_relaxed);
  stats.batch_failures =
      counters_.batch_failures.load(std::memory_order_relaxed);
  stats.worker_stalls = watchdog_->stall_events();
  stats.worker_recoveries = watchdog_->recoveries();
  stats.stalled_workers = watchdog_->stalled_count();
  stats.overload_state = static_cast<std::uint64_t>(overload_.state());
  stats.shed_fraction = overload_.shed_fraction();
  const std::uint64_t now_us = clock_->now_us();
  stats.score_psi = drift_.psi(now_us);
  stats.drift_reference_frozen = drift_.reference_frozen();
  const obs::SloTracker::Snapshot slo = slo_.snapshot(now_us);
  stats.slo_fast_burn = slo.availability.fast_burn;
  stats.slo_slow_burn = slo.availability.slow_burn;
  stats.slo_budget_remaining = slo.availability.budget_remaining;
  std::lock_guard<std::mutex> lock(histogram_mutex_);
  stats.batch_rows = batch_rows_hist_;
  stats.queue_delay_us = queue_delay_hist_;
  stats.e2e_latency_us = e2e_latency_hist_;
  return stats;
}

}  // namespace mev::serve
