#include "runtime/clock.hpp"

#include <chrono>
#include <numeric>
#include <thread>

namespace mev::runtime {

std::uint64_t SystemClock::now_ms() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(t).count());
}

std::uint64_t SystemClock::now_us() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t).count());
}

void SystemClock::sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

SystemClock& SystemClock::instance() {
  static SystemClock clock;
  return clock;
}

std::uint64_t FakeClock::total_slept_ms() const noexcept {
  return std::accumulate(sleeps_.begin(), sleeps_.end(),
                         std::uint64_t{0});
}

}  // namespace mev::runtime
