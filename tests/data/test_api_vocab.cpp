#include "data/api_vocab.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace mev::data {
namespace {

TEST(ApiVocab, CanonicalHasExactly491Names) {
  EXPECT_EQ(ApiVocab::instance().size(), kNumApiFeatures);
  EXPECT_EQ(kNumApiFeatures, 491u);
}

TEST(ApiVocab, CanonicalIsSortedAndUnique) {
  const auto names = ApiVocab::instance().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end());
}

TEST(ApiVocab, ContainsEveryPaperName) {
  const auto& vocab = ApiVocab::instance();
  for (const auto name : paper_api_names())
    EXPECT_TRUE(vocab.contains(name)) << name;
}

TEST(ApiVocab, Fig1ApisPresent) {
  // The two APIs the paper's Fig. 1 adversarial example adds.
  const auto& vocab = ApiVocab::instance();
  EXPECT_TRUE(vocab.contains("destroyicon"));
  EXPECT_TRUE(vocab.contains("dllsload"));
}

TEST(ApiVocab, IndexNameRoundTrip) {
  const auto& vocab = ApiVocab::instance();
  for (std::size_t i = 0; i < vocab.size(); i += 37) {
    const auto idx = vocab.index_of(vocab.name(i));
    ASSERT_TRUE(idx.has_value());
    EXPECT_EQ(*idx, i);
  }
}

TEST(ApiVocab, LookupIsCaseInsensitive) {
  const auto& vocab = ApiVocab::instance();
  const auto lower = vocab.index_of("writeprocessmemory");
  const auto mixed = vocab.index_of("WriteProcessMemory");
  ASSERT_TRUE(lower.has_value());
  EXPECT_EQ(lower, mixed);
}

TEST(ApiVocab, UnknownNameReturnsNullopt) {
  EXPECT_FALSE(ApiVocab::instance().index_of("definitely_not_an_api"));
}

TEST(ApiVocab, NameOutOfRangeThrows) {
  EXPECT_THROW(ApiVocab::instance().name(kNumApiFeatures),
               std::out_of_range);
}

TEST(ApiVocab, CustomVocabNormalizesCase) {
  const ApiVocab vocab({"Beta", "alpha"});
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.name(0), "alpha");  // sorted after lower-casing
  EXPECT_EQ(vocab.name(1), "beta");
}

TEST(ApiVocab, CustomVocabRejectsBadInput) {
  EXPECT_THROW(ApiVocab({}), std::invalid_argument);
  EXPECT_THROW(ApiVocab({"a", ""}), std::invalid_argument);
  EXPECT_THROW(ApiVocab({"dup", "DUP"}), std::invalid_argument);
}

TEST(ApiVocab, ToLowerAscii) {
  EXPECT_EQ(to_lower_ascii("GetProcAddress"), "getprocaddress");
  EXPECT_EQ(to_lower_ascii(""), "");
  EXPECT_EQ(to_lower_ascii("123_abc"), "123_abc");
}

TEST(ApiVocab, Table3ExcerptNeighborhoodIsAlphabetical) {
  // Table III shows indices 475..484 covering "w"-prefixed names; ours are
  // alphabetical too, so the tail of the vocabulary must be w-names.
  const auto& vocab = ApiVocab::instance();
  EXPECT_EQ(vocab.name(480)[0], 'w');
}

}  // namespace
}  // namespace mev::data
