// Per-client API-key authentication + token-bucket rate limiting for the
// scoring frontend. The same bucket idiom as the logger's per-site limiter
// (obs/log.cpp): continuous refill at rate_per_s capped at burst, spend on
// admit — but keyed by client and charged per ROW, so a 16-row batch
// costs 16 tokens and a flood of small requests is limited the same as a
// few large ones.
//
//   limiter.check("key", rows) →  kAllowed      (tokens spent)
//                                 kUnknownKey   (HTTP 401)
//                                 kOverRate     (HTTP 429 + Retry-After)
//
// Deterministically testable: timestamps come from an injectable
// runtime::Clock (FakeClock in tests). Thread-safe; one mutex is fine at
// admin-key cardinality (a handful of clients, not a handful of millions).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "runtime/clock.hpp"

namespace mev::net {

/// One client credential. `rows_per_s` refills the bucket; `burst_rows`
/// caps it (and bounds the largest single request that can ever pass).
struct ApiKey {
  std::string key;            // the secret presented in X-Api-Key
  std::string client;         // label for logs/metrics (not secret)
  double rows_per_s = 1000.0;
  double burst_rows = 2000.0;
};

class ApiKeyLimiter {
 public:
  enum class Outcome { kAllowed, kUnknownKey, kOverRate };

  struct Decision {
    Outcome outcome = Outcome::kAllowed;
    /// Whole seconds until `cost_rows` tokens will exist (≥1); only
    /// meaningful for kOverRate — served as Retry-After.
    std::uint64_t retry_after_s = 0;
    /// The matched client label; empty for kUnknownKey.
    std::string client;
  };

  /// `clock` nullptr = the system clock. Must outlive the limiter.
  explicit ApiKeyLimiter(std::vector<ApiKey> keys,
                         runtime::Clock* clock = nullptr);

  /// No keys configured = authentication disabled (every check allows).
  bool open() const noexcept { return buckets_.empty(); }

  /// Charges `cost_rows` against `key`'s bucket.
  Decision check(std::string_view key, double cost_rows);

 private:
  struct Bucket {
    ApiKey config;
    double tokens = 0.0;
    std::uint64_t last_refill_us = 0;
    bool initialized = false;
  };

  runtime::Clock* clock_;
  std::mutex mutex_;
  std::unordered_map<std::string, Bucket> buckets_;
};

}  // namespace mev::net
