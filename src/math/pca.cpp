#include "math/pca.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "math/rng.hpp"
#include "math/stats.hpp"

namespace mev::math {

namespace {

/// Sorts eigenpairs by descending eigenvalue.
EigenResult sort_eigen(std::vector<double> values, Matrix vectors) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] > values[b]; });
  EigenResult out;
  out.values.reserve(values.size());
  for (std::size_t i : order) out.values.push_back(values[i]);
  out.vectors = vectors.gather_cols(order);
  return out;
}

/// Modified Gram-Schmidt orthonormalization of the columns of Q in place.
void orthonormalize_columns(Matrix& q, Rng& rng) {
  const std::size_t n = q.rows(), k = q.cols();
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t prev = 0; prev < j; ++prev) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        proj += static_cast<double>(q(i, j)) * q(i, prev);
      for (std::size_t i = 0; i < n; ++i)
        q(i, j) -= static_cast<float>(proj) * q(i, prev);
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      norm += static_cast<double>(q(i, j)) * q(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate column: replace with a random direction and retry once.
      for (std::size_t i = 0; i < n; ++i)
        q(i, j) = static_cast<float>(rng.normal());
      for (std::size_t prev = 0; prev < j; ++prev) {
        double proj = 0.0;
        for (std::size_t i = 0; i < n; ++i)
          proj += static_cast<double>(q(i, j)) * q(i, prev);
        for (std::size_t i = 0; i < n; ++i)
          q(i, j) -= static_cast<float>(proj) * q(i, prev);
      }
      norm = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        norm += static_cast<double>(q(i, j)) * q(i, j);
      norm = std::sqrt(std::max(norm, 1e-12));
    }
    const float inv = static_cast<float>(1.0 / norm);
    for (std::size_t i = 0; i < n; ++i) q(i, j) *= inv;
  }
}

}  // namespace

EigenResult jacobi_eigen_symmetric(const Matrix& a, int max_sweeps,
                                   double tol) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("jacobi_eigen_symmetric: non-square matrix");
  const std::size_t n = a.rows();
  Matrix d = a;          // working copy, converges to diagonal
  Matrix v(n, n, 0.0f);  // accumulated rotations
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0f;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q)
        off += static_cast<double>(d(p, q)) * d(p, q);
    if (std::sqrt(off) < tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) < 1e-30) continue;
        const double app = d(p, p), aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < n; ++i) {
          const double dip = d(i, p), diq = d(i, q);
          d(i, p) = static_cast<float>(c * dip - s * diq);
          d(i, q) = static_cast<float>(s * dip + c * diq);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double dpi = d(p, i), dqi = d(q, i);
          d(p, i) = static_cast<float>(c * dpi - s * dqi);
          d(q, i) = static_cast<float>(s * dpi + c * dqi);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p), viq = v(i, q);
          v(i, p) = static_cast<float>(c * vip - s * viq);
          v(i, q) = static_cast<float>(s * vip + c * viq);
        }
      }
    }
  }

  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = d(i, i);
  return sort_eigen(std::move(values), std::move(v));
}

EigenResult top_k_eigen(const Matrix& a, std::size_t k, int iterations,
                        double tol, std::uint64_t seed) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("top_k_eigen: non-square matrix");
  if (k == 0 || k > a.rows())
    throw std::invalid_argument("top_k_eigen: k out of range");
  const std::size_t n = a.rows();
  Rng rng(seed);
  Matrix q(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j)
      q(i, j) = static_cast<float>(rng.normal());
  orthonormalize_columns(q, rng);

  std::vector<double> prev(k, 0.0);
  std::vector<double> values(k, 0.0);
  for (int it = 0; it < iterations; ++it) {
    Matrix y = matmul(a, q);  // n x k
    // Rayleigh quotients before re-orthonormalization.
    for (std::size_t j = 0; j < k; ++j) {
      double num = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        num += static_cast<double>(q(i, j)) * y(i, j);
      values[j] = num;
    }
    q = std::move(y);
    orthonormalize_columns(q, rng);
    double delta = 0.0;
    for (std::size_t j = 0; j < k; ++j)
      delta = std::max(delta, std::abs(values[j] - prev[j]));
    if (it > 2 && delta < tol * (1.0 + std::abs(values[0]))) break;
    prev = values;
  }
  return sort_eigen(std::move(values), std::move(q));
}

void Pca::fit(const Matrix& x, std::size_t k, bool exact) {
  if (x.rows() == 0 || x.cols() == 0)
    throw std::invalid_argument("Pca::fit: empty data");
  if (k == 0 || k > x.cols())
    throw std::invalid_argument("Pca::fit: k out of range");
  mean_ = column_means(x);
  const Matrix cov = covariance_matrix(x);
  total_variance_ = 0.0;
  for (std::size_t i = 0; i < cov.rows(); ++i) total_variance_ += cov(i, i);

  EigenResult eig = exact ? jacobi_eigen_symmetric(cov)
                          : top_k_eigen(cov, k);
  eigenvalues_.assign(eig.values.begin(),
                      eig.values.begin() + static_cast<std::ptrdiff_t>(k));
  std::vector<std::size_t> keep(k);
  for (std::size_t i = 0; i < k; ++i) keep[i] = i;
  components_ = eig.vectors.gather_cols(keep);
  kept_variance_ = 0.0;
  for (double v : eigenvalues_) kept_variance_ += std::max(v, 0.0);
}

Matrix Pca::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("Pca::transform before fit");
  if (x.cols() != components_.rows())
    throw std::invalid_argument("Pca::transform: dimension mismatch");
  Matrix centered = x;
  for (std::size_t r = 0; r < centered.rows(); ++r) {
    auto row = centered.row(r);
    for (std::size_t c = 0; c < centered.cols(); ++c) row[c] -= mean_[c];
  }
  return matmul(centered, components_);
}

Matrix Pca::inverse_transform(const Matrix& z) const {
  if (!fitted()) throw std::logic_error("Pca::inverse_transform before fit");
  if (z.cols() != components_.cols())
    throw std::invalid_argument("Pca::inverse_transform: dimension mismatch");
  Matrix x = matmul_a_bt(z, components_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] += mean_[c];
  }
  return x;
}

Matrix Pca::reconstruct(const Matrix& x) const {
  return inverse_transform(transform(x));
}

}  // namespace mev::math
