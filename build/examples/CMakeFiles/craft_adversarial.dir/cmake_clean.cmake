file(REMOVE_RECURSE
  "CMakeFiles/craft_adversarial.dir/craft_adversarial.cpp.o"
  "CMakeFiles/craft_adversarial.dir/craft_adversarial.cpp.o.d"
  "craft_adversarial"
  "craft_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/craft_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
