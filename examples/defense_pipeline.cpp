// Defense pipeline: attack the detector, harden it with adversarial
// training (§II-C.1), and show the attack's detection rate recovering.
//
//   ./defense_pipeline [tiny|fast|full]
#include <iostream>

#include "attack/jsma.hpp"
#include "core/detector.hpp"
#include "core/experiment_config.hpp"
#include "data/api_vocab.hpp"
#include "data/synthetic.hpp"
#include "defense/adversarial_training.hpp"
#include "defense/classifier.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"

using namespace mev;

namespace {

double detection_on(defense::Classifier& clf, const math::Matrix& features) {
  const auto preds = clf.classify(features);
  return eval::detection_rate(preds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto config =
      core::ExperimentConfig::from_name(argc > 1 ? argv[1] : "tiny");
  const auto& vocab = data::ApiVocab::instance();
  const data::GenerativeModel generator(vocab, data::GenerativeConfig{});
  math::Rng rng(config.seed);

  std::cout << "[1/4] training the undefended detector...\n";
  const data::DatasetBundle bundle =
      generator.generate_bundle(config.dataset_spec(), rng);
  auto trained = core::train_detector(bundle, config.target_architecture(),
                                      config.target_training(), vocab);
  core::MalwareDetector& detector = *trained.detector;

  // Malware test features to attack.
  const auto malware_rows = bundle.test.indices_of(data::kMalwareLabel);
  std::vector<std::size_t> rows(
      malware_rows.begin(),
      malware_rows.begin() +
          std::min(malware_rows.size(), config.attack_sample_cap()));
  const math::Matrix malware_x = trained.test_features.gather_rows(rows);

  std::cout << "[2/4] crafting JSMA adversarial examples (theta=0.1, "
               "gamma=0.02)...\n";
  attack::JsmaConfig jsma_cfg;
  jsma_cfg.theta = 0.1f;
  jsma_cfg.gamma = 0.02f;  // the paper's adversarial-training operating point
  const attack::Jsma jsma(jsma_cfg);
  const attack::AttackResult crafted = jsma.craft(detector.network(), malware_x);

  defense::NetworkClassifier undefended(detector.network_ptr(), "no-defense");
  const double det_before = detection_on(undefended, crafted.adversarial);

  std::cout << "[3/4] adversarial training (Table V augmentation)...\n";
  // Fresh clean samples re-balance the augmented set, as in the paper.
  const data::CountDataset clean_pool = generator.generate_dataset(
      crafted.adversarial.rows(), 0, rng);
  const math::Matrix clean_pool_features =
      detector.features_of_counts(clean_pool.counts);
  const auto training_set = defense::build_adversarial_training_set(
      trained.train_features, bundle.train.labels, crafted.adversarial,
      &clean_pool_features);
  defense::AdversarialTrainingConfig at_cfg{config.target_architecture(),
                                            config.target_training()};
  auto hardened_net = defense::adversarial_training(training_set, at_cfg);
  defense::NetworkClassifier hardened(hardened_net, "adv-training");

  std::cout << "[4/4] re-evaluating...\n";
  eval::Table table("Adversarial training: before vs after");
  table.header({"metric", "no defense", "adv training"});
  table.row({"detection rate on advex", eval::Table::fmt(det_before),
             eval::Table::fmt(detection_on(hardened, crafted.adversarial))});
  table.row({"detection rate on malware",
             eval::Table::fmt(detection_on(undefended, malware_x)),
             eval::Table::fmt(detection_on(hardened, malware_x))});
  // Clean pass rate (1 - false positives) on clean test rows.
  const auto clean_rows = bundle.test.indices_of(data::kCleanLabel);
  const math::Matrix clean_x = trained.test_features.gather_rows(clean_rows);
  table.row({"TNR on clean",
             eval::Table::fmt(1.0 - detection_on(undefended, clean_x)),
             eval::Table::fmt(1.0 - detection_on(hardened, clean_x))});
  std::cout << table.render();
  std::cout << "augmented training set: " << training_set.stats.total()
            << " rows (" << training_set.stats.adversarial
            << " adversarial, " << training_set.stats.duplicates_removed
            << " duplicates removed)\n";
  return 0;
}
