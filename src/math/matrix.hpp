// Dense row-major float matrix — the storage type for datasets, network
// weights and activations throughout the library.
//
// Design notes:
//  * float (not double): matches the precision malware-detection DNNs ship
//    with and halves memory traffic on the hot matmul path.
//  * Row-major with contiguous storage so a row is a feature vector usable
//    as a span without copying.
//  * Shape errors are programming errors and throw std::invalid_argument —
//    they are never data-dependent.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace mev::math {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, float value);

  /// Builds from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  /// Builds a 1 x v.size() row matrix from a vector.
  static Matrix row_vector(std::span<const float> v);

  /// Builds a v.size() x 1 column matrix from a vector.
  static Matrix col_vector(std::span<const float> v);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws std::out_of_range).
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  std::span<float> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }

  /// Copies `src` (length == cols) into row r.
  void set_row(std::size_t r, std::span<const float> src);

  /// Appends one row (length must equal cols, or define cols if empty).
  void append_row(std::span<const float> src);

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Elementwise in-place arithmetic. Shapes must match.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(float scalar) noexcept;
  /// Hadamard (elementwise) product.
  Matrix& hadamard(const Matrix& rhs);

  /// Applies f to every element in place. Type-erased overload for cold
  /// call sites; hot paths should use the templated apply_fn below, which
  /// inlines the functor.
  Matrix& apply(const std::function<float(float)>& f);

  /// Applies f to every element in place with the functor inlined.
  template <typename F>
  Matrix& apply_fn(F&& f) {
    for (auto& x : data_) x = f(x);
    return *this;
  }

  /// Clamps every element to [lo, hi].
  Matrix& clamp(float lo, float hi) noexcept;

  void fill(float value) noexcept;

  /// Reshapes to rows x cols without shrinking capacity: growing past the
  /// high-water mark allocates, everything after that is allocation-free.
  /// Element values are unspecified after a resize that changes the total
  /// element count (workspaces overwrite them anyway).
  void resize(std::size_t rows, std::size_t cols);

  /// Pre-allocates capacity for a rows x cols matrix without reshaping.
  void reserve(std::size_t rows, std::size_t cols);

  Matrix transposed() const;

  /// Extracts rows [begin, end) as a new matrix.
  Matrix slice_rows(std::size_t begin, std::size_t end) const;

  /// Extracts the given rows (gather) as a new matrix.
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  /// Extracts the given columns (gather) as a new matrix.
  Matrix gather_cols(std::span<const std::size_t> indices) const;

  /// Sum of all elements.
  double sum() const noexcept;

  /// Frobenius norm.
  double frobenius_norm() const noexcept;

  /// Maximum absolute element (0 for empty).
  float max_abs() const noexcept;

  bool operator==(const Matrix& rhs) const noexcept = default;

  /// Human-readable dump for debugging/tests (rows capped at `max_rows`).
  std::string to_string(std::size_t max_rows = 8) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, float scalar);
Matrix operator*(float scalar, Matrix rhs);

/// C = A * B. Blocked, OpenMP-parallel when available.
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A^T * B without materializing A^T.
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A * B^T without materializing B^T.
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

// Destination-passing variants: `c` is resized (capacity-preserving) and
// overwritten, so a warm workspace makes them allocation-free. `c` must
// not alias `a` or `b`.

/// C = A * B.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& c);

/// C = A^T * B (or C += A^T * B when `accumulate`; shapes must already
/// match in that case). The accumulate form is the gradient-accumulation
/// kernel for dense-layer weight gradients.
void matmul_at_b_into(const Matrix& a, const Matrix& b, Matrix& c,
                      bool accumulate = false);

/// C = A * B^T.
void matmul_a_bt_into(const Matrix& a, const Matrix& b, Matrix& c);

/// Gathers the given rows of `src` into `out` (resized, overwritten).
/// `out` must not alias `src`.
void gather_rows_into(const Matrix& src, std::span<const std::size_t> indices,
                      Matrix& out);

/// acc(0, j) += sum over rows of m(:, j). `acc` must be 1 x m.cols().
void add_column_sums(const Matrix& m, Matrix& acc);

/// y = A * x for a vector x (x.size() == A.cols()).
std::vector<float> matvec(const Matrix& a, std::span<const float> x);

/// Adds the row vector `bias` (length == m.cols()) to every row of m.
void add_row_broadcast(Matrix& m, std::span<const float> bias);

/// Column-wise sums, length == m.cols().
std::vector<float> column_sums(const Matrix& m);

/// Column-wise means, length == m.cols(). Requires m.rows() > 0.
std::vector<float> column_means(const Matrix& m);

}  // namespace mev::math
