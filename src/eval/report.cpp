#include "eval/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace mev::eval {

Table& Table::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  is_separator_.insert(is_separator_.begin(), false);
  has_header_ = true;
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  is_separator_.push_back(false);
  return *this;
}

Table& Table::separator() {
  rows_.emplace_back();
  is_separator_.push_back(true);
  return *this;
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt_or_nan(double value, int precision) {
  if (std::isnan(value)) return "nan";
  return fmt(value, precision);
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (is_separator_[i]) continue;
    const auto& row = rows_[i];
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::size_t total_width = widths.empty() ? 0 : 3 * (widths.size() - 1);
  for (std::size_t w : widths) total_width += w;
  total_width = std::max(total_width, title_.size());

  std::ostringstream os;
  os << std::string(total_width, '=') << '\n' << title_ << '\n'
     << std::string(total_width, '=') << '\n';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (is_separator_[i]) {
      os << std::string(total_width, '-') << '\n';
      continue;
    }
    const auto& row = rows_[i];
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << " | ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
    if (i == 0 && has_header_) os << std::string(total_width, '-') << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os) const { os << render(); }

namespace {

/// A coarse 10-row ASCII plot of detection rate (y in [0,1]) vs index.
std::string ascii_plot(const std::vector<SecurityCurve>& curves) {
  if (curves.empty() || curves[0].points.empty()) return {};
  const std::size_t n = curves[0].points.size();
  constexpr int kRows = 10;
  std::ostringstream os;
  for (int r = kRows; r >= 0; --r) {
    const double level = static_cast<double>(r) / kRows;
    os << std::fixed << std::setprecision(1) << level << " |";
    for (std::size_t i = 0; i < n; ++i) {
      char mark = ' ';
      for (std::size_t c = 0; c < curves.size(); ++c) {
        if (i >= curves[c].points.size()) continue;
        const double y = curves[c].points[i].detection_rate;
        if (std::abs(y - level) <= 0.5 / kRows)
          mark = static_cast<char>('A' + (c % 26));
      }
      os << ' ' << mark << ' ';
    }
    os << '\n';
  }
  os << "     ";
  for (std::size_t i = 0; i < n; ++i)
    os << std::setw(3) << std::left << i;
  os << "(index into " << curves[0].parameter << " grid)\n";
  for (std::size_t c = 0; c < curves.size(); ++c)
    os << "  " << static_cast<char>('A' + (c % 26)) << " = "
       << curves[c].name << '\n';
  return os.str();
}

}  // namespace

std::string render_curve(const SecurityCurve& curve) {
  return render_curves({curve});
}

std::string render_curves(const std::vector<SecurityCurve>& curves) {
  if (curves.empty()) return "(no curves)\n";
  std::ostringstream os;
  Table table("Security evaluation: detection rate vs " + curves[0].parameter);
  std::vector<std::string> head{curves[0].parameter};
  for (const auto& c : curves) head.push_back(c.name);
  head.push_back("mean L2 (" + curves[0].name + ")");
  head.push_back("mean #features");
  table.header(std::move(head));
  const std::size_t n = curves[0].points.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::string> row{Table::fmt(curves[0].points[i].attack_strength, 4)};
    for (const auto& c : curves)
      row.push_back(i < c.points.size()
                        ? Table::fmt(c.points[i].detection_rate)
                        : "-");
    row.push_back(Table::fmt(curves[0].points[i].mean_l2));
    row.push_back(Table::fmt(curves[0].points[i].mean_features, 1));
    table.row(std::move(row));
  }
  os << table.render() << '\n' << ascii_plot(curves);
  return os.str();
}

}  // namespace mev::eval
