#include "runtime/retry.hpp"

#include <algorithm>
#include <cmath>

namespace mev::runtime {

RetryPolicy RetryPolicy::none() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.initial_backoff_ms = 0;
  p.jitter = 0.0;
  return p;
}

std::uint64_t backoff_delay_ms(const RetryPolicy& policy,
                               std::size_t retry_index,
                               math::Rng& jitter_rng) {
  double delay = static_cast<double>(policy.initial_backoff_ms) *
                 std::pow(policy.backoff_multiplier,
                          static_cast<double>(retry_index));
  delay = std::min(delay, static_cast<double>(policy.max_backoff_ms));
  if (policy.jitter > 0.0) {
    const double j = std::clamp(policy.jitter, 0.0, 1.0);
    delay *= jitter_rng.uniform(1.0 - j, 1.0 + j);
  }
  return static_cast<std::uint64_t>(std::llround(std::max(delay, 0.0)));
}

}  // namespace mev::runtime
