// Small vector-math helpers used across the attack/defense/eval code.
#pragma once

#include <span>
#include <vector>

namespace mev::math {

/// Dot product. Requires equal lengths.
double dot(std::span<const float> a, std::span<const float> b);

/// Euclidean (L2) distance between two vectors of equal length.
double l2_distance(std::span<const float> a, std::span<const float> b);

/// L1 distance between two vectors of equal length.
double l1_distance(std::span<const float> a, std::span<const float> b);

/// L-infinity distance between two vectors of equal length.
double linf_distance(std::span<const float> a, std::span<const float> b);

/// Number of coordinates that differ by more than `tol` (L0 "distance").
std::size_t l0_distance(std::span<const float> a, std::span<const float> b,
                        float tol = 0.0f);

/// Euclidean norm.
double l2_norm(std::span<const float> a);

/// y += alpha * x. Requires equal lengths.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// In-place softmax with optional temperature (T > 0). Numerically stable.
void softmax_inplace(std::span<float> logits, float temperature = 1.0f);

/// Softmax of a copy.
std::vector<float> softmax(std::span<const float> logits,
                           float temperature = 1.0f);

/// Index of the maximum element. Requires non-empty input.
std::size_t argmax(std::span<const float> v);

/// Index of the minimum element. Requires non-empty input.
std::size_t argmin(std::span<const float> v);

}  // namespace mev::math
