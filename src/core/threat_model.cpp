#include "core/threat_model.hpp"

namespace mev::core {

std::string to_string(ThreatModel model) {
  switch (model) {
    case ThreatModel::kWhiteBox: return "white-box";
    case ThreatModel::kGreyBox: return "grey-box";
    case ThreatModel::kBlackBox: return "black-box";
  }
  return "unknown";
}

}  // namespace mev::core
