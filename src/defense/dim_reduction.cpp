#include "defense/dim_reduction.hpp"

#include <stdexcept>

#include "data/dataset.hpp"
#include "nn/session.hpp"

namespace mev::defense {

DimReductionClassifier::DimReductionClassifier(
    math::Pca pca, std::shared_ptr<nn::Network> net)
    : pca_(std::move(pca)), net_(std::move(net)) {
  if (net_ == nullptr)
    throw std::invalid_argument("DimReductionClassifier: null network");
  if (!pca_.fitted())
    throw std::invalid_argument("DimReductionClassifier: unfitted PCA");
  if (net_->input_dim() != pca_.k())
    throw std::invalid_argument(
        "DimReductionClassifier: network/PCA dimension mismatch");
  session_ = std::make_unique<nn::InferenceSession>(*net_);
}

std::vector<int> DimReductionClassifier::classify(
    const math::Matrix& features) {
  const auto preds = session_->predict(pca_.transform(features));
  return {preds.begin(), preds.end()};
}

std::vector<double> DimReductionClassifier::malware_confidence(
    const math::Matrix& features) {
  const math::Matrix& probs = session_->predict_proba(pca_.transform(features));
  std::vector<double> conf(probs.rows());
  for (std::size_t i = 0; i < probs.rows(); ++i)
    conf[i] = probs(i, data::kMalwareLabel);
  return conf;
}

std::unique_ptr<DimReductionClassifier> train_dim_reduction_defense(
    const nn::LabeledData& train_data, const DimReductionConfig& config,
    const nn::LabeledData* validation) {
  math::Pca pca;
  pca.fit(train_data.x, config.k);

  nn::MlpConfig arch;
  arch.dims.push_back(config.k);
  for (std::size_t h : config.hidden) arch.dims.push_back(h);
  arch.dims.push_back(2);
  arch.seed = config.seed;
  auto net = std::make_shared<nn::Network>(nn::make_mlp(arch));

  nn::LabeledData reduced;
  reduced.x = pca.transform(train_data.x);
  reduced.labels = train_data.labels;

  if (validation != nullptr) {
    nn::LabeledData reduced_val;
    reduced_val.x = pca.transform(validation->x);
    reduced_val.labels = validation->labels;
    nn::train(*net, reduced, config.training, &reduced_val);
  } else {
    nn::train(*net, reduced, config.training, nullptr);
  }
  return std::make_unique<DimReductionClassifier>(std::move(pca),
                                                  std::move(net));
}

}  // namespace mev::defense
