#include "net/client_stats.hpp"

#include <cstdio>

#include "obs/scope.hpp"

namespace mev::net {

namespace {

constexpr const char* kOverflowLabel = "(overflow)";

void append_number(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
}

}  // namespace

ClientStatsTracker::ClientStatsTracker(ClientStatsConfig config,
                                       obs::MetricsRegistry* registry)
    : config_(config), registry_(obs::resolve(registry)) {
  if (config_.max_clients == 0) config_.max_clients = 1;
}

ClientEntry* ClientStatsTracker::entry(std::string_view client) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto found = index_.find(std::string(client));
  if (found != index_.end()) return found->second;
  // At the cap, every new label shares the overflow entry (created on
  // first use; it does not count against the cap so the last real slot is
  // never wasted on it).
  std::string_view label = client;
  if (entries_.size() >= config_.max_clients) {
    const auto overflow = index_.find(kOverflowLabel);
    if (overflow != index_.end()) return overflow->second;
    label = kOverflowLabel;
  }
  auto fresh = std::make_unique<ClientEntry>(std::string(label), config_);
  fresh->psi_gauge = registry_->gauge(
      "mev.net.client_psi",
      "per-client score-distribution PSI vs the client's frozen reference",
      {{"client", fresh->client}});
  ClientEntry* raw = fresh.get();
  index_.emplace(raw->client, raw);
  entries_.push_back(std::move(fresh));
  return raw;
}

std::vector<const ClientEntry*> ClientStatsTracker::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const ClientEntry*> out;
  out.reserve(entries_.size());
  for (const auto& entry : entries_) out.push_back(entry.get());
  return out;
}

std::size_t ClientStatsTracker::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::string ClientStatsTracker::to_json(std::uint64_t now_us) {
  std::vector<ClientEntry*> snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.reserve(entries_.size());
    for (const auto& entry : entries_) snapshot.push_back(entry.get());
  }
  std::string out = "{\"window_s\":";
  out += std::to_string(config_.window.span_us() / 1'000'000);
  out += ",\"clients\":[";
  bool first = true;
  for (ClientEntry* entry : snapshot) {
    if (!first) out += ',';
    first = false;
    const std::uint64_t requests = entry->requests.total(now_us);
    const std::uint64_t rejected = entry->rejected.total(now_us);
    out += "{\"client\":\"";
    append_escaped(out, entry->client);
    out += "\",\"requests_per_s\":";
    append_number(out, entry->requests.rate_per_s(now_us));
    out += ",\"rows_per_s\":";
    append_number(out, entry->rows.rate_per_s(now_us));
    out += ",\"reject_rate\":";
    append_number(out, requests != 0
                           ? static_cast<double>(rejected) /
                                 static_cast<double>(requests)
                           : 0.0);
    out += ",\"score_psi\":";
    append_number(out, entry->refresh_psi(now_us));
    out += ",\"reference_frozen\":";
    out += entry->drift.reference_frozen() ? "true" : "false";
    out += ",\"lifetime_requests\":";
    out += std::to_string(
        entry->lifetime_requests.load(std::memory_order_relaxed));
    out += ",\"lifetime_rows\":";
    out += std::to_string(
        entry->lifetime_rows.load(std::memory_order_relaxed));
    out += ",\"lifetime_rejected\":";
    out += std::to_string(
        entry->lifetime_rejected.load(std::memory_order_relaxed));
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace mev::net
