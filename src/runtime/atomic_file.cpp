#include "runtime/atomic_file.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mev::runtime {

namespace {

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool read_pod(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void write_file_atomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os)
      throw std::runtime_error("write_file_atomic: cannot open " + tmp);
    os.write(contents.data(),
             static_cast<std::streamsize>(contents.size()));
    os.flush();
    if (!os) {
      os.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write_file_atomic: write failure on " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_file_atomic: cannot rename " + tmp +
                             " to " + path);
  }
}

void write_envelope_atomic(const std::string& path, std::uint32_t magic,
                           std::uint32_t version, std::string_view payload) {
  std::ostringstream os(std::ios::binary);
  write_pod(os, magic);
  write_pod(os, version);
  write_pod(os, static_cast<std::uint64_t>(payload.size()));
  write_pod(os, fnv1a64(payload));
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  write_file_atomic(path, os.str());
}

std::string read_envelope(const std::string& path, std::uint32_t magic,
                          std::uint32_t expected_version,
                          const std::string& what) {
  std::uint32_t version = 0;
  return read_envelope_versioned(path, magic, expected_version,
                                 expected_version, version, what);
}

std::string read_envelope_versioned(const std::string& path,
                                    std::uint32_t magic,
                                    std::uint32_t min_version,
                                    std::uint32_t max_version,
                                    std::uint32_t& version_out,
                                    const std::string& what) {
  std::ifstream is(path, std::ios::binary);
  if (!is)
    throw std::runtime_error("load " + what + ": cannot open " + path);
  std::uint32_t file_magic = 0, version = 0;
  std::uint64_t size = 0, checksum = 0;
  if (!read_pod(is, file_magic) || !read_pod(is, version) ||
      !read_pod(is, size) || !read_pod(is, checksum))
    throw std::runtime_error("load " + what + ": " + path +
                             " is truncated (incomplete header)");
  if (file_magic != magic)
    throw std::runtime_error("load " + what + ": " + path +
                             " has wrong magic (not a " + what + " file)");
  if (version < min_version || version > max_version)
    throw std::runtime_error(
        "load " + what + ": " + path + " has unsupported version " +
        std::to_string(version) + " (expected " +
        (min_version == max_version
             ? std::to_string(min_version)
             : std::to_string(min_version) + ".." +
                   std::to_string(max_version)) +
        ")");
  version_out = version;
  std::string payload(size, '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(is.gcount()) != size)
    throw std::runtime_error(
        "load " + what + ": " + path + " is truncated (" +
        std::to_string(is.gcount()) + " of " + std::to_string(size) +
        " payload bytes)");
  if (fnv1a64(payload) != checksum)
    throw std::runtime_error("load " + what + ": " + path +
                             " failed its checksum (corrupted file)");
  return payload;
}

}  // namespace mev::runtime
