#include "serve/completion.hpp"

#include <cassert>
#include <stdexcept>
#include <thread>

namespace mev::serve {

CompletionArena::CompletionArena(std::size_t block_slots)
    : block_slots_(block_slots == 0 ? 1 : block_slots) {
  grow();  // start with one block so the first submissions never lock
}

CompletionArena::~CompletionArena() {
  // No operations can be in flight at destruction (ScoreFuture handles
  // share ownership of the arena), so plain deletes suffice.
  for (auto& published : blocks_)
    delete[] published.load(std::memory_order_acquire);
}

CompletionArena::Slot& CompletionArena::slot(
    std::uint32_t index) const noexcept {
  Slot* block =
      blocks_[index / block_slots_].load(std::memory_order_acquire);
  return block[index % block_slots_];
}

void CompletionArena::grow() {
  std::lock_guard<std::mutex> lock(grow_mutex_);
  // Another thread may have grown while we waited for the lock; a free
  // slot showing up means its block is already published. Only the low
  // word is the link — the high word is the ABA tag and never resets.
  if (static_cast<std::uint32_t>(
          free_head_.load(std::memory_order_acquire)) != 0)
    return;

  const std::size_t allocated = allocated_.load(std::memory_order_relaxed);
  const std::size_t block_index = allocated / block_slots_;
  if (block_index >= kMaxBlocks)
    throw std::length_error(
        "CompletionArena: slot limit reached (too many unconsumed results)");

  Slot* block = new Slot[block_slots_];
  const std::uint32_t base = static_cast<std::uint32_t>(allocated);
  for (std::size_t i = 0; i < block_slots_; ++i) {
    block[i].state.store(pack(0, kPending), std::memory_order_relaxed);
    // Chain the block internally: slot i -> slot i+1, last -> (stitched
    // onto the current freelist head below).
    block[i].next_free.store(
        i + 1 < block_slots_ ? base + static_cast<std::uint32_t>(i) + 2 : 0,
        std::memory_order_relaxed);
  }
  blocks_[block_index].store(block, std::memory_order_release);
  allocated_.store(allocated + block_slots_, std::memory_order_relaxed);

  // Splice [base, base + block_slots_) onto the freelist in one CAS.
  Slot& last = block[block_slots_ - 1];
  std::uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    last.next_free.store(static_cast<std::uint32_t>(head),
                         std::memory_order_relaxed);
    const std::uint64_t tag = (head >> 32) + 1;
    if (free_head_.compare_exchange_weak(
            head, (tag << 32) | (base + 1), std::memory_order_release,
            std::memory_order_relaxed))
      return;
  }
}

CompletionTicket CompletionArena::acquire() {
  std::uint64_t head = free_head_.load(std::memory_order_acquire);
  for (;;) {
    // Empty = zero link in the low word (the high word is the ABA tag).
    if (static_cast<std::uint32_t>(head) == 0) {
      grow();
      head = free_head_.load(std::memory_order_acquire);
      continue;
    }
    const std::uint32_t index = static_cast<std::uint32_t>(head) - 1;
    Slot& s = slot(index);
    // Speculative: if another thread pops this node first, the tag in
    // free_head_ changes and the CAS below fails — the stale `next` is
    // never installed.
    const std::uint32_t next = s.next_free.load(std::memory_order_relaxed);
    const std::uint64_t tag = (head >> 32) + 1;
    if (free_head_.compare_exchange_weak(head, (tag << 32) | next,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      const std::uint32_t generation = static_cast<std::uint32_t>(
          s.state.load(std::memory_order_relaxed) >> 32);
      return CompletionTicket{index, generation};
    }
  }
}

void CompletionArena::release(std::uint32_t index,
                              std::uint32_t generation) noexcept {
  Slot& s = slot(index);
  // Bump the generation so any stale ticket to this slot is inert.
  s.state.store(pack(generation + 1, kPending), std::memory_order_relaxed);
  std::uint64_t head = free_head_.load(std::memory_order_relaxed);
  for (;;) {
    s.next_free.store(static_cast<std::uint32_t>(head),
                      std::memory_order_relaxed);
    const std::uint64_t tag = (head >> 32) + 1;
    if (free_head_.compare_exchange_weak(head, (tag << 32) | (index + 1),
                                         std::memory_order_release,
                                         std::memory_order_relaxed))
      break;
  }
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
}

void CompletionArena::complete(CompletionTicket ticket, ScoreResult&& result) {
  Slot& s = slot(ticket.index);
  s.result = std::move(result);
  std::uint64_t expected = pack(ticket.generation, kPending);
  if (s.state.compare_exchange_strong(expected,
                                      pack(ticket.generation, kDone),
                                      std::memory_order_release,
                                      std::memory_order_acquire)) {
    s.state.notify_all();
    return;
  }
  // The handle was dropped before completion: nobody will ever read the
  // result, so recycle the slot here.
  assert(expected == pack(ticket.generation, kAbandoned));
  s.result = ScoreResult{};
  s.error = nullptr;
  release(ticket.index, ticket.generation);
}

void CompletionArena::complete_error(CompletionTicket ticket,
                                     std::exception_ptr error) {
  Slot& s = slot(ticket.index);
  s.error = std::move(error);
  std::uint64_t expected = pack(ticket.generation, kPending);
  if (s.state.compare_exchange_strong(expected,
                                      pack(ticket.generation, kDone),
                                      std::memory_order_release,
                                      std::memory_order_acquire)) {
    s.state.notify_all();
    return;
  }
  assert(expected == pack(ticket.generation, kAbandoned));
  s.result = ScoreResult{};
  s.error = nullptr;
  release(ticket.index, ticket.generation);
}

bool CompletionArena::ready(CompletionTicket ticket) const noexcept {
  return slot(ticket.index).state.load(std::memory_order_acquire) !=
         pack(ticket.generation, kPending);
}

void CompletionArena::wait(CompletionTicket ticket) const noexcept {
  const Slot& s = slot(ticket.index);
  const std::uint64_t pending = pack(ticket.generation, kPending);
  std::uint64_t observed = s.state.load(std::memory_order_acquire);
  while (observed == pending) {
    s.state.wait(observed, std::memory_order_acquire);
    observed = s.state.load(std::memory_order_acquire);
  }
}

bool CompletionArena::wait_for_ms(CompletionTicket ticket,
                                  std::uint64_t timeout_ms) const {
  // Timed waits are off the hot path (probes/tests); std::atomic::wait
  // has no timeout, so poll at millisecond granularity.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!ready(ticket)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

ScoreResult CompletionArena::take(CompletionTicket ticket) {
  wait(ticket);
  Slot& s = slot(ticket.index);
  assert(s.state.load(std::memory_order_relaxed) ==
         pack(ticket.generation, kDone));
  ScoreResult result = std::move(s.result);
  std::exception_ptr error = std::move(s.error);
  s.result = ScoreResult{};
  s.error = nullptr;
  release(ticket.index, ticket.generation);
  if (error != nullptr) std::rethrow_exception(error);
  return result;
}

void CompletionArena::abandon(CompletionTicket ticket) noexcept {
  Slot& s = slot(ticket.index);
  std::uint64_t expected = pack(ticket.generation, kPending);
  if (s.state.compare_exchange_strong(expected,
                                      pack(ticket.generation, kAbandoned),
                                      std::memory_order_relaxed,
                                      std::memory_order_acquire))
    return;  // still pending: the completer will see kAbandoned and recycle
  if (expected == pack(ticket.generation, kDone)) {
    // Already resolved: drop the unread result and recycle now.
    s.result = ScoreResult{};
    s.error = nullptr;
    release(ticket.index, ticket.generation);
  }
  // Any other state means the ticket was already consumed — nothing to do.
}

std::size_t CompletionArena::capacity() const noexcept {
  return allocated_.load(std::memory_order_relaxed);
}

std::size_t CompletionArena::outstanding() const noexcept {
  return outstanding_.load(std::memory_order_relaxed);
}

}  // namespace mev::serve
